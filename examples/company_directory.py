#!/usr/bin/env python
"""Company directory: WDPTs over an ordinary relational schema.

The paper's thesis is that pattern trees matter beyond RDF: any schema
with systematically incomplete information benefits.  Here the schema is

    works_in(emp, dept)   phone(emp, nr)     office(emp, room)
    reports_to(emp, mgr)  dept_head(dept, emp)

with phone/office/manager present only for some employees.  The query
asks for everyone's department plus — when known — their phone, their
office, and their manager's phone (a *nested* optional: the manager's
phone only makes sense once a manager was found).

The script also shows the tractable-evaluation story of Section 3: the
query is locally tractable with interface width 1, so the Theorem 6
dynamic program answers EVAL efficiently.

Run:  python examples/company_directory.py
"""

from repro.core import Mapping, atom
from repro.wdpt import (
    eval_tractable,
    evaluate,
    has_bounded_interface,
    interface_width,
    is_locally_in_tw,
    max_eval,
    partial_eval,
    wdpt_from_nested,
)
from repro.workloads.datasets import company_directory


def build_query():
    return wdpt_from_nested(
        (
            [atom("works_in", "?emp", "?dept")],
            [
                ([atom("phone", "?emp", "?phone")], []),
                ([atom("office", "?emp", "?room")], []),
                (
                    [atom("reports_to", "?emp", "?mgr")],
                    [([atom("phone", "?mgr", "?mgr_phone")], [])],
                ),
            ],
        ),
        free_variables=["?emp", "?dept", "?phone", "?room", "?mgr", "?mgr_phone"],
    )


def main() -> None:
    query = build_query()
    print("Directory query:")
    print(query)
    print("\nClasses: ℓ-TW(1): %s, interface width %d (BI(1): %s)" % (
        is_locally_in_tw(query, 1),
        interface_width(query),
        has_bounded_interface(query, 1),
    ))

    db = company_directory(
        n_departments=3,
        employees_per_department=5,
        phone_fraction=0.6,
        office_fraction=0.4,
        manager_fraction=0.7,
        seed=42,
    )
    print("\nDatabase: %d facts over %d relations" % (len(db), len(db.relations())))

    answers = sorted(evaluate(query, db), key=lambda m: repr(m.get("?emp")))
    print("Answers: %d (one per employee, attributes filled when known)" % len(answers))
    by_completeness = {}
    for a in answers:
        by_completeness.setdefault(len(a), []).append(a)
    for size in sorted(by_completeness, reverse=True):
        print("    %d answers binding %d variables" % (len(by_completeness[size]), size))
    print("\nMost complete answer:")
    print("   ", max(answers, key=len))
    print("Least complete answer:")
    print("   ", min(answers, key=len))

    # ------------------------------------------------------------------
    # Tractable decision problems (Theorems 6, 8, 9).
    # ------------------------------------------------------------------
    target = max(answers, key=len)
    print("\nEVAL via the Theorem 6 DP:", eval_tractable(query, db, target))
    print("PARTIAL-EVAL('who works in dept_0?'):",
          partial_eval(query, db, Mapping({"?dept": "dept_0"})))
    print("MAX-EVAL(most complete answer):", max_eval(query, db, target))

    # A mapping that names a wrong phone is rejected outright.
    wrong = Mapping({"?emp": target["?emp"].value, "?phone": "x0000"})
    print("PARTIAL-EVAL(wrong phone):", partial_eval(query, db, wrong))


if __name__ == "__main__":
    main()
