#!/usr/bin/env python
"""Approximation: trade answer completeness for guaranteed fast evaluation.

Section 5 of the paper: when a query is NOT equivalent to anything
tractable, compute a ``WB(k)``-approximation — a tractable query that is
*sound* (every answer it produces is subsumed by an answer of the original)
and maximal among tractable under-approximations.

The demo query hunts for "collaboration triangles" (a cyclic, treewidth-2
pattern) with an optional attribute.  Its WB(1)-approximation replaces the
triangle by its best acyclic weakening, and we measure both soundness and
the answers it retains on concrete data.  The single-node (CQ) case of
Barceló–Libkin–Romero — the triangle's famous self-loop approximation —
is shown first.

Run:  python examples/approximation_demo.py
"""

from repro.core import ConjunctiveQuery, Database, atom
from repro.cqalgs import tw_approximations
from repro.wdpt import (
    WB_TW,
    evaluate,
    is_in_wb,
    is_subsumed_by,
    wb_approximations,
    wdpt_from_nested,
)


def main() -> None:
    # ------------------------------------------------------------------
    # CQ warm-up: the TW(1)-approximation of the triangle.
    # ------------------------------------------------------------------
    triangle = ConjunctiveQuery(
        [], [atom("E", "?x", "?y"), atom("E", "?y", "?z"), atom("E", "?z", "?x")]
    )
    apps = tw_approximations(triangle, 1)
    print("TW(1)-approximation of the Boolean triangle CQ:")
    for q in apps:
        print("   ", q, "   (the classic self-loop)")

    # ------------------------------------------------------------------
    # WDPT: triangle of collaborations with an optional award.
    # ------------------------------------------------------------------
    p = wdpt_from_nested(
        (
            [
                atom("collab", "?a", "?b"),
                atom("collab", "?b", "?c"),
                atom("collab", "?c", "?a"),
                atom("member", "?band", "?a"),
            ],
            [([atom("award", "?band", "?prize")], [])],
        ),
        free_variables=["?band", "?prize"],
    )
    print("\nOriginal query (g-TW(2), not g-TW(1)):")
    print(p)
    print("in WB(1):", is_in_wb(p, 1, WB_TW), "| in WB(2):", is_in_wb(p, 2, WB_TW))

    approximations = wb_approximations(p, 1, WB_TW)
    print("\nWB(1)-approximations found: %d" % len(approximations))
    best = approximations[0]
    print(best)
    print("sound (best ⊑ p):", is_subsumed_by(best, p))
    print("tree structure preserved:", len(best.tree) > 1)

    # ------------------------------------------------------------------
    # What do we lose on real data?
    # ------------------------------------------------------------------
    db = Database(
        [
            # a genuine triangle in band_1: found by the exact query only
            atom("collab", "ann", "bob"),
            atom("collab", "bob", "cat"),
            atom("collab", "cat", "ann"),
            atom("member", "band_1", "ann"),
            atom("award", "band_1", "mercury"),
            # a self-collaborating solo artist in band_2: the self-loop
            # satisfies the triangle pattern AND its folded approximation
            atom("collab", "solo", "solo"),
            atom("member", "band_2", "solo"),
            # a one-way collaboration in band_3: matches neither query
            atom("collab", "fred", "gil"),
            atom("member", "band_3", "fred"),
        ]
    )
    exact = evaluate(p, db)
    approx = evaluate(best, db)
    print("\nAnswers on sample data:")
    print("    exact query  :", sorted(exact, key=repr))
    print("    approximation:", sorted(approx, key=repr))
    sound = all(any(a.subsumed_by(e) for e in exact) for a in approx)
    print("\n→ soundness on this database:", sound)
    print(
        "→ the approximation is an *under*-approximation: it keeps band_2\n"
        "  (whose self-loop survives the variable folding) but may miss\n"
        "  genuine triangles like band_1 — the price of guaranteed\n"
        "  polynomial-time evaluation (Section 5 of the paper)."
    )


if __name__ == "__main__":
    main()
