#!/usr/bin/env python
"""Quickstart: the paper's running example, end to end.

Builds the database of Example 2, parses query (1) of Example 1 in the
paper's algebraic {AND, OPT} syntax, translates it to a well-designed
pattern tree (Figure 1), and evaluates it — then reproduces Example 3
(projection) and Example 7 (maximal-mapping semantics), and shows the
tractability classes of Example 6.

Run:  python examples/quickstart.py
"""

from repro.rdf import RDFGraph, parse_query
from repro.wdpt import (
    evaluate,
    evaluate_max,
    eval_tractable,
    has_bounded_interface,
    interface_width,
    is_locally_in_tw,
    partial_eval,
)
from repro.core import Mapping


def main() -> None:
    # ------------------------------------------------------------------
    # Example 2's database: a tiny music catalog.
    # ------------------------------------------------------------------
    graph = RDFGraph(
        [
            ("Our_love", "recorded_by", "Caribou"),
            ("Our_love", "published", "after_2010"),
            ("Swim", "recorded_by", "Caribou"),
            ("Swim", "published", "after_2010"),
            ("Swim", "NME_rating", "2"),
        ]
    )
    db = graph.to_database()
    print("Database: %d triples" % len(graph))

    # ------------------------------------------------------------------
    # Query (1) of Example 1, in the paper's own notation.
    # ------------------------------------------------------------------
    text = (
        '(((?x, recorded_by, ?y) AND (?x, published, "after_2010"))'
        " OPT (?x, NME_rating, ?z)) OPT (?y, formed_in, ?z2)"
    )
    p = parse_query(text)
    print("\nThe WDPT of Figure 1:")
    print(p)

    print("\nExample 2 — p(D):")
    for answer in sorted(evaluate(p, db), key=repr):
        print("   ", answer)
    # μ₁ binds only x, y; μ₂ additionally binds the rating z.  The second
    # OPT (formed_in) never matches, yet no answer is lost — the whole
    # point of optional matching.

    # ------------------------------------------------------------------
    # Example 3 — projection: drop x from the output.
    # ------------------------------------------------------------------
    p3 = parse_query("SELECT ?y ?z ?z2 WHERE " + text)
    print("\nExample 3 — project out ?x:")
    for answer in sorted(evaluate(p3, db), key=repr):
        print("   ", answer)

    # ------------------------------------------------------------------
    # Example 7 — maximal-mapping semantics p_m(D).
    # ------------------------------------------------------------------
    p7 = parse_query("SELECT ?y ?z WHERE " + text)
    print("\nExample 7 — p(D) vs p_m(D) for the {y, z} projection:")
    print("    p(D)   =", sorted(evaluate(p7, db), key=repr))
    print("    p_m(D) =", sorted(evaluate_max(p7, db), key=repr))

    # ------------------------------------------------------------------
    # Example 6 — tractability classes, and the Theorem 6 algorithm.
    # ------------------------------------------------------------------
    print("\nExample 6 — classes of the Figure 1 tree:")
    print("    locally in TW(1):", is_locally_in_tw(p, 1))
    print("    interface width: ", interface_width(p), "→ BI(2):", has_bounded_interface(p, 2))

    h = Mapping({"?x": "Swim", "?y": "Caribou", "?z": "2"})
    print("\nDecision problems on h =", h)
    print("    EVAL (Theorem 6 DP):   ", eval_tractable(p, db, h))
    print("    PARTIAL-EVAL (Thm 8):  ", partial_eval(p, db, Mapping({"?y": "Caribou"})))
    not_maximal = Mapping({"?x": "Swim", "?y": "Caribou"})
    print("    EVAL on non-maximal h':", eval_tractable(p, db, not_maximal), "(extends to z=2)")


if __name__ == "__main__":
    main()
