#!/usr/bin/env python
"""Semantic optimization: recognize hidden tractability and exploit it.

Sections 5 and 6 of the paper.  Two queries that *look* intractable:

1. a WDPT dragging a cyclic existential sub-pattern in a branch that
   binds no output variable — subsumption-equivalent to a ``WB(1)`` tree
   (the Lemma 1 pruning finds the witness), enabling the FPT
   optimize-then-evaluate pipeline of Corollary 2;
2. a union of WDPTs whose members fold to treewidth 1 — handled by the
   far cheaper ``φ_cq``/core machinery of Section 6 (Theorem 17).

Run:  python examples/semantic_optimization.py
"""

import time

from repro.core import ConjunctiveQuery, Mapping, atom
from repro.wdpt import (
    UWDPT,
    WB_TW,
    WDPT,
    find_wb_equivalent,
    is_in_m_uwb,
    is_in_wb,
    is_subsumption_equivalent,
    partial_eval,
    uwb_equivalent,
    union_subsumption_equivalent,
    wdpt_from_nested,
)
from repro.workloads.datasets import company_directory


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A member of M(WB(1)) in disguise.
    # ------------------------------------------------------------------
    p = wdpt_from_nested(
        (
            [atom("works_in", "?e", "?d")],
            [
                ([atom("phone", "?e", "?p")], []),
                (
                    [  # cyclic managerial pattern, no free variables
                        atom("reports_to", "?u", "?v"),
                        atom("reports_to", "?v", "?w"),
                        atom("reports_to", "?w", "?u"),
                        atom("works_in", "?u", "?d"),
                    ],
                    [],
                ),
            ],
        ),
        free_variables=["?e", "?d", "?p"],
    )
    print("Query with a hidden cyclic branch:")
    print(p)
    print("\nsyntactically in WB(1)?", is_in_wb(p, 1, WB_TW))

    t = time.perf_counter()
    witness = find_wb_equivalent(p, 1, WB_TW)
    elapsed = time.perf_counter() - t
    assert witness is not None
    print("semantically in M(WB(1))?  yes — witness found in %.3fs:" % elapsed)
    print(witness)
    print("witness ≡ₛ original:", is_subsumption_equivalent(p, witness))

    db = company_directory(n_departments=3, employees_per_department=6, seed=13)
    h = Mapping({"?e": "emp_0_0"})
    print("\nCorollary 2 pipeline — PARTIAL-EVAL on the witness:")
    print("    original :", partial_eval(p, db, h))
    print("    optimized:", partial_eval(witness, db, h))

    # ------------------------------------------------------------------
    # 2. Unions: the Section 6 shortcut.
    # ------------------------------------------------------------------
    foldable = WDPT.from_cq(
        ConjunctiveQuery(
            ["?e"],
            [
                atom("reports_to", "?a", "?b"),
                atom("reports_to", "?b", "?c"),
                atom("reports_to", "?c", "?a"),
                atom("reports_to", "?s", "?s"),
                atom("works_in", "?e", "?d"),
            ],
        )
    )
    simple = WDPT.from_cq(
        ConjunctiveQuery(["?e"], [atom("phone", "?e", "?nr")])
    )
    phi = UWDPT([foldable, simple])
    print("\nUnion of two members; the first folds its cycle into the")
    print("self-loop (core computation).  In M(UWB(1))?", is_in_m_uwb(phi, 1, WB_TW))
    equivalent = uwb_equivalent(phi, 1, WB_TW)
    assert equivalent is not None
    print("Equivalent UWB(1) union (%d members):" % len(equivalent))
    for member in equivalent:
        print("   ", member.to_cq())
    print("≡ₛ-equivalent to the original union:",
          union_subsumption_equivalent(phi, equivalent))


if __name__ == "__main__":
    main()
