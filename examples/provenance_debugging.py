#!/usr/bin/env python
"""Provenance and debugging: *why* did (or didn't) a query answer?

The Session API end to end: query a catalog, pull witness certificates
explaining each answer's optional branches, use the subsumption
counterexample to debug a broken query rewrite, and round-trip everything
through the JSON serializer.

Run:  python examples/provenance_debugging.py
"""

from repro.core import Mapping
from repro.engine import Session
from repro.serialize import dumps, loads
from repro.wdpt import subsumption_counterexample
from repro.workloads.families import example2_graph

QUERY = (
    "SELECT ?record ?band ?rating ?year WHERE { "
    '?record recorded_by ?band . ?record published "after_2010" '
    "OPTIONAL { ?record NME_rating ?rating } "
    "OPTIONAL { ?band formed_in ?year } }"
)


def main() -> None:
    session = Session(example2_graph())
    result = session.query(QUERY)
    print("Answers:")
    print(result.to_table())

    # ------------------------------------------------------------------
    # Why is each answer what it is?
    # ------------------------------------------------------------------
    print("\nProvenance certificates:")
    for answer in result:
        w = result.witness(answer)
        assert w is not None and w.verify()
        print()
        print(w.describe())

    # ------------------------------------------------------------------
    # Debugging a rewrite with the subsumption counterexample.
    # ------------------------------------------------------------------
    original = session.parse(QUERY)
    broken = session.parse(
        "SELECT ?record ?band ?rating WHERE { "
        '?record recorded_by ?band . ?record published "after_2010" '
        "OPTIONAL { ?record NME_rating ?rating } }"
    )
    print("\nIs the rewrite ≡ₛ to the original?")
    ce = subsumption_counterexample(original, broken)
    if ce is None:
        print("  original ⊑ rewrite: yes")
    else:
        print("  original ⋢ rewrite; failing subtree nodes:", sorted(ce))
        print("  (the rewrite dropped the formed_in branch, so answers")
        print("   binding ?year can no longer be subsumed)")

    # ------------------------------------------------------------------
    # Serialization round trip.
    # ------------------------------------------------------------------
    payload = dumps(original)
    restored = loads(payload)
    assert restored == original
    print("\nSerialized query: %d bytes of JSON, round-trips exactly." % len(payload))

    answer = sorted(result, key=len)[-1]
    print("An answer as JSON:", dumps(answer, indent=0).replace("\n", " "))


if __name__ == "__main__":
    main()
