#!/usr/bin/env python
"""Music catalog: optional matching over incomplete semantic web data.

The scenario the paper's introduction motivates: a catalog where ratings
and founding years exist only for *some* records and bands.  A plain CQ
joining everything would silently drop every band with a missing
attribute; the WDPT returns every band and fills in whatever is known.

The script contrasts the two behaviours quantitatively as the data gets
sparser, then demonstrates the decision problems (EVAL / PARTIAL-EVAL /
MAX-EVAL) on the same query.

Run:  python examples/music_catalog.py
"""

from repro.core import ConjunctiveQuery, Mapping, atom
from repro.cqalgs import evaluate as cq_evaluate
from repro.rdf import parse_query
from repro.wdpt import evaluate, evaluate_max, max_eval, partial_eval
from repro.workloads.datasets import music_catalog

QUERY = (
    "SELECT ?record ?band ?rating ?year WHERE "
    "(((?record, recorded_by, ?band) OPT (?record, NME_rating, ?rating))"
    " OPT (?band, formed_in, ?year))"
)


def strict_cq() -> ConjunctiveQuery:
    """The CQ a user would write without OPT: every attribute mandatory."""
    return ConjunctiveQuery(
        ["?record", "?band", "?rating", "?year"],
        [
            atom("triple", "?record", "recorded_by", "?band"),
            atom("triple", "?record", "NME_rating", "?rating"),
            atom("triple", "?band", "formed_in", "?year"),
        ],
    )


def main() -> None:
    wdpt = parse_query(QUERY)
    print("Query (as WDPT):")
    print(wdpt)

    print("\n%-10s %-12s %-12s %-12s" % ("coverage", "records", "CQ answers", "WDPT answers"))
    for fraction in (1.0, 0.7, 0.4, 0.1):
        graph = music_catalog(
            n_bands=10,
            records_per_band=3,
            rating_fraction=fraction,
            formed_in_fraction=fraction,
            seed=7,
        )
        db = graph.to_database()
        n_records = len(list(graph.triples_with(predicate="recorded_by")))
        strict = cq_evaluate(strict_cq(), db)
        flexible = evaluate(wdpt, db)
        print("%-10s %-12d %-12d %-12d" % ("%.0f%%" % (100 * fraction), n_records, len(strict), len(flexible)))
    print("→ the CQ collapses as data thins out; the WDPT always returns all records.")

    # ------------------------------------------------------------------
    # Decision problems on one concrete catalog.
    # ------------------------------------------------------------------
    db = music_catalog(n_bands=6, records_per_band=2, rating_fraction=0.5,
                       formed_in_fraction=0.5, seed=7).to_database()
    answers = sorted(evaluate(wdpt, db), key=repr)
    print("\nA few answers over a 50%%-coverage catalog (%d total):" % len(answers))
    for a in answers[:4]:
        print("   ", a)

    richest = max(answers, key=len)
    print("\nDecision problems:")
    print("    PARTIAL-EVAL(band only):  ",
          partial_eval(wdpt, db, richest.restrict(["?band"])))
    print("    MAX-EVAL(richest answer): ", max_eval(wdpt, db, richest))
    partial = richest.restrict(sorted(richest.domain())[:-1])
    print("    MAX-EVAL(its restriction):", max_eval(wdpt, db, partial))

    print("\nMaximal-mapping semantics keeps %d of %d answers." % (
        len(evaluate_max(wdpt, db)), len(answers)))


if __name__ == "__main__":
    main()
