#!/usr/bin/env python
"""Social network: surface SPARQL, EXPLAIN, and streaming enumeration.

A friend-of-friend query over a network where profile attributes (age,
city, employer) exist only for some people.  Demonstrates the pieces a
practitioner touches first:

* the surface ``SELECT … WHERE { … OPTIONAL { … } }`` parser;
* the EXPLAIN profiler routing the query to the paper's algorithms;
* full evaluation vs streaming the first few answers;
* maximal-mapping semantics to keep only the best-informed answers.

Run:  python examples/social_network.py
"""

from repro.rdf import parse_sparql
from repro.wdpt import evaluate, evaluate_max, explain
from repro.workloads.datasets import social_network

QUERY = """
SELECT ?a ?b ?age ?city WHERE {
    ?a knows ?b
    OPTIONAL { ?b age ?age }
    OPTIONAL { ?b city ?city
               OPTIONAL { ?b works_for ?corp } }
}
"""


def main() -> None:
    p = parse_sparql(QUERY)
    print("Query:")
    print(p)
    print()
    print(explain(p).as_table())

    graph = social_network(n_people=15, avg_degree=3, seed=8)
    db = graph.to_database()
    print("\nNetwork: %d triples, %d knows-edges" % (
        len(graph), len(list(graph.triples_with(predicate="knows")))))

    answers = evaluate(p, db)
    print("\nAll answers: %d (one per knows-edge, enriched when possible)" % len(answers))
    by_size = {}
    for a in answers:
        by_size.setdefault(len(a), []).append(a)
    for size in sorted(by_size):
        print("    binding %d variables: %d answers" % (size, len(by_size[size])))

    print("\nThree sample answers:")
    for a in sorted(answers, key=lambda m: (-len(m), repr(m)))[:3]:
        print("   ", a)

    maximal = evaluate_max(p, db)
    print("\nMaximal-mapping semantics: %d of %d answers survive" % (len(maximal), len(answers)))
    print("(answers subsumed by a better-informed answer about the same "
          "edge are dropped)")


if __name__ == "__main__":
    main()
