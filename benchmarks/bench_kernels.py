"""KERNELS — columnar relation kernels vs the legacy Mapping path.

The relational-algebra refactor (``repro.relalg``) replaces the historical
tuple-at-a-time Mapping pipeline inside Yannakakis with set-oriented
columnar kernels, and — on SQLite — pushes the whole join tree down as a
single SQL statement.  This benchmark measures all three paths on the
same adversarial workloads and cross-checks their answers:

* layered path queries where semijoin reduction carries the day (the
  Theorem 3 family the regression gate also tracks);
* star queries with a wide free schema, stressing the join/project phase.

``scripts/bench_regress.py`` records the same comparison as the
``kernels.columnar`` / ``kernels.legacy`` points in ``BENCH_eval.json``.
"""

import pytest

from repro.benchharness import Series, format_series_table, time_callable
from repro.core.atoms import Atom
from repro.core.database import Database
from repro.cqalgs.yannakakis import evaluate_acyclic
from repro.relalg.config import force_kernels
from repro.storage import to_backend
from repro.workloads.generators import path_cq, random_graph_database, star_cq

pytestmark = pytest.mark.paper_artifact("Columnar kernels (Theorem 3 substrate)")


def _layered_db(layers, width):
    """Fully-connected layers plus dangling tuples that only a global
    semijoin pass eliminates — the workload where kernel overhead per
    tuple dominates."""
    db = Database()
    for layer in range(layers):
        for i in range(width):
            for j in range(width):
                db.add(Atom("E", ("L%d_%d" % (layer, i), "L%d_%d" % (layer + 1, j))))
    for i in range(width):
        db.add(Atom("E", ("L%d_%d" % (layers, i), "dead_%d" % i)))
    return db


def _answers(q, db, mode):
    with force_kernels(mode):
        return evaluate_acyclic(q, db)


def test_kernel_series_on_paths():
    columnar = Series("columnar")
    legacy = Series("legacy")
    for length in (2, 4, 6):
        db = _layered_db(length, 6)
        q = path_cq(length)
        columnar.add(length, time_callable(lambda: _answers(q, db, "columnar"), repeats=3))
        legacy.add(length, time_callable(lambda: _answers(q, db, "legacy"), repeats=3))
        assert _answers(q, db, "columnar") == _answers(q, db, "legacy")
    print()
    print(format_series_table([columnar, legacy], parameter_name="path length"))
    # The columnar kernels must at least hold their own on the family the
    # regression gate records; the BENCH_eval.json points quantify the win.
    assert columnar.points[-1][1] < legacy.points[-1][1] * 1.25


def test_kernel_parity_three_ways_on_stars():
    """columnar ≡ legacy ≡ whole-tree SQL pushdown, with free variables."""
    data = random_graph_database(40, 240, seed=11)
    q = star_cq(4)
    mem = to_backend(data, "memory")
    lite = to_backend(data, "sqlite")
    expected = _answers(q, mem, "legacy")
    assert _answers(q, mem, "columnar") == expected
    assert _answers(q, lite, "columnar") == expected
    # auto on SQLite resolves to the whole-tree SQL pushdown
    assert _answers(q, lite, "auto") == expected


def test_bench_kernel_columnar(benchmark):
    db = _layered_db(5, 6)
    q = path_cq(5)
    benchmark(lambda: _answers(q, db, "columnar"))


def test_bench_kernel_legacy(benchmark):
    db = _layered_db(5, 6)
    q = path_cq(5)
    benchmark(lambda: _answers(q, db, "legacy"))


def test_bench_kernel_sql_pushdown(benchmark):
    db = to_backend(_layered_db(5, 6).facts(), "sqlite")
    q = path_cq(5)
    benchmark(lambda: _answers(q, db, "auto"))
