"""PROP2 — Proposition 2: global tractability ⊊ local tractability + BI.

Ablation of the bounded-interface condition.  The family of
Proposition 2(2) sits in ``g-TW(1)`` with interface width → ∞; we verify
the class facts, confirm the inclusion ``ℓ-TW(k) ∩ BI(c) ⊆ g-TW(k + 2c)``
on random trees, and measure how the Theorem 6 DP's cost responds to the
interface width knob — the ablation showing why BI is the condition that
buys exact evaluation.
"""

import pytest

from repro.benchharness import Series, format_series_table, time_callable
from repro.core.atoms import Atom
from repro.core.database import Database
from repro.core.mappings import Mapping
from repro.wdpt.classes import (
    check_proposition2,
    has_bounded_interface,
    interface_width,
    is_globally_in_tw,
    is_locally_in_tw,
)
from repro.wdpt.eval_tractable import eval_tractable
from repro.workloads.families import prop2_family
from repro.workloads.generators import random_wdpt

pytestmark = pytest.mark.paper_artifact("Proposition 2 (separation + ablation)")


def test_separation_family_facts():
    rows = []
    for n in (2, 4, 6, 8):
        p = prop2_family(n)
        rows.append((n, is_globally_in_tw(p, 1), interface_width(p)))
    print("\nPROP2: (n, g-TW(1)?, interface width):", rows)
    assert all(g for _, g, _ in rows)
    assert [w for _, _, w in rows] == [2, 4, 6, 8]


def test_inclusion_direction_on_random_trees():
    checked = 0
    for seed in range(10):
        p = random_wdpt(depth=2, fanout=2, fresh_vars_per_node=1, seed=seed)
        c = interface_width(p)
        if is_locally_in_tw(p, 1) and has_bounded_interface(p, c):
            assert check_proposition2(p, k=1, c=c)
            checked += 1
    assert checked >= 5
    print("\nPROP2: inclusion ℓ-TW(1)∩BI(c) ⊆ g-TW(1+2c) verified on %d trees" % checked)


def _interface_db(domain=4, with_g=False, g_binary=False):
    db = Database()
    for v in range(domain):
        for u in range(domain):
            db.add(Atom("E", (v, u)))
            if with_g and g_binary:
                db.add(Atom("G", (v, u)))
    if with_g and not g_binary:
        for u in range(domain):
            db.add(Atom("G", (u,)))
    return db


def _wide_interface_tree(n):
    """Root star E(x, y₀…y_{n−1}) with ONE child sharing all the y's and
    introducing a free z: interface width n, globally tractable (tw 2)."""
    from repro.wdpt.tree import PatternTree
    from repro.wdpt.wdpt import WDPT

    root = [Atom("E", ("?x", "?y%d" % i)) for i in range(n)]
    child = [Atom("G", ("?y%d" % i, "?z")) for i in range(n)]
    return WDPT(PatternTree([0]), [root, child], ["?x", "?z"])


def test_dp_cost_vs_interface_width():
    """The Theorem 6 DP enumerates |adom|^{interface} candidates: when
    every candidate must be *refuted* (the child is always extendable, so
    ``{x↦0}`` is not an answer), the cost grows exponentially with the
    interface width — exactly the behaviour BI(c) forbids."""
    series = Series("EVAL DP vs interface width")
    db = _interface_db(with_g=True, g_binary=True)
    h = Mapping({"?x": 0})
    for n in (2, 3, 4, 5):
        p = _wide_interface_tree(n)
        assert is_globally_in_tw(p, 2)
        assert not eval_tractable(p, db, h)  # z always extendable
        series.add(n, time_callable(lambda: eval_tractable(p, db, h), repeats=1))
    print()
    print(format_series_table([series], parameter_name="interface width"))
    ratio = series.growth_ratio()
    assert ratio is not None and ratio > 1.5, (
        "without BI, the DP pays |adom|^interface (got step ratio %r)" % ratio
    )


def test_bounded_interface_controls_cost():
    """Same data volume, interface fixed at 1: cost stays flat as the tree
    grows — the positive side of the ablation."""
    from repro.wdpt.tree import PatternTree
    from repro.wdpt.wdpt import WDPT

    series = Series("EVAL DP, BI(1) combs")
    for width in (2, 4, 8):
        labels = [[Atom("E", ("?x", "?x"))]]
        parents = []
        frees = ["?x"]
        for i in range(width):
            labels.append([Atom("G", ("?x", "?z%d" % i))])
            parents.append(0)
            frees.append("?z%d" % i)
        p = WDPT(PatternTree(parents), labels, frees)
        db = _interface_db(with_g=True, g_binary=True)
        h = Mapping({"?x": 0})
        series.add(width, time_callable(lambda: eval_tractable(p, db, h), repeats=2))
    print()
    print(format_series_table([series], parameter_name="branches (BI(1))"))
    slope = series.loglog_slope()
    assert slope is None or slope < 2.0


def test_bench_dp_narrow_interface(benchmark):
    p = _wide_interface_tree(2)
    db = _interface_db(with_g=True, g_binary=True)
    assert not benchmark(lambda: eval_tractable(p, db, Mapping({"?x": 0})))


def test_bench_dp_wide_interface(benchmark):
    p = _wide_interface_tree(4)
    db = _interface_db(with_g=True, g_binary=True)
    assert not benchmark(lambda: eval_tractable(p, db, Mapping({"?x": 0})))
