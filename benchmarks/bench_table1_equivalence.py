"""T1-EQUIV — Table 1, row ≡ₛ: Π₂ᵖ-complete in general, coNP under global
tractability; and ≡ₛ coincides with ≡_max (Proposition 5).

Subsumption-equivalence is two subsumption checks, so the row inherits the
⊑ row's shape; we reproduce it directly and additionally validate
Proposition 5 semantically: syntactically ≡ₛ pairs have identical maximal
answers over sampled databases.
"""

import pytest

from repro.benchharness import Series, format_series_table, time_callable
from repro.core.atoms import atom
from repro.wdpt.evaluation import evaluate_max
from repro.wdpt.subsumption import is_subsumption_equivalent
from repro.wdpt.transform import lemma1_normal_form
from repro.wdpt.tree import PatternTree
from repro.wdpt.wdpt import WDPT
from repro.workloads.generators import random_database

pytestmark = pytest.mark.paper_artifact("Table 1, row ≡ₛ")


def _chain_comb(width, chain=1):
    """A comb whose teeth hang off a chain of existential nodes — the
    Lemma 1 normal form collapses the chains, giving natural ≡ₛ pairs."""
    labels = [[atom("A", "?x")]]
    parents = []
    frees = ["?x"]
    for i in range(width):
        anchor = 0
        for c in range(chain):
            labels.append([atom("L%d_%d" % (i, c), "?x", "?u%d_%d" % (i, c))])
            parents.append(anchor)
            anchor = len(labels) - 1
        labels.append([atom("B%d" % i, "?x", "?y%d" % i)])
        parents.append(anchor)
        frees.append("?y%d" % i)
    return WDPT(PatternTree(parents), labels, frees)


def test_equivalence_cost_tracks_subsumption():
    series = Series("≡ₛ vs branches")
    for width in (2, 4, 6, 8):
        p = _chain_comb(width)
        q = lemma1_normal_form(p)
        series.add(width, time_callable(lambda: is_subsumption_equivalent(p, q), repeats=1))
    print()
    print(format_series_table([series], parameter_name="branches"))
    ratio = series.growth_ratio()
    assert ratio is not None and ratio > 1.5


def test_normal_form_pairs_are_equivalent():
    for width in (2, 3):
        p = _chain_comb(width, chain=2)
        q = lemma1_normal_form(p)
        assert len(q.tree) < len(p.tree)
        assert is_subsumption_equivalent(p, q)


def test_proposition5_semantic_agreement():
    """≡ₛ pairs have identical p_m(D) on sampled databases."""
    p = _chain_comb(2, chain=2)
    q = lemma1_normal_form(p)
    assert is_subsumption_equivalent(p, q)
    relations = sorted({a.relation for label in p.labels for a in label})
    for seed in range(3):
        db = random_database(30, relations=relations, domain_size=4, seed=seed)
        assert evaluate_max(p, db) == evaluate_max(q, db)
    print("\nT1-EQUIV: Proposition 5 checked on 3 random databases")


def test_bench_equivalence(benchmark):
    p = _chain_comb(4)
    q = lemma1_normal_form(p)
    assert benchmark(lambda: is_subsumption_equivalent(p, q))
