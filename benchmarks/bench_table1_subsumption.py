"""T1-SUBS — Table 1, row ⊑: Π₂ᵖ-complete in general, coNP under global
tractability of the right-hand side (Theorem 11's asymmetry).

The decision procedure enumerates rooted subtrees of ``p₁`` (the genuinely
exponential part) and runs one PARTIAL-EVAL of ``p₂`` per subtree.  Two
sweeps reproduce the row:

1. growing the *left* tree blows up the subtree count — cost is
   exponential in ``|p₁|`` regardless of classes (the coNP lower bound);
2. growing the *right* tree keeps cost polynomial when ``p₂`` is globally
   tractable — the inner check is Theorem 8's algorithm (coNP membership's
   polynomial verifier, Theorem 11(1)).
"""

import pytest

from repro.benchharness import Series, format_series_table, time_callable
from repro.core.atoms import atom
from repro.wdpt.subsumption import is_subsumed_by
from repro.wdpt.tree import PatternTree
from repro.wdpt.wdpt import WDPT

pytestmark = pytest.mark.paper_artifact("Table 1, row ⊑ (subsumption)")


def _comb_tree(width):
    """Root A(x) with ``width`` optional leaves B_i(x, y_i) — g-TW(1),
    2^width rooted subtrees."""
    labels = [[atom("A", "?x")]]
    parents = []
    frees = ["?x"]
    for i in range(width):
        labels.append([atom("B%d" % i, "?x", "?y%d" % i)])
        parents.append(0)
        frees.append("?y%d" % i)
    return WDPT(PatternTree(parents), labels, frees)


def test_left_side_exponential():
    series = Series("⊑ vs left width")
    for width in (2, 4, 6, 8, 10):
        p1 = _comb_tree(width)
        p2 = _comb_tree(width)
        series.add(width, time_callable(lambda: is_subsumed_by(p1, p2), repeats=1))
    print()
    print(format_series_table([series], parameter_name="left branches"))
    ratio = series.growth_ratio()
    assert ratio is not None and ratio > 1.6, "subtree enumeration must dominate"


def test_right_side_polynomial_when_tractable():
    p1 = _comb_tree(3)  # fixed small left side: 8 subtrees
    series = Series("⊑ vs right size (g-TW(1) rhs)")
    for width in (4, 8, 16, 32):
        p2 = _comb_tree(width)
        series.add(width, time_callable(lambda: is_subsumed_by(p1, p2), repeats=3))
    print()
    print(format_series_table([series], parameter_name="right branches"))
    slope = series.loglog_slope()
    assert slope is not None and slope < 2.5, (
        "with a globally tractable right-hand side the inner checks are "
        "polynomial (Theorem 11(1)); got slope %r" % slope
    )


def test_answers_are_correct():
    small = _comb_tree(2)
    large = _comb_tree(4)
    # small's answers bind a subset of large's possible variables.
    assert is_subsumed_by(small, large)
    assert not is_subsumed_by(large, small)


def test_bench_subsumption(benchmark):
    p1 = _comb_tree(4)
    p2 = _comb_tree(6)
    assert benchmark(lambda: is_subsumed_by(p1, p2))
