"""T2-UWBMEM — Table 2, row UWB(k)-Membership: Π₂ᵖ/Π₃ᵖ vs the single-WDPT
NEXPTIME^NP — the paper's "stark contrast".

The UWDPT pipeline (Proposition 9 / Theorem 17) reduces membership to
per-CQ core computations on ``φ_cq^r``.  We reproduce the contrast by
running BOTH pipelines on the same single-tree input: the union machinery
answers via cores in polynomial-ish time where the WDPT witness search
enumerates quotients.
"""

import pytest

from repro.benchharness import Series, format_series_table, time_callable
from repro.core.atoms import atom
from repro.wdpt.approximation import is_in_m_wb
from repro.wdpt.classes import WB_TW, is_in_wb
from repro.wdpt.unions import UWDPT, is_in_m_uwb, phi_cq, uwb_equivalent, union_subsumption_equivalent
from repro.wdpt.wdpt import wdpt_from_nested

pytestmark = pytest.mark.paper_artifact("Table 2, row UWB(k)-Membership")


def _foldable_tree(pendant_vars):
    """Cyclic-looking root that folds to TW(1) via its self-loop, with a
    growing optional pendant path ending in a *free* variable (so the
    branch survives the Lemma 1 pruning and the single-WDPT witness search
    must wade through the quotient space)."""
    root = [
        atom("E", "?a", "?b"),
        atom("E", "?b", "?c"),
        atom("E", "?c", "?a"),
        atom("E", "?s", "?s"),
        atom("A", "?x"),
    ]
    path = []
    prev = "?x"
    for i in range(max(1, pendant_vars)):
        path.append(atom("P", prev, "?t%d" % i))
        prev = "?t%d" % i
    return wdpt_from_nested(
        (root, [(path, [])]),
        free_variables=["?x", prev],
    )


def test_membership_positive_and_equivalent_union():
    p = _foldable_tree(2)
    phi = UWDPT([p])
    assert is_in_m_uwb(phi, 1, WB_TW)
    equivalent = uwb_equivalent(phi, 1, WB_TW)
    assert equivalent is not None
    assert all(is_in_wb(q, 1, WB_TW) for q in equivalent)
    assert union_subsumption_equivalent(phi, equivalent)
    print("\nT2-UWBMEM: equivalent UWB(1) union with %d members" % len(equivalent))


def test_stark_contrast_union_vs_single():
    union_series = Series("UWB membership (cores)")
    wdpt_series = Series("WB membership (witness search)")
    for n in (2, 3, 4):
        p = _foldable_tree(n)
        phi = UWDPT([p])
        union_series.add(n, time_callable(lambda: is_in_m_uwb(phi, 1, WB_TW), repeats=1))
        wdpt_series.add(n, time_callable(lambda: is_in_m_wb(p, 1, WB_TW), repeats=1))
    print()
    print(format_series_table([union_series, wdpt_series], parameter_name="pendant vars"))
    # The union pipeline must win, increasingly so.
    assert union_series.seconds()[-1] < wdpt_series.seconds()[-1]


def test_phi_cq_size_is_the_union_cost_driver():
    rows = []
    for n in (1, 2, 3):
        p = _foldable_tree(n)
        rows.append([n, len(phi_cq(UWDPT([p])))])
    print("\nT2-UWBMEM: φ_cq disjunct counts", rows)
    assert all(count == 2 for _, count in rows)  # root / root+leaf


def test_membership_negative():
    tri = wdpt_from_nested(
        ([atom("E", "?a", "?b"), atom("E", "?b", "?c"), atom("E", "?c", "?a"),
          atom("A", "?x", "?a")], []),
        free_variables=["?x"],
    )
    assert not is_in_m_uwb(UWDPT([tri]), 1, WB_TW)


def test_bench_uwb_membership(benchmark):
    phi = UWDPT([_foldable_tree(3)])
    assert benchmark(lambda: is_in_m_uwb(phi, 1, WB_TW))
