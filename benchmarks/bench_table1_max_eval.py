"""T1-MEVAL — Table 1, row M-EVAL: DP-complete in general, LOGCFL under
global tractability.

The Theorem 9 algorithm answers ``h ∈ p_m(D)`` with ``1 + |x̄∖dom(h)|``
partial-evaluation calls.  We reproduce the row's shape by showing it
scales polynomially in database size, while the general algorithm (full
enumeration of ``p(D)`` plus a maximality sweep) grows with the answer
set.
"""

import pytest

from repro.benchharness import Series, format_series_table, time_callable
from repro.core.atoms import atom
from repro.core.mappings import Mapping
from repro.wdpt.evaluation import evaluate_max, max_eval_check
from repro.wdpt.max_eval import max_eval
from repro.wdpt.wdpt import wdpt_from_nested
from repro.workloads.datasets import company_directory

pytestmark = pytest.mark.paper_artifact("Table 1, row M-EVAL")


def _query():
    return wdpt_from_nested(
        (
            [atom("works_in", "?e", "?d")],
            [
                ([atom("phone", "?e", "?p")], []),
                ([atom("office", "?e", "?o")], []),
            ],
        ),
        free_variables=["?e", "?d", "?p", "?o"],
    )


def _some_maximal(db, query):
    return sorted(evaluate_max(query, db), key=lambda m: (-len(m), repr(m)))[0]


def test_theorem9_polynomial_in_data():
    query = _query()
    thm9 = Series("MAX-EVAL (Thm 9)")
    general = Series("MAX-EVAL (enumeration)")
    for employees in (4, 8, 16, 32):
        db = company_directory(n_departments=4, employees_per_department=employees, seed=5)
        h = _some_maximal(db, query)
        thm9.add(4 * employees, time_callable(lambda: max_eval(query, db, h), repeats=3))
        general.add(
            4 * employees, time_callable(lambda: max_eval_check(query, db, h), repeats=3)
        )
    print()
    print(format_series_table([thm9, general], parameter_name="employees"))
    slope = thm9.loglog_slope()
    assert slope is not None and slope < 2.0
    assert thm9.seconds()[-1] <= general.seconds()[-1]


def test_rejections_also_fast():
    """Negative instances (subsumed answers) are decided by the same
    machinery — one extension test suffices to refute maximality."""
    query = _query()
    db = company_directory(n_departments=4, employees_per_department=16, seed=5)
    top = _some_maximal(db, query)
    smaller = top.restrict(sorted(top.domain())[:-1])
    t = time_callable(lambda: max_eval(query, db, smaller), repeats=3)
    assert not max_eval(query, db, smaller)
    assert t < 1.0


def test_bench_max_eval(benchmark):
    query = _query()
    db = company_directory(n_departments=4, employees_per_department=16, seed=5)
    h = _some_maximal(db, query)
    assert benchmark(lambda: max_eval(query, db, h))


def test_bench_max_eval_enumeration(benchmark):
    query = _query()
    db = company_directory(n_departments=4, employees_per_department=16, seed=5)
    h = _some_maximal(db, query)
    assert benchmark(lambda: max_eval_check(query, db, h))
