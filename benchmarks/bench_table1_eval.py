"""T1-EVAL — Table 1, row EVAL: Σ₂ᵖ / NP / NP / LOGCFL.

Three measurements reproduce the row's shape:

1. **Tractable column** (``ℓ-TW(k) ∩ BI(c)``): the Theorem 6 dynamic
   program scales polynomially in the database size on bounded-interface
   trees (low log–log slope).
2. **Hard column** (``g-TW(1)``, Proposition 3): exact EVAL on the
   3-colorability reduction blows up with the query (number of graph
   vertices) even though the data is three facts — the per-step growth
   ratio stays ≫ 1.
3. **Crossover**: on bounded-interface instances the DP beats full
   enumeration as data grows.
"""

import pytest

from repro.benchharness import (
    Series,
    format_series_table,
    stage_breakdown,
    time_callable,
)
from repro.core.mappings import Mapping
from repro.wdpt.eval_tractable import eval_tractable
from repro.wdpt.evaluation import eval_check, evaluate
from repro.workloads.datasets import company_directory
from repro.workloads.families import three_colorability_instance
from repro.wdpt.wdpt import wdpt_from_nested
from repro.core.atoms import atom

pytestmark = pytest.mark.paper_artifact("Table 1, row EVAL")


def _bounded_interface_query():
    """ℓ-TW(1) ∩ BI(1): the company query with nested optional branches."""
    return wdpt_from_nested(
        (
            [atom("works_in", "?e", "?d")],
            [
                ([atom("phone", "?e", "?p")], []),
                ([atom("reports_to", "?e", "?m")],
                 [([atom("office", "?m", "?o")], [])]),
            ],
        ),
        free_variables=["?e", "?d", "?p", "?m", "?o"],
    )


def _answer_for(db, query):
    answers = sorted(evaluate(query, db), key=lambda m: (-len(m), repr(m)))
    return answers[0]


def _hard_graph(n):
    """Odd wheel-ish graphs: 3-colorable but with no easy pruning."""
    edges = [(i, (i + 1) % n) for i in range(n)]
    edges += [(i, (i + 2) % n) for i in range(n)]
    return edges


def test_tractable_column_polynomial_in_data():
    query = _bounded_interface_query()
    series = Series("EVAL DP (ℓ-TW(1)∩BI(1))")
    for employees in (4, 8, 16, 32):
        db = company_directory(n_departments=4, employees_per_department=employees, seed=1)
        h = _answer_for(db, query)
        series.add(4 * employees, time_callable(lambda: eval_tractable(query, db, h), repeats=3))
    stages = stage_breakdown(
        lambda: eval_tractable(query, db, h, method="auto")
    )
    print()
    print(
        format_series_table(
            [series],
            parameter_name="employees",
            stage_seconds={series.name: stages},
        )
    )
    slope = series.loglog_slope()
    assert slope is not None and slope < 2.5, "DP must scale polynomially (got slope %r)" % slope


def test_hard_column_blows_up_with_query():
    series = Series("EVAL (g-TW(1), Prop. 3)")
    for n in (4, 5, 6, 7, 8):
        db, p, h = three_colorability_instance(n, _hard_graph(n))
        series.add(n, time_callable(lambda: eval_tractable(p, db, h), repeats=1))
    print()
    print(format_series_table([series], parameter_name="graph vertices"))
    ratio = series.growth_ratio()
    assert ratio is not None and ratio > 1.5, (
        "exact EVAL under global tractability alone must grow exponentially "
        "(got step ratio %r)" % ratio
    )


def test_crossover_dp_vs_enumeration():
    query = _bounded_interface_query()
    dp = Series("Theorem 6 DP")
    enum = Series("full enumeration")
    for employees in (2, 4, 8):
        db = company_directory(n_departments=3, employees_per_department=employees, seed=2)
        h = _answer_for(db, query)
        dp.add(employees, time_callable(lambda: eval_tractable(query, db, h), repeats=2))
        enum.add(employees, time_callable(lambda: eval_check(query, db, h), repeats=2))
    print()
    print(format_series_table([dp, enum], parameter_name="employees/dept"))
    # Shape: the DP wins at the largest size.
    assert dp.seconds()[-1] <= enum.seconds()[-1] * 1.5


def test_bench_eval_dp(benchmark):
    query = _bounded_interface_query()
    db = company_directory(n_departments=4, employees_per_department=8, seed=1)
    h = _answer_for(db, query)
    assert benchmark(lambda: eval_tractable(query, db, h))


def test_bench_eval_enumeration(benchmark):
    query = _bounded_interface_query()
    db = company_directory(n_departments=4, employees_per_department=8, seed=1)
    h = _answer_for(db, query)
    assert benchmark(lambda: eval_check(query, db, h))
