"""PAR-SCALE — batch-evaluation speedup versus worker count.

``repro.parallel`` claims two things: (correctness) batched and parallel
evaluation return exactly the sequential answers, and (performance)
process-backed batches scale with available CPUs on the table-1 EVAL
workload.  This file asserts both — with the speedup assertion **gated on
the host's effective CPU count**: CPython cannot beat 1× on a 1-CPU
container (nor across threads, because of the GIL), so the ≥1.5×-at-4-jobs
expectation only applies where ≥4 CPUs are actually available.  On
smaller hosts the sweep still runs and prints (and records) the measured
curve, and the correctness assertions always apply.

Environment knobs (both optional):

* ``REPRO_BENCH_JOBS`` — cap the sweep's maximum job count (CI smoke runs
  use ``2`` to keep the job cheap);
* ``REPRO_BENCH_OUT`` — append the measured scaling point to this
  trajectory JSON file (the ``BENCH_eval.json`` convention of
  ``scripts/bench_regress.py``).
"""

import os
import time

import pytest

from repro.benchharness.regress import append_point, measure_parallel_scaling
from repro.benchharness.reporting import format_table
from repro.core.atoms import atom
from repro.engine import Session
from repro.parallel.pool import effective_cpu_count
from repro.wdpt.wdpt import wdpt_from_nested
from repro.workloads.datasets import company_directory

pytestmark = pytest.mark.paper_artifact(
    "Table 1, row EVAL (parallel batch scaling)"
)

#: Sweep speedup expectations, gated on available CPUs:
#: at ``jobs`` workers expect ``factor``× only when ``cpus_needed`` exist.
EXPECTATIONS = [
    {"jobs": 2, "cpus_needed": 2, "factor": 1.2},
    {"jobs": 4, "cpus_needed": 4, "factor": 1.5},
]


def _max_jobs() -> int:
    cap = os.environ.get("REPRO_BENCH_JOBS")
    return max(1, int(cap)) if cap else 4


def _jobs_list():
    return [j for j in (1, 2, 4) if j <= _max_jobs()]


def _query():
    return wdpt_from_nested(
        (
            [atom("works_in", "?e", "?d")],
            [
                ([atom("phone", "?e", "?p")], []),
                ([atom("reports_to", "?e", "?m")],
                 [([atom("office", "?m", "?o")], [])]),
            ],
        ),
        free_variables=["?e", "?d", "?p", "?m", "?o"],
    )


def test_batch_matches_sequential_all_executors():
    """Correctness: batch answers are bit-identical to the sequential
    loop, for both executors (always asserted, any host)."""
    query = _query()
    db = company_directory(n_departments=3, employees_per_department=12, seed=1)
    queries = [query] * 6
    with Session(db) as session:
        sequential = [session.query(q).answers for q in queries]
        for executor in ("thread", "process"):
            batch = session.run_batch(queries, jobs=2, executor=executor)
            assert batch.answers() == sequential, executor


def test_parallel_scaling_speedup():
    """The scaling sweep: print the curve, record it, and assert the
    CPU-gated speedup expectations."""
    scaling = measure_parallel_scaling(jobs_list=_jobs_list(), repeats=2)
    cpus = scaling["effective_cpus"]
    print()
    print(
        format_table(
            ["jobs", "seconds", "speedup"],
            [
                [str(j), "%.4f" % scaling["seconds"][j],
                 "%.2fx" % scaling["speedup"][j]]
                for j in sorted(scaling["seconds"])
            ],
        )
    )
    print(
        "executor=%s, effective CPUs=%d, n_queries=%d"
        % (scaling["executor"], cpus, scaling["n_queries"])
    )
    assert scaling["answers_equal"], "parallel batches diverged from jobs=1"

    out = os.environ.get("REPRO_BENCH_OUT")
    if out:
        append_point(out, {
            "schema": 1,
            "meta": {"created": time.time(), "kind": "parallel_scaling"},
            "benchmarks": {},
            "parallel": scaling,
        })
        print("[repro] appended scaling point to %s" % out)

    for expectation in EXPECTATIONS:
        jobs = expectation["jobs"]
        if jobs not in scaling["speedup"]:
            continue
        measured = scaling["speedup"][jobs]
        if cpus >= expectation["cpus_needed"]:
            assert measured >= expectation["factor"], (
                "expected ≥%.1fx speedup at jobs=%d on %d CPUs, got %.2fx"
                % (expectation["factor"], jobs, cpus, measured)
            )
        else:
            print(
                "[repro] %d CPU(s) < %d: speedup at jobs=%d is informational "
                "(%.2fx)" % (cpus, expectation["cpus_needed"], jobs, measured)
            )
