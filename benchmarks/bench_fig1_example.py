"""FIG1 — Figure 1 / Examples 1–3, 7: the running example, end to end.

Regenerates the paper's worked example and times the full pipeline
(parse → translate → evaluate) on growing music catalogs, demonstrating
that OPT answers degrade gracefully rather than vanishing.
"""

import pytest

from repro.benchharness import Series, format_series_table, time_callable
from repro.core.mappings import Mapping
from repro.wdpt.evaluation import evaluate, evaluate_max
from repro.workloads.families import FIGURE1_QUERY_TEXT, example2_graph, figure1_wdpt
from repro.workloads.datasets import music_catalog

pytestmark = pytest.mark.paper_artifact("Figure 1 / Examples 1-3, 7")


def test_example2_rows_printed(capsys):
    """Print the exact Example 2 / 3 / 7 answer sets."""
    db = example2_graph().to_database()
    rows = []
    for name, projection in (
        ("Example 2 (all vars)", ("?x", "?y", "?z", "?z2")),
        ("Example 3 (drop x)", ("?y", "?z", "?z2")),
        ("Example 7 (y, z)", ("?y", "?z")),
    ):
        p = figure1_wdpt(projection=projection)
        for answer in sorted(evaluate(p, db), key=repr):
            rows.append("%-22s %r" % (name, answer))
    maximal = evaluate_max(figure1_wdpt(projection=("?y", "?z")), db)
    rows.append("%-22s %r" % ("Example 7 p_m(D)", sorted(maximal, key=repr)))
    print("\n".join(["", "FIG1: Figure 1 running example"] + rows))
    assert maximal == {Mapping({"?y": "Caribou", "?z": "2"})}


def test_bench_figure1_evaluation(benchmark):
    db = example2_graph().to_database()
    p = figure1_wdpt()
    result = benchmark(lambda: evaluate(p, db))
    assert len(result) == 2


def test_bench_parse_translate(benchmark):
    from repro.rdf.parser import parse_query

    p = benchmark(lambda: parse_query(FIGURE1_QUERY_TEXT))
    assert len(p.tree) == 3


def test_scaling_on_growing_catalogs():
    """Answers scale linearly with the catalog; no record is ever lost."""
    p = figure1_wdpt()
    series = Series("figure-1 eval")
    counts = []
    for n_bands in (10, 20, 40, 80):
        db = music_catalog(n_bands=n_bands, records_per_band=2,
                           recent_fraction=1.0, seed=1).to_database()
        series.add(n_bands, time_callable(lambda: evaluate(p, db), repeats=2))
        counts.append((n_bands, len(evaluate(p, db))))
    print()
    print(format_series_table([series], parameter_name="bands"))
    print("answers:", counts)
    # every record of every band answers (2 records per band)
    assert all(count == 2 * n for n, count in counts)
