"""THM16 — Theorem 16: union evaluation inherits the tractability results.

``⋃-EVAL`` on locally-tractable bounded-interface members, and
``⋃-PARTIAL-EVAL`` / ``⋃-MAX-EVAL`` on globally tractable members, all run
in LOGCFL — i.e. their deterministic cost is polynomial and simply linear
in the number of members.  We reproduce the shape: cost grows linearly
with the member count and polynomially with the data.
"""

import pytest

from repro.benchharness import Series, format_series_table, time_callable
from repro.core.atoms import atom
from repro.core.mappings import Mapping
from repro.wdpt.unions import UWDPT, union_max_eval, union_partial_eval
from repro.wdpt.wdpt import wdpt_from_nested
from repro.workloads.datasets import company_directory

pytestmark = pytest.mark.paper_artifact("Theorem 16 (union evaluation)")


def _member(i):
    return wdpt_from_nested(
        (
            [atom("works_in", "?e", "?d")],
            [([atom("phone", "?e", "?p%d" % i)], [])],
        ),
        free_variables=["?e", "?d", "?p%d" % i],
    )


def _union(n):
    return UWDPT([_member(i) for i in range(n)])


def test_cost_linear_in_members():
    db = company_directory(n_departments=3, employees_per_department=8, seed=21)
    h = Mapping({"?e": "emp_0_0"})
    series = Series("⋃-PARTIAL-EVAL")
    for n in (1, 2, 4, 8):
        phi = _union(n)
        series.add(n, time_callable(lambda: union_partial_eval(phi, db, h), repeats=3))
        assert union_partial_eval(phi, db, h)
    print()
    print(format_series_table([series], parameter_name="union members"))
    slope = series.loglog_slope()
    assert slope is not None and slope < 1.8


def test_cost_polynomial_in_data():
    phi = _union(3)
    h = Mapping({"?e": "emp_0_0"})
    partial = Series("⋃-PARTIAL-EVAL")
    maximal = Series("⋃-MAX-EVAL")
    for employees in (8, 16, 32):
        db = company_directory(n_departments=3, employees_per_department=employees, seed=21)
        partial.add(3 * employees, time_callable(lambda: union_partial_eval(phi, db, h), repeats=3))
        maximal.add(3 * employees, time_callable(lambda: union_max_eval(phi, db, h), repeats=3))
    print()
    print(format_series_table([partial, maximal], parameter_name="employees"))
    for s in (partial, maximal):
        slope = s.loglog_slope()
        assert slope is None or slope < 2.0


def test_union_max_eval_correct_across_members():
    db = company_directory(n_departments=2, employees_per_department=3,
                           phone_fraction=1.0, seed=4)
    phi = _union(2)
    from repro.wdpt.unions import evaluate_union_max

    maximal = evaluate_union_max(phi, db)
    some = sorted(maximal, key=repr)[0]
    assert union_max_eval(phi, db, some)
    smaller = some.restrict(sorted(some.domain())[:-1])
    assert not union_max_eval(phi, db, smaller)


def test_bench_union_partial_eval(benchmark):
    db = company_directory(n_departments=3, employees_per_department=16, seed=21)
    phi = _union(4)
    assert benchmark(lambda: union_partial_eval(phi, db, Mapping({"?e": "emp_0_0"})))


def test_bench_union_max_eval(benchmark):
    db = company_directory(n_departments=3, employees_per_department=16, seed=21)
    phi = _union(4)
    h = Mapping({"?e": "emp_0_0"})
    benchmark(lambda: union_max_eval(phi, db, h))
