"""T2-WBMEM — Table 2, row WB(k)-Membership: Π₂ᵖ-hard, in NEXPTIME^NP.

``p ∈ M(WB(k))``?  The witness search is exponential (Lemma 1 candidates ×
quotients × subsumption-equivalence checks); we reproduce the row by
measuring the search cost against the number of existential variables (the
quotient dimension) and against tree size (the subtree dimension), on
instances that *are* members only through non-trivial restructuring.
"""

import pytest

from repro.benchharness import Series, format_series_table, time_callable
from repro.core.atoms import atom
from repro.wdpt.approximation import find_wb_equivalent, is_in_m_wb
from repro.wdpt.classes import WB_TW, is_in_wb
from repro.wdpt.subsumption import is_subsumption_equivalent
from repro.wdpt.tree import PatternTree
from repro.wdpt.wdpt import WDPT, wdpt_from_nested

pytestmark = pytest.mark.paper_artifact("Table 2, row WB(k)-Membership")


def _prunable(extra_cycle_vars):
    """Root A(x) + one free-variable-less branch containing a cycle of
    growing size: a member of M(WB(1)) via pruning."""
    cycle = [
        atom("E", "?c%d" % i, "?c%d" % ((i + 1) % extra_cycle_vars))
        for i in range(extra_cycle_vars)
    ]
    return wdpt_from_nested(
        ([atom("A", "?x")], [(cycle + [atom("E", "?x", "?c0")], [])]),
        free_variables=["?x"],
    )


def test_membership_through_pruning():
    for n in (3, 4, 5):
        p = _prunable(n)
        assert not is_in_wb(p, 1, WB_TW)
        witness = find_wb_equivalent(p, 1, WB_TW)
        assert witness is not None
        assert is_in_wb(witness, 1, WB_TW)
        assert is_subsumption_equivalent(p, witness)
    print("\nT2-WBMEM: pruning witnesses found for cycle sizes 3-5")


def test_cost_vs_existential_variables():
    series = Series("M(WB(1)) search")
    for n in (3, 4, 5, 6):
        p = _prunable(n)
        series.add(n, time_callable(lambda: is_in_m_wb(p, 1, WB_TW), repeats=1))
    print()
    print(format_series_table([series], parameter_name="cycle size"))
    # Pruning finds the witness early, so this stays cheap — the point of
    # the Lemma 1 normal form.
    assert series.seconds()[-1] < 5.0


def _negative_instance(width):
    """A clique in the root shared with free leaves: NOT in M(WB(1)); the
    search must exhaust the candidate space."""
    clique_vars = ["?q%d" % i for i in range(3)]
    root = [atom("E", a, b) for a in clique_vars for b in clique_vars if a != b]
    root.append(atom("A", "?x", "?q0"))
    labels = [root]
    parents = []
    frees = ["?x"]
    for i in range(width):
        labels.append([atom("B%d" % i, "?q%d" % (i % 3), "?z%d" % i)])
        parents.append(0)
        frees.append("?z%d" % i)
    return WDPT(PatternTree(parents), labels, frees)


def test_negative_cost_grows_with_tree():
    series = Series("M(WB(1)) exhaustive refusal")
    for width in (1, 2, 3):
        p = _negative_instance(width)
        series.add(width, time_callable(lambda: is_in_m_wb(p, 1, WB_TW), repeats=1))
        assert not is_in_m_wb(p, 1, WB_TW)
    print()
    print(format_series_table([series], parameter_name="free leaves"))
    ratio = series.growth_ratio()
    assert ratio is not None and ratio > 1.2, "negatives must pay the full search"


def test_bench_membership_positive(benchmark):
    p = _prunable(4)
    assert benchmark(lambda: is_in_m_wb(p, 1, WB_TW))


def test_bench_membership_negative(benchmark):
    p = _negative_instance(1)
    assert not benchmark(lambda: is_in_m_wb(p, 1, WB_TW))
