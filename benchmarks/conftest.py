"""Shared configuration for the paper-reproduction benchmarks.

Each ``bench_*.py`` file regenerates one paper artifact (a Table 1/2 row or
a figure).  Two kinds of measurements coexist:

* ``pytest-benchmark`` fixtures time a single representative operation per
  class column (these show up in the ``--benchmark-only`` summary table);
* explicit parameter sweeps (via :mod:`repro.benchharness`) print the
  paper-shaped series — growth rates, crossovers, who-wins — directly to
  stdout, and assert the qualitative shape.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper_artifact(name): the paper table/figure a benchmark reproduces"
    )
