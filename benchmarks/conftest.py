"""Shared configuration for the paper-reproduction benchmarks.

Each ``bench_*.py`` file regenerates one paper artifact (a Table 1/2 row or
a figure).  Two kinds of measurements coexist:

* ``pytest-benchmark`` fixtures time a single representative operation per
  class column (these show up in the ``--benchmark-only`` summary table);
* explicit parameter sweeps (via :mod:`repro.benchharness`) print the
  paper-shaped series — growth rates, crossovers, who-wins — directly to
  stdout, and assert the qualitative shape.

Run with::

    pytest benchmarks/ --benchmark-only -s

Setting ``REPRO_TRACE_OUT=trace.json`` installs a global
:class:`repro.telemetry.tracer.Tracer` for the whole benchmark session and
writes the collected spans as Chrome trace-event JSON (load it at
``chrome://tracing`` or with Perfetto) on teardown; CI's trace-smoke job
validates that file with ``scripts/validate_trace.py``.
"""

import os

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper_artifact(name): the paper table/figure a benchmark reproduces"
    )


@pytest.fixture(scope="session", autouse=True)
def _trace_session():
    """Honour ``REPRO_TRACE_OUT``: trace every benchmark in the session."""
    path = os.environ.get("REPRO_TRACE_OUT")
    if not path:
        yield
        return
    from repro.telemetry.export import write_chrome_trace
    from repro.telemetry.tracer import Tracer, set_tracer

    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        yield
    finally:
        set_tracer(previous)
        events = write_chrome_trace(tracer, path)
        print("\n[repro] wrote %d trace event(s) to %s" % (events, path))
