"""FIG2 — Figure 2 / Theorem 15: approximations can blow up exponentially.

Regenerates the size series ``|p₁⁽ⁿ⁾| = O(n²)`` versus ``|p₂⁽ⁿ⁾| = Ω(2ⁿ)``
and verifies the structural claims (``p₂ ⊑ p₁``, ``p₂ ∈ WB(k)``,
``p₁ ∉ WB(k)``) that make ``p₂`` the approximation lower-bound witness.
"""

import pytest

from repro.benchharness import format_table
from repro.wdpt.classes import is_globally_in_tw
from repro.wdpt.subsumption import is_subsumed_by
from repro.workloads.families import figure2_family

pytestmark = pytest.mark.paper_artifact("Figure 2 / Theorem 15")

K = 2


def test_size_blowup_series():
    rows = []
    sizes1, sizes2 = [], []
    for n in range(1, 9):
        p1, p2 = figure2_family(n, k=K)
        sizes1.append(p1.size())
        sizes2.append(p2.size())
        rows.append([n, p1.size(), p2.size(), "%.2f" % (p2.size() / p1.size())])
    print()
    print(
        format_table(
            ["n", "|p1| (O(n^2))", "|p2| (Ω(2^n))", "|p2|/|p1|"],
            rows,
            title="FIG2: exponential blow-up of the WB(%d) approximation" % K,
        )
    )
    # Shape: |p2| eventually doubles per step, |p1| grows polynomially.
    assert sizes2[-1] / sizes2[-2] >= 1.8
    assert sizes1[-1] / sizes1[-2] <= 1.5
    assert sizes2[-1] > sizes1[-1]          # crossover happened
    assert sizes2[0] < sizes1[0] * 2        # but starts comparable


def test_structural_claims_small_n():
    for n in (1, 2, 3):
        p1, p2 = figure2_family(n, k=K)
        assert is_globally_in_tw(p2, K), "p2 must be in WB(k)"
        assert not is_globally_in_tw(p1, K), "p1 must be outside WB(k)"
        assert is_subsumed_by(p2, p1), "p2 ⊑ p1 must hold"
        assert not is_subsumed_by(p1, p2), "subsumption must be strict"


def test_bench_family_construction(benchmark):
    p1, p2 = benchmark(lambda: figure2_family(6, k=K))
    assert p2.size() > p1.size()


def test_bench_subsumption_check(benchmark):
    p1, p2 = figure2_family(2, k=K)
    assert benchmark(lambda: is_subsumed_by(p2, p1))
