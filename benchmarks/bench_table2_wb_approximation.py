"""T2-WBAPP — Table 2, row WB(k)-Approximation: Π₂ᵖ-hard, in
coNEXPTIME^NP (computation: 2EXPTIME, Theorem 14).

We measure (1) the cost of *computing* an approximation as the quotient
dimension grows, (2) the cost of *verifying* the WB(k)-APPROXIMATION
decision problem, and (3) soundness + optionality preservation of the
results (a pure single-node collapse would be strictly worse than a
tree-shaped approximation).
"""

import pytest

from repro.benchharness import Series, format_series_table, time_callable
from repro.core.atoms import atom
from repro.wdpt.approximation import (
    is_wb_approximation,
    wb_approximation,
    wb_approximations,
)
from repro.wdpt.classes import WB_TW, is_in_wb
from repro.wdpt.subsumption import is_subsumed_by
from repro.wdpt.wdpt import wdpt_from_nested

pytestmark = pytest.mark.paper_artifact("Table 2, row WB(k)-Approximation")


def _cyclic_root_tree(cycle_size):
    cycle = [
        atom("E", "?c%d" % i, "?c%d" % ((i + 1) % cycle_size))
        for i in range(cycle_size)
    ]
    return wdpt_from_nested(
        (
            cycle + [atom("A", "?x", "?c0")],
            [([atom("F", "?x", "?w")], [])],
        ),
        free_variables=["?x", "?w"],
    )


def test_approximations_sound_and_structural():
    p = _cyclic_root_tree(3)
    apps = wb_approximations(p, 1, WB_TW)
    assert apps
    for a in apps:
        assert is_in_wb(a, 1, WB_TW)
        assert is_subsumed_by(a, p)
    assert any(len(a.tree) > 1 for a in apps), "optional branch must survive"
    print("\nT2-WBAPP: %d maximal WB(1) approximations of the 3-cycle tree" % len(apps))


def test_computation_cost_vs_quotient_dimension():
    series = Series("WB(1)-approximation")
    for n in (3, 4, 5):
        p = _cyclic_root_tree(n)
        series.add(n, time_callable(lambda: wb_approximation(p, 1, WB_TW), repeats=1))
    print()
    print(format_series_table([series], parameter_name="cycle size"))
    ratio = series.growth_ratio()
    assert ratio is not None and ratio > 1.2, (
        "approximation search must pay for the growing quotient space"
    )


def test_decision_problem():
    p = _cyclic_root_tree(3)
    apps = wb_approximations(p, 1, WB_TW)
    good = apps[0]
    assert is_wb_approximation(good, p, 1, WB_TW)
    # A strictly weaker in-class tree is rejected (not maximal).
    weaker = wdpt_from_nested(
        ([atom("E", "?a", "?a"), atom("A", "?x", "?a")], []),
        free_variables=["?x"],
    )
    assert is_subsumed_by(weaker, p)
    assert not is_wb_approximation(weaker, p, 1, WB_TW)


def test_bench_compute_approximation(benchmark):
    p = _cyclic_root_tree(3)
    result = benchmark(lambda: wb_approximation(p, 1, WB_TW))
    assert is_in_wb(result, 1, WB_TW)


def test_bench_verify_approximation(benchmark):
    p = _cyclic_root_tree(3)
    good = wb_approximations(p, 1, WB_TW)[0]
    assert benchmark(lambda: is_wb_approximation(good, p, 1, WB_TW))
