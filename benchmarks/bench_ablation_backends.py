"""ABLATION — per-node CQ backends and streaming vs materialized answers.

Design choices DESIGN.md calls out, measured:

1. the Theorem 6/8 algorithms accept a per-node CQ backend (``naive``
   backtracking vs ``auto`` structure-exploiting dispatch).  On the small
   node labels typical of WDPTs, backtracking wins by constant factors —
   the LOGCFL-grade engines only pay off on pathological node CQs, which
   we exhibit with a wide acyclic node;
2. streaming enumeration vs materializing ``q(D)`` when only a few
   answers are needed.
"""

import pytest

from repro.benchharness import (
    Series,
    format_planner_stats,
    format_series_table,
    stage_breakdown,
    time_callable,
)
from repro.core.atoms import Atom, atom
from repro.core.cq import ConjunctiveQuery
from repro.core.database import Database
from repro.core.mappings import Mapping
from repro.cqalgs.enumeration import enumerate_answers
from repro.cqalgs.naive import evaluate_naive
from repro.planner import Planner
from repro.wdpt.partial_eval import partial_eval
from repro.wdpt.wdpt import wdpt_from_nested
from repro.workloads.datasets import company_directory

pytestmark = pytest.mark.paper_artifact("Ablations (backends, streaming)")


def _query():
    return wdpt_from_nested(
        (
            [atom("works_in", "?e", "?d")],
            [([atom("phone", "?e", "?p")], []), ([atom("office", "?e", "?o")], [])],
        ),
        free_variables=["?e", "?d", "?p", "?o"],
    )


def test_backend_ablation_on_typical_nodes():
    query = _query()
    planner = Planner()
    naive = Series("partial-eval, naive backend")
    auto = Series("partial-eval, auto backend")
    h = Mapping({"?e": "emp_0_0"})
    for employees in (8, 16, 32):
        db = company_directory(n_departments=4, employees_per_department=employees, seed=2)
        naive.add(employees, time_callable(lambda: partial_eval(query, db, h), repeats=3))
        auto.add(
            employees,
            time_callable(
                lambda: partial_eval(query, db, h, method="auto", planner=planner),
                repeats=3,
            ),
        )
        assert partial_eval(query, db, h) == partial_eval(
            query, db, h, method="auto", planner=planner
        )
    stages = stage_breakdown(
        lambda: partial_eval(query, db, h, method="auto", planner=planner)
    )
    print()
    print(
        format_series_table(
            [naive, auto],
            parameter_name="employees/dept",
            cache_hit_rates={auto.name: planner.cache_hit_rate()},
            stage_seconds={auto.name: stages},
        )
    )
    print(format_planner_stats(planner.stats(), title="planner (auto backend)"))
    # One analysis of the query shape served every auto call.
    assert planner.cache_hit_rate() > 0
    # Both are flat; on tiny node CQs the constant factor favours naive.
    for s in (naive, auto):
        slope = s.loglog_slope()
        assert slope is None or slope < 1.5


def test_streaming_vs_materialization():
    """First-answer latency: enumeration returns the first tuple of a big
    cartesian product immediately; the set engine pays for everything."""
    db = Database(
        [Atom("A", (i,)) for i in range(60)] + [Atom("B", (i,)) for i in range(60)]
    )
    q = ConjunctiveQuery(["?x", "?y"], [atom("A", "?x"), atom("B", "?y")])

    def first_streamed():
        return next(iter(enumerate_answers(q, db)))

    def first_materialized():
        return sorted(evaluate_naive(q, db), key=repr)[0]

    streamed = time_callable(first_streamed, repeats=3)
    materialized = time_callable(first_materialized, repeats=3)
    print("\nABLATION: first answer — streamed %.2gms vs materialized %.2gms"
          % (streamed * 1e3, materialized * 1e3))
    assert streamed * 5 < materialized


def test_tree_vs_compositional_semantics():
    """Pattern-tree evaluation vs the compositional Pérez et al. semantics
    (both correct on well-designed patterns; the tree evaluator's
    product decomposition avoids materializing intermediate joins)."""
    from repro.rdf.algebra_eval import evaluate_pattern
    from repro.rdf.parser import parse_pattern
    from repro.rdf.translate import pattern_to_wdpt
    from repro.wdpt.evaluation import evaluate
    from repro.workloads.datasets import social_network

    pattern = parse_pattern(
        "((?a, knows, ?b) OPT (?b, age, ?x)) OPT (?b, city, ?y)"
    )
    tree = pattern_to_wdpt(pattern)
    tree_series = Series("pattern-tree evaluator")
    comp_series = Series("compositional ⟦·⟧")
    for people in (20, 40, 80):
        graph = social_network(n_people=people, avg_degree=4, seed=5)
        db = graph.to_database()
        assert evaluate(tree, db) == evaluate_pattern(pattern, graph)
        tree_series.add(people, time_callable(lambda: evaluate(tree, db), repeats=2))
        comp_series.add(
            people, time_callable(lambda: evaluate_pattern(pattern, graph), repeats=2)
        )
    print()
    print(format_series_table([tree_series, comp_series], parameter_name="people"))
    # Same answers; the tree evaluator must not be asymptotically worse.
    assert (tree_series.loglog_slope() or 0) <= (comp_series.loglog_slope() or 0) + 0.5


def test_bench_streamed_first_answer(benchmark):
    db = Database(
        [Atom("A", (i,)) for i in range(60)] + [Atom("B", (i,)) for i in range(60)]
    )
    q = ConjunctiveQuery(["?x", "?y"], [atom("A", "?x"), atom("B", "?y")])
    answer = benchmark(lambda: next(iter(enumerate_answers(q, db))))
    assert len(answer) == 2


def test_bench_partial_eval_auto(benchmark):
    query = _query()
    db = company_directory(n_departments=4, employees_per_department=16, seed=2)
    assert benchmark(
        lambda: partial_eval(query, db, Mapping({"?e": "emp_0_0"}), method="auto")
    )
