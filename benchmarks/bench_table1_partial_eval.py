"""T1-PEVAL — Table 1, row P-EVAL: NP in general, LOGCFL under g-C(k).

The decisive contrast of Section 3.3: on Proposition 3's instances (which
are ``g-TW(1)``), *exact* evaluation solves 3-colorability while *partial*
evaluation stays polynomial — the Theorem 8 algorithm only checks one
substituted subtree CQ.  A second sweep shows PARTIAL-EVAL scaling
polynomially in database size on realistic optional-matching queries.
"""

import pytest

from repro.benchharness import (
    Series,
    format_planner_stats,
    format_series_table,
    stage_breakdown,
    time_callable,
)
from repro.core.atoms import atom
from repro.core.mappings import Mapping
from repro.planner import Planner
from repro.wdpt.eval_tractable import eval_tractable
from repro.wdpt.partial_eval import partial_eval
from repro.wdpt.wdpt import wdpt_from_nested
from repro.workloads.datasets import company_directory
from repro.workloads.families import three_colorability_instance

pytestmark = pytest.mark.paper_artifact("Table 1, row P-EVAL")


def _hard_graph(n):
    edges = [(i, (i + 1) % n) for i in range(n)]
    edges += [(i, (i + 2) % n) for i in range(n)]
    return edges


def test_partial_easy_exact_hard_on_same_instances():
    """Same g-TW(1) inputs: EVAL explodes with query size, PARTIAL-EVAL
    doesn't (Theorem 8 vs Proposition 3)."""
    exact = Series("EVAL (exact)")
    partial = Series("PARTIAL-EVAL (Thm 8)")
    for n in (4, 5, 6, 7):
        db, p, h = three_colorability_instance(n, _hard_graph(n))
        exact.add(n, time_callable(lambda: eval_tractable(p, db, h), repeats=1))
        partial.add(n, time_callable(lambda: partial_eval(p, db, h), repeats=3))
    print()
    print(format_series_table([exact, partial], parameter_name="graph vertices"))
    assert exact.seconds()[-1] > partial.seconds()[-1] * 10, "partial must be far cheaper"
    assert (exact.growth_ratio() or 1) > (partial.growth_ratio() or 1)


def _company_query():
    return wdpt_from_nested(
        (
            [atom("works_in", "?e", "?d")],
            [
                ([atom("phone", "?e", "?p")], []),
                ([atom("reports_to", "?e", "?m")],
                 [([atom("phone", "?m", "?mp")], [])]),
            ],
        ),
        free_variables=["?e", "?d", "?p", "?m", "?mp"],
    )


def test_partial_eval_polynomial_in_data():
    query = _company_query()
    planner = Planner()
    series = Series("PARTIAL-EVAL")
    auto_series = Series("PARTIAL-EVAL (auto, planned)")
    for employees in (8, 16, 32, 64):
        db = company_directory(n_departments=4, employees_per_department=employees, seed=3)
        h = Mapping({"?e": "emp_0_0"})
        series.add(4 * employees, time_callable(lambda: partial_eval(query, db, h), repeats=3))
        auto_series.add(
            4 * employees,
            time_callable(
                lambda: partial_eval(query, db, h, method="auto", planner=planner),
                repeats=3,
            ),
        )
    stages = stage_breakdown(
        lambda: partial_eval(query, db, h, method="auto", planner=planner)
    )
    print()
    print(
        format_series_table(
            [series, auto_series],
            parameter_name="employees",
            cache_hit_rates={auto_series.name: planner.cache_hit_rate()},
            stage_seconds={auto_series.name: stages},
        )
    )
    print(format_planner_stats(planner.stats(), title="planner (auto runs)"))
    # The planner analysed the query shape once and reused it (acceptance:
    # auto is no slower than a cold analysis per call would be, and the
    # cache-hit rate is reported and non-zero).
    assert planner.cache_hit_rate() > 0
    assert planner.stats()["subtree_profiles"]["hits"] > 0
    slope = series.loglog_slope()
    assert slope is not None and slope < 2.0


def test_bench_partial_eval(benchmark):
    query = _company_query()
    db = company_directory(n_departments=4, employees_per_department=16, seed=3)
    assert benchmark(lambda: partial_eval(query, db, Mapping({"?e": "emp_0_0"})))


def test_bench_partial_eval_structured_backend(benchmark):
    query = _company_query()
    db = company_directory(n_departments=4, employees_per_department=16, seed=3)
    assert benchmark(
        lambda: partial_eval(query, db, Mapping({"?e": "emp_0_0"}), method="auto")
    )
