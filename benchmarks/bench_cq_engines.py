"""THM2-3 — Theorems 2 and 3: the CQ substrate's tractable engines.

Reproduces the substrate claims the WDPT results build on:

* acyclic CQs (``HW(1)``): Yannakakis scales polynomially where the naive
  engine blows up on adversarial path queries;
* bounded treewidth (``TW(k)``): the decomposition engine matches naive
  answers and scales on cycle queries;
* Example 5's ``θ_n``: acyclic for every n (hypertree machinery) while
  treewidth grows — the reason HW(k) matters at all.
"""

import pytest

from repro.benchharness import Series, format_series_table, time_callable
from repro.core.atoms import Atom, atom
from repro.core.database import Database
from repro.cqalgs.naive import evaluate_naive
from repro.cqalgs.structured import evaluate_bounded_treewidth
from repro.cqalgs.yannakakis import evaluate_acyclic
from repro.hypergraphs.gyo import is_alpha_acyclic
from repro.hypergraphs.hypergraph import hypergraph_of_cq
from repro.hypergraphs.treewidth import treewidth_exact
from repro.workloads.families import example5_theta
from repro.workloads.generators import cycle_cq, path_cq

pytestmark = pytest.mark.paper_artifact("Theorems 2/3 (CQ substrate)")


def _layered_db(layers, width):
    """A layered graph where naive joins explode without semi-joins:
    every layer is fully connected to the next, plus dangling tuples."""
    db = Database()
    for layer in range(layers):
        for i in range(width):
            for j in range(width):
                db.add(Atom("E", ("L%d_%d" % (layer, i), "L%d_%d" % (layer + 1, j))))
    # dangling facts that survive local matching but die globally
    for i in range(width):
        db.add(Atom("E", ("L%d_%d" % (layers, i), "dead_%d" % i)))
    return db


def test_yannakakis_vs_naive_on_boolean_paths():
    from repro.core.mappings import Mapping
    from repro.cqalgs.naive import satisfiable

    yann = Series("Yannakakis")
    for length in (2, 4, 6, 8):
        db = _layered_db(length, 6)
        q = path_cq(length, frees=[])
        yann.add(length, time_callable(lambda: evaluate_acyclic(q, db), repeats=2))
        # Cross-check against the (short-circuiting) satisfiability test;
        # enumerating all homomorphisms naively would itself blow up here.
        expected = frozenset([Mapping()]) if satisfiable(q.atoms, db) else frozenset()
        assert evaluate_acyclic(q, db) == expected
    print()
    print(format_series_table([yann], parameter_name="path length"))
    slope = yann.loglog_slope()
    assert slope is not None and slope < 3.0


def test_tw_engine_on_cycles():
    td = Series("TW engine")
    naive = Series("naive")
    db = _layered_db(4, 5)
    # add back-edges to give cycles answers
    for i in range(5):
        db.add(Atom("E", ("L2_%d" % i, "L1_%d" % i)))
    for length in (3, 4, 5, 6):
        q = cycle_cq(length)
        td.add(length, time_callable(lambda: evaluate_bounded_treewidth(q, db), repeats=2))
        naive.add(length, time_callable(lambda: evaluate_naive(q, db), repeats=2))
        assert evaluate_bounded_treewidth(q, db) == evaluate_naive(q, db)
    print()
    print(format_series_table([td, naive], parameter_name="cycle length"))


def test_example5_width_series():
    rows = []
    for n in (2, 3, 4, 5, 6):
        q = example5_theta(n)
        H = hypergraph_of_cq(q)
        rows.append((n, is_alpha_acyclic(H), treewidth_exact(H)))
    print("\nTHM2-3: θ_n — (n, acyclic?, treewidth):", rows)
    assert all(acyclic for _, acyclic, _ in rows)
    assert [tw for _, _, tw in rows] == [1, 2, 3, 4, 5]


def test_bench_yannakakis(benchmark):
    from repro.core.mappings import Mapping

    db = _layered_db(6, 6)
    q = path_cq(6, frees=[])
    assert benchmark(lambda: evaluate_acyclic(q, db)) == frozenset({Mapping()})


def test_bench_tw_engine(benchmark):
    db = _layered_db(4, 5)
    for i in range(5):
        db.add(Atom("E", ("L2_%d" % i, "L1_%d" % i)))
    q = cycle_cq(4)
    benchmark(lambda: evaluate_bounded_treewidth(q, db))


def test_bench_naive(benchmark):
    db = _layered_db(4, 5)
    q = path_cq(4, frees=[])
    benchmark(lambda: evaluate_naive(q, db))
