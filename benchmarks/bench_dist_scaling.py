"""DIST-SCALE — distributed Yannakakis speedup versus shard count.

``repro.dist`` claims two things: (correctness) the sharded backend's
distributed shard program returns exactly the single-process answers,
and (performance) shard-local scan/semi-join work scales with available
CPUs on a ≥10⁵-tuple selective chain workload.  This file asserts both —
with the speedup assertion **gated on the host's effective CPU count**:
CPython cannot beat 1× on a 1-CPU container however many shard processes
it spawns, so the ≥1.2×-at-2-shards expectation only applies where ≥2
CPUs are actually available.  On smaller hosts the sweep still runs and
prints (and records) the measured curve, and the correctness assertions
always apply.

Environment knobs (both optional):

* ``REPRO_BENCH_SHARDS`` — cap the sweep's maximum shard count (CI smoke
  runs use ``2`` to keep the job cheap);
* ``REPRO_BENCH_OUT`` — append the measured scaling point to this
  trajectory JSON file (the ``BENCH_eval.json`` convention of
  ``scripts/bench_regress.py``).
"""

import os
import time

import pytest

from repro.benchharness.regress import (
    _dist_chain_workload,
    append_point,
    measure_dist_scaling,
)
from repro.benchharness.reporting import format_table
from repro.dist.backend import ShardedBackend
from repro.parallel.pool import effective_cpu_count
from repro.planner.planner import Planner
from repro.storage.memory import MemoryBackend

pytestmark = pytest.mark.paper_artifact(
    "Yannakakis semi-join program (distributed shard scaling)"
)

#: Sweep speedup expectations, gated on available CPUs:
#: at ``shards`` expect ``factor``× only when ``cpus_needed`` exist.
EXPECTATIONS = [
    {"shards": 2, "cpus_needed": 2, "factor": 1.2},
    {"shards": 4, "cpus_needed": 4, "factor": 1.5},
]


def _max_shards() -> int:
    cap = os.environ.get("REPRO_BENCH_SHARDS")
    return max(1, int(cap)) if cap else 4


def _shards_list():
    return [s for s in (1, 2, 4) if s <= _max_shards()]


def test_dist_matches_memory():
    """Correctness: the distributed chain answers are bit-identical to
    the in-memory columnar kernel's (always asserted, any host)."""
    facts, query = _dist_chain_workload(tuples=9_000)
    planner = Planner()
    expected = planner.evaluate_cq(query, MemoryBackend(facts))
    for shards in (1, 2, 3):
        backend = ShardedBackend(facts, shards=shards)
        try:
            assert planner.evaluate_cq(query, backend) == expected, shards
        finally:
            backend.shutdown()


def test_dist_scaling_speedup():
    """The scaling sweep: print the curve, record it, and assert the
    CPU-gated speedup expectations."""
    scaling = measure_dist_scaling(shards_list=_shards_list(), repeats=2)
    cpus = scaling["effective_cpus"]
    print()
    print(
        format_table(
            ["shards", "seconds", "speedup"],
            [
                [str(s), "%.4f" % scaling["seconds"][s],
                 "%.2fx" % scaling["speedup"][s]]
                for s in sorted(scaling["seconds"])
            ],
        )
    )
    print(
        "effective CPUs=%d, tuples=%d, n_queries=%d"
        % (cpus, scaling["tuples"], scaling["n_queries"])
    )
    assert scaling["answers_equal"], "sharded answers diverged from memory"

    out = os.environ.get("REPRO_BENCH_OUT")
    if out:
        append_point(out, {
            "schema": 1,
            "meta": {"created": time.time(), "kind": "dist_scaling"},
            "benchmarks": {},
            "dist": scaling,
        })
        print("[repro] appended scaling point to %s" % out)

    for expectation in EXPECTATIONS:
        shards = expectation["shards"]
        if shards not in scaling["speedup"]:
            continue
        measured = scaling["speedup"][shards]
        if cpus >= expectation["cpus_needed"]:
            assert measured >= expectation["factor"], (
                "expected ≥%.1fx speedup at shards=%d on %d CPUs, got %.2fx"
                % (expectation["factor"], shards, cpus, measured)
            )
        else:
            print(
                "[repro] %d CPU(s) < %d: speedup at shards=%d is informational "
                "(%.2fx)" % (cpus, expectation["cpus_needed"], shards, measured)
            )
