"""T2-UWBAPP — Table 2, row UWB(k)-Approximation: Π₂ᵖ/Π₃ᵖ — again far
below the single-WDPT coNEXPTIME bound.

Theorem 18: the UWB(k)-approximation is the union of the per-CQ
``C(k)``-approximations of ``φ_cq``, each of polynomial size, unique up to
``≡ₛ``.  We measure computation + verification cost and validate
soundness, uniqueness-up-to-≡ₛ, and the contrast with the single-WDPT
approximation pipeline.
"""

import pytest

from repro.benchharness import Series, format_series_table, time_callable
from repro.core.atoms import atom
from repro.core.cq import cq
from repro.wdpt.approximation import wb_approximation
from repro.wdpt.classes import WB_TW, is_in_wb
from repro.wdpt.unions import (
    UWDPT,
    is_uwb_approximation,
    union_subsumed_by,
    union_subsumption_equivalent,
    uwb_approximation,
)
from repro.wdpt.wdpt import WDPT, wdpt_from_nested

pytestmark = pytest.mark.paper_artifact("Table 2, row UWB(k)-Approximation")


def _cyclic_union(n_members):
    members = []
    for i in range(n_members):
        members.append(
            WDPT.from_cq(
                cq(
                    ["?x%d" % i],
                    [
                        atom("E%d" % i, "?a", "?b"),
                        atom("E%d" % i, "?b", "?c"),
                        atom("E%d" % i, "?c", "?a"),
                        atom("R%d" % i, "?x%d" % i, "?a"),
                    ],
                )
            )
        )
    return UWDPT(members)


def test_soundness_and_verification():
    phi = _cyclic_union(2)
    app = uwb_approximation(phi, 1, WB_TW)
    assert all(is_in_wb(p, 1, WB_TW) for p in app)
    assert union_subsumed_by(app, phi)
    assert is_uwb_approximation(app, phi, 1, WB_TW)
    print("\nT2-UWBAPP: approximation union has %d members" % len(app))


def test_uniqueness_up_to_equivalence():
    phi = _cyclic_union(1)
    app1 = uwb_approximation(phi, 1, WB_TW)
    app2 = uwb_approximation(phi, 1, WB_TW)
    assert union_subsumption_equivalent(app1, app2)


def test_cost_scales_with_members():
    series = Series("UWB(1)-approximation")
    for n in (1, 2, 3, 4):
        phi = _cyclic_union(n)
        series.add(n, time_callable(lambda: uwb_approximation(phi, 1, WB_TW), repeats=1))
    print()
    print(format_series_table([series], parameter_name="union members"))
    slope = series.loglog_slope()
    # Per-member work is constant here: near-linear scaling.
    assert slope is not None and slope < 2.0


def test_contrast_with_single_wdpt_pipeline():
    tree = wdpt_from_nested(
        (
            [atom("E", "?a", "?b"), atom("E", "?b", "?c"), atom("E", "?c", "?a"),
             atom("R", "?x", "?a")],
            [([atom("F", "?x", "?w")], [])],
        ),
        free_variables=["?x", "?w"],
    )
    union_cost = time_callable(
        lambda: uwb_approximation(UWDPT([tree]), 1, WB_TW), repeats=1
    )
    wdpt_cost = time_callable(lambda: wb_approximation(tree, 1, WB_TW), repeats=1)
    print("\nT2-UWBAPP contrast: union %.3fs vs single-WDPT %.3fs" % (union_cost, wdpt_cost))
    assert union_cost < wdpt_cost * 2, (
        "the union pipeline must not be slower than the WDPT candidate search"
    )


def test_bench_uwb_approximation(benchmark):
    phi = _cyclic_union(2)
    app = benchmark(lambda: uwb_approximation(phi, 1, WB_TW))
    assert len(app) >= 1
