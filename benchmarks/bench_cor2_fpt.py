"""COR2 — Corollary 2: fixed-parameter tractability via optimize-then-
evaluate.

For ``p ∈ M(WB(k))`` the paper's pipeline pays ``f(|p|)`` once to build a
``WB(k)`` substitute and then answers PARTIAL/MAX-EVAL in
``O(|D|^c · 2^{t(|p|)})``.  We reproduce the claim: as the database grows,
(one-off optimization + cheap queries on the witness) beats querying the
original tree, and the per-query cost on the witness scales polynomially.
"""

import pytest

from repro.benchharness import Series, format_series_table, time_callable
from repro.core.atoms import atom
from repro.core.mappings import Mapping
from repro.wdpt.approximation import find_wb_equivalent
from repro.wdpt.classes import WB_TW, is_in_wb
from repro.wdpt.max_eval import max_eval
from repro.wdpt.partial_eval import partial_eval
from repro.wdpt.wdpt import wdpt_from_nested
from repro.workloads.datasets import company_directory

pytestmark = pytest.mark.paper_artifact("Corollary 2 (FPT via M(WB(k)))")


def _member_tree():
    """In M(WB(1)) only via pruning: the query drags a cyclic existential
    pattern in a free-variable-less branch."""
    return wdpt_from_nested(
        (
            [atom("works_in", "?e", "?d")],
            [
                ([atom("phone", "?e", "?p")], []),
                (
                    [
                        atom("reports_to", "?u", "?v"),
                        atom("reports_to", "?v", "?w"),
                        atom("reports_to", "?w", "?u"),
                        atom("works_in", "?u", "?d"),
                    ],
                    [],
                ),
            ],
        ),
        free_variables=["?e", "?d", "?p"],
    )


def test_witness_exists_and_is_tractable():
    p = _member_tree()
    assert not is_in_wb(p, 1, WB_TW)
    witness = find_wb_equivalent(p, 1, WB_TW)
    assert witness is not None and is_in_wb(witness, 1, WB_TW)
    print("\nCOR2: witness tree has %d nodes (original %d)" % (len(witness.tree), len(p.tree)))


def test_fpt_pipeline_scales_in_data():
    p = _member_tree()
    witness = find_wb_equivalent(p, 1, WB_TW)
    assert witness is not None
    direct = Series("PARTIAL-EVAL on p")
    optimized = Series("PARTIAL-EVAL on WB(1) witness")
    for employees in (4, 8, 16, 32):
        db = company_directory(n_departments=4, employees_per_department=employees, seed=9)
        h = Mapping({"?e": "emp_0_0"})
        assert partial_eval(p, db, h) == partial_eval(witness, db, h)
        direct.add(4 * employees, time_callable(lambda: partial_eval(p, db, h), repeats=3))
        optimized.add(
            4 * employees, time_callable(lambda: partial_eval(witness, db, h), repeats=3)
        )
    print()
    print(format_series_table([direct, optimized], parameter_name="employees"))
    slope = optimized.loglog_slope()
    assert slope is not None and slope < 2.0
    # The witness never touches the cyclic branch: per-query it wins.
    assert optimized.seconds()[-1] <= direct.seconds()[-1]


def test_max_eval_on_witness_agrees():
    p = _member_tree()
    witness = find_wb_equivalent(p, 1, WB_TW)
    db = company_directory(n_departments=2, employees_per_department=4, seed=9)
    from repro.wdpt.evaluation import evaluate_max

    assert evaluate_max(p, db) == evaluate_max(witness, db)
    some = sorted(evaluate_max(p, db), key=repr)[0]
    assert max_eval(witness, db, some)


def test_bench_optimization_phase(benchmark):
    p = _member_tree()
    witness = benchmark(lambda: find_wb_equivalent(p, 1, WB_TW))
    assert witness is not None


def test_bench_query_phase_on_witness(benchmark):
    p = _member_tree()
    witness = find_wb_equivalent(p, 1, WB_TW)
    db = company_directory(n_departments=4, employees_per_department=16, seed=9)
    assert benchmark(lambda: partial_eval(witness, db, Mapping({"?e": "emp_0_0"})))
