"""Cross-validation of the width machinery against networkx.

networkx's approximation module provides treewidth *upper bounds*
(min-degree and min-fill-in heuristics).  For every random graph we check
the sandwich  ``our_exact ≤ nx_heuristic``  and  ``our_lower ≤ our_exact``,
plus agreement of connectivity primitives.  Skipped cleanly when networkx
is unavailable.
"""

import random

import pytest

nx = pytest.importorskip("networkx")
from networkx.algorithms import approximation as nx_approx

from repro.hypergraphs.hypergraph import Hypergraph
from repro.hypergraphs.treewidth import (
    treewidth_exact,
    treewidth_lower_bound,
    treewidth_upper_bound,
)


def _random_graph(n, m, seed):
    rng = random.Random(seed)
    edges = set()
    while len(edges) < m:
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            edges.add((min(a, b), max(a, b)))
    return edges


@pytest.mark.parametrize("seed", range(8))
def test_exact_below_networkx_heuristics(seed):
    edges = _random_graph(9, 14, seed)
    H = Hypergraph([set(e) for e in edges])
    G = nx.Graph(list(edges))
    exact = treewidth_exact(H)
    nx_width_deg, _ = nx_approx.treewidth_min_degree(G)
    nx_width_fill, _ = nx_approx.treewidth_min_fill_in(G)
    assert exact <= nx_width_deg
    assert exact <= nx_width_fill
    assert treewidth_lower_bound(H) <= exact <= treewidth_upper_bound(H)


@pytest.mark.parametrize("seed", range(4))
def test_connected_components_agree(seed):
    edges = _random_graph(10, 8, seed)
    H = Hypergraph([set(e) for e in edges])
    G = nx.Graph(list(edges))
    ours = {frozenset(c) for c in H.connected_components()}
    theirs = {frozenset(c) for c in nx.connected_components(G)}
    assert ours == theirs


def test_known_graphs_against_networkx():
    for G, expected in [
        (nx.cycle_graph(7), 2),
        (nx.complete_graph(6), 5),
        (nx.path_graph(9), 1),
        (nx.grid_2d_graph(3, 4), 3),
    ]:
        H = Hypergraph([set(e) for e in G.edges()])
        assert treewidth_exact(H) == expected
