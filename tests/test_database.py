"""Unit tests for repro.core.database."""

import pytest

from repro.core.atoms import Schema, atom
from repro.core.database import Database
from repro.core.terms import Constant
from repro.exceptions import NotGroundError, SchemaError


@pytest.fixture
def db():
    return Database(
        [atom("E", 1, 2), atom("E", 2, 3), atom("E", 2, 2), atom("U", 1)]
    )


class TestBasics:
    def test_len_and_contains(self, db):
        assert len(db) == 4
        assert atom("E", 1, 2) in db
        assert atom("E", 9, 9) not in db

    def test_duplicate_insert(self, db):
        assert not db.add(atom("E", 1, 2))
        assert len(db) == 4

    def test_non_ground_rejected(self):
        with pytest.raises(NotGroundError):
            Database([atom("E", "?x", 1)])

    def test_explicit_schema_enforced(self):
        db = Database(schema=Schema({"E": 2}))
        db.add(atom("E", 1, 2))
        with pytest.raises(SchemaError):
            db.add(atom("E", 1, 2, 3))
        with pytest.raises(SchemaError):
            db.add(atom("F", 1))

    def test_inferred_schema(self, db):
        assert db.schema.arity("E") == 2
        assert db.schema.arity("U") == 1

    def test_active_domain(self, db):
        assert db.active_domain() == {Constant(1), Constant(2), Constant(3)}

    def test_relations_and_facts(self, db):
        assert db.relations() == {"E", "U"}
        assert len(db.facts("E")) == 3
        assert len(db.facts()) == 4

    def test_update_counts_new(self, db):
        assert db.update([atom("E", 1, 2), atom("E", 9, 9)]) == 1

    def test_copy_is_independent(self, db):
        clone = db.copy()
        clone.add(atom("E", 7, 7))
        assert len(db) == 4 and len(clone) == 5

    def test_equality(self, db):
        assert db == db.copy()
        assert db != Database()

    def test_unhashable(self, db):
        with pytest.raises(TypeError):
            hash(db)


class TestRemoval:
    def test_remove_deletes_fact(self, db):
        db.remove(atom("E", 1, 2))
        assert atom("E", 1, 2) not in db
        assert len(db) == 3

    def test_remove_missing_raises(self, db):
        with pytest.raises(KeyError):
            db.remove(atom("E", 9, 9))

    def test_discard_missing_is_false(self, db):
        assert db.discard(atom("E", 9, 9)) is False
        assert db.discard(atom("E", 1, 2)) is True

    def test_remove_updates_index(self, db):
        db.remove(atom("E", 2, 3))
        assert sorted(db.match(atom("E", 2, "?y"))) == [atom("E", 2, 2)]
        assert list(db.match(atom("E", "?x", 3))) == []

    def test_remove_updates_active_domain(self, db):
        db.remove(atom("E", 2, 3))
        # 3 occurred only in that fact; 2 still occurs elsewhere.
        assert db.active_domain() == {Constant(1), Constant(2)}

    def test_remove_last_fact_of_relation(self, db):
        db.remove(atom("U", 1))
        assert db.relations() == {"E"}
        assert db.facts("U") == ()

    def test_removed_relation_rematchable(self, db):
        db.remove(atom("U", 1))
        assert list(db.match(atom("U", "?x"))) == []
        db.add(atom("U", 5))
        assert list(db.match(atom("U", "?x"))) == [atom("U", 5)]


class TestVersioning:
    def test_add_bumps_version(self, db):
        v = db.data_version
        assert db.add(atom("E", 8, 8))
        assert db.data_version == v + 1

    def test_noop_add_keeps_version(self, db):
        v = db.data_version
        assert not db.add(atom("E", 1, 2))
        assert db.data_version == v

    def test_remove_bumps_version(self, db):
        v = db.data_version
        db.remove(atom("E", 1, 2))
        assert db.data_version == v + 1

    def test_noop_discard_keeps_version(self, db):
        v = db.data_version
        db.discard(atom("E", 9, 9))
        assert db.data_version == v

    def test_copy_carries_version_and_schema(self, db):
        clone = db.copy()
        assert clone.data_version == db.data_version
        assert clone.schema.arity("E") == 2
        clone.add(atom("E", 8, 8))
        assert clone.data_version == db.data_version + 1
        assert db.data_version == clone.data_version - 1

    def test_copy_of_explicit_schema_stays_strict(self):
        db = Database(schema=Schema({"E": 2}))
        clone = db.copy()
        with pytest.raises(SchemaError):
            clone.add(atom("F", 1))

    def test_backend_ids_distinct(self, db):
        assert db.backend_id != db.copy().backend_id


class TestMatch:
    def test_all_variables(self, db):
        assert len(list(db.match(atom("E", "?x", "?y")))) == 3

    def test_constant_position(self, db):
        assert sorted(db.match(atom("E", 2, "?y"))) == [atom("E", 2, 2), atom("E", 2, 3)]

    def test_both_constants(self, db):
        assert list(db.match(atom("E", 1, 2))) == [atom("E", 1, 2)]
        assert list(db.match(atom("E", 1, 3))) == []

    def test_repeated_variable(self, db):
        assert list(db.match(atom("E", "?x", "?x"))) == [atom("E", 2, 2)]

    def test_unknown_relation(self, db):
        assert list(db.match(atom("Z", "?x"))) == []

    def test_unknown_constant(self, db):
        assert list(db.match(atom("E", 99, "?y"))) == []

    def test_match_count(self, db):
        assert db.match_count(atom("E", "?x", "?y")) == 3

    def test_arity_mismatch_matches_nothing(self, db):
        assert list(db.match(atom("E", "?x", "?y", "?z"))) == []
