"""Unit tests for repro.core.terms."""

import pytest

from repro.core.terms import Constant, Variable, is_constant, is_variable, term, terms


class TestVariable:
    def test_name(self):
        assert Variable("x").name == "x"

    def test_question_mark_stripped(self):
        assert Variable("?x") == Variable("x")

    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_hashable(self):
        assert len({Variable("x"), Variable("?x"), Variable("y")}) == 2

    def test_repr(self):
        assert repr(Variable("abc")) == "?abc"

    def test_ordering(self):
        assert Variable("a") < Variable("b")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")
        with pytest.raises(ValueError):
            Variable("?")

    def test_non_string_rejected(self):
        with pytest.raises(ValueError):
            Variable(3)  # type: ignore[arg-type]


class TestConstant:
    def test_value(self):
        assert Constant(42).value == 42

    def test_equality_by_value(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")
        assert Constant(1) != Constant("1")

    def test_not_equal_to_variable(self):
        assert Constant("x") != Variable("x")

    def test_nested_terms_rejected(self):
        with pytest.raises(ValueError):
            Constant(Variable("x"))
        with pytest.raises(ValueError):
            Constant(Constant(1))

    def test_ordering_mixed_types_falls_back_to_str(self):
        # Must not raise even for unorderable payload mixes.
        assert isinstance(Constant(1) < Constant("a"), bool)


class TestCoercion:
    def test_question_string_is_variable(self):
        assert term("?x") == Variable("x")

    def test_plain_string_is_constant(self):
        assert term("Caribou") == Constant("Caribou")

    def test_int_is_constant(self):
        assert term(7) == Constant(7)

    def test_terms_pass_through(self):
        v = Variable("v")
        c = Constant(1)
        assert term(v) is v
        assert term(c) is c

    def test_terms_tuple(self):
        result = terms(["?x", 1])
        assert result == (Variable("x"), Constant(1))

    def test_predicates(self):
        assert is_variable(Variable("x")) and not is_variable(Constant(1))
        assert is_constant(Constant(1)) and not is_constant(Variable("x"))
