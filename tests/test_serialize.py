"""Unit tests for JSON serialization round-trips."""

import pytest

from repro.core.atoms import atom
from repro.core.cq import cq
from repro.core.database import Database
from repro.core.mappings import Mapping
from repro.serialize import (
    SerializationError,
    atom_from_json,
    atom_to_json,
    dumps,
    loads,
    term_from_json,
    term_to_json,
)
from repro.core.terms import Constant, Variable
from repro.wdpt.unions import UWDPT
from repro.wdpt.wdpt import WDPT
from repro.workloads.families import figure1_wdpt


class TestTerms:
    def test_variable_roundtrip(self):
        v = Variable("x")
        assert term_from_json(term_to_json(v)) == v

    def test_constant_roundtrip(self):
        for value in ("abc", 7, 3.5, True, None, "?looks_like_var"):
            c = Constant(value)
            assert term_from_json(term_to_json(c)) == c

    def test_ambiguous_string_constant_survives(self):
        # A constant whose value *starts with ?* must not come back as a
        # variable.
        c = Constant("?x")
        assert term_from_json(term_to_json(c)) == c

    def test_unserializable_constant(self):
        with pytest.raises(SerializationError):
            term_to_json(Constant((1, 2)))

    def test_bad_payloads(self):
        for bad in (42, {"x": 1}, ["?x"]):
            with pytest.raises(SerializationError):
                term_from_json(bad)


class TestAtoms:
    def test_roundtrip(self):
        a = atom("E", "?x", "abc", 3)
        assert atom_from_json(atom_to_json(a)) == a

    def test_bad(self):
        with pytest.raises(SerializationError):
            atom_from_json(["E"])  # no args


class TestFrontDoor:
    def test_cq_roundtrip(self):
        q = cq(["?x"], [atom("E", "?x", "?y"), atom("F", "?y", 1)])
        assert loads(dumps(q)) == q

    def test_wdpt_roundtrip(self):
        p = figure1_wdpt()
        assert loads(dumps(p)) == p

    def test_uwdpt_roundtrip(self):
        phi = UWDPT([figure1_wdpt(), WDPT.from_cq(cq(["?a"], [atom("G", "?a")]))])
        assert loads(dumps(phi)) == phi

    def test_database_roundtrip(self):
        db = Database([atom("E", 1, 2), atom("U", "hello")])
        assert loads(dumps(db)) == db

    def test_mapping_roundtrip(self):
        m = Mapping({"?x": "Swim", "?y": 2})
        assert loads(dumps(m)) == m

    def test_unknown_kind(self):
        with pytest.raises(SerializationError):
            loads('{"kind": "martian"}')

    def test_unsupported_object(self):
        with pytest.raises(SerializationError):
            dumps(object())

    def test_output_is_deterministic(self):
        p = figure1_wdpt()
        assert dumps(p) == dumps(loads(dumps(p)))

    def test_semantics_preserved(self):
        from repro.wdpt.evaluation import evaluate
        from repro.workloads.families import example2_graph

        p = figure1_wdpt()
        db = example2_graph().to_database()
        assert evaluate(loads(dumps(p)), loads(dumps(db))) == evaluate(p, db)
