"""Unit tests for the RDF/SPARQL frontend."""

import pytest

from repro.core.atoms import atom
from repro.core.mappings import Mapping
from repro.core.terms import Variable
from repro.exceptions import NotWellDesignedError, ParseError
from repro.rdf.algebra import And, Opt, TriplePattern, is_well_designed, triple_patterns
from repro.rdf.graph import RDFGraph
from repro.rdf.parser import parse_pattern, parse_query, tokenize
from repro.rdf.translate import pattern_to_wdpt, wdpt_to_pattern


class TestRDFGraph:
    def test_add_and_contains(self):
        g = RDFGraph([("s", "p", "o")])
        assert ("s", "p", "o") in g
        assert not g.add(("s", "p", "o"))
        assert len(g) == 1

    def test_component_sets(self):
        g = RDFGraph([("a", "p", "b"), ("b", "q", "c")])
        assert g.subjects() == {"a", "b"}
        assert g.predicates() == {"p", "q"}
        assert g.objects() == {"b", "c"}

    def test_triples_with(self):
        g = RDFGraph([("a", "p", "b"), ("a", "q", "c")])
        assert set(g.triples_with(subject="a", predicate="p")) == {("a", "p", "b")}

    def test_database_roundtrip(self):
        g = RDFGraph([("a", "p", "b")])
        db = g.to_database()
        assert atom("triple", "a", "p", "b") in db
        assert RDFGraph.from_database(db) == g


class TestAlgebra:
    def test_variables(self):
        p = And(TriplePattern("?x", "p", "?y"), TriplePattern("?y", "q", "?z"))
        assert p.variables() == {Variable("x"), Variable("y"), Variable("z")}

    def test_triple_patterns_order(self):
        t1 = TriplePattern("?x", "p", "?y")
        t2 = TriplePattern("?y", "q", "?z")
        assert list(triple_patterns(And(t1, t2))) == [t1, t2]

    def test_well_designed_positive(self):
        p = Opt(TriplePattern("?x", "p", "?y"), TriplePattern("?x", "q", "?z"))
        assert is_well_designed(p)

    def test_well_designed_negative(self):
        # ?z occurs in the OPT right side and outside, but not in the left.
        bad = And(
            Opt(TriplePattern("?x", "p", "?y"), TriplePattern("?y", "q", "?z")),
            TriplePattern("?z", "r", "?w"),
        )
        assert not is_well_designed(bad)

    def test_nested_well_designed(self):
        p = Opt(
            Opt(TriplePattern("?x", "a", "?y"), TriplePattern("?x", "b", "?z")),
            TriplePattern("?y", "c", "?w"),
        )
        assert is_well_designed(p)


class TestParser:
    def test_tokenize(self):
        assert tokenize('(?x, p, "a b") AND') == ["(", "?x", ",", "p", ",", '"a b"', ")", "AND"]

    def test_parse_triple(self):
        p = parse_pattern("(?x, recorded_by, ?y)")
        assert isinstance(p, TriplePattern)

    def test_parse_nested(self):
        p = parse_pattern("((?x, a, ?y) AND (?x, b, ?z)) OPT (?y, c, ?w)")
        assert isinstance(p, Opt)
        assert isinstance(p.left, And)

    def test_left_associativity(self):
        p = parse_pattern("(?x, a, ?y) OPT (?x, b, ?z) OPT (?x, c, ?w)")
        assert isinstance(p, Opt) and isinstance(p.left, Opt)

    def test_quoted_constants(self):
        p = parse_pattern('(?x, published, "after_2010")')
        assert isinstance(p, TriplePattern)
        from repro.core.terms import Constant

        assert p.object == Constant("after_2010")

    def test_select_projection(self):
        q = parse_query("SELECT ?y WHERE (?x, p, ?y)")
        assert q.free_variables == (Variable("y"),)

    def test_no_projection_is_projection_free(self):
        q = parse_query("(?x, p, ?y)")
        assert q.is_projection_free()

    def test_parse_errors(self):
        for text in ["(?x, p)", "(?x, p, ?y", "(?x, p, ?y) FOO (?a, b, ?c)",
                     "SELECT x WHERE (?x, p, ?y)"]:
            with pytest.raises(ParseError):
                parse_query(text)

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_pattern("(?x, p, ?y) (?z, q, ?w)")


class TestTranslate:
    def test_figure1_shape(self):
        from repro.workloads.families import FIGURE1_QUERY_TEXT

        p = parse_query(FIGURE1_QUERY_TEXT)
        assert len(p.tree) == 3
        assert p.tree.children(0) == (1, 2)

    def test_and_of_opts_normalizes(self):
        # (t1 OPT t2) AND t3 ≡ (t1 AND t3) OPT t2
        pat = And(
            Opt(TriplePattern("?x", "a", "?y"), TriplePattern("?x", "b", "?z")),
            TriplePattern("?x", "c", "?w"),
        )
        p = pattern_to_wdpt(pat)
        assert len(p.tree) == 2
        assert len(p.labels[0]) == 2

    def test_non_well_designed_rejected(self):
        bad = And(
            Opt(TriplePattern("?x", "p", "?y"), TriplePattern("?y", "q", "?z")),
            TriplePattern("?z", "r", "?w"),
        )
        with pytest.raises(NotWellDesignedError):
            pattern_to_wdpt(bad)

    def test_roundtrip_semantics(self):
        from repro.wdpt.evaluation import evaluate
        from repro.workloads.families import FIGURE1_QUERY_TEXT, example2_graph

        p = parse_query(FIGURE1_QUERY_TEXT)
        back = wdpt_to_pattern(p)
        p2 = pattern_to_wdpt(back)
        db = example2_graph().to_database()
        assert evaluate(p, db) == evaluate(p2, db)

    def test_wdpt_to_pattern_requires_triples(self):
        from repro.wdpt.wdpt import wdpt_from_nested

        p = wdpt_from_nested(([atom("E", "?x", "?y")], []), free_variables=["?x"])
        with pytest.raises(ValueError):
            wdpt_to_pattern(p)

    def test_evaluation_example1(self):
        from repro.workloads.families import example2_graph, figure1_wdpt

        p = figure1_wdpt()
        db = example2_graph().to_database()
        from repro.wdpt.evaluation import evaluate

        answers = evaluate(p, db)
        assert Mapping({"?x": "Our_love", "?y": "Caribou"}) in answers
