"""Tests for scripts/check_links.py, the offline markdown link and
anchor checker run by the docs CI job."""

import importlib.util
import os
import subprocess
import sys

SCRIPT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "scripts", "check_links.py",
)

_spec = importlib.util.spec_from_file_location("check_links", SCRIPT)
check_links = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_links)


class TestSlugify:
    def test_plain(self):
        assert check_links.slugify("Load shedding") == "load-shedding"

    def test_punctuation_dropped(self):
        assert check_links.slugify("QoS tiers (and budgets)") == (
            "qos-tiers-and-budgets"
        )

    def test_markdown_stripped(self):
        assert check_links.slugify("The `/query` route") == "the-query-route"
        assert check_links.slugify("See [docs](X.md) here") == (
            "see-docs-here"
        )

    def test_underscores_kept(self):
        assert check_links.slugify("trace_id correlation") == (
            "trace_id-correlation"
        )


class TestAnchors:
    def test_duplicate_headings_are_numbered(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# Setup\n\n## Setup\n\n### Setup\n")
        assert check_links.heading_anchors(str(doc)) == {
            "setup", "setup-1", "setup-2",
        }

    def test_fenced_headings_ignored(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# Real\n\n```\n# not a heading\n```\n")
        assert check_links.heading_anchors(str(doc)) == {"real"}

    def test_html_anchor(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text('<a id="pinned"></a>\n# Title\n')
        assert "pinned" in check_links.heading_anchors(str(doc))


class TestCheckFile:
    def _failures(self, tmp_path, text, name="doc.md"):
        doc = tmp_path / name
        doc.write_text(text)
        return check_links.check_file(str(doc))

    def test_valid_intra_doc_anchor(self, tmp_path):
        assert self._failures(
            tmp_path, "# My Section\n\n[jump](#my-section)\n"
        ) == []

    def test_broken_intra_doc_anchor(self, tmp_path):
        failures = self._failures(tmp_path, "# A\n\n[jump](#missing)\n")
        assert failures == [(3, "anchor", "#missing")]

    def test_cross_doc_anchor(self, tmp_path):
        (tmp_path / "other.md").write_text("# Target Heading\n")
        ok = self._failures(
            tmp_path, "[x](other.md#target-heading)\n"
        )
        assert ok == []
        bad = self._failures(
            tmp_path, "[x](other.md#absent)\n", name="doc2.md"
        )
        assert bad == [(1, "anchor", "other.md#absent")]

    def test_missing_file_still_reported(self, tmp_path):
        failures = self._failures(tmp_path, "[x](gone.md#frag)\n")
        assert failures == [(1, "link", "gone.md#frag")]

    def test_external_links_skipped(self, tmp_path):
        assert self._failures(
            tmp_path, "[x](https://example.com/page#frag)\n"
        ) == []


class TestRepositoryDocs:
    def test_all_repo_docs_pass(self):
        result = subprocess.run(
            [sys.executable, SCRIPT],
            capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stderr
