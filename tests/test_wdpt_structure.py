"""Unit tests for the WDPT data type (Definition 1)."""

import pytest

from repro.core.atoms import atom
from repro.core.cq import cq
from repro.core.terms import Constant, Variable
from repro.exceptions import NotWellDesignedError, SchemaError
from repro.wdpt.tree import PatternTree
from repro.wdpt.wdpt import WDPT, wdpt_from_nested


@pytest.fixture
def figure1():
    """The WDPT of Figure 1 (relational flavour)."""
    return wdpt_from_nested(
        (
            [atom("recorded_by", "?x", "?y"), atom("published", "?x", "after_2010")],
            [
                ([atom("NME_rating", "?x", "?z")], []),
                ([atom("formed_in", "?y", "?z2")], []),
            ],
        ),
        free_variables=["?x", "?y", "?z", "?z2"],
    )


class TestConstruction:
    def test_figure1_shape(self, figure1):
        assert len(figure1.tree) == 3
        assert figure1.tree.children(0) == (1, 2)

    def test_well_designedness_violation(self):
        # ?z occurs in two sibling leaves but not in the root: disconnected.
        with pytest.raises(NotWellDesignedError):
            wdpt_from_nested(
                (
                    [atom("R", "?x")],
                    [([atom("S", "?z")], []), ([atom("T", "?z")], [])],
                ),
                free_variables=["?x"],
            )

    def test_well_designed_through_path(self):
        # ?z occurs along a root-to-leaf path: connected, fine.
        p = wdpt_from_nested(
            ([atom("R", "?x", "?z")], [([atom("S", "?z")], [([atom("T", "?z")], [])])]),
            free_variables=["?x"],
        )
        assert Variable("z") in p.variables()

    def test_empty_label_rejected(self):
        with pytest.raises(SchemaError):
            WDPT(PatternTree(), [[]], [])

    def test_stray_free_variable_rejected(self):
        with pytest.raises(SchemaError):
            wdpt_from_nested(([atom("R", "?x")], []), free_variables=["?q"])

    def test_duplicate_free_variables_rejected(self):
        with pytest.raises(SchemaError):
            wdpt_from_nested(([atom("R", "?x")], []), free_variables=["?x", "?x"])

    def test_label_count_mismatch(self):
        with pytest.raises(SchemaError):
            WDPT(PatternTree([0]), [[atom("R", "?x")]], [])


class TestStructure:
    def test_variables(self, figure1):
        assert figure1.variables() == {
            Variable("x"),
            Variable("y"),
            Variable("z"),
            Variable("z2"),
        }

    def test_constants(self, figure1):
        assert figure1.constants() == {Constant("after_2010")}

    def test_node_variables(self, figure1):
        assert figure1.node_variables(1) == {Variable("x"), Variable("z")}

    def test_projection_free(self, figure1):
        assert figure1.is_projection_free()
        assert not figure1.with_free_variables(["?x"]).is_projection_free()

    def test_size(self, figure1):
        assert figure1.size() == 8

    def test_atom_count(self, figure1):
        assert figure1.atom_count() == 4

    def test_existential_variables(self, figure1):
        p = figure1.with_free_variables(["?y", "?z"])
        assert p.existential_variables() == {Variable("x"), Variable("z2")}


class TestDerivedCQs:
    def test_full_cq(self, figure1):
        q = figure1.full_cq()
        assert len(q.atoms) == 4
        assert q.is_full()

    def test_subtree_cq_all_vars_free(self, figure1):
        q = figure1.subtree_cq({0, 1})
        assert frozenset(q.free_variables) == {Variable("x"), Variable("y"), Variable("z")}

    def test_subtree_answer_cq_projects(self, figure1):
        p = figure1.with_free_variables(["?y", "?z"])
        q = p.subtree_answer_cq({0})
        assert q.free_variables == (Variable("y"),)

    def test_invalid_subtree_rejected(self, figure1):
        with pytest.raises(ValueError):
            figure1.subtree_cq({1})


class TestConversions:
    def test_cq_roundtrip(self):
        q = cq(["?x"], [atom("E", "?x", "?y")])
        p = WDPT.from_cq(q)
        assert p.is_single_node()
        assert p.to_cq() == q

    def test_to_cq_requires_single_node(self, figure1):
        with pytest.raises(ValueError):
            figure1.to_cq()

    def test_rename(self, figure1):
        renamed = figure1.rename({Variable("x"): Variable("a")})
        assert Variable("a") in renamed.variables()
        assert Variable("a") in renamed.free_variables

    def test_rename_merging_frees_rejected(self, figure1):
        with pytest.raises(SchemaError):
            figure1.rename({Variable("x"): Variable("y")})

    def test_rename_breaking_connectedness_rejected(self):
        p = wdpt_from_nested(
            ([atom("R", "?x")], [([atom("S", "?x", "?a")], []), ([atom("T", "?x", "?b")], [])]),
            free_variables=["?x"],
        )
        with pytest.raises(NotWellDesignedError):
            p.rename({Variable("a"): Variable("c"), Variable("b"): Variable("c")})

    def test_equality_and_hash(self, figure1):
        clone = wdpt_from_nested(
            (
                [atom("published", "?x", "after_2010"), atom("recorded_by", "?x", "?y")],
                [
                    ([atom("NME_rating", "?x", "?z")], []),
                    ([atom("formed_in", "?y", "?z2")], []),
                ],
            ),
            free_variables=["?x", "?y", "?z", "?z2"],
        )
        assert figure1 == clone
        assert hash(figure1) == hash(clone)
