"""Unit tests for the surface SPARQL parser (SELECT … WHERE { … })."""

import pytest

from repro.core.mappings import Mapping
from repro.core.terms import Variable
from repro.exceptions import NotWellDesignedError, ParseError
from repro.rdf.sparql import parse_sparql
from repro.wdpt.evaluation import evaluate
from repro.workloads.families import example2_graph


@pytest.fixture
def db():
    return example2_graph().to_database()


class TestParsing:
    def test_single_triple(self):
        p = parse_sparql("SELECT ?b WHERE { ?r recorded_by ?b }")
        assert p.free_variables == (Variable("b"),)
        assert len(p.tree) == 1

    def test_bgp_with_dots(self):
        p = parse_sparql(
            'SELECT ?r WHERE { ?r recorded_by ?b . ?r published "after_2010" }'
        )
        assert len(p.labels[0]) == 2

    def test_optional_groups(self):
        p = parse_sparql(
            "SELECT ?r ?v ?y WHERE { ?r recorded_by ?b "
            "OPTIONAL { ?r NME_rating ?v } OPTIONAL { ?b formed_in ?y } }"
        )
        assert len(p.tree) == 3
        assert p.tree.children(0) == (1, 2)

    def test_nested_optionals(self):
        p = parse_sparql(
            "SELECT * WHERE { ?r recorded_by ?b "
            "OPTIONAL { ?b formed_in ?y OPTIONAL { ?b disbanded ?z } } }"
        )
        assert len(p.tree) == 3
        assert p.tree.parent(2) == 1
        assert p.is_projection_free()

    def test_select_star_and_omitted_select(self):
        a = parse_sparql("SELECT * WHERE { ?r recorded_by ?b }")
        b = parse_sparql("WHERE { ?r recorded_by ?b }")
        c = parse_sparql("{ ?r recorded_by ?b }")
        assert a == b == c
        assert a.is_projection_free()

    def test_quoted_literals(self):
        p = parse_sparql('SELECT ?r WHERE { ?r published "after_2010" }')
        constants = {c.value for c in p.constants()}
        assert "after_2010" in constants

    def test_keywords_case_insensitive(self):
        p = parse_sparql("select ?b where { ?r recorded_by ?b optional { ?r rated ?v } }")
        assert len(p.tree) == 2


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "SELECT ?x WHERE { }",
            "SELECT ?x WHERE { ?a b }",
            "SELECT ?x WHERE { ?a b ?c",
            "SELECT x WHERE { ?a b ?c }",
            "SELECT * ?x WHERE { ?a b ?x }",
            "SELECT ?x WHERE { ?a b ?x } trailing",
            "SELECT ?x WHERE { OPTIONAL { ?a b ?x } }",
        ],
    )
    def test_parse_errors(self, text):
        with pytest.raises(ParseError):
            parse_sparql(text)

    def test_non_well_designed_rejected(self):
        # ?v appears in a sibling optional but not in the root BGP.
        with pytest.raises(NotWellDesignedError):
            parse_sparql(
                "SELECT * WHERE { ?r recorded_by ?b "
                "OPTIONAL { ?r rated ?v } OPTIONAL { ?b likes ?v } }"
            )


class TestEvaluation:
    def test_figure1_via_surface_syntax(self, db):
        p = parse_sparql(
            "SELECT ?x ?y ?z ?z2 WHERE { "
            '?x recorded_by ?y . ?x published "after_2010" '
            "OPTIONAL { ?x NME_rating ?z } OPTIONAL { ?y formed_in ?z2 } }"
        )
        assert evaluate(p, db) == {
            Mapping({"?x": "Our_love", "?y": "Caribou"}),
            Mapping({"?x": "Swim", "?y": "Caribou", "?z": "2"}),
        }

    def test_agrees_with_algebraic_parser(self, db):
        from repro.rdf.parser import parse_query

        surface = parse_sparql(
            "SELECT ?y ?z WHERE { "
            '?x recorded_by ?y . ?x published "after_2010" '
            "OPTIONAL { ?x NME_rating ?z } }"
        )
        algebraic = parse_query(
            "SELECT ?y ?z WHERE "
            '((?x, recorded_by, ?y) AND (?x, published, "after_2010"))'
            " OPT (?x, NME_rating, ?z)"
        )
        assert evaluate(surface, db) == evaluate(algebraic, db)
