"""Tests for :mod:`repro.parallel`: worker pools, batch evaluation, and
the intra-query fan-out sites.

The layer's whole contract is *determinism*: every parallel path must be
bit-identical to the sequential loop it replaces.  These tests pin that
down directly (thread and process executors, fixed and property-based
random workloads), then cover the operational guarantees that ride on it —
resource budgets enforced across workers, per-worker metrics merged
deterministically, worker ids stamped on query-log events, and the
planner's :class:`~repro.planner.cache.PlanCache` surviving a concurrent
hammer.
"""

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.atoms import atom
from repro.core.cq import ConjunctiveQuery
from repro.engine import Session
from repro.exceptions import ResourceBudgetExceeded
from repro.parallel import BatchResult, run_batch
from repro.parallel.pool import (
    WorkerPool,
    current_pool,
    current_worker_id,
    effective_cpu_count,
    use_pool,
)
from repro.planner.cache import PlanCache
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.obslog import QueryLog
from repro.telemetry.resources import ResourceBudget
from repro.wdpt.evaluation import evaluate, evaluate_max
from repro.wdpt.wdpt import wdpt_from_nested
from repro.workloads.datasets import company_directory
from repro.workloads.families import FIGURE1_QUERY_TEXT, example2_graph

COMMON = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _company_query():
    return wdpt_from_nested(
        (
            [atom("works_in", "?e", "?d")],
            [
                ([atom("phone", "?e", "?p")], []),
                ([atom("reports_to", "?e", "?m")],
                 [([atom("office", "?m", "?o")], [])]),
            ],
        ),
        free_variables=["?e", "?d", "?p", "?m", "?o"],
    )


def _company_db(employees=10):
    return company_directory(
        n_departments=3, employees_per_department=employees, seed=1
    )


@st.composite
def wdpt_and_db(draw):
    from repro.workloads.generators import random_database, random_wdpt

    seed = draw(st.integers(0, 10**6))
    p = random_wdpt(
        depth=draw(st.integers(1, 2)),
        fanout=2,
        atoms_per_node=draw(st.integers(1, 2)),
        fresh_vars_per_node=1,
        free_fraction=draw(st.sampled_from([0.4, 0.8, 1.0])),
        seed=seed,
    )
    db = random_database(
        draw(st.integers(4, 12)), relations=("E",), domain_size=5, seed=seed + 1
    )
    return p, db


# ---------------------------------------------------------------------------
# WorkerPool mechanics
# ---------------------------------------------------------------------------
def test_pool_serial_runs_inline():
    pool = WorkerPool(jobs=1)
    assert pool.map_tasks(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
    assert pool._executor is None  # never spawned a thread


def test_pool_preserves_input_order():
    with WorkerPool(jobs=4) as pool:
        items = list(range(40))
        assert pool.map_tasks(lambda x: x * x, items) == [x * x for x in items]


def test_pool_propagates_first_exception():
    def boom(x):
        if x == 3:
            raise ValueError("task 3")
        return x

    with WorkerPool(jobs=2) as pool:
        with pytest.raises(ValueError):
            pool.map_tasks(boom, [1, 2, 3, 4])


def test_nested_dispatch_runs_inline_without_deadlock():
    """A task that itself calls map_tasks must not wait on the pool it is
    running inside of — nested dispatch inlines (jobs=2 pool, depth-2
    fan-out wider than the pool would deadlock otherwise)."""
    with WorkerPool(jobs=2) as pool:

        def outer(x):
            assert current_worker_id() is not None
            return sum(pool.map_tasks(lambda y: x * y, [1, 2, 3]))

        assert pool.map_tasks(outer, [1, 2, 3, 4]) == [6, 12, 18, 24]


def test_worker_ids_stable_and_absent_outside_workers():
    assert current_worker_id() is None
    with WorkerPool(jobs=2) as pool:
        ids = pool.map_tasks(lambda _: current_worker_id(), range(8))
    assert all(i is not None and i.startswith("t") for i in ids)
    assert 1 <= len(set(ids)) <= 2
    assert current_worker_id() is None  # the submitting thread is untouched


def test_use_pool_is_scoped_to_the_block():
    assert current_pool() is None
    with WorkerPool(jobs=2) as pool:
        with use_pool(pool):
            assert current_pool() is pool
        assert current_pool() is None


def test_pool_rejects_unknown_executor():
    with pytest.raises(ValueError):
        WorkerPool(jobs=2, executor="fiber")


def test_effective_cpu_count_positive():
    assert effective_cpu_count() >= 1


# ---------------------------------------------------------------------------
# Intra-query parallelism == sequential
# ---------------------------------------------------------------------------
def test_intra_query_evaluate_matches_sequential():
    p, db = _company_query(), _company_db()
    sequential = evaluate(p, db)
    with WorkerPool(jobs=2) as pool, use_pool(pool):
        assert evaluate(p, db) == sequential
    sequential_max = evaluate_max(p, db)
    with WorkerPool(jobs=3) as pool, use_pool(pool):
        assert evaluate_max(p, db) == sequential_max


def test_intra_query_yannakakis_matches_sequential():
    from repro.cqalgs.yannakakis import evaluate_acyclic

    q = ConjunctiveQuery(
        ("?e", "?d", "?m"),
        [
            atom("works_in", "?e", "?d"),
            atom("reports_to", "?e", "?m"),
            atom("office", "?m", "?o"),
        ],
    )
    db = _company_db()
    sequential = evaluate_acyclic(q, db)
    with WorkerPool(jobs=2) as pool, use_pool(pool):
        assert evaluate_acyclic(q, db) == sequential


def test_intra_query_ask_matches_sequential():
    p, db = _company_query(), _company_db(employees=6)
    answers = sorted(evaluate(p, db), key=repr)
    assert answers
    with Session(db) as plain, Session(db, jobs=2) as fanned:
        for candidate in answers[:5]:
            for method in ("naive", "auto"):
                assert plain.ask(p, candidate, method=method) == fanned.ask(
                    p, candidate, method=method
                )


@COMMON
@given(wdpt_and_db())
def test_parallel_evaluate_matches_sequential_on_random_inputs(pair):
    p, db = pair
    sequential = evaluate(p, db)
    with WorkerPool(jobs=2) as pool, use_pool(pool):
        assert evaluate(p, db) == sequential


# ---------------------------------------------------------------------------
# Batch evaluation: run_batch / map
# ---------------------------------------------------------------------------
EXAMPLE2_QUERY = "SELECT ?x ?y ?z ?z2 WHERE " + FIGURE1_QUERY_TEXT


def test_thread_batch_matches_sequential():
    queries = [EXAMPLE2_QUERY] * 4
    with Session(example2_graph()) as session:
        sequential = [session.query(q).answers for q in queries]
        batch = session.run_batch(queries, jobs=2)
        assert isinstance(batch, BatchResult)
        assert batch.answers() == sequential
        assert len(batch) == 4 and batch[0].answers == sequential[0]
        assert [r.answers for r in batch] == sequential


def test_process_batch_matches_sequential():
    queries = [_company_query()] * 4
    db = _company_db(employees=6)
    with Session(db, executor="process") as session:
        sequential = [session.query(q).answers for q in queries]
        batch = session.run_batch(queries, jobs=2)
        assert batch.answers() == sequential
        assert all(w.startswith("p") for w in batch.workers_used())


def test_batch_maximal_and_ask_ops():
    p, db = _company_query(), _company_db(employees=6)
    with Session(db) as session:
        maximal = session.run_batch([p, p], jobs=2, op="query_maximal")
        assert maximal.answers() == [session.query_maximal(p).answers] * 2
        candidates = sorted(session.query(p).answers, key=repr)[:4]
        pairs = [(p, h) for h in candidates]
        asked = session.run_batch(pairs, jobs=2, op="ask")
        assert asked.answers() == [session.ask(p, h) for p, h in pairs]
        assert all(d is True for d in asked.answers())


def test_map_is_the_list_of_results():
    with Session(example2_graph()) as session:
        results = session.map([EXAMPLE2_QUERY] * 3, jobs=2)
        assert [r.answers for r in results] == [
            session.query(EXAMPLE2_QUERY).answers
        ] * 3


def test_batch_rejects_unknown_op_and_executor():
    session = Session(example2_graph())
    with pytest.raises(ValueError):
        session.run_batch([EXAMPLE2_QUERY], op="transmogrify")
    with pytest.raises(ValueError):
        session.run_batch([EXAMPLE2_QUERY], executor="fiber")
    with pytest.raises(ValueError):
        Session(example2_graph(), executor="fiber")


def test_batch_empty_input():
    with Session(example2_graph()) as session:
        batch = session.run_batch([], jobs=2)
        assert len(batch) == 0 and batch.answers() == []


@COMMON
@given(wdpt_and_db())
def test_batch_matches_sequential_on_random_inputs(pair):
    p, db = pair
    with Session(db) as session:
        sequential = [session.query(p).answers for _ in range(3)]
        assert session.run_batch([p] * 3, jobs=2).answers() == sequential


# ---------------------------------------------------------------------------
# Budgets across workers
# ---------------------------------------------------------------------------
def test_hard_budget_enforced_through_thread_batch():
    budget = ResourceBudget(hard_intermediate_rows=1)
    with Session(_company_db(), budgets=budget) as session:
        with pytest.raises(ResourceBudgetExceeded):
            session.run_batch([_company_query()] * 3, jobs=2)


def test_hard_budget_enforced_through_intra_query_fanout():
    """The submitting thread's monitor must reach the pool workers the
    subtrees fan out to — the hard limit fires even though the heavy
    accounting happens on worker threads."""
    budget = ResourceBudget(hard_intermediate_rows=1)
    with Session(_company_db(), budgets=budget, jobs=2) as session:
        with pytest.raises(ResourceBudgetExceeded):
            session.query(_company_query())


def test_resources_attached_to_batch_results():
    with Session(_company_db(employees=4), track_resources=True) as session:
        for executor in ("thread", "process"):
            batch = session.run_batch(
                [_company_query()] * 2, jobs=2, executor=executor
            )
            for result in batch:
                assert result.resources is not None
                assert result.resources.peak_intermediate_rows >= 0


# ---------------------------------------------------------------------------
# Metrics: deterministic merging
# ---------------------------------------------------------------------------
def test_registry_dump_merge_roundtrip():
    source = MetricsRegistry()
    source.counter("queries").inc(3)
    source.gauge("depth").set(7)
    source.histogram("latency").observe(0.25)
    source.histogram("latency").observe(0.75)
    target = MetricsRegistry()
    target.merge_dump(source.dump())
    assert target.dump() == source.dump()


def test_merge_is_deterministic_across_orderings():
    """Folding the same per-worker dumps must commute for counters and
    histogram aggregates — merged state cannot depend on scheduling."""
    dumps = []
    for i in range(3):
        registry = MetricsRegistry()
        registry.counter("queries").inc(i + 1)
        registry.histogram("latency").observe(0.1 * (i + 1))
        dumps.append(registry.dump())
    forward, backward = MetricsRegistry(), MetricsRegistry()
    for dump in dumps:
        forward.merge_dump(dump)
    for dump in reversed(dumps):
        backward.merge_dump(dump)
    assert forward.counters_with_prefix("") == backward.counters_with_prefix("")
    fwd = forward.histogram("latency").snapshot()
    bwd = backward.histogram("latency").snapshot()
    assert fwd["count"] == bwd["count"] == 3
    assert fwd["max"] == bwd["max"]
    # Float addition is associative only approximately; exact bit-equality
    # is guaranteed by merging in task order, which run_batch always does.
    assert fwd["sum"] == pytest.approx(bwd["sum"])


def test_merge_in_fixed_order_is_bit_identical():
    """Replaying the same dumps in the same order gives byte-equal state —
    the reason _run_process_batch folds envelopes in task order."""
    dumps = []
    for i in range(4):
        registry = MetricsRegistry()
        registry.counter("queries").inc()
        registry.histogram("latency").observe(0.1 * (i + 1))
        dumps.append(registry.dump())
    first, second = MetricsRegistry(), MetricsRegistry()
    for dump in dumps:
        first.merge_dump(dump)
    for dump in dumps:
        second.merge_dump(dump)
    assert first.dump() == second.dump()


def test_process_batch_merges_worker_metrics():
    db = _company_db(employees=4)
    # cache=False: a worker's result cache would serve repeats without
    # touching the engine, and this test counts engine selections.
    with Session(db, executor="process", cache=False) as session:
        before = dict(session.stats()["engine_selections"])
        session.run_batch([_company_query()] * 4, jobs=2)
        after = dict(session.stats()["engine_selections"])
    assert after.get("wdpt-topdown", 0) - before.get("wdpt-topdown", 0) == 4


# ---------------------------------------------------------------------------
# Observability: worker ids on query-log events
# ---------------------------------------------------------------------------
def test_batch_events_carry_worker_ids():
    log = QueryLog()
    with Session(example2_graph(), obslog=log) as session:
        session.run_batch([EXAMPLE2_QUERY] * 3, jobs=2)
    starts = log.events("batch.start")
    completes = log.events("batch.complete")
    assert len(starts) == 1 and len(completes) == 1
    assert starts[0]["queries"] == 3
    assert completes[0]["workers"]  # at least one worker reported
    per_query = log.events("query.complete")
    assert len(per_query) == 3
    assert all(r.get("worker", "").startswith("t") for r in per_query)


def test_sequential_events_have_no_worker_field():
    log = QueryLog()
    with Session(example2_graph(), obslog=log) as session:
        session.query(EXAMPLE2_QUERY)
    (record,) = log.events("query.complete")
    assert "worker" not in record


# ---------------------------------------------------------------------------
# PlanCache under concurrency
# ---------------------------------------------------------------------------
def test_plan_cache_concurrent_hammer():
    """Regression test for the cache's thread safety: hammer one bounded
    cache from many threads and require sane counters, a respected bound,
    and no lost values among the survivors."""
    cache = PlanCache(maxsize=32)
    errors = []

    def hammer(worker: int) -> None:
        try:
            for i in range(400):
                key = (worker * 400 + i) % 48
                value = cache.get(key)
                if value is not None:
                    assert value == key * 2
                cache.put(key, key * 2)
                if i % 50 == 0:
                    cache.peek(key)
                    for v in cache.values_snapshot():
                        assert v % 2 == 0
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(w,)) for w in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(cache) <= 32
    stats = cache.stats()
    assert stats["hits"] + stats["misses"] == 8 * 400
    assert stats["evictions"] > 0


def test_plan_cache_peek_does_not_perturb_lru():
    cache = PlanCache(maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.peek("a") == 1  # does not refresh "a"
    cache.put("c", 3)  # evicts "a" (still least-recent despite the peek)
    assert cache.get("a") is None and cache.get("b") == 2


def test_shared_planner_profiles_under_concurrent_sessions():
    """Two sessions sharing one planner may profile concurrently; stats()
    must iterate a consistent snapshot while workers keep inserting."""
    db = _company_db(employees=4)
    with Session(db, jobs=2) as session:
        batch = session.run_batch([_company_query()] * 6, jobs=2)
        assert len(batch) == 6
        stats = session.stats()
        assert stats["plan_cache"]["size"] >= 1


# ---------------------------------------------------------------------------
# Module-level run_batch (the functional spelling)
# ---------------------------------------------------------------------------
def test_functional_run_batch_spelling():
    session = Session(example2_graph())
    batch = run_batch(session, [EXAMPLE2_QUERY] * 2, jobs=2)
    assert batch.answers() == [session.query(EXAMPLE2_QUERY).answers] * 2
    session.close()
