"""End-to-end integration tests across packages."""

import pytest

from repro.core.atoms import atom
from repro.core.mappings import Mapping
from repro.rdf.parser import parse_query
from repro.wdpt.classes import WB_TW, is_in_wb
from repro.wdpt.evaluation import evaluate, evaluate_max
from repro.wdpt.eval_tractable import eval_tractable
from repro.wdpt.max_eval import max_eval
from repro.wdpt.partial_eval import partial_eval
from repro.wdpt.subsumption import is_subsumed_by
from repro.wdpt.unions import UWDPT, evaluate_union, uwb_approximation, union_subsumed_by
from repro.wdpt.wdpt import wdpt_from_nested
from repro.workloads.datasets import company_directory, music_catalog


class TestMusicCatalogPipeline:
    """Parse SPARQL → translate → evaluate over a generated triple store."""

    @pytest.fixture
    def db(self):
        return music_catalog(n_bands=6, records_per_band=2, rating_fraction=0.5,
                             seed=11).to_database()

    @pytest.fixture
    def query(self):
        return parse_query(
            "SELECT ?record ?band ?rating WHERE "
            "((?record, recorded_by, ?band) OPT (?record, NME_rating, ?rating))"
        )

    def test_every_record_answered(self, db, query):
        answers = evaluate(query, db)
        assert len(answers) == 12  # 6 bands × 2 records, never dropped

    def test_optional_filled_when_available(self, db, query):
        answers = evaluate(query, db)
        rated = [a for a in answers if "?rating" in a]
        unrated = [a for a in answers if "?rating" not in a]
        assert rated and unrated  # fractions make both appear

    def test_decision_procedures_consistent(self, db, query):
        answers = evaluate(query, db)
        some = sorted(answers, key=repr)[0]
        assert eval_tractable(query, db, some)
        assert partial_eval(query, db, some.restrict(["?band"]))

    def test_sparsity_never_loses_mandatory_answers(self):
        q = parse_query(
            "SELECT ?r ?b ?v WHERE ((?r, recorded_by, ?b) OPT (?r, NME_rating, ?v))"
        )
        for fraction in (0.0, 0.3, 1.0):
            db = music_catalog(n_bands=4, records_per_band=2,
                               rating_fraction=fraction, seed=3).to_database()
            assert len(evaluate(q, db)) == 8


class TestCompanyDirectoryPipeline:
    """Relational (non-RDF) WDPTs over the company dataset."""

    @pytest.fixture
    def db(self):
        return company_directory(n_departments=3, employees_per_department=4, seed=5)

    @pytest.fixture
    def query(self):
        return wdpt_from_nested(
            (
                [atom("works_in", "?e", "?d")],
                [
                    ([atom("phone", "?e", "?p")], []),
                    ([atom("office", "?e", "?o")], []),
                    ([atom("reports_to", "?e", "?m")],
                     [([atom("phone", "?m", "?mp")], [])]),
                ],
            ),
            free_variables=["?e", "?d", "?p", "?o", "?m", "?mp"],
        )

    def test_all_employees_present(self, db, query):
        answers = evaluate(query, db)
        employees = {a["?e"] for a in answers}
        assert len(employees) == 12

    def test_classes_and_tractable_eval(self, db, query):
        from repro.wdpt.classes import interface_width, is_locally_in_tw

        assert is_locally_in_tw(query, 1)
        assert interface_width(query) == 1
        for h in sorted(evaluate(query, db), key=repr)[:5]:
            assert eval_tractable(query, db, h)

    def test_max_eval_consistency(self, db, query):
        maximal = evaluate_max(query, db)
        for h in sorted(maximal, key=repr)[:5]:
            assert max_eval(query, db, h)


class TestOptimizeThenEvaluate:
    """Corollary 2's pipeline: replace a tree by its WB(k) equivalent and
    answer partial queries on the substitute."""

    def test_pipeline(self):
        from repro.wdpt.approximation import find_wb_equivalent

        # Cyclic junk in a free-variable-less branch: prunable.
        p = wdpt_from_nested(
            (
                [atom("works_in", "?e", "?d")],
                [([atom("E", "?u", "?v"), atom("E", "?v", "?w"),
                   atom("E", "?w", "?u"), atom("E", "?e", "?u")], [])],
            ),
            free_variables=["?e", "?d"],
        )
        assert not is_in_wb(p, 1, WB_TW)
        witness = find_wb_equivalent(p, 1, WB_TW)
        assert witness is not None and is_in_wb(witness, 1, WB_TW)
        db = company_directory(n_departments=2, employees_per_department=2, seed=1)
        for emp in ("emp_0_0", "emp_1_1"):
            h = Mapping({"?e": emp})
            assert partial_eval(p, db, h) == partial_eval(witness, db, h)


class TestUnionPipeline:
    def test_union_of_frontends(self):
        q1 = parse_query("SELECT ?b WHERE (?r, recorded_by, ?b)")
        q2 = parse_query("SELECT ?b ?y WHERE ((?b, formed_in, ?y))")
        phi = UWDPT([q1, q2])
        db = music_catalog(n_bands=3, seed=2).to_database()
        answers = evaluate_union(phi, db)
        assert answers == evaluate(q1, db) | evaluate(q2, db)

    def test_union_approximation_sound_end_to_end(self):
        from repro.core.cq import cq
        from repro.wdpt.wdpt import WDPT

        tri = WDPT.from_cq(
            cq([], [atom("E", "?x", "?y"), atom("E", "?y", "?z"), atom("E", "?z", "?x")])
        )
        phi = UWDPT([tri])
        app = uwb_approximation(phi, 1, WB_TW)
        assert union_subsumed_by(app, phi)
