"""Unit tests for MAX-EVAL (Theorem 9 / Section 3.4)."""

import pytest

from repro.core.atoms import atom
from repro.core.database import Database
from repro.core.mappings import Mapping
from repro.wdpt.evaluation import evaluate_max, max_eval_check
from repro.wdpt.max_eval import max_eval
from repro.wdpt.wdpt import wdpt_from_nested
from repro.workloads.families import example2_graph, figure1_wdpt
from repro.workloads.generators import random_database, random_wdpt


@pytest.fixture
def example7():
    return figure1_wdpt(projection=("?y", "?z"))


@pytest.fixture
def db():
    return example2_graph().to_database()


class TestExample7:
    def test_maximal_answer(self, example7, db):
        assert max_eval(example7, db, Mapping({"?y": "Caribou", "?z": "2"}))

    def test_subsumed_answer_rejected(self, example7, db):
        # {y: Caribou} ∈ p(D) but is not maximal (Example 7).
        assert not max_eval(example7, db, Mapping({"?y": "Caribou"}))

    def test_non_answer_rejected(self, example7, db):
        assert not max_eval(example7, db, Mapping({"?y": "Beatles"}))

    def test_agrees_with_semantic_definition(self, example7, db):
        for h in evaluate_max(example7, db):
            assert max_eval(example7, db, h)

    def test_structured_method(self, example7, db):
        h = Mapping({"?y": "Caribou", "?z": "2"})
        assert max_eval(example7, db, h, method="auto")


class TestMaximalPartialAnswerLemma:
    def test_partial_but_not_answer_can_be_rejected(self):
        # h = {x: 1} is a partial answer (restriction of {x:1, y:5}) but
        # not maximal.
        p = wdpt_from_nested(
            ([atom("A", "?x")], [([atom("B", "?x", "?y")], [])]),
            free_variables=["?x", "?y"],
        )
        db = Database([atom("A", 1), atom("B", 1, 5)])
        assert not max_eval(p, db, Mapping({"?x": 1}))
        assert max_eval(p, db, Mapping({"?x": 1, "?y": 5}))

    def test_projected_intermediate_answers(self):
        # With projection, p(D) may contain subsumed answers; p_m keeps the
        # top ones only.
        p = wdpt_from_nested(
            ([atom("A", "?x")], [([atom("B", "?x", "?y")], [])]),
            free_variables=["?y"],
        )
        db = Database([atom("A", 1), atom("A", 2), atom("B", 2, 9)])
        # answers: {} (from x=1) and {y:9} (from x=2); maximal: {y:9}.
        assert not max_eval(p, db, Mapping({}))
        assert max_eval(p, db, Mapping({"?y": 9}))


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(6))
    def test_agrees_with_enumeration(self, seed):
        p = random_wdpt(depth=2, fanout=2, atoms_per_node=2, fresh_vars_per_node=1, seed=seed)
        db = random_database(10, relations=("E",), domain_size=5, seed=seed + 31)
        maximal = evaluate_max(p, db)
        for h in maximal:
            assert max_eval(p, db, h)
        from repro.wdpt.evaluation import evaluate

        for h in evaluate(p, db) - maximal:
            assert not max_eval(p, db, h)

    @pytest.mark.parametrize("seed", range(3))
    def test_probe_values(self, seed):
        p = random_wdpt(depth=1, fanout=2, atoms_per_node=2, fresh_vars_per_node=1, seed=seed)
        db = random_database(8, relations=("E",), domain_size=4, seed=seed + 77)
        frees = sorted(p.free_variables)
        adom = sorted(db.active_domain())
        if frees and adom:
            probe = Mapping({frees[0]: adom[0]})
            assert max_eval(p, db, probe) == max_eval_check(p, db, probe)
