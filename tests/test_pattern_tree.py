"""Unit tests for repro.wdpt.tree."""

import pytest

from repro.wdpt.tree import ROOT, PatternTree


@pytest.fixture
def tree():
    #      0
    #     / \
    #    1   2
    #   / \
    #  3   4
    return PatternTree([0, 0, 1, 1])


class TestStructure:
    def test_len_and_nodes(self, tree):
        assert len(tree) == 5
        assert list(tree.nodes()) == [0, 1, 2, 3, 4]

    def test_parent_child(self, tree):
        assert tree.parent(ROOT) is None
        assert tree.parent(3) == 1
        assert tree.children(0) == (1, 2)
        assert tree.children(1) == (3, 4)

    def test_leaves(self, tree):
        assert tree.leaves() == (2, 3, 4)
        assert tree.is_leaf(3) and not tree.is_leaf(1)

    def test_depth(self, tree):
        assert tree.depth(0) == 0
        assert tree.depth(2) == 1
        assert tree.depth(4) == 2

    def test_path_to_root(self, tree):
        assert tree.path_to_root(4) == [4, 1, 0]
        assert tree.path_to_root(0) == [0]

    def test_descendants(self, tree):
        assert tree.descendants(1) == {3, 4}
        assert tree.descendants(0) == {1, 2, 3, 4}
        assert tree.descendants(2) == frozenset()

    def test_single_node(self):
        t = PatternTree()
        assert len(t) == 1 and t.children(0) == ()

    def test_invalid_parent_rejected(self):
        with pytest.raises(ValueError):
            PatternTree([1])  # parent of node 1 must be < 1

    def test_equality(self, tree):
        assert tree == PatternTree([0, 0, 1, 1])
        assert tree != PatternTree([0, 0, 1, 2])


class TestRootedSubtrees:
    def test_is_rooted_subtree(self, tree):
        assert tree.is_rooted_subtree({0})
        assert tree.is_rooted_subtree({0, 1, 3})
        assert not tree.is_rooted_subtree({1, 3})      # missing root
        assert not tree.is_rooted_subtree({0, 3})      # missing parent 1

    def test_enumeration_count_matches_dp(self, tree):
        subtrees = list(tree.rooted_subtrees())
        assert len(subtrees) == tree.count_rooted_subtrees()
        assert len(subtrees) == len(set(subtrees))

    def test_enumeration_all_valid(self, tree):
        for s in tree.rooted_subtrees():
            assert tree.is_rooted_subtree(s)

    def test_count_formula(self, tree):
        # node1 has (1+1)*(1+1)=4 options incl itself; root: (4+1)*(1+1)=10
        assert tree.count_rooted_subtrees() == 10

    def test_chain(self):
        chain = PatternTree([0, 1, 2])
        assert chain.count_rooted_subtrees() == 4

    def test_single(self):
        assert PatternTree().count_rooted_subtrees() == 1
