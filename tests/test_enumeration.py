"""Unit tests for streaming answer enumeration."""

import pytest

from repro.core.atoms import atom
from repro.core.cq import cq
from repro.core.database import Database
from repro.cqalgs.enumeration import enumerate_answers
from repro.cqalgs.naive import evaluate_naive
from repro.workloads.generators import path_cq, random_graph_database


@pytest.fixture
def db():
    return random_graph_database(7, 20, seed=3)


class TestAgreement:
    @pytest.mark.parametrize("length", [1, 2, 4])
    def test_acyclic_stream_matches_set_semantics(self, db, length):
        q = path_cq(length)
        assert frozenset(enumerate_answers(q, db)) == evaluate_naive(q, db)

    def test_cyclic_fallback_matches(self, db):
        tri = cq(["?x"], [atom("E", "?x", "?y"), atom("E", "?y", "?z"), atom("E", "?z", "?x")])
        assert frozenset(enumerate_answers(tri, db)) == evaluate_naive(tri, db)

    def test_no_duplicates(self, db):
        q = path_cq(3)
        answers = list(enumerate_answers(q, db))
        assert len(answers) == len(set(answers))

    def test_boolean_query(self, db):
        q = path_cq(2, frees=[])
        stream = list(enumerate_answers(q, db))
        assert len(stream) == len(evaluate_naive(q, db))


class TestStreaming:
    def test_limit_short_circuits(self, db):
        q = path_cq(2)
        full = list(enumerate_answers(q, db))
        if len(full) >= 3:
            assert len(list(enumerate_answers(q, db, limit=3))) == 3

    def test_lazy_first_answer(self):
        """A big cartesian product must not be materialized to get one
        answer."""
        db = Database(
            [atom("A", i) for i in range(50)] + [atom("B", i) for i in range(50)]
        )
        q = cq(["?x", "?y"], [atom("A", "?x"), atom("B", "?y")])
        first = next(iter(enumerate_answers(q, db)))
        assert len(first) == 2

    def test_empty_result(self):
        db = Database([atom("A", 1)])
        q = cq(["?x"], [atom("A", "?x"), atom("Z", "?x")])
        assert list(enumerate_answers(q, db)) == []

    def test_semijoin_reduction_prunes_dead_branches(self):
        db = Database(
            [atom("R", 1, 2), atom("S", 2, 3), atom("T", 3, 4)]
            + [atom("S", 2, 90 + i) for i in range(30)]  # dangling
        )
        q = cq(["?a", "?d"], [atom("R", "?a", "?b"), atom("S", "?b", "?c"), atom("T", "?c", "?d")])
        answers = list(enumerate_answers(q, db))
        assert len(answers) == 1
