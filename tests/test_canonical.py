"""Unit tests for canonical (frozen) databases."""

import pytest

from repro.core.atoms import atom
from repro.core.canonical import (
    canonical_database,
    canonical_database_of_atoms,
    freeze_atoms,
    freeze_variable,
    freezing_of,
    is_frozen_constant,
    unfreeze_constant,
    unfreeze_mapping,
)
from repro.core.cq import cq
from repro.core.mappings import Mapping
from repro.core.terms import Constant, Variable


def test_freeze_variable_roundtrip():
    c = freeze_variable(Variable("x"))
    assert is_frozen_constant(c)
    assert unfreeze_constant(c) == Variable("x")


def test_frozen_constants_equal_by_variable():
    assert freeze_variable(Variable("x")) == freeze_variable(Variable("?x"))
    assert freeze_variable(Variable("x")) != freeze_variable(Variable("y"))


def test_frozen_never_collides_with_plain_constant():
    assert freeze_variable(Variable("x")) != Constant("x")


def test_unfreeze_plain_constant_raises():
    with pytest.raises(ValueError):
        unfreeze_constant(Constant("x"))


def test_freeze_atoms_ground():
    frozen = freeze_atoms([atom("E", "?x", "c")])
    assert all(a.is_ground() for a in frozen)
    assert frozen[0].args[1] == Constant("c")


def test_canonical_database_facts():
    q = cq(["?x"], [atom("E", "?x", "?y"), atom("E", "?y", "?x")])
    db = canonical_database(q)
    assert len(db) == 2
    fx = freeze_variable(Variable("x"))
    fy = freeze_variable(Variable("y"))
    assert atom("E", fx.value, fy.value) in db


def test_canonical_database_of_atoms_matches_query_version():
    q = cq([], [atom("E", "?x", "?y")])
    assert canonical_database(q) == canonical_database_of_atoms(q.atoms)


def test_freezing_of():
    m = freezing_of([Variable("x")])
    assert m[Variable("x")] == freeze_variable(Variable("x"))


def test_unfreeze_mapping_mixed():
    m = Mapping({Variable("x"): freeze_variable(Variable("y")), Variable("z"): Constant(3)})
    out = unfreeze_mapping(m)
    assert out[Variable("x")] == Variable("y")
    assert out[Variable("z")] == Constant(3)


def test_chandra_merlin_canonical_property():
    """The identity freeze is always a homomorphism from q to canonical(q)."""
    from repro.cqalgs.naive import satisfiable

    q = cq(["?x"], [atom("E", "?x", "?y"), atom("F", "?y", "?y")])
    db = canonical_database(q)
    assert satisfiable(q.atoms, db, freezing_of(q.variables()))
