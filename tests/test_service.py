"""Tests for the multi-tenant async query service (repro.service):
protocol validation, the tenant registry, admission control, and live
concurrent HTTP traffic against an embedded server."""

import asyncio
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.engine import Session
from repro.exceptions import ReproError
from repro.service import (
    AdmissionController,
    LoadShedError,
    ProtocolError,
    QueryRequest,
    ServiceServer,
    TenantRegistry,
    TenantsFileError,
    default_registry,
    load_tenants,
)
from repro.telemetry.obslog import QueryLog
from repro.telemetry.resources import ResourceBudget
from repro.workloads.families import example2_graph

QUERY = (
    "SELECT ?x ?y ?z WHERE { "
    '?x recorded_by ?y . ?x published "after_2010" '
    "OPTIONAL { ?x NME_rating ?z } }"
)
SMALL_QUERY = "SELECT ?x ?y WHERE { ?x recorded_by ?y }"

TENANTS = {
    "tiers": {
        "slowlane": {
            "max_concurrency": 1,
            "queue_timeout_ms": 50,
            "retry_after_seconds": 2.5,
        },
        "tiny": {"budget": {"hard_intermediate_rows": 1}},
    },
    "tenants": [
        {"name": "acme", "api_key": "acme-key", "tier": "gold"},
        {"name": "slow", "api_key": "slow-key", "tier": "slowlane"},
        {"name": "tiny", "api_key": "tiny-key", "tier": "tiny"},
        {"name": "public", "tier": "silver"},
    ],
}


def _request(base, path, payload=None, key=None, method=None, raw=None):
    """One HTTP exchange; returns (status, decoded JSON body, headers)."""
    headers = {}
    data = None
    if payload is not None or raw is not None:
        data = raw if raw is not None else json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    if key is not None:
        headers["X-Api-Key"] = key
    req = urllib.request.Request(
        base + path, data=data, headers=headers,
        method=method or ("POST" if data is not None else "GET"),
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


@pytest.fixture(scope="module")
def server():
    with ServiceServer(
        example2_graph(), tenants=TenantRegistry.from_dict(TENANTS)
    ) as srv:
        yield srv


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_minimal_query(self):
        parsed = QueryRequest.from_body("query", b'{"query": "Q"}')
        assert parsed.op == "query" and parsed.query == "Q"

    def test_maximal_flag(self):
        parsed = QueryRequest.from_body(
            "query", b'{"query": "Q", "maximal": true}'
        )
        assert parsed.op == "query_maximal"

    def test_maximal_must_be_boolean(self):
        with pytest.raises(ProtocolError, match="boolean"):
            QueryRequest.from_body("query", b'{"query": "Q", "maximal": 1}')

    def test_ask_candidate(self):
        parsed = QueryRequest.from_body(
            "ask", b'{"query": "Q", "candidate": {"?x": "a"}}'
        )
        assert parsed.op == "ask" and parsed.candidate is not None

    def test_ask_requires_candidate(self):
        with pytest.raises(ProtocolError, match="candidate"):
            QueryRequest.from_body("ask", b'{"query": "Q"}')

    @pytest.mark.parametrize(
        "body",
        [b"", b"not json", b"[1]", b'{"query": ""}', b'{"query": 3}',
         b'{"querry": "Q"}', b'{"query": "Q", "extra": 1}'],
    )
    def test_malformed_bodies(self, body):
        with pytest.raises(ProtocolError):
            QueryRequest.from_body("query", body)

    def test_protocol_error_is_repro_error(self):
        with pytest.raises(ReproError):
            QueryRequest.from_body("query", b"")


# ---------------------------------------------------------------------------
# Tenancy
# ---------------------------------------------------------------------------
class TestTenancy:
    def test_registry_from_dict(self):
        registry = TenantRegistry.from_dict(TENANTS)
        assert registry.names() == ["acme", "public", "slow", "tiny"]
        assert registry.authenticate("acme-key").name == "acme"
        assert registry.authenticate(None).name == "public"
        assert registry.authenticate("wrong") is None
        tiny = registry.get("tiny")
        assert tiny.tier.budget.hard_intermediate_rows == 1

    def test_partial_tier_inherits_defaults(self):
        registry = TenantRegistry.from_dict(TENANTS)
        lane = registry.get("slow").tier
        assert lane.max_concurrency == 1
        assert lane.queue_timeout == pytest.approx(0.05)
        assert lane.cache_size == 128  # untouched default

    def test_load_tenants_file(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps(TENANTS))
        assert load_tenants(str(path)).names() == [
            "acme", "public", "slow", "tiny",
        ]

    def test_load_tenants_bad_file(self, tmp_path):
        with pytest.raises(TenantsFileError, match="cannot read"):
            load_tenants(str(tmp_path / "absent.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{")
        with pytest.raises(TenantsFileError, match="not valid JSON"):
            load_tenants(str(bad))

    @pytest.mark.parametrize(
        "data,match",
        [
            ({"tenants": []}, "non-empty"),
            ({"tenants": [{"name": "a"}, {"name": "a"}]}, "duplicate tenant"),
            ({"tenants": [{"name": "a", "api_key": "k"},
                          {"name": "b", "api_key": "k"}]}, "duplicate api_key"),
            ({"tenants": [{"name": "a"}, {"name": "b"}]}, "anonymous"),
            ({"tenants": [{"name": "a", "tier": "platinum"}]}, "unknown tier"),
            ({"tenants": [{"name": "a", "color": "red"}]}, "unknown field"),
            ({"tiers": {"t": {"budget": {"warp": 1}}},
              "tenants": [{"name": "a", "tier": "t"}]}, "unknown budget"),
            ({"tenants": [{"name": "a"}], "extra": 1}, "unknown top-level"),
        ],
    )
    def test_validation_errors(self, data, match):
        with pytest.raises(TenantsFileError, match=match):
            TenantRegistry.from_dict(data)

    def test_default_registry(self):
        registry = default_registry()
        assert registry.names() == ["public"]
        assert registry.authenticate(None).tier.name == "gold"

    def test_snapshot_hides_keys(self):
        text = json.dumps(TenantRegistry.from_dict(TENANTS).snapshot())
        assert "acme-key" not in text
        assert "api_key_sha256_12" in text


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------
class TestAdmission:
    def _tenant(self, registry_name="acme"):
        return TenantRegistry.from_dict(TENANTS).get(registry_name)

    def test_grant_and_release(self):
        async def scenario():
            controller = AdmissionController(global_limit=4)
            tenant = self._tenant()
            async with await controller.admit(tenant):
                assert controller.in_flight_global == 1
            assert controller.in_flight_global == 0
            assert controller.admitted_total == 1

        asyncio.run(scenario())

    def test_tenant_cap_sheds(self):
        async def scenario():
            controller = AdmissionController(global_limit=4)
            tenant = self._tenant("slow")  # max_concurrency 1, 50 ms patience
            slot = await controller.admit(tenant)
            with pytest.raises(LoadShedError) as info:
                await controller.admit(tenant)
            slot.release()
            assert info.value.scope == "tenant"
            assert info.value.retry_after == pytest.approx(2.5)
            assert controller.shed_total == 1

        asyncio.run(scenario())

    def test_global_ceiling_sheds(self):
        async def scenario():
            controller = AdmissionController(global_limit=1)
            slot = await controller.admit(self._tenant("acme"))
            with pytest.raises(LoadShedError) as info:
                await controller.admit(self._tenant("public"))
            slot.release()
            assert info.value.scope == "global"

        asyncio.run(scenario())

    def test_queued_request_is_granted_on_release(self):
        async def scenario():
            controller = AdmissionController(global_limit=4)
            tenant = self._tenant("slow")
            slot = await controller.admit(tenant)
            loop = asyncio.get_running_loop()
            loop.call_later(0.01, slot.release)
            # The waiter should get the freed slot well inside its 50 ms.
            second = await controller.admit(tenant)
            second.release()
            assert controller.admitted_total == 2
            assert controller.shed_total == 0

        asyncio.run(scenario())

    def test_release_is_idempotent(self):
        async def scenario():
            controller = AdmissionController(global_limit=4)
            slot = await controller.admit(self._tenant())
            slot.release()
            slot.release()
            assert controller.in_flight_global == 0

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Live server: request round-trips
# ---------------------------------------------------------------------------
class TestLiveRequests:
    def test_query_roundtrip_matches_direct_session(self, server):
        status, body, _ = _request(
            server.url, "/query", {"query": QUERY}, key="acme-key"
        )
        assert status == 200
        direct = Session(example2_graph()).query(QUERY)
        assert body["rows"] == len(direct.answers)
        assert body["tenant"] == "acme"
        assert body["op"] == "query"
        assert body["trace_id"]
        assert body["resources"]["peak_intermediate_rows"] >= body["rows"]

    def test_maximal_semantics(self, server):
        status, body, _ = _request(
            server.url, "/query", {"query": QUERY, "maximal": True},
            key="acme-key",
        )
        assert status == 200
        assert body["op"] == "query_maximal"

    def test_ask(self, server):
        status, body, _ = _request(
            server.url, "/ask",
            {"query": SMALL_QUERY,
             "candidate": {"?x": "Swim", "?y": "Caribou"}},
            key="acme-key",
        )
        assert status == 200
        assert body["answer"] is True

    def test_explain(self, server):
        status, body, _ = _request(
            server.url, "/explain", {"query": QUERY}, key="acme-key"
        )
        assert status == 200
        assert body["fingerprint"]
        assert "Theorem" in body["eval_route"]

    def test_anonymous_tenant(self, server):
        status, body, _ = _request(server.url, "/query", {"query": QUERY})
        assert status == 200
        assert body["tenant"] == "public"

    def test_unknown_key_is_401(self, server):
        status, body, _ = _request(
            server.url, "/query", {"query": QUERY}, key="wrong"
        )
        assert status == 401
        assert "error" in body

    def test_parse_error_is_400(self, server):
        status, body, _ = _request(
            server.url, "/query", {"query": "SELECT garbage {{{{"},
            key="acme-key",
        )
        assert status == 400
        assert "parse error" in body["error"]

    def test_unknown_field_is_400(self, server):
        status, body, _ = _request(
            server.url, "/query", {"querry": QUERY}, key="acme-key"
        )
        assert status == 400
        assert "querry" in body["error"]

    def test_bad_json_is_400(self, server):
        status, body, _ = _request(
            server.url, "/query", raw=b"not json", key="acme-key"
        )
        assert status == 400
        assert "error" in body

    def test_oversized_body_is_413(self, server):
        status, body, _ = _request(
            server.url, "/query", raw=b"x" * ((1 << 20) + 1), key="acme-key"
        )
        assert status == 413
        assert "error" in body

    def test_404_shape_matches_metrics_server(self, server):
        status, body, _ = _request(server.url, "/nope")
        assert status == 404
        assert "error" in body and "routes" in body
        assert "POST /query" in body["routes"]

    def test_budget_exceeded_is_429(self, server):
        status, body, headers = _request(
            server.url, "/query", {"query": SMALL_QUERY}, key="tiny-key"
        )
        assert status == 429
        assert "budget" in body["error"]
        assert "Retry-After" in headers


# ---------------------------------------------------------------------------
# Live server: observability surfaces
# ---------------------------------------------------------------------------
class TestLiveObservability:
    def test_healthz_is_a_metrics_server_superset(self, server):
        status, body, _ = _request(server.url, "/healthz")
        assert status == 200
        # The MetricsServer /healthz fields, identical semantics...
        for field in ("status", "uptime_seconds", "requests_served",
                      "sources", "debug_routes"):
            assert field in body
        assert body["status"] == "ok"
        # ...plus the service block.
        assert body["service"]["tenants"] == ["acme", "public", "slow", "tiny"]
        assert body["service"]["draining"] is False
        assert body["service"]["admission"]["global_limit"] == 64

    def test_tenants_endpoint_is_key_free(self, server):
        status, body, _ = _request(server.url, "/tenants")
        assert status == 200
        names = [entry["name"] for entry in body["tenants"]]
        assert names == ["acme", "public", "slow", "tiny"]
        assert "acme-key" not in json.dumps(body)

    def test_metrics_exposition(self, server):
        _request(server.url, "/query", {"query": QUERY}, key="acme-key")
        req = urllib.request.Request(server.url + "/metrics")
        with urllib.request.urlopen(req, timeout=30) as resp:
            text = resp.read().decode()
            assert "text/plain" in resp.headers["Content-Type"]
        assert 'repro_service_admitted{tenant="acme"}' in text
        assert 'repro_service_cache_hits{tenant="acme"}' in text
        assert "repro_service_in_flight_global" in text

    def test_debug_queries_grouped_by_tenant(self, server):
        _request(server.url, "/query", {"query": QUERY}, key="acme-key")
        status, body, _ = _request(server.url, "/debug/queries")
        assert status == 200
        assert set(body) == {"acme", "public", "slow", "tiny"}
        assert any(
            rec["op"] == "query" for rec in body["acme"]["recent"]
        )


# ---------------------------------------------------------------------------
# Concurrency: many clients, coalescing, shedding, isolation, drain
# ---------------------------------------------------------------------------
def _fire(base, path, payload, key, results, index):
    results[index] = _request(base, path, payload, key=key)


def _fan_out(base, requests_spec):
    """Issue the given (path, payload, key) triples concurrently."""
    results = [None] * len(requests_spec)
    threads = [
        threading.Thread(
            target=_fire, args=(base, path, payload, key, results, i)
        )
        for i, (path, payload, key) in enumerate(requests_spec)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results


class TestConcurrency:
    def test_eight_concurrent_clients_two_tenants(self, server):
        spec = []
        for i in range(4):
            spec.append(("/query", {"query": QUERY}, "acme-key"))
            spec.append(("/query", {"query": SMALL_QUERY}, None))
        results = _fan_out(server.url, spec)
        assert [status for status, _, _ in results] == [200] * 8
        tenants = {body["tenant"] for _, body, _ in results}
        assert tenants == {"acme", "public"}
        # Every response names the rows of its own tenant's evaluation.
        for _, body, _ in results:
            assert body["rows"] >= 2

    def test_identical_queries_coalesce(self):
        registry = TenantRegistry.from_dict(TENANTS)
        with ServiceServer(
            example2_graph(), tenants=registry, batch_window=0.25
        ) as srv:
            spec = [("/query", {"query": QUERY}, "acme-key")] * 4
            results = _fan_out(srv.url, spec)
            assert [status for status, _, _ in results] == [200] * 4
            rows = {body["rows"] for _, body, _ in results}
            assert len(rows) == 1
            coalesced = [b for _, b, _ in results if b.get("coalesced")]
            assert len(coalesced) == 3  # one evaluation, three riders
            value = srv.metrics.counter(
                "service.coalesced", labels={"tenant": "acme"}
            ).value
            assert value >= 3

    def test_tenant_result_caches_are_isolated(self, server):
        for key in ("acme-key", None):
            for _ in range(2):
                status, _, _ = _request(
                    server.url, "/query",
                    {"query": "SELECT ?a ?b WHERE { ?a NME_rating ?b }"},
                    key=key,
                )
                assert status == 200
        acme = server.sessions["acme"].result_cache
        public = server.sessions["public"].result_cache
        assert acme is not public
        # Each tenant warmed its own cache: a hit on the repeat, no
        # cross-tenant sharing of entries.
        assert acme.stats()["hits"] >= 1
        assert public.stats()["hits"] >= 1

    def test_saturated_tier_sheds_429(self, tmp_path):
        log_path = tmp_path / "obslog.jsonl"
        obslog = QueryLog(sink=str(log_path))
        registry = TenantRegistry.from_dict(TENANTS)
        with ServiceServer(
            example2_graph(), tenants=registry, obslog=obslog
        ) as srv:
            session = srv.sessions["slow"]
            original = session.query

            def slow_query(text):
                time.sleep(0.6)
                return original(text)

            session.query = slow_query
            first = [None]
            thread = threading.Thread(
                target=_fire,
                args=(srv.url, "/query", {"query": QUERY}, "slow-key",
                      first, 0),
            )
            thread.start()
            time.sleep(0.25)  # let the slow query occupy the only slot
            status, body, headers = _request(
                srv.url, "/query", {"query": SMALL_QUERY}, key="slow-key"
            )
            thread.join()
            assert status == 429
            assert headers["Retry-After"] == "2.5"
            assert body["scope"] == "tenant"
            assert first[0][0] == 200  # the in-flight request finished fine
            assert srv.admission.shed_total == 1
        obslog.close()
        events = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        shed = [e for e in events if e["event"] == "service.shed"]
        assert shed and shed[0]["tenant"] == "slow"
        assert shed[0]["scope"] == "tenant"

    def test_global_ceiling_sheds_429(self):
        registry = TenantRegistry.from_dict(TENANTS)
        with ServiceServer(
            example2_graph(), tenants=registry, global_limit=1
        ) as srv:
            session = srv.sessions["acme"]
            original = session.query

            def slow_query(text):
                time.sleep(0.6)
                return original(text)

            session.query = slow_query
            first = [None]
            thread = threading.Thread(
                target=_fire,
                args=(srv.url, "/query", {"query": QUERY}, "acme-key",
                      first, 0),
            )
            thread.start()
            time.sleep(0.25)
            status, body, _ = _request(
                srv.url, "/query", {"query": SMALL_QUERY}, key=None
            )
            thread.join()
            assert status == 429
            assert body["scope"] == "global"
            assert first[0][0] == 200

    def test_graceful_drain_finishes_in_flight(self, tmp_path):
        log_path = tmp_path / "obslog.jsonl"
        obslog = QueryLog(sink=str(log_path))
        registry = TenantRegistry.from_dict(TENANTS)
        srv = ServiceServer(
            example2_graph(), tenants=registry, obslog=obslog
        ).start()
        session = srv.sessions["acme"]
        original = session.query

        def slow_query(text):
            time.sleep(0.6)
            return original(text)

        session.query = slow_query
        result = [None]
        thread = threading.Thread(
            target=_fire,
            args=(srv.url, "/query", {"query": QUERY}, "acme-key",
                  result, 0),
        )
        thread.start()
        time.sleep(0.25)  # the query is now evaluating
        url = srv.url
        srv.stop(drain=True)  # returns only once in-flight work finished
        thread.join()
        status, body, _ = result[0]
        assert status == 200  # zero dropped queries
        assert body["rows"] >= 2
        # The listener is gone: new connections are refused.
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(url + "/healthz", timeout=2)
        obslog.close()
        events = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        stopped = [e for e in events if e["event"] == "service.stopped"]
        assert stopped and stopped[0]["dropped_connections"] == 0
        draining = [e for e in events if e["event"] == "service.draining"]
        assert draining


# ---------------------------------------------------------------------------
# Obslog / trace correlation
# ---------------------------------------------------------------------------
class TestCorrelation:
    def test_trace_id_links_response_to_obslog(self, tmp_path):
        log_path = tmp_path / "obslog.jsonl"
        obslog = QueryLog(sink=str(log_path))
        registry = TenantRegistry.from_dict(TENANTS)
        with ServiceServer(
            example2_graph(), tenants=registry, obslog=obslog
        ) as srv:
            status, body, _ = _request(
                srv.url, "/query", {"query": QUERY}, key="acme-key"
            )
            assert status == 200
        obslog.close()
        events = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        # The evaluation's query event carries the response's trace_id
        # and the tenant stamp added by the bound obslog.
        matched = [
            e for e in events
            if e.get("trace_id") == body["trace_id"]
            and e["event"] == "query.complete"
        ]
        assert matched and matched[0]["tenant"] == "acme"
        # The request log line for the same exchange.
        requests = [e for e in events if e["event"] == "service.request"]
        assert any(
            e["tenant"] == "acme" and e["status"] == 200 for e in requests
        )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestCLI:
    def test_serve_self_check(self, capsys):
        from repro.__main__ import main

        assert main(["serve", "--self-check"]) == 0
        out = capsys.readouterr().out
        assert "healthz:" in out and "tenants:" in out and "explain:" in out

    def test_serve_self_check_with_tenants_file(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "tenants.json"
        path.write_text(json.dumps(TENANTS))
        assert main(["serve", "--tenants", str(path), "--self-check"]) == 0
        assert '"tenant": "public"' in capsys.readouterr().out

    def test_serve_bad_tenants_file_fails(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "tenants.json"
        path.write_text('{"tenants": []}')
        assert main(["serve", "--tenants", str(path), "--self-check"]) == 1
        assert "error" in capsys.readouterr().err
