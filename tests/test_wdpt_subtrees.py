"""Unit tests for rooted-subtree machinery."""

import pytest

from repro.core.atoms import atom
from repro.core.terms import Variable
from repro.wdpt.subtrees import (
    interface_to_children,
    interface_to_parent,
    maximal_subtree_within_free,
    minimal_subtree_containing,
    new_variables_at,
    subtree_free_variables,
    top_node_of_variable,
)
from repro.wdpt.wdpt import wdpt_from_nested


@pytest.fixture
def p():
    """Chain with a side branch:
       0 {R(x,y)}
       ├── 1 {S(y,z)}
       │    └── 2 {T(z,w)}
       └── 3 {U(x,v)}
    frees: x, z, w
    """
    return wdpt_from_nested(
        (
            [atom("R", "?x", "?y")],
            [
                ([atom("S", "?y", "?z")], [([atom("T", "?z", "?w")], [])]),
                ([atom("U", "?x", "?v")], []),
            ],
        ),
        free_variables=["?x", "?z", "?w"],
    )


class TestTopNode:
    def test_root_variable(self, p):
        assert top_node_of_variable(p, Variable("x")) == 0

    def test_shared_variable(self, p):
        assert top_node_of_variable(p, Variable("y")) == 0
        assert top_node_of_variable(p, Variable("z")) == 1

    def test_deep_variable(self, p):
        assert top_node_of_variable(p, Variable("w")) == 2

    def test_missing_variable(self, p):
        with pytest.raises(KeyError):
            top_node_of_variable(p, Variable("nope"))


class TestMinimalSubtree:
    def test_empty_is_root(self, p):
        assert minimal_subtree_containing(p, []) == {0}

    def test_single_deep_variable(self, p):
        assert minimal_subtree_containing(p, [Variable("w")]) == {0, 1, 2}

    def test_two_branches(self, p):
        assert minimal_subtree_containing(p, [Variable("w"), Variable("v")]) == {0, 1, 2, 3}

    def test_variable_in_root(self, p):
        assert minimal_subtree_containing(p, [Variable("x")]) == {0}


class TestMaximalSubtree:
    def test_all_frees_allowed(self, p):
        allowed = frozenset({Variable("x"), Variable("z"), Variable("w")})
        assert maximal_subtree_within_free(p, allowed) == {0, 1, 2, 3}

    def test_partial_frees(self, p):
        # Node 2 introduces free ?w, excluded; branch 3 has no frees beyond x.
        allowed = frozenset({Variable("x"), Variable("z")})
        assert maximal_subtree_within_free(p, allowed) == {0, 1, 3}

    def test_root_forbidden(self, p):
        assert maximal_subtree_within_free(p, frozenset()) == frozenset()


class TestInterfaces:
    def test_interface_to_parent(self, p):
        assert interface_to_parent(p, 0) == frozenset()
        assert interface_to_parent(p, 1) == {Variable("y")}
        assert interface_to_parent(p, 2) == {Variable("z")}
        assert interface_to_parent(p, 3) == {Variable("x")}

    def test_interface_to_children(self, p):
        assert interface_to_children(p, 0) == {Variable("y"), Variable("x")}
        assert interface_to_children(p, 1) == {Variable("z")}
        assert interface_to_children(p, 2) == frozenset()

    def test_new_variables(self, p):
        assert new_variables_at(p, 0) == {Variable("x"), Variable("y")}
        assert new_variables_at(p, 1) == {Variable("z")}
        assert new_variables_at(p, 3) == {Variable("v")}

    def test_subtree_free_variables(self, p):
        assert subtree_free_variables(p, {0, 1}) == {Variable("x"), Variable("z")}
