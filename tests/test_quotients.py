"""Unit tests for CQ quotients (the approximation witness space)."""

import pytest

from repro.core.atoms import atom
from repro.core.cq import cq
from repro.core.terms import Variable
from repro.cqalgs.containment import is_contained_in
from repro.cqalgs.quotients import count_partitions, enumerate_quotients, quotient
from repro.exceptions import BudgetExceededError, ConstantsNotSupportedError


@pytest.fixture
def tri():
    return cq([], [atom("E", "?x", "?y"), atom("E", "?y", "?z"), atom("E", "?z", "?x")])


class TestQuotient:
    def test_merge_two_existentials(self, tri):
        q = quotient(tri, [[Variable("x"), Variable("y")]])
        assert len(q.variables()) == 2
        assert atom("E", "?x", "?x") in q.atoms

    def test_free_representative_wins(self):
        q0 = cq(["?x"], [atom("E", "?x", "?y")])
        q = quotient(q0, [[Variable("y"), Variable("x")]])
        assert q.free_variables == (Variable("x"),)
        assert q.atoms == frozenset([atom("E", "?x", "?x")])

    def test_two_frees_in_block_rejected(self):
        q0 = cq(["?x", "?y"], [atom("E", "?x", "?y")])
        with pytest.raises(ValueError):
            quotient(q0, [[Variable("x"), Variable("y")]])

    def test_identity_blocks(self, tri):
        assert quotient(tri, [[v] for v in tri.variables()]) == tri


class TestEnumeration:
    def test_count_matches_bell_for_existentials(self, tri):
        # 3 existential variables, no frees: Bell(3) = 5 partitions.
        assert count_partitions(tri) == 5

    def test_all_quotients_contained_in_original(self, tri):
        for q in enumerate_quotients(tri):
            assert is_contained_in(q, tri)

    def test_identity_included(self, tri):
        assert tri in set(enumerate_quotients(tri))

    def test_total_collapse_included(self, tri):
        loop = cq([], [atom("E", "?x", "?x")])
        quotients = list(enumerate_quotients(tri))
        assert any(q.atoms == loop.atoms for q in quotients)

    def test_free_variables_never_merged(self):
        q0 = cq(["?x", "?y"], [atom("E", "?x", "?y"), atom("E", "?y", "?z")])
        for q in enumerate_quotients(q0):
            assert q.free_variables == q0.free_variables

    def test_constants_rejected(self):
        q0 = cq([], [atom("E", "?x", "c")])
        with pytest.raises(ConstantsNotSupportedError):
            list(enumerate_quotients(q0))

    def test_budget(self):
        big = cq([], [atom("R", *("?v%d" % i for i in range(13)))])
        with pytest.raises(BudgetExceededError):
            list(enumerate_quotients(big))

    def test_deduplication(self):
        q0 = cq([], [atom("E", "?x", "?y")])
        quotients = list(enumerate_quotients(q0))
        assert len(quotients) == len(set(quotients)) == 2  # identity + collapse
