"""Unit tests for WB(k) membership and approximation (Section 5)."""

import pytest

from repro.core.atoms import atom
from repro.core.cq import cq
from repro.exceptions import ConstantsNotSupportedError
from repro.wdpt.approximation import (
    candidate_space,
    find_wb_equivalent,
    is_in_m_wb,
    is_wb_approximation,
    wb_approximation,
    wb_approximations,
)
from repro.wdpt.classes import WB_BETA_HW, WB_TW, is_in_wb
from repro.wdpt.subsumption import is_subsumed_by, is_subsumption_equivalent
from repro.wdpt.wdpt import WDPT, wdpt_from_nested


@pytest.fixture
def triangle_tree():
    """Triangle in the root (tw 2) with an optional acyclic child."""
    return wdpt_from_nested(
        (
            [atom("E", "?x", "?y"), atom("E", "?y", "?z"), atom("E", "?z", "?x")],
            [([atom("F", "?x", "?w")], [])],
        ),
        free_variables=["?x", "?w"],
    )


class TestCandidateSpace:
    def test_candidates_subsumed_and_include_normal_form(self, triangle_tree):
        candidates = list(candidate_space(triangle_tree))
        assert candidates
        for c in candidates[:10]:
            assert is_subsumed_by(c, triangle_tree)

    def test_constants_rejected(self):
        p = wdpt_from_nested(([atom("E", "?x", "c")], []), free_variables=["?x"])
        with pytest.raises(ConstantsNotSupportedError):
            list(candidate_space(p))


class TestMembership:
    def test_already_in_class(self, triangle_tree):
        assert is_in_m_wb(triangle_tree, 2, WB_TW)
        assert find_wb_equivalent(triangle_tree, 2, WB_TW) is not None

    def test_not_in_class(self, triangle_tree):
        assert not is_in_m_wb(triangle_tree, 1, WB_TW)

    def test_single_node_exact_positive(self):
        # Triangle + self-loop: semantically TW(1) (folds to the loop).
        q = cq(
            ["?x"],
            [
                atom("E", "?x", "?x"),
                atom("E", "?x", "?y"),
                atom("E", "?y", "?z"),
                atom("E", "?z", "?y"),
            ],
        )
        p = WDPT.from_cq(q)
        witness = find_wb_equivalent(p, 1, WB_TW)
        assert witness is not None
        assert is_in_wb(witness, 1, WB_TW)
        assert is_subsumption_equivalent(p, witness)

    def test_single_node_exact_negative(self):
        tri = WDPT.from_cq(
            cq([], [atom("E", "?x", "?y"), atom("E", "?y", "?z"), atom("E", "?z", "?x")])
        )
        assert not is_in_m_wb(tri, 1, WB_TW)

    def test_prunable_tree_member(self):
        # The cyclic part sits in a branch with no free variables: pruning
        # removes it, so p IS subsumption-equivalent to a WB(1) tree.
        p = wdpt_from_nested(
            (
                [atom("A", "?x")],
                [([atom("E", "?u", "?v"), atom("E", "?v", "?w"), atom("E", "?w", "?u"),
                   atom("E", "?x", "?u")], [])],
            ),
            free_variables=["?x"],
        )
        assert not is_in_wb(p, 1, WB_TW)
        witness = find_wb_equivalent(p, 1, WB_TW)
        assert witness is not None
        assert is_in_wb(witness, 1, WB_TW)
        assert is_subsumption_equivalent(p, witness)

    def test_beta_hw_variant(self, triangle_tree):
        assert is_in_m_wb(triangle_tree, 2, WB_BETA_HW)
        assert not is_in_m_wb(triangle_tree, 1, WB_BETA_HW)


class TestApproximation:
    def test_in_class_returns_self(self, triangle_tree):
        assert wb_approximation(triangle_tree, 2, WB_TW) == triangle_tree

    def test_soundness(self, triangle_tree):
        apps = wb_approximations(triangle_tree, 1, WB_TW)
        assert apps
        for a in apps:
            assert is_in_wb(a, 1, WB_TW)
            assert is_subsumed_by(a, triangle_tree)

    def test_maximality_within_space(self, triangle_tree):
        apps = wb_approximations(triangle_tree, 1, WB_TW)
        for a in apps:
            assert is_wb_approximation(a, triangle_tree, 1, WB_TW)

    def test_single_node_delegates_to_cq_theory(self):
        tri = WDPT.from_cq(
            cq([], [atom("E", "?x", "?y"), atom("E", "?y", "?z"), atom("E", "?z", "?x")])
        )
        apps = wb_approximations(tri, 1, WB_TW)
        assert len(apps) == 1
        assert apps[0].to_cq().atoms == frozenset([atom("E", "?x", "?x")]) or len(
            apps[0].to_cq().atoms
        ) == 1

    def test_non_member_rejected_by_checker(self, triangle_tree):
        assert not is_wb_approximation(triangle_tree, triangle_tree, 1, WB_TW)

    def test_tree_approximation_keeps_optional_branch(self, triangle_tree):
        # A good approximation should retain the optional F-branch (pure
        # collapse would lose optionality); at minimum the chosen one must
        # subsume the collapse.
        apps = wb_approximations(triangle_tree, 1, WB_TW)
        assert any(len(a.tree) > 1 for a in apps)
