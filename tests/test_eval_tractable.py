"""Unit tests for the Theorem 6/7 interface dynamic program."""

import pytest

from repro.core.atoms import atom
from repro.core.database import Database
from repro.core.mappings import Mapping
from repro.wdpt.eval_tractable import eval_tractable
from repro.wdpt.evaluation import evaluate
from repro.wdpt.wdpt import wdpt_from_nested
from repro.workloads.families import (
    complete_graph_edges,
    example2_graph,
    figure1_wdpt,
    odd_cycle_edges,
    three_colorability_instance,
)
from repro.workloads.generators import random_database, random_wdpt


@pytest.fixture
def figure1():
    return figure1_wdpt()


@pytest.fixture
def db():
    return example2_graph().to_database()


class TestFigure1:
    def test_positive_answers(self, figure1, db):
        assert eval_tractable(figure1, db, Mapping({"?x": "Our_love", "?y": "Caribou"}))
        assert eval_tractable(
            figure1, db, Mapping({"?x": "Swim", "?y": "Caribou", "?z": "2"})
        )

    def test_non_maximal_rejected(self, figure1, db):
        # Swim extends to z=2, so the z-less mapping is not an answer.
        assert not eval_tractable(figure1, db, Mapping({"?x": "Swim", "?y": "Caribou"}))

    def test_wrong_value_rejected(self, figure1, db):
        assert not eval_tractable(
            figure1, db, Mapping({"?x": "Our_love", "?y": "Caribou", "?z": "2"})
        )

    def test_domain_not_free_rejected(self, figure1, db):
        p = figure1.with_free_variables(["?y", "?z"])
        assert not eval_tractable(p, db, Mapping({"?x": "Swim"}))

    def test_unknown_variable_rejected(self, figure1, db):
        assert not eval_tractable(figure1, db, Mapping({"?qq": "Swim"}))


class TestMinimalSubtreeFreeCheck:
    def test_forced_extra_free_variable(self):
        # Reaching ?w forces through node 1 which introduces free ?z.
        p = wdpt_from_nested(
            ([atom("A", "?x")], [([atom("B", "?x", "?z")], [([atom("C", "?z", "?w")], [])])]),
            free_variables=["?x", "?z", "?w"],
        )
        db = Database([atom("A", 1), atom("B", 1, 2), atom("C", 2, 3)])
        assert not eval_tractable(p, db, Mapping({"?x": 1, "?w": 3}))
        assert eval_tractable(p, db, Mapping({"?x": 1, "?z": 2, "?w": 3}))


class TestProposition3:
    def test_three_colorable_positive(self):
        db, p, h = three_colorability_instance(5, odd_cycle_edges(5))
        assert eval_tractable(p, db, h)

    def test_k4_negative(self):
        db, p, h = three_colorability_instance(4, complete_graph_edges(4))
        assert not eval_tractable(p, db, h)

    def test_triangle_positive(self):
        db, p, h = three_colorability_instance(3, complete_graph_edges(3))
        assert eval_tractable(p, db, h)


class TestExistentialBlocking:
    def test_existential_choice_must_block_free_extension(self):
        # Choosing u=1 satisfies the root and BLOCKS the child (no B(1,·));
        # choosing u=2 would open the child and force free ?y into the
        # answer.  The DP must find the blocking choice.
        p = wdpt_from_nested(
            ([atom("A", "?x", "?u")], [([atom("B", "?u", "?y")], [])]),
            free_variables=["?x", "?y"],
        )
        db = Database([atom("A", 7, 1), atom("A", 7, 2), atom("B", 2, 9)])
        assert eval_tractable(p, db, Mapping({"?x": 7}))
        assert eval_tractable(p, db, Mapping({"?x": 7, "?y": 9}))

    def test_no_blocking_choice(self):
        p = wdpt_from_nested(
            ([atom("A", "?x", "?u")], [([atom("B", "?u", "?y")], [])]),
            free_variables=["?x", "?y"],
        )
        db = Database([atom("A", 7, 2), atom("B", 2, 9)])
        # Every root homomorphism extends into the child: {?x:7} not answer.
        assert not eval_tractable(p, db, Mapping({"?x": 7}))
        assert eval_tractable(p, db, Mapping({"?x": 7, "?y": 9}))


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(8))
    def test_dp_agrees_with_enumeration(self, seed):
        p = random_wdpt(depth=2, fanout=2, atoms_per_node=2, fresh_vars_per_node=1, seed=seed)
        db = random_database(10, relations=("E",), domain_size=5, seed=seed + 100)
        answers = evaluate(p, db)
        for h in answers:
            assert eval_tractable(p, db, h), "DP rejected true answer %r" % (h,)
        # Some negatives: restrictions of answers (proper ones) and junk.
        for h in answers:
            domain = sorted(h.domain())
            if len(domain) >= 1:
                restricted = h.restrict(domain[:-1])
                assert eval_tractable(p, db, restricted) == (restricted in answers)

    @pytest.mark.parametrize("seed", range(4))
    def test_dp_rejects_non_answers(self, seed):
        p = random_wdpt(depth=1, fanout=2, atoms_per_node=2, fresh_vars_per_node=1, seed=seed)
        db = random_database(8, relations=("E",), domain_size=4, seed=seed + 50)
        answers = evaluate(p, db)
        frees = list(p.free_variables)
        from repro.core.terms import Constant

        adom = sorted(db.active_domain())
        if frees and adom:
            for value in adom[:3]:
                candidate = Mapping({frees[0]: value})
                assert eval_tractable(p, db, candidate) == (candidate in answers)
