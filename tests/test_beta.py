"""Unit tests for β-acyclicity and HW'(k)."""

import itertools

import pytest

from repro.exceptions import BudgetExceededError
from repro.hypergraphs.beta import (
    beta_hypertreewidth_at_most,
    beta_hypertreewidth_exact,
    is_beta_acyclic,
)
from repro.hypergraphs.gyo import is_alpha_acyclic
from repro.hypergraphs.hypergraph import Hypergraph


def theta(n):
    edges = [{i, j} for i, j in itertools.combinations(range(n), 2)]
    edges.append(set(range(n)))
    return Hypergraph(edges)


class TestBetaAcyclicity:
    def test_path_beta_acyclic(self):
        assert is_beta_acyclic(Hypergraph([{1, 2}, {2, 3}]))

    def test_triangle_not(self):
        assert not is_beta_acyclic(Hypergraph([{1, 2}, {2, 3}, {1, 3}]))

    def test_alpha_but_not_beta(self):
        # θ_3 is α-acyclic but its triangle subquery is cyclic.
        H = theta(3)
        assert is_alpha_acyclic(H)
        assert not is_beta_acyclic(H)

    def test_chain_of_nested_edges(self):
        assert is_beta_acyclic(Hypergraph([{1}, {1, 2}, {1, 2, 3}]))

    def test_empty(self):
        assert is_beta_acyclic(Hypergraph([]))

    def test_beta_implies_alpha(self):
        for edges in ([{1, 2}, {2, 3}], [{1, 2, 3}, {3, 4}], [{1}]):
            H = Hypergraph(edges)
            if is_beta_acyclic(H):
                assert is_alpha_acyclic(H)


class TestBetaHw:
    def test_k1_equals_beta_acyclicity(self):
        H = Hypergraph([{1, 2}, {2, 3}])
        assert beta_hypertreewidth_at_most(H, 1)
        assert not beta_hypertreewidth_at_most(theta(3), 1)

    def test_triangle_is_two(self):
        tri = Hypergraph([{1, 2}, {2, 3}, {1, 3}])
        assert beta_hypertreewidth_at_most(tri, 2)
        assert beta_hypertreewidth_exact(tri) == 2

    def test_theta_grows(self):
        # θ_5 contains a K5 subquery with ghw 3 > 2.
        assert not beta_hypertreewidth_at_most(theta(5), 2)
        assert beta_hypertreewidth_at_most(theta(5), 3)

    def test_k0(self):
        assert beta_hypertreewidth_at_most(Hypergraph([]), 0)
        assert not beta_hypertreewidth_at_most(Hypergraph([{1}]), 0)

    def test_budget(self):
        # 18 edges forming 6 disjoint triangles: ghw 2, not β-acyclic, and
        # too many edges for the 2^m subquery sweep.
        triangles = []
        for i in range(6):
            a, b, c = 3 * i, 3 * i + 1, 3 * i + 2
            triangles += [{a, b}, {b, c}, {a, c}]
        big = Hypergraph(triangles)
        with pytest.raises(BudgetExceededError):
            beta_hypertreewidth_at_most(big, 2)

    def test_beta_acyclic_fast_path_any_k(self):
        chain = Hypergraph([{i, i + 1, 100} for i in range(20)])
        if is_beta_acyclic(chain):
            assert beta_hypertreewidth_at_most(chain, 2)

    def test_full_hypergraph_failure_short_circuits(self):
        # ghw of the whole hypergraph already exceeds k: no enumeration.
        K5 = Hypergraph([{i, j} for i, j in itertools.combinations(range(5), 2)])
        assert not beta_hypertreewidth_at_most(K5, 2)
