"""Tests for the subsumption counterexample API."""

from repro.core.atoms import atom
from repro.wdpt.subsumption import is_subsumed_by, subsumption_counterexample
from repro.wdpt.wdpt import wdpt_from_nested
from repro.workloads.families import figure1_wdpt


def test_none_when_subsumed():
    p = figure1_wdpt()
    assert subsumption_counterexample(p, p) is None


def test_identifies_dropped_branch():
    p = figure1_wdpt()
    from repro.wdpt.transform import _restrict_to_nodes

    pruned = _restrict_to_nodes(p, {0, 1})  # dropped the formed_in branch
    assert is_subsumed_by(pruned, p)
    ce = subsumption_counterexample(p, pruned)
    assert ce is not None
    assert 2 in ce  # the witnessing subtree uses the dropped branch


def test_foreign_free_variable_detected():
    a = wdpt_from_nested(([atom("A", "?x")], []), free_variables=["?x"])
    b = wdpt_from_nested(([atom("A", "?q")], []), free_variables=["?q"])
    ce = subsumption_counterexample(a, b)
    assert ce == frozenset({0})


def test_counterexample_consistent_with_decision():
    weak = wdpt_from_nested(([atom("A", "?x")], []), free_variables=["?x"])
    strong = wdpt_from_nested(
        ([atom("A", "?x"), atom("B", "?x")], []), free_variables=["?x"]
    )
    assert (subsumption_counterexample(strong, weak) is None) == is_subsumed_by(
        strong, weak
    )
    assert (subsumption_counterexample(weak, strong) is None) == is_subsumed_by(
        weak, strong
    )
