"""Unit tests for WDPT semantics (Definition 2) and general evaluation."""

import pytest

from repro.core.atoms import atom
from repro.core.database import Database
from repro.core.mappings import Mapping
from repro.wdpt.evaluation import (
    eval_check,
    evaluate,
    evaluate_max,
    evaluate_reference,
    homomorphisms_reference,
    max_eval_check,
    maximal_homomorphisms,
    partial_eval_check,
)
from repro.wdpt.wdpt import WDPT, wdpt_from_nested
from repro.workloads.families import example2_graph, figure1_wdpt
from repro.workloads.generators import random_database, random_wdpt


@pytest.fixture
def figure1():
    return figure1_wdpt()


@pytest.fixture
def db():
    return example2_graph().to_database()


class TestExample2:
    def test_answers(self, figure1, db):
        answers = evaluate(figure1, db)
        assert answers == {
            Mapping({"?x": "Our_love", "?y": "Caribou"}),
            Mapping({"?x": "Swim", "?y": "Caribou", "?z": "2"}),
        }

    def test_reference_agrees(self, figure1, db):
        assert evaluate(figure1, db) == evaluate_reference(figure1, db)

    def test_homomorphisms_include_non_maximal(self, figure1, db):
        homs = homomorphisms_reference(figure1, db)
        maximal = maximal_homomorphisms(figure1, db)
        assert maximal <= homs
        assert len(homs) > len(maximal)


class TestExample3:
    def test_projection(self, figure1, db):
        p = figure1.with_free_variables(["?y", "?z", "?z2"])
        assert evaluate(p, db) == {
            Mapping({"?y": "Caribou"}),
            Mapping({"?y": "Caribou", "?z": "2"}),
        }


class TestExample7:
    def test_max_semantics(self, figure1, db):
        p = figure1.with_free_variables(["?y", "?z"])
        assert evaluate(p, db) == {
            Mapping({"?y": "Caribou"}),
            Mapping({"?y": "Caribou", "?z": "2"}),
        }
        assert evaluate_max(p, db) == {Mapping({"?y": "Caribou", "?z": "2"})}


class TestCQEmbedding:
    def test_single_node_wdpt_equals_cq(self):
        from repro.core.cq import cq
        from repro.cqalgs.naive import evaluate_naive

        q = cq(["?x"], [atom("E", "?x", "?y")])
        p = WDPT.from_cq(q)
        db = Database([atom("E", 1, 2), atom("E", 3, 4)])
        assert evaluate(p, db) == evaluate_naive(q, db)


class TestOptionalSemantics:
    def test_failed_optional_still_answers(self):
        p = wdpt_from_nested(
            ([atom("A", "?x")], [([atom("B", "?x", "?y")], [])]),
            free_variables=["?x", "?y"],
        )
        db = Database([atom("A", 1)])
        assert evaluate(p, db) == {Mapping({"?x": 1})}

    def test_successful_optional_must_extend(self):
        p = wdpt_from_nested(
            ([atom("A", "?x")], [([atom("B", "?x", "?y")], [])]),
            free_variables=["?x", "?y"],
        )
        db = Database([atom("A", 1), atom("B", 1, 5)])
        # {?x: 1} alone is NOT maximal — B(1,5) extends it.
        assert evaluate(p, db) == {Mapping({"?x": 1, "?y": 5})}

    def test_mixed(self):
        p = wdpt_from_nested(
            ([atom("A", "?x")], [([atom("B", "?x", "?y")], [])]),
            free_variables=["?x", "?y"],
        )
        db = Database([atom("A", 1), atom("A", 2), atom("B", 2, 9)])
        assert evaluate(p, db) == {
            Mapping({"?x": 1}),
            Mapping({"?x": 2, "?y": 9}),
        }

    def test_nested_optionals(self):
        p = wdpt_from_nested(
            (
                [atom("A", "?x")],
                [([atom("B", "?x", "?y")], [([atom("C", "?y", "?z")], [])])],
            ),
            free_variables=["?x", "?y", "?z"],
        )
        db = Database([atom("A", 1), atom("B", 1, 2), atom("C", 2, 3)])
        assert evaluate(p, db) == {Mapping({"?x": 1, "?y": 2, "?z": 3})}

    def test_child_with_no_new_variables_acts_as_filter(self):
        # Child {B(x)} adds no variables; answers are identical mappings
        # whether or not it matches.
        p = wdpt_from_nested(
            ([atom("A", "?x")], [([atom("B", "?x")], [([atom("C", "?x", "?y")], [])])]),
            free_variables=["?x", "?y"],
        )
        db = Database([atom("A", 1), atom("A", 2), atom("B", 2), atom("C", 2, 7), atom("C", 1, 8)])
        # For x=1: B fails, so C is unreachable even though C(1,8) exists.
        assert evaluate(p, db) == {
            Mapping({"?x": 1}),
            Mapping({"?x": 2, "?y": 7}),
        }


class TestDecisionWrappers:
    def test_eval_check(self, figure1, db):
        assert eval_check(figure1, db, Mapping({"?x": "Our_love", "?y": "Caribou"}))
        assert not eval_check(figure1, db, Mapping({"?x": "Swim", "?y": "Caribou"}))

    def test_partial_eval_check(self, figure1, db):
        assert partial_eval_check(figure1, db, Mapping({"?y": "Caribou"}))
        assert not partial_eval_check(figure1, db, Mapping({"?y": "Beatles"}))

    def test_max_eval_check(self, figure1, db):
        p = figure1.with_free_variables(["?y", "?z"])
        assert max_eval_check(p, db, Mapping({"?y": "Caribou", "?z": "2"}))
        assert not max_eval_check(p, db, Mapping({"?y": "Caribou"}))


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(6))
    def test_topdown_equals_reference_on_random_instances(self, seed):
        p = random_wdpt(depth=2, fanout=2, atoms_per_node=2, fresh_vars_per_node=1, seed=seed)
        db = random_database(10, relations=("E",), domain_size=5, seed=seed)
        assert evaluate(p, db) == evaluate_reference(p, db)
