"""Unit tests for generalized hypertree decompositions and ghw."""

import itertools

import pytest

from repro.hypergraphs.hypergraph import Hypergraph
from repro.hypergraphs.hypertree import (
    edge_cover_number,
    greedy_edge_cover,
    hypertree_decomposition,
    hypertreewidth_at_most,
    hypertreewidth_exact,
    minimum_edge_cover,
)


def clique(n):
    return Hypergraph([{i, j} for i, j in itertools.combinations(range(n), 2)])


def theta(n):
    """Example 5's hypergraph: clique plus one covering hyperedge."""
    edges = [{i, j} for i, j in itertools.combinations(range(n), 2)]
    edges.append(set(range(n)))
    return Hypergraph(edges)


class TestEdgeCovers:
    def test_exact_cover_number(self):
        H = Hypergraph([{1, 2}, {3, 4}, {1, 2, 3}])
        assert edge_cover_number(H, frozenset({1, 2, 3, 4}), 5) == 2

    def test_limit_respected(self):
        H = Hypergraph([{1}, {2}, {3}])
        assert edge_cover_number(H, frozenset({1, 2, 3}), 2) is None
        assert edge_cover_number(H, frozenset({1, 2, 3}), 3) == 3

    def test_uncoverable(self):
        H = Hypergraph([{1}], vertices=[2])
        assert edge_cover_number(H, frozenset({2}), 5) is None

    def test_empty_bag(self):
        assert edge_cover_number(Hypergraph([{1}]), frozenset(), 0) == 0

    def test_greedy_cover_covers(self):
        H = theta(5)
        cover = greedy_edge_cover(H, frozenset(range(5)))
        assert cover is not None
        covered = set()
        for e in cover:
            covered |= e
        assert covered >= set(range(5))

    def test_minimum_edge_cover_witness(self):
        H = theta(4)
        cover = minimum_edge_cover(H, frozenset(range(4)), 4)
        assert cover is not None and len(cover) == 1


class TestGhw:
    def test_acyclic_is_one(self):
        assert hypertreewidth_exact(Hypergraph([{1, 2}, {2, 3}])) == 1
        assert hypertreewidth_exact(theta(5)) == 1

    def test_triangle_is_two(self):
        assert hypertreewidth_exact(Hypergraph([{1, 2}, {2, 3}, {1, 3}])) == 2

    def test_clique_6(self):
        assert hypertreewidth_exact(clique(6)) == 3

    def test_decision_fast_paths(self):
        assert hypertreewidth_at_most(Hypergraph([]), 0)
        assert hypertreewidth_at_most(theta(6), 1)
        assert not hypertreewidth_at_most(clique(4), 1)
        # k ≥ number of edges always succeeds
        assert hypertreewidth_at_most(clique(4), 6)

    def test_vertex_without_edge(self):
        H = Hypergraph([{1}], vertices=[2])
        assert not hypertreewidth_at_most(H, 3)

    def test_disconnected(self):
        H = Hypergraph([{1, 2}, {2, 3}, {1, 3}, {10, 11}])
        assert hypertreewidth_exact(H) == 2


class TestDecompositionWitness:
    @pytest.mark.parametrize("H", [theta(4), clique(5), Hypergraph([{1, 2}, {2, 3}, {1, 3}])],
                             ids=["theta4", "K5", "triangle"])
    def test_witness_valid_and_tight(self, H):
        width = hypertreewidth_exact(H)
        htd = hypertree_decomposition(H)
        assert htd.covers is not None
        assert htd.is_valid_for(H)
        assert htd.hypertree_width() == width

    def test_explicit_width(self):
        H = clique(4)
        htd = hypertree_decomposition(H, k=3)
        assert htd.is_valid_for(H)
        assert htd.hypertree_width() <= 3

    def test_edgeless(self):
        htd = hypertree_decomposition(Hypergraph([]))
        assert len(htd) == 1
