"""Unit tests for subsumption and subsumption-equivalence (Section 4)."""

import pytest

from repro.core.atoms import atom
from repro.wdpt.subsumption import (
    is_max_equivalent,
    is_properly_subsumed_by,
    is_subsumed_by,
    is_subsumption_equivalent,
    max_equivalent_on,
    subsumed_on,
)
from repro.wdpt.wdpt import WDPT, wdpt_from_nested
from repro.workloads.families import example2_graph, figure1_wdpt, figure2_family
from repro.workloads.generators import random_database, random_wdpt


@pytest.fixture
def figure1():
    return figure1_wdpt()


class TestBasicProperties:
    def test_reflexive(self, figure1):
        assert is_subsumed_by(figure1, figure1)

    def test_projection_subsumption(self, figure1):
        narrower = figure1.with_free_variables(["?y", "?z"])
        # Fewer free variables → answers are restrictions → subsumed.
        assert is_subsumed_by(narrower, figure1)
        assert not is_subsumed_by(figure1, narrower)

    def test_dropping_a_branch_subsumes(self, figure1):
        from repro.wdpt.transform import _restrict_to_nodes

        pruned = _restrict_to_nodes(figure1, {0, 1})
        assert is_subsumed_by(pruned, figure1)

    def test_adding_atoms_subsumes(self):
        weak = wdpt_from_nested(([atom("A", "?x")], []), free_variables=["?x"])
        strong = wdpt_from_nested(
            ([atom("A", "?x"), atom("B", "?x")], []), free_variables=["?x"]
        )
        assert is_subsumed_by(strong, weak)
        assert not is_subsumed_by(weak, strong)

    def test_equivalence_of_reordered_tree(self):
        a = wdpt_from_nested(
            ([atom("R", "?x")], [([atom("S", "?x", "?y")], []), ([atom("T", "?x", "?z")], [])]),
            free_variables=["?x", "?y", "?z"],
        )
        b = wdpt_from_nested(
            ([atom("R", "?x")], [([atom("T", "?x", "?z")], []), ([atom("S", "?x", "?y")], [])]),
            free_variables=["?x", "?y", "?z"],
        )
        assert is_subsumption_equivalent(a, b)

    def test_proper_subsumption(self, figure1):
        narrower = figure1.with_free_variables(["?y", "?z"])
        assert is_properly_subsumed_by(narrower, figure1)
        assert not is_properly_subsumed_by(figure1, figure1)


class TestCQLevel:
    def test_cq_subsumption_matches_containment_direction(self):
        from repro.core.cq import cq

        edge = WDPT.from_cq(cq(["?x"], [atom("E", "?x", "?y")]))
        path = WDPT.from_cq(cq(["?x"], [atom("E", "?x", "?y"), atom("E", "?y", "?z")]))
        assert is_subsumed_by(path, edge)
        assert not is_subsumed_by(edge, path)


class TestFigure2:
    def test_p2_properly_subsumed_by_p1(self):
        p1, p2 = figure2_family(2, k=2)
        assert is_subsumed_by(p2, p1)
        assert not is_subsumed_by(p1, p2)


class TestSemanticSoundness:
    @pytest.mark.parametrize("seed", range(4))
    def test_syntactic_subsumption_implies_semantic(self, seed):
        p = random_wdpt(depth=2, fanout=2, fresh_vars_per_node=1, seed=seed)
        q = random_wdpt(depth=2, fanout=2, fresh_vars_per_node=1, seed=seed + 1)
        db = random_database(8, relations=("E",), domain_size=4, seed=seed)
        if is_subsumed_by(p, q):
            assert subsumed_on(p, q, db)

    @pytest.mark.parametrize("seed", range(4))
    def test_projection_pairs_semantically(self, seed):
        p = random_wdpt(depth=1, fanout=2, fresh_vars_per_node=1, seed=seed, free_fraction=1.0)
        frees = sorted(p.free_variables)[:-1]
        if not frees:
            return
        narrower = p.with_free_variables(frees)
        db = random_database(8, relations=("E",), domain_size=4, seed=seed)
        assert is_subsumed_by(narrower, p)
        assert subsumed_on(narrower, p, db)


class TestProposition5:
    def test_equiv_names_agree(self, figure1):
        other = figure1.with_free_variables(["?y", "?z"])
        assert is_max_equivalent(figure1, figure1)
        assert not is_max_equivalent(figure1, other)

    @pytest.mark.parametrize("seed", range(4))
    def test_subsumption_equivalence_implies_same_max_answers(self, seed):
        a = wdpt_from_nested(
            ([atom("R", "?x")], [([atom("S", "?x", "?y")], []), ([atom("T", "?x", "?z")], [])]),
            free_variables=["?x", "?y", "?z"],
        )
        b = wdpt_from_nested(
            ([atom("R", "?x")], [([atom("T", "?x", "?z")], []), ([atom("S", "?x", "?y")], [])]),
            free_variables=["?x", "?y", "?z"],
        )
        db = random_database(20, relations=("R", "S", "T"), domain_size=3, seed=seed)
        # well-formedness: R unary in the query, binary here — regenerate
        from repro.core.database import Database

        db = Database(
            [atom("R", i) for i in range(3)]
            + [atom("S", i, (i + 1) % 3) for i in range(seed % 3)]
            + [atom("T", i, (i + 2) % 3) for i in range(3)]
        )
        assert is_subsumption_equivalent(a, b)
        assert max_equivalent_on(a, b, db)
