"""Unit tests for the measurement harness."""

import time

from repro.benchharness.reporting import format_series_table, format_table
from repro.benchharness.runner import Series, sweep, time_callable


class TestTiming:
    def test_time_callable_positive(self):
        assert time_callable(lambda: sum(range(1000))) >= 0

    def test_best_of_repeats(self):
        calls = []

        def task():
            calls.append(1)

        time_callable(task, repeats=4)
        assert len(calls) == 4


class TestSeries:
    def test_loglog_slope_linear(self):
        s = Series("linear")
        for n in (1, 2, 4, 8):
            s.add(n, 0.001 * n)
        slope = s.loglog_slope()
        assert slope is not None and abs(slope - 1.0) < 1e-6

    def test_loglog_slope_quadratic(self):
        s = Series("quad")
        for n in (1, 2, 4, 8):
            s.add(n, 0.001 * n * n)
        assert abs(s.loglog_slope() - 2.0) < 1e-6

    def test_growth_ratio_exponential(self):
        s = Series("exp")
        for n in (1, 2, 3, 4):
            s.add(n, 0.001 * 2 ** n)
        assert abs(s.growth_ratio() - 2.0) < 1e-6

    def test_degenerate_series(self):
        s = Series("flat")
        s.add(1, 0.0)
        assert s.loglog_slope() is None
        assert s.growth_ratio() is None

    def test_sweep(self):
        series = sweep("s", [1, 2, 3], lambda n: (lambda: n * n), repeats=1)
        assert series.parameters() == [1.0, 2.0, 3.0]
        assert len(series.seconds()) == 3


class TestReporting:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.0], ["x", "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_series_table(self):
        s1 = Series("fast")
        s2 = Series("slow")
        for n in (1, 2, 4):
            s1.add(n, 1e-4 * n)
            s2.add(n, 1e-3 * n * n)
        text = format_series_table([s1, s2])
        assert "fast" in text and "slow" in text
        assert "slope≈" in text and "step×" in text

    def test_missing_points_rendered_as_dash(self):
        s1 = Series("a")
        s1.add(1, 0.1)
        s2 = Series("b")
        s2.add(2, 0.2)
        text = format_series_table([s1, s2])
        assert "-" in text

    def test_second_formatting_ranges(self):
        s = Series("x")
        s.add(1, 2.0)       # seconds
        s.add(2, 0.002)     # milliseconds
        s.add(4, 2e-6)      # microseconds
        text = format_series_table([s])
        assert "2.00s" in text and "2.00ms" in text and "2µs" in text
