"""Unit tests for repro.storage: protocol, SQLite backend, persistence,
SQL semi-join pushdown, and pickling."""

import pickle

import pytest

from repro.core.atoms import Schema, atom
from repro.core.cq import ConjunctiveQuery
from repro.core.database import Database
from repro.core.terms import Constant
from repro.cqalgs.yannakakis import evaluate_acyclic
from repro.exceptions import NotGroundError, ReproError, SchemaError
from repro.storage import (
    BACKENDS,
    MemoryBackend,
    SQLiteBackend,
    StorageBackend,
    to_backend,
)
from repro.storage.sqlite import decode_value, encode_value

FACTS = [atom("E", 1, 2), atom("E", 2, 3), atom("E", 2, 2), atom("U", 1)]


@pytest.fixture(params=sorted(BACKENDS))
def db(request):
    return BACKENDS[request.param](FACTS)


# ---------------------------------------------------------------------------
# Protocol conformance (both backends through one suite)
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_is_storage_backend(self, db):
        assert isinstance(db, StorageBackend)

    def test_database_alias_is_memory_backend(self):
        assert issubclass(Database, MemoryBackend)
        assert isinstance(Database(FACTS), StorageBackend)

    def test_len_iter_contains(self, db):
        assert len(db) == 4
        assert set(db) == set(FACTS)
        assert atom("E", 1, 2) in db
        assert atom("E", 9, 9) not in db

    def test_match_with_constants_and_repeats(self, db):
        assert sorted(db.match(atom("E", 2, "?y"))) == [
            atom("E", 2, 2), atom("E", 2, 3),
        ]
        assert list(db.match(atom("E", "?x", "?x"))) == [atom("E", 2, 2)]
        assert db.match_count(atom("E", "?x", "?y")) == 3
        assert list(db.match(atom("Z", "?x"))) == []
        assert list(db.match(atom("E", "?x", "?y", "?z"))) == []

    def test_relations_facts_active_domain(self, db):
        assert db.relations() == {"E", "U"}
        assert len(db.facts("E")) == 3
        assert db.active_domain() == {Constant(1), Constant(2), Constant(3)}

    def test_add_remove_roundtrip(self, db):
        assert db.add(atom("E", 7, 8))
        assert not db.add(atom("E", 7, 8))
        db.remove(atom("E", 7, 8))
        assert atom("E", 7, 8) not in db
        with pytest.raises(KeyError):
            db.remove(atom("E", 7, 8))

    def test_version_bumps_on_mutation_only(self, db):
        v = db.data_version
        db.add(atom("E", 7, 8))
        assert db.data_version == v + 1
        db.add(atom("E", 7, 8))  # duplicate: no-op
        assert db.data_version == v + 1
        db.discard(atom("E", 7, 8))
        assert db.data_version == v + 2
        db.discard(atom("E", 7, 8))  # absent: no-op
        assert db.data_version == v + 2

    def test_non_ground_rejected(self, db):
        with pytest.raises(NotGroundError):
            db.add(atom("E", "?x", 1))

    def test_copy_independent_and_versioned(self, db):
        clone = db.copy()
        assert clone == db
        assert clone.data_version == db.data_version
        assert clone.backend_id != db.backend_id
        clone.add(atom("E", 9, 9))
        assert len(db) == 4 and len(clone) == 5

    def test_unhashable(self, db):
        with pytest.raises(TypeError):
            hash(db)

    def test_pickle_roundtrip(self, db):
        restored = pickle.loads(pickle.dumps(db))
        assert restored == db
        assert restored.data_version == db.data_version
        assert type(restored) is type(db)


class TestCrossBackend:
    def test_equality_across_kinds(self):
        mem, sql = MemoryBackend(FACTS), SQLiteBackend(FACTS)
        assert mem == sql
        assert sql == mem
        sql.add(atom("E", 9, 9))
        assert mem != sql

    def test_to_backend_converts_and_passes_through(self):
        mem = MemoryBackend(FACTS)
        assert to_backend(mem, "memory") is mem
        sql = to_backend(mem, "sqlite")
        assert isinstance(sql, SQLiteBackend) and sql == mem
        back = to_backend(sql, "memory")
        assert isinstance(back, MemoryBackend) and back == mem

    def test_to_backend_unknown_kind(self):
        with pytest.raises(ValueError):
            to_backend(FACTS, "parquet")


# ---------------------------------------------------------------------------
# Value codec
# ---------------------------------------------------------------------------
class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [0, -17, 2 ** 70, "", "hello", "i123", True, False, None,
         3.5, float("inf"), (1, "two"), frozenset({1, 2})],
    )
    def test_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_tags_are_injective_across_types(self):
        # 1, "1", True, "i1" must all encode distinctly.
        encoded = {encode_value(v) for v in (1, "1", True, "i1")}
        assert len(encoded) == 4


# ---------------------------------------------------------------------------
# SQLite specifics: schema, persistence, pushdown
# ---------------------------------------------------------------------------
class TestSQLiteBackend:
    def test_explicit_schema_enforced(self):
        db = SQLiteBackend(schema=Schema({"E": 2}))
        db.add(atom("E", 1, 2))
        with pytest.raises(SchemaError):
            db.add(atom("F", 1))

    def test_hostile_relation_names_are_safe(self):
        # Relation names never reach SQL identifiers (catalog indirection).
        name = 'x"; DROP TABLE r0; --'
        db = SQLiteBackend([atom(name, 1)])
        assert list(db.match(atom(name, "?x"))) == [atom(name, 1)]
        assert db.relations() == {name}

    def test_save_open_roundtrip(self, tmp_path):
        path = str(tmp_path / "facts.sqlite")
        db = SQLiteBackend(FACTS)
        db.add(atom("E", 7, 8))
        db.save(path)
        restored = SQLiteBackend.open(path)
        assert restored == db
        assert restored.data_version == db.data_version
        assert restored.backend_id == "sqlite:%s" % path
        restored.close()

    def test_on_disk_resume_keeps_identity(self, tmp_path):
        path = str(tmp_path / "facts.sqlite")
        db = SQLiteBackend(FACTS, path=path)
        version, backend_id = db.data_version, db.backend_id
        db.close()
        resumed = SQLiteBackend.open(path)
        assert resumed.data_version == version
        assert resumed.backend_id == backend_id
        assert set(resumed) == set(FACTS)
        resumed.close()

    def test_open_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError):
            SQLiteBackend.open(str(tmp_path / "absent.sqlite"))

    def test_pickled_on_disk_backend_reopens_file(self, tmp_path):
        path = str(tmp_path / "facts.sqlite")
        db = SQLiteBackend(FACTS, path=path)
        restored = pickle.loads(pickle.dumps(db))
        assert restored.backend_id == db.backend_id
        assert restored == db
        restored.close()
        db.close()


class TestSQLSemijoinPushdown:
    def _graph(self):
        facts = [atom("E", i, (i * 3 + 1) % 7) for i in range(7)]
        facts += [atom("E", i, (i + 1) % 5) for i in range(5)]
        facts += [atom("L", i, "c%d" % (i % 2)) for i in range(5)]
        facts += [atom("U", i) for i in (0, 2, 4)]
        return facts

    @pytest.mark.parametrize(
        "free,atoms",
        [
            (("?x", "?z"), [atom("E", "?x", "?y"), atom("E", "?y", "?z")]),
            (("?x", "?c"),
             [atom("E", "?x", "?y"), atom("L", "?y", "?c"), atom("U", "?x")]),
            (("?x",), [atom("E", "?x", "?x")]),
            ((), [atom("E", "?x", "?y"), atom("L", "?y", "?c")]),
            (("?x",), [atom("Z", "?x", "?y")]),
        ],
    )
    def test_matches_python_yannakakis(self, free, atoms):
        q = ConjunctiveQuery(free, atoms)
        facts = self._graph()
        assert evaluate_acyclic(q, SQLiteBackend(facts)) == evaluate_acyclic(
            q, MemoryBackend(facts)
        )

    def test_temp_tables_are_cleaned_up(self):
        db = SQLiteBackend(self._graph())
        q = ConjunctiveQuery(
            ("?x",), [atom("E", "?x", "?y"), atom("L", "?y", "?c")]
        )
        evaluate_acyclic(q, db)
        evaluate_acyclic(q, db)
        leftovers = db._conn.execute(
            "SELECT name FROM sqlite_temp_master WHERE type='table'"
        ).fetchall()
        assert leftovers == []
