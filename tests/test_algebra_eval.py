"""Tests for the compositional SPARQL semantics, and the [17] theorem that
it coincides with pattern-tree semantics on well-designed patterns."""

import random

import pytest

from repro.core.mappings import Mapping
from repro.rdf.algebra import And, Opt, TriplePattern, is_well_designed
from repro.rdf.algebra_eval import (
    difference,
    evaluate_pattern,
    join,
    left_outer_join,
)
from repro.rdf.graph import RDFGraph
from repro.rdf.translate import pattern_to_wdpt
from repro.wdpt.evaluation import evaluate


@pytest.fixture
def graph():
    return RDFGraph(
        [
            ("a", "p", "b"),
            ("b", "p", "c"),
            ("a", "q", "x"),
            ("c", "q", "y"),
        ]
    )


class TestPrimitives:
    def test_triple_matching(self, graph):
        result = evaluate_pattern(TriplePattern("?s", "p", "?o"), graph)
        assert len(result) == 2

    def test_triple_with_constant_mismatch(self, graph):
        assert evaluate_pattern(TriplePattern("a", "z", "?o"), graph) == frozenset()

    def test_repeated_variable(self):
        g = RDFGraph([("a", "p", "a"), ("a", "p", "b")])
        result = evaluate_pattern(TriplePattern("?x", "p", "?x"), g)
        assert result == frozenset([Mapping({"?x": "a"})])

    def test_join_compatibility(self):
        left = frozenset([Mapping({"?x": 1}), Mapping({"?x": 2})])
        right = frozenset([Mapping({"?x": 1, "?y": 5})])
        assert join(left, right) == frozenset([Mapping({"?x": 1, "?y": 5})])

    def test_difference(self):
        left = frozenset([Mapping({"?x": 1}), Mapping({"?x": 2})])
        right = frozenset([Mapping({"?x": 1, "?y": 5})])
        assert difference(left, right) == frozenset([Mapping({"?x": 2})])

    def test_left_outer_join(self):
        left = frozenset([Mapping({"?x": 1}), Mapping({"?x": 2})])
        right = frozenset([Mapping({"?x": 1, "?y": 5})])
        assert left_outer_join(left, right) == frozenset(
            [Mapping({"?x": 1, "?y": 5}), Mapping({"?x": 2})]
        )


class TestOptSemantics:
    def test_optional_fills_when_possible(self, graph):
        pat = Opt(TriplePattern("?s", "p", "?o"), TriplePattern("?o", "q", "?v"))
        result = evaluate_pattern(pat, graph)
        assert Mapping({"?s": "a", "?o": "b"}) in result          # no q from b
        assert Mapping({"?s": "b", "?o": "c", "?v": "y"}) in result

    def test_and_of_triples(self, graph):
        pat = And(TriplePattern("?s", "p", "?o"), TriplePattern("?o", "p", "?t"))
        result = evaluate_pattern(pat, graph)
        assert result == frozenset([Mapping({"?s": "a", "?o": "b", "?t": "c"})])


class TestAgreementWithPatternTrees:
    """[17]: on well-designed patterns, compositional semantics =
    projection-free WDPT semantics."""

    def test_figure1(self):
        from repro.rdf.parser import parse_pattern
        from repro.workloads.families import FIGURE1_QUERY_TEXT, example2_graph

        pattern = parse_pattern(FIGURE1_QUERY_TEXT)
        graph = example2_graph()
        compositional = evaluate_pattern(pattern, graph)
        tree = pattern_to_wdpt(pattern)
        assert evaluate(tree, graph.to_database()) == compositional

    @pytest.mark.parametrize("seed", range(10))
    def test_random_well_designed_patterns(self, seed):
        rng = random.Random(seed)
        graph = RDFGraph(
            [
                (
                    "n%d" % rng.randrange(5),
                    rng.choice(["p", "q"]),
                    "n%d" % rng.randrange(5),
                )
                for _ in range(rng.randint(3, 10))
            ]
        )
        pattern = _random_well_designed_pattern(rng)
        assert is_well_designed(pattern)
        compositional = evaluate_pattern(pattern, graph)
        tree = pattern_to_wdpt(pattern)
        assert evaluate(tree, graph.to_database()) == compositional


def _random_well_designed_pattern(rng):
    """Grow a *nested* well-designed pattern: each OPT branch anchors on a
    variable of its own parent node (never of a sibling branch), so every
    shared variable occurs along a root path — the tree discipline that
    defines well-designedness."""
    counter = [0]

    def fresh():
        counter[0] += 1
        return "?v%d" % counter[0]

    def build(anchor, depth):
        node = TriplePattern(anchor, rng.choice(["p", "q"]), fresh())
        pattern = node
        if rng.random() < 0.4:
            pattern = And(pattern, TriplePattern(anchor, "p", fresh()))
        n_children = rng.randint(0, 2) if depth < 2 else 0
        for _ in range(n_children):
            child_anchor = "?%s" % rng.choice(sorted(node.variables())).name
            pattern = Opt(pattern, build(child_anchor, depth + 1))
        return pattern

    return build(fresh(), 0)
