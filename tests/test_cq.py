"""Unit tests for repro.core.cq."""

import pytest

from repro.core.atoms import atom
from repro.core.cq import ConjunctiveQuery, cq, fresh_variable
from repro.core.terms import Constant, Variable
from repro.exceptions import SchemaError


@pytest.fixture
def path():
    return cq(["?x", "?z"], [atom("E", "?x", "?y"), atom("E", "?y", "?z")])


class TestConstruction:
    def test_free_variables(self, path):
        assert path.free_variables == (Variable("x"), Variable("z"))

    def test_empty_body_rejected(self):
        with pytest.raises(SchemaError):
            cq([], [])

    def test_free_not_in_body_rejected(self):
        with pytest.raises(SchemaError):
            cq(["?w"], [atom("E", "?x", "?y")])

    def test_duplicate_frees_rejected(self):
        with pytest.raises(SchemaError):
            cq(["?x", "?x"], [atom("E", "?x", "?y")])

    def test_constant_head_rejected(self):
        with pytest.raises(SchemaError):
            cq(["c"], [atom("E", "?x", "?y")])

    def test_body_is_set(self):
        q = cq([], [atom("E", "?x", "?y"), atom("E", "?x", "?y")])
        assert len(q.atoms) == 1


class TestStructure:
    def test_variables(self, path):
        assert path.variables() == {Variable("x"), Variable("y"), Variable("z")}

    def test_existential_variables(self, path):
        assert path.existential_variables() == {Variable("y")}

    def test_constants(self):
        q = cq([], [atom("E", "?x", "c")])
        assert q.constants() == {Constant("c")}

    def test_boolean_and_full_flags(self, path):
        assert not path.is_boolean()
        assert not path.is_full()
        assert path.boolean().is_boolean()
        assert path.full().is_full()

    def test_size(self, path):
        assert path.size() == 4

    def test_relations(self, path):
        assert path.relations() == {"E"}


class TestTransformations:
    def test_with_free_variables(self, path):
        q = path.with_free_variables(["?y"])
        assert q.free_variables == (Variable("y"),)

    def test_rename(self, path):
        q = path.rename({Variable("x"): Variable("a")})
        assert Variable("a") in q.variables()
        assert q.free_variables[0] == Variable("a")

    def test_substitute_drops_free(self, path):
        q = path.substitute({Variable("x"): Constant(1)})
        assert q.free_variables == (Variable("z"),)
        assert Constant(1) in q.constants()

    def test_freshen_disjoint(self, path):
        q = path.freshen("t")
        assert not (q.variables() & path.variables())
        assert len(q.variables()) == len(path.variables())


class TestValueSemantics:
    def test_equality(self, path):
        same = cq(["?x", "?z"], [atom("E", "?y", "?z"), atom("E", "?x", "?y")])
        assert path == same
        assert hash(path) == hash(same)

    def test_head_order_matters(self, path):
        assert path != cq(["?z", "?x"], path.atoms)

    def test_repr_contains_head_and_body(self, path):
        text = repr(path)
        assert "Ans(" in text and "E(" in text


def test_fresh_variables_distinct():
    a, b = fresh_variable(), fresh_variable()
    assert a != b
