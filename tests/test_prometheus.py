"""Tests for the Prometheus text exposition, the /metrics endpoint, and
the /debug/* routes."""

import json
import re
import threading
import urllib.error
import urllib.request

from repro.engine import Session
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.promhttp import PROMETHEUS_CONTENT_TYPE, MetricsServer
from repro.workloads.families import FIGURE1_QUERY_TEXT, example2_graph

EXAMPLE2_QUERY = "SELECT ?x ?y ?z ?z2 WHERE " + FIGURE1_QUERY_TEXT

#: One exposition line: name{labels} value — or a # TYPE/HELP comment.
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE+.naif-]+$"
)


def _assert_valid_exposition(text):
    """Structural checks over the text format 0.0.4: every line is a
    comment or a sample, every sample's family has a preceding # TYPE,
    and each family's samples are contiguous."""
    current_types = {}
    families_seen = []
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            assert kind in ("counter", "gauge", "summary", "histogram")
            assert name not in current_types, "duplicate TYPE for %s" % name
            current_types[name] = kind
            families_seen.append(name)
            continue
        if line.startswith("#"):
            continue
        assert _SAMPLE.match(line), "malformed sample line: %r" % line
        sample_name = line.split("{")[0].split(" ")[0]
        base = re.sub(r"_(sum|count|bucket)$", "", sample_name)
        # A _max suffix is its own gauge family; _sum/_count belong to the
        # summary family they extend.
        owner = sample_name if sample_name in current_types else base
        assert owner in current_types, (
            "sample %s has no preceding # TYPE" % sample_name
        )
        # Contiguity: the sample must belong to the most recent family.
        assert families_seen and owner == families_seen[-1], (
            "sample %s interleaved after family %s"
            % (sample_name, families_seen[-1])
        )


# ---------------------------------------------------------------------------
# to_prometheus
# ---------------------------------------------------------------------------
def test_counter_gauge_and_summary_families():
    registry = MetricsRegistry()
    registry.counter("requests.total").inc(3)
    registry.gauge("pool.size").set(7)
    hist = registry.histogram("latency")
    for v in (0.1, 0.2, 0.3):
        hist.observe(v)
    text = registry.to_prometheus(namespace="repro")
    _assert_valid_exposition(text)
    assert "# TYPE repro_requests_total counter" in text
    assert "repro_requests_total 3.0" in text
    assert "# TYPE repro_pool_size gauge" in text
    assert "repro_pool_size 7.0" in text
    assert "# TYPE repro_latency summary" in text
    assert 'repro_latency{quantile="0.5"} 0.2' in text
    assert "repro_latency_sum" in text and "repro_latency_count 3" in text
    assert "# TYPE repro_latency_max gauge" in text


def test_labeled_families_are_grouped_contiguously():
    registry = MetricsRegistry()
    registry.counter("engine.selected", {"engine": "yannakakis"}).inc(2)
    registry.counter("other.counter").inc()
    registry.counter("engine.selected", {"engine": "naive"}).inc(1)
    text = registry.to_prometheus()
    _assert_valid_exposition(text)
    assert 'repro_engine_selected{engine="yannakakis"} 2.0' in text
    assert 'repro_engine_selected{engine="naive"} 1.0' in text
    assert text.count("# TYPE repro_engine_selected counter") == 1


def test_label_values_are_escaped():
    registry = MetricsRegistry()
    registry.counter("weird", {"path": 'a\\b"c\nd'}).inc()
    text = registry.to_prometheus()
    assert 'path="a\\\\b\\"c\\nd"' in text


def test_metric_names_are_sanitized():
    registry = MetricsRegistry()
    registry.counter("planner.engine-time@total").inc()
    text = registry.to_prometheus()
    _assert_valid_exposition(text)
    assert "repro_planner_engine_time_total" in text


def test_planner_registry_exposition_is_valid():
    session = Session(example2_graph())
    session.query(EXAMPLE2_QUERY)
    answer = max(session.query(EXAMPLE2_QUERY).answers, key=len)
    session.ask(EXAMPLE2_QUERY, answer)
    text = session.planner.metrics.to_prometheus()
    _assert_valid_exposition(text)
    assert 'repro_planner_engine_selected{engine="wdpt-topdown"}' in text
    assert "repro_planner_engine_latency" in text
    assert 'quantile="0.99"' in text  # configurable quantiles incl. p99


# ---------------------------------------------------------------------------
# MetricsServer
# ---------------------------------------------------------------------------
def test_metrics_endpoint_serves_valid_text():
    registry = MetricsRegistry()
    registry.counter("hits").inc(5)
    with MetricsServer(registry) as server:
        with urllib.request.urlopen(server.url + "/metrics") as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
            body = response.read().decode("utf-8")
    _assert_valid_exposition(body)
    assert "repro_hits 5.0" in body


def test_healthz_and_404():
    with MetricsServer(MetricsRegistry()) as server:
        with urllib.request.urlopen(server.url + "/healthz") as response:
            health = json.loads(response.read().decode("utf-8"))
        assert health["status"] == "ok"
        assert health["sources"] == 1
        try:
            urllib.request.urlopen(server.url + "/nope")
        except urllib.error.HTTPError as exc:
            assert exc.code == 404
        else:  # pragma: no cover
            raise AssertionError("expected a 404")


def test_server_accepts_callable_sources_and_live_updates():
    registry = MetricsRegistry()
    counter = registry.counter("live")
    extra = lambda: "# TYPE extra_gauge gauge\nextra_gauge 1.0\n"  # noqa: E731
    with MetricsServer([registry, extra]) as server:
        counter.inc()
        with urllib.request.urlopen(server.url + "/metrics") as response:
            body = response.read().decode("utf-8")
        assert "repro_live 1.0" in body
        assert "extra_gauge 1.0" in body
        counter.inc()
        with urllib.request.urlopen(server.url + "/metrics") as response:
            assert "repro_live 2.0" in response.read().decode("utf-8")


def test_server_stop_frees_the_port():
    server = MetricsServer(MetricsRegistry()).start()
    port = server.port
    assert port > 0
    server.stop()
    # A second server can bind the same port immediately.
    rebound = MetricsServer(MetricsRegistry(), port=port).start()
    assert rebound.port == port
    rebound.stop()


# ---------------------------------------------------------------------------
# /debug routes
# ---------------------------------------------------------------------------
def _get_json(url):
    with urllib.request.urlopen(url) as response:
        assert response.headers["Content-Type"].startswith("application/json")
        return response.status, json.loads(response.read().decode("utf-8"))


def test_debug_index_and_named_routes():
    providers = {"queries": lambda: {"in_flight": []}, "answer": lambda: 42}
    with MetricsServer(MetricsRegistry(), debug=providers) as server:
        status, index = _get_json(server.url + "/debug")
        assert status == 200
        # /debug/profile (the sampling profiler) is always routable.
        assert sorted(index["routes"]) == [
            "/debug/answer", "/debug/profile", "/debug/queries",
        ]
        status, payload = _get_json(server.url + "/debug/queries")
        assert status == 200 and payload == {"in_flight": []}
        status, payload = _get_json(server.url + "/debug/answer")
        assert payload == 42
        status, health = _get_json(server.url + "/healthz")
        assert health["debug_routes"] == ["answer", "queries"]


def test_debug_unknown_route_is_a_404_listing_valid_ones():
    with MetricsServer(MetricsRegistry(), debug={"stats": dict}) as server:
        try:
            urllib.request.urlopen(server.url + "/debug/nope")
        except urllib.error.HTTPError as exc:
            assert exc.code == 404
            body = json.loads(exc.read().decode("utf-8"))
            assert "/debug/stats" in body["routes"]
        else:  # pragma: no cover
            raise AssertionError("expected a 404")


def test_debug_provider_exception_is_a_500_json():
    def broken():
        raise RuntimeError("boom")

    with MetricsServer(MetricsRegistry(), debug={"broken": broken}) as server:
        try:
            urllib.request.urlopen(server.url + "/debug/broken")
        except urllib.error.HTTPError as exc:
            assert exc.code == 500
            body = json.loads(exc.read().decode("utf-8"))
            assert "RuntimeError" in body["error"] and "boom" in body["error"]
        else:  # pragma: no cover
            raise AssertionError("expected a 500")


def test_debug_html_format_renders_a_page():
    with MetricsServer(MetricsRegistry(), debug={"stats": lambda: {"k": 1}}) as server:
        with urllib.request.urlopen(server.url + "/debug/stats?format=html") as r:
            assert r.headers["Content-Type"].startswith("text/html")
            body = r.read().decode("utf-8")
    assert "<html" in body and "&quot;k&quot;" in body


def test_add_debug_registers_routes_after_start():
    with MetricsServer(MetricsRegistry()) as server:
        status, index = _get_json(server.url + "/debug")
        assert index["routes"] == ["/debug/profile"]
        server.add_debug("late", lambda: {"ok": True})
        status, payload = _get_json(server.url + "/debug/late")
        assert payload == {"ok": True}


def test_session_debug_providers_serve_live_json():
    # The query registry rides on the observation path, so the session
    # needs *some* observability turned on (obslog, resources, or stats).
    with Session(example2_graph(), track_resources=True) as session:
        session.query(EXAMPLE2_QUERY)
        session.explain(EXAMPLE2_QUERY)   # /debug/plans shows the EXPLAIN cache
        with MetricsServer(
            session.planner.metrics, debug=session.debug_providers()
        ) as server:
            _, queries = _get_json(server.url + "/debug/queries")
            assert queries["in_flight"] == []
            assert len(queries["recent"]) == 1
            recent = queries["recent"][0]
            assert recent["op"] == "query" and recent["trace_id"]
            _, plans = _get_json(server.url + "/debug/plans")
            assert len(plans["plans"]) == 1
            assert plans["plans"][0]["fingerprint"] == recent["query_id"]
            _, stats = _get_json(server.url + "/debug/stats")
            assert "queries" in stats  # empty store shape without a store


def test_debug_queries_shows_in_flight_work():
    barrier = threading.Barrier(2, timeout=10)
    parked = []

    from repro.core.atoms import atom
    from repro.core.database import Database

    class ParkingDB(Database):
        """Parks the first data access, so the query is deterministically
        in flight while the main thread hits /debug/queries."""

        __slots__ = ()

        def _park_once(self):
            if not parked:
                parked.append(True)
                barrier.wait()       # query is now in flight
                barrier.wait()       # released after the scrape

        def match(self, pattern):
            self._park_once()
            return super().match(pattern)

        def match_count(self, pattern):
            self._park_once()
            return super().match_count(pattern)

    db = ParkingDB([atom("E", 1, 2), atom("E", 2, 3)])
    with Session(db, track_resources=True, cache=False) as session:
        with MetricsServer(
            session.planner.metrics, debug=session.debug_providers()
        ) as server:
            worker = threading.Thread(
                target=session.query, args=("(?x, E, ?y)",)
            )
            worker.start()
            try:
                barrier.wait()
                _, payload = _get_json(server.url + "/debug/queries")
            finally:
                barrier.wait()
                worker.join()
            assert len(payload["in_flight"]) == 1
            flight = payload["in_flight"][0]
            assert flight["op"] == "query" and flight["trace_id"]
            assert flight["elapsed_seconds"] >= 0
    payload = session.debug_queries()
    assert payload["in_flight"] == []
    assert len(payload["recent"]) == 1


def test_debug_endpoints_survive_concurrent_hammering():
    with Session(example2_graph(), track_resources=True) as session:
        session.query(EXAMPLE2_QUERY)
        with MetricsServer(
            session.planner.metrics, debug=session.debug_providers()
        ) as server:
            errors = []

            def hammer(route):
                try:
                    for _ in range(20):
                        if route.startswith("/debug"):
                            status, _ = _get_json(server.url + route)
                        else:  # /metrics and /healthz are not all JSON
                            with urllib.request.urlopen(server.url + route) as r:
                                status = r.status
                        assert status == 200
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            def query_loop():
                try:
                    for _ in range(10):
                        session.query(EXAMPLE2_QUERY)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=hammer, args=(route,))
                for route in ("/debug/queries", "/debug/plans", "/debug/stats",
                              "/metrics", "/healthz")
            ] + [threading.Thread(target=query_loop)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []
