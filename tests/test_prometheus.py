"""Tests for the Prometheus text exposition and the /metrics endpoint."""

import json
import re
import urllib.request

from repro.engine import Session
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.promhttp import PROMETHEUS_CONTENT_TYPE, MetricsServer
from repro.workloads.families import FIGURE1_QUERY_TEXT, example2_graph

EXAMPLE2_QUERY = "SELECT ?x ?y ?z ?z2 WHERE " + FIGURE1_QUERY_TEXT

#: One exposition line: name{labels} value — or a # TYPE/HELP comment.
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE+.naif-]+$"
)


def _assert_valid_exposition(text):
    """Structural checks over the text format 0.0.4: every line is a
    comment or a sample, every sample's family has a preceding # TYPE,
    and each family's samples are contiguous."""
    current_types = {}
    families_seen = []
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            assert kind in ("counter", "gauge", "summary", "histogram")
            assert name not in current_types, "duplicate TYPE for %s" % name
            current_types[name] = kind
            families_seen.append(name)
            continue
        if line.startswith("#"):
            continue
        assert _SAMPLE.match(line), "malformed sample line: %r" % line
        sample_name = line.split("{")[0].split(" ")[0]
        base = re.sub(r"_(sum|count|bucket)$", "", sample_name)
        # A _max suffix is its own gauge family; _sum/_count belong to the
        # summary family they extend.
        owner = sample_name if sample_name in current_types else base
        assert owner in current_types, (
            "sample %s has no preceding # TYPE" % sample_name
        )
        # Contiguity: the sample must belong to the most recent family.
        assert families_seen and owner == families_seen[-1], (
            "sample %s interleaved after family %s"
            % (sample_name, families_seen[-1])
        )


# ---------------------------------------------------------------------------
# to_prometheus
# ---------------------------------------------------------------------------
def test_counter_gauge_and_summary_families():
    registry = MetricsRegistry()
    registry.counter("requests.total").inc(3)
    registry.gauge("pool.size").set(7)
    hist = registry.histogram("latency")
    for v in (0.1, 0.2, 0.3):
        hist.observe(v)
    text = registry.to_prometheus(namespace="repro")
    _assert_valid_exposition(text)
    assert "# TYPE repro_requests_total counter" in text
    assert "repro_requests_total 3.0" in text
    assert "# TYPE repro_pool_size gauge" in text
    assert "repro_pool_size 7.0" in text
    assert "# TYPE repro_latency summary" in text
    assert 'repro_latency{quantile="0.5"} 0.2' in text
    assert "repro_latency_sum" in text and "repro_latency_count 3" in text
    assert "# TYPE repro_latency_max gauge" in text


def test_labeled_families_are_grouped_contiguously():
    registry = MetricsRegistry()
    registry.counter("engine.selected", {"engine": "yannakakis"}).inc(2)
    registry.counter("other.counter").inc()
    registry.counter("engine.selected", {"engine": "naive"}).inc(1)
    text = registry.to_prometheus()
    _assert_valid_exposition(text)
    assert 'repro_engine_selected{engine="yannakakis"} 2.0' in text
    assert 'repro_engine_selected{engine="naive"} 1.0' in text
    assert text.count("# TYPE repro_engine_selected counter") == 1


def test_label_values_are_escaped():
    registry = MetricsRegistry()
    registry.counter("weird", {"path": 'a\\b"c\nd'}).inc()
    text = registry.to_prometheus()
    assert 'path="a\\\\b\\"c\\nd"' in text


def test_metric_names_are_sanitized():
    registry = MetricsRegistry()
    registry.counter("planner.engine-time@total").inc()
    text = registry.to_prometheus()
    _assert_valid_exposition(text)
    assert "repro_planner_engine_time_total" in text


def test_planner_registry_exposition_is_valid():
    session = Session(example2_graph())
    session.query(EXAMPLE2_QUERY)
    answer = max(session.query(EXAMPLE2_QUERY).answers, key=len)
    session.ask(EXAMPLE2_QUERY, answer)
    text = session.planner.metrics.to_prometheus()
    _assert_valid_exposition(text)
    assert 'repro_planner_engine_selected{engine="wdpt-topdown"}' in text
    assert "repro_planner_engine_latency" in text
    assert 'quantile="0.99"' in text  # configurable quantiles incl. p99


# ---------------------------------------------------------------------------
# MetricsServer
# ---------------------------------------------------------------------------
def test_metrics_endpoint_serves_valid_text():
    registry = MetricsRegistry()
    registry.counter("hits").inc(5)
    with MetricsServer(registry) as server:
        with urllib.request.urlopen(server.url + "/metrics") as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
            body = response.read().decode("utf-8")
    _assert_valid_exposition(body)
    assert "repro_hits 5.0" in body


def test_healthz_and_404():
    with MetricsServer(MetricsRegistry()) as server:
        with urllib.request.urlopen(server.url + "/healthz") as response:
            health = json.loads(response.read().decode("utf-8"))
        assert health["status"] == "ok"
        assert health["sources"] == 1
        try:
            urllib.request.urlopen(server.url + "/nope")
        except urllib.error.HTTPError as exc:
            assert exc.code == 404
        else:  # pragma: no cover
            raise AssertionError("expected a 404")


def test_server_accepts_callable_sources_and_live_updates():
    registry = MetricsRegistry()
    counter = registry.counter("live")
    extra = lambda: "# TYPE extra_gauge gauge\nextra_gauge 1.0\n"  # noqa: E731
    with MetricsServer([registry, extra]) as server:
        counter.inc()
        with urllib.request.urlopen(server.url + "/metrics") as response:
            body = response.read().decode("utf-8")
        assert "repro_live 1.0" in body
        assert "extra_gauge 1.0" in body
        counter.inc()
        with urllib.request.urlopen(server.url + "/metrics") as response:
            assert "repro_live 2.0" in response.read().decode("utf-8")


def test_server_stop_frees_the_port():
    server = MetricsServer(MetricsRegistry()).start()
    port = server.port
    assert port > 0
    server.stop()
    # A second server can bind the same port immediately.
    rebound = MetricsServer(MetricsRegistry(), port=port).start()
    assert rebound.port == port
    rebound.stop()
