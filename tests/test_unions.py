"""Unit tests for unions of WDPTs (Section 6)."""

import pytest

from repro.core.atoms import atom
from repro.core.cq import cq
from repro.core.database import Database
from repro.core.mappings import Mapping
from repro.wdpt.classes import WB_TW, is_in_wb
from repro.wdpt.unions import (
    UWDPT,
    as_union_of_cqs,
    evaluate_union,
    evaluate_union_max,
    is_in_m_uwb,
    is_uwb_approximation,
    phi_cq,
    phi_cq_reduced,
    union_eval,
    union_max_eval,
    union_partial_eval,
    union_subsumed_by,
    union_subsumption_equivalent,
    uwb_approximation,
    uwb_equivalent,
)
from repro.wdpt.wdpt import WDPT, wdpt_from_nested
from repro.workloads.families import example2_graph, figure1_wdpt


@pytest.fixture
def figure1():
    return figure1_wdpt()


@pytest.fixture
def db():
    return example2_graph().to_database()


@pytest.fixture
def tri_union():
    tri = WDPT.from_cq(
        cq([], [atom("E", "?x", "?y"), atom("E", "?y", "?z"), atom("E", "?z", "?x")])
    )
    edge = WDPT.from_cq(cq(["?a"], [atom("F", "?a", "?b")]))
    return UWDPT([tri, edge])


class TestBasics:
    def test_empty_union_rejected(self):
        with pytest.raises(ValueError):
            UWDPT([])

    def test_evaluation_is_union(self, figure1, db):
        other = WDPT.from_cq(cq(["?y"], [atom("triple", "?y", "formed_in", "?f")]))
        phi = UWDPT([figure1, other])
        from repro.wdpt.evaluation import evaluate

        assert evaluate_union(phi, db) == evaluate(figure1, db) | evaluate(other, db)

    def test_union_eval(self, figure1, db):
        phi = UWDPT([figure1])
        assert union_eval(phi, db, Mapping({"?x": "Our_love", "?y": "Caribou"}))
        assert not union_eval(phi, db, Mapping({"?x": "Swim", "?y": "Caribou"}))

    def test_union_partial_eval(self, figure1, db):
        phi = UWDPT([figure1])
        assert union_partial_eval(phi, db, Mapping({"?y": "Caribou"}))
        assert not union_partial_eval(phi, db, Mapping({"?y": "Beatles"}))

    def test_union_max_eval_matches_semantics(self, figure1, db):
        p7 = figure1.with_free_variables(["?y", "?z"])
        phi = UWDPT([p7])
        maximal = evaluate_union_max(phi, db)
        assert maximal == {Mapping({"?y": "Caribou", "?z": "2"})}
        for h in maximal:
            assert union_max_eval(phi, db, h)
        assert not union_max_eval(phi, db, Mapping({"?y": "Caribou"}))

    def test_max_eval_across_members(self, db):
        # Answers of one member can be non-maximal because of another.
        narrow = figure1_wdpt(projection=("?y",))
        wide = figure1_wdpt(projection=("?y", "?z"))
        phi = UWDPT([narrow, wide])
        assert not union_max_eval(phi, db, Mapping({"?y": "Caribou"}))
        assert union_max_eval(phi, db, Mapping({"?y": "Caribou", "?z": "2"}))


class TestPhiCq:
    def test_example8_count(self):
        # Figure 1 tree with projection {y, z, z2}: 4 subtree CQs.
        p = figure1_wdpt(projection=("?y", "?z", "?z2"))
        cqs = phi_cq(UWDPT([p]))
        assert len(cqs) == 4
        heads = {frozenset(q.free_variables) for q in cqs}
        from repro.core.terms import Variable

        y, z, z2 = Variable("y"), Variable("z"), Variable("z2")
        assert heads == {
            frozenset({y}),
            frozenset({y, z}),
            frozenset({y, z2}),
            frozenset({y, z, z2}),
        }

    def test_phi_equiv_phi_cq(self, figure1):
        phi = UWDPT([figure1])
        assert union_subsumption_equivalent(phi, as_union_of_cqs(phi_cq(phi)))

    def test_reduced_no_containments(self, figure1):
        from repro.cqalgs.containment import is_properly_contained_in

        reduced = phi_cq_reduced(UWDPT([figure1]))
        for q1 in reduced:
            for q2 in reduced:
                assert not is_properly_contained_in(q1, q2)


class TestUnionSubsumption:
    def test_member_subsumed_by_union(self, figure1):
        phi_small = UWDPT([figure1])
        other = WDPT.from_cq(cq(["?q"], [atom("G", "?q")]))
        phi_big = UWDPT([figure1, other])
        assert union_subsumed_by(phi_small, phi_big)
        assert not union_subsumed_by(phi_big, phi_small)


class TestSemanticOptimization:
    def test_membership_negative(self, tri_union):
        assert not is_in_m_uwb(tri_union, 1, WB_TW)

    def test_membership_positive(self, tri_union):
        assert is_in_m_uwb(tri_union, 2, WB_TW)

    def test_equivalent_union_construction(self, tri_union):
        equivalent = uwb_equivalent(tri_union, 2, WB_TW)
        assert equivalent is not None
        assert all(is_in_wb(p, 2, WB_TW) for p in equivalent)
        assert union_subsumption_equivalent(tri_union, equivalent)

    def test_equivalent_union_none_when_not_member(self, tri_union):
        assert uwb_equivalent(tri_union, 1, WB_TW) is None

    def test_membership_with_foldable_member(self):
        # Triangle with a self-loop folds to TW(1).
        q = cq([], [atom("E", "?x", "?y"), atom("E", "?y", "?z"), atom("E", "?z", "?x"),
                    atom("E", "?w", "?w")])
        phi = UWDPT([WDPT.from_cq(q)])
        assert is_in_m_uwb(phi, 1, WB_TW)


class TestUwbApproximation:
    def test_soundness(self, tri_union):
        app = uwb_approximation(tri_union, 1, WB_TW)
        assert all(is_in_wb(p, 1, WB_TW) for p in app)
        assert union_subsumed_by(app, tri_union)

    def test_is_uwb_approximation_accepts_canonical(self, tri_union):
        app = uwb_approximation(tri_union, 1, WB_TW)
        assert is_uwb_approximation(app, tri_union, 1, WB_TW)

    def test_rejects_too_weak(self, tri_union):
        weak = UWDPT([WDPT.from_cq(cq(["?a"], [atom("F", "?a", "?b")]))])
        # weak ⊑ tri_union and in class, but misses the E-loop disjunct.
        assert not is_uwb_approximation(weak, tri_union, 1, WB_TW)

    def test_rejects_unsound(self, tri_union):
        unsound = UWDPT([WDPT.from_cq(cq([], [atom("G", "?g")]))])
        assert not is_uwb_approximation(unsound, tri_union, 1, WB_TW)

    def test_size(self, tri_union):
        assert tri_union.size() == 8
        assert len(tri_union) == 2
