"""Unit tests for the EXPLAIN profiler."""

import pytest

from repro.core.atoms import atom
from repro.wdpt.explain import explain
from repro.wdpt.wdpt import wdpt_from_nested
from repro.workloads.families import figure1_wdpt, prop2_family


class TestFigure1Profile:
    def test_profile_values(self):
        profile = explain(figure1_wdpt())
        assert profile.tree_size == 3
        assert profile.n_variables == 4
        assert profile.projection_free
        assert profile.local_treewidth == 1
        assert profile.interface_width == 2
        assert profile.global_treewidth == 1

    def test_routes(self):
        profile = explain(figure1_wdpt())
        assert "Theorem 7" in profile.eval_route()
        assert "Theorem 8" in profile.partial_eval_route()

    def test_table_renders(self):
        text = explain(figure1_wdpt()).as_table()
        assert "WDPT profile" in text
        assert "EVAL route" in text


class TestRouting:
    def test_wide_interface_tree_loses_theorem7(self):
        profile = explain(prop2_family(8))
        assert profile.interface_width == 8
        # ℓ-TW(1) but interface 8 ≫ 1: Theorem 7 routing refused...
        route = profile.eval_route()
        assert "Theorem 7" not in route or "BI(8)" in route

    def test_projection_free_fallback(self):
        p = prop2_family(8)
        full = p.with_free_variables(sorted(p.variables()))
        profile = explain(full)
        assert profile.projection_free

    def test_cyclic_tree_global_width(self):
        p = wdpt_from_nested(
            (
                [atom("E", "?a", "?b"), atom("E", "?b", "?c"), atom("E", "?c", "?a")],
                [([atom("F", "?a", "?w")], [])],
            ),
            free_variables=["?a", "?w"],
        )
        profile = explain(p)
        assert profile.global_treewidth == 2
        assert profile.node_treewidths[0] == 2
        assert profile.node_hypertreewidths[0] == 2
        assert profile.global_hypertreewidth == 2
