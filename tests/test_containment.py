"""Unit tests for CQ containment / equivalence / union reduction."""

import pytest

from repro.core.atoms import atom
from repro.core.cq import cq
from repro.cqalgs.containment import (
    are_equivalent,
    is_contained_in,
    is_properly_contained_in,
    reduce_union,
    union_contained,
    union_equivalent,
)


@pytest.fixture
def edge():
    return cq(["?x"], [atom("E", "?x", "?y")])


@pytest.fixture
def path2():
    return cq(["?x"], [atom("E", "?x", "?y"), atom("E", "?y", "?z")])


class TestContainment:
    def test_longer_path_contained_in_shorter(self, edge, path2):
        assert is_contained_in(path2, edge)
        assert not is_contained_in(edge, path2)

    def test_reflexive(self, edge):
        assert is_contained_in(edge, edge)

    def test_different_free_variables(self, edge):
        other = cq(["?y"], [atom("E", "?x", "?y")])
        assert not is_contained_in(edge, other)

    def test_constants(self):
        specific = cq(["?x"], [atom("E", "?x", "a")])
        general = cq(["?x"], [atom("E", "?x", "?y")])
        assert is_contained_in(specific, general)
        assert not is_contained_in(general, specific)

    def test_triangle_contained_in_self_loop_free(self):
        tri = cq([], [atom("E", "?x", "?y"), atom("E", "?y", "?z"), atom("E", "?z", "?x")])
        loop = cq([], [atom("E", "?w", "?w")])
        # loop ⊆ triangle (map all of triangle onto the loop), not vice versa
        assert is_contained_in(loop, tri)
        assert not is_contained_in(tri, loop)

    def test_proper(self, edge, path2):
        assert is_properly_contained_in(path2, edge)
        assert not is_properly_contained_in(edge, edge)


class TestEquivalence:
    def test_redundant_atom(self, edge):
        redundant = cq(["?x"], [atom("E", "?x", "?y"), atom("E", "?x", "?z")])
        assert are_equivalent(edge, redundant)

    def test_renamed_existentials(self, edge):
        renamed = cq(["?x"], [atom("E", "?x", "?w")])
        assert are_equivalent(edge, renamed)

    def test_not_equivalent(self, edge, path2):
        assert not are_equivalent(edge, path2)


class TestUnions:
    def test_union_containment(self, edge, path2):
        assert union_contained([path2], [edge])
        assert union_contained([path2, edge], [edge])
        assert not union_contained([edge], [path2])

    def test_union_equivalence(self, edge, path2):
        assert union_equivalent([edge, path2], [edge])

    def test_reduce_union_removes_contained(self, edge, path2):
        reduced = reduce_union([edge, path2])
        assert reduced == [edge]

    def test_reduce_union_keeps_incomparable(self, edge):
        other = cq(["?x"], [atom("F", "?x", "?y")])
        assert set(reduce_union([edge, other])) == {edge, other}

    def test_reduce_union_deduplicates_equivalent(self, edge):
        renamed = cq(["?x"], [atom("E", "?x", "?w")])
        assert len(reduce_union([edge, renamed])) == 1
