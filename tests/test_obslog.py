"""Tests for the structured query log: lifecycle events, stable query IDs,
slow-query EXPLAIN ANALYZE capture, and the obslog schema validator."""

import io
import json

import pytest

from repro.engine import Session
from repro.telemetry.obslog import (
    OBSLOG_SCHEMA,
    QueryLog,
    validate_obslog,
)
from repro.telemetry.tracer import NULL_TRACER, NullTracer, current_tracer
from repro.workloads.families import FIGURE1_QUERY_TEXT, example2_graph

EXAMPLE2_QUERY = "SELECT ?x ?y ?z ?z2 WHERE " + FIGURE1_QUERY_TEXT


def _session(**kwargs):
    return Session(example2_graph(), **kwargs)


# ---------------------------------------------------------------------------
# QueryLog mechanics
# ---------------------------------------------------------------------------
def test_emit_assigns_sequence_and_schema():
    log = QueryLog()
    first = log.emit("query.start", op="query")
    second = log.emit("query.complete", query_id="abc", rows=1)
    assert first["seq"] == 1 and second["seq"] == 2
    assert first["schema"] == OBSLOG_SCHEMA
    assert [r["event"] for r in log.recent()] == ["query.start", "query.complete"]
    assert log.events("query.complete") == [second]


def test_ring_buffer_is_bounded():
    log = QueryLog(ring_size=3)
    for i in range(10):
        log.emit("e%d" % i)
    assert [r["event"] for r in log.recent()] == ["e7", "e8", "e9"]
    assert log.recent(1)[0]["event"] == "e9"


def test_sink_variants(tmp_path):
    # File-like sink: JSON lines.
    buffer = io.StringIO()
    log = QueryLog(sink=buffer)
    log.emit("query.start", op="query")
    record = json.loads(buffer.getvalue())
    assert record["event"] == "query.start" and record["op"] == "query"
    # Callable sink: record dicts.
    seen = []
    QueryLog(sink=seen.append).emit("x")
    assert seen[0]["event"] == "x"
    # Path sink: appended lines, closed handle.
    path = tmp_path / "log.jsonl"
    file_log = QueryLog(sink=str(path))
    file_log.emit("a")
    file_log.emit("b")
    file_log.close()
    lines = path.read_text().strip().splitlines()
    assert [json.loads(line)["event"] for line in lines] == ["a", "b"]


# ---------------------------------------------------------------------------
# Session lifecycle events
# ---------------------------------------------------------------------------
def test_query_lifecycle_events_and_stable_id():
    log = QueryLog()
    session = _session(obslog=log)
    result = session.query(EXAMPLE2_QUERY)
    events = [r["event"] for r in log.recent()]
    assert events == [
        "query.start", "query.parse", "query.plan", "query.cache",
        "query.complete",
    ]
    parse = log.events("query.parse")[0]
    plan = log.events("query.plan")[0]
    cache = log.events("query.cache")[0]
    complete = log.events("query.complete")[0]
    assert cache["outcome"] == "miss"
    # Stable ID: a prefix of the structural fingerprint, shared by all events.
    qid = parse["query_id"]
    assert qid == result.query.structural_fingerprint()[:16]
    assert plan["query_id"] == qid and complete["query_id"] == qid
    assert cache["query_id"] == qid
    assert plan["engine"] == "wdpt-topdown"
    assert "Theorem" in plan["theorem"]
    assert set(plan["classes"]) == {
        "local_treewidth", "interface_width", "global_treewidth",
        "global_hypertreewidth", "projection_free",
    }
    assert complete["rows"] == len(result)
    assert complete["wall_seconds"] > 0


def test_repeated_query_reports_per_call_cache_hits():
    log = QueryLog()
    session = _session(obslog=log)
    session.query(EXAMPLE2_QUERY)
    session.query(EXAMPLE2_QUERY)
    first, second = log.events("query.parse")
    assert first["parse_cache"] == {"hits": 0, "misses": 1}
    assert second["parse_cache"] == {"hits": 1, "misses": 0}


def test_ask_and_query_maximal_are_logged():
    log = QueryLog()
    session = _session(obslog=log)
    answer = max(session.query(EXAMPLE2_QUERY).answers, key=len)
    session.ask(EXAMPLE2_QUERY, answer)
    session.query_maximal(EXAMPLE2_QUERY)
    plans = log.events("query.plan")
    assert [p["engine"] for p in plans] == [
        "wdpt-topdown", "wdpt-dp", "wdpt-topdown-max",
    ]
    asks = [r for r in log.events("query.complete") if r["op"] == "ask"]
    assert asks and asks[0]["rows"] == 1  # decision True


def test_error_event_on_unparseable_query():
    from repro.exceptions import ParseError

    log = QueryLog()
    session = _session(obslog=log)
    with pytest.raises(ParseError):
        session.query("(((")
    events = [r["event"] for r in log.recent()]
    assert events == ["query.start", "query.error"]
    assert log.events("query.error")[0]["error"] == "ParseError"


# ---------------------------------------------------------------------------
# Slow-query capture
# ---------------------------------------------------------------------------
def test_slow_query_carries_explain_analyze_profile():
    log = QueryLog(slow_threshold=0.0)  # everything is "slow"
    session = _session(obslog=log)
    session.query(EXAMPLE2_QUERY)
    (slow,) = log.events("query.slow")
    assert slow["query_id"] == log.events("query.parse")[0]["query_id"]
    assert slow["engine"] == "wdpt-topdown"
    assert "Theorem" in slow["theorem"]
    profile = slow["profile"]
    assert profile["nodes"], "per-node EXPLAIN ANALYZE rows must be present"
    for row in profile["nodes"]:
        assert "node" in row and "engine" in row
    assert isinstance(profile["stages"], dict)
    # The installed tracer is removed again after the query.
    assert isinstance(current_tracer(), NullTracer)


def test_fast_queries_produce_no_slow_event():
    log = QueryLog(slow_threshold=3600.0)
    session = _session(obslog=log)
    session.query(EXAMPLE2_QUERY)
    assert log.events("query.slow") == []
    assert current_tracer() is NULL_TRACER


# ---------------------------------------------------------------------------
# validate_obslog
# ---------------------------------------------------------------------------
def test_validate_obslog_accepts_real_log(tmp_path):
    path = tmp_path / "log.jsonl"
    log = QueryLog(sink=str(path), slow_threshold=0.0)
    session = _session(obslog=log)
    session.query(EXAMPLE2_QUERY)
    log.close()
    assert validate_obslog(path.read_text().splitlines()) == []


def test_validate_obslog_rejects_malformed_lines():
    errors = validate_obslog(["not json"])
    assert any("not valid JSON" in e for e in errors)
    errors = validate_obslog(['{"ts": 1, "seq": 1, "schema": 1}'])
    assert any("'event'" in e for e in errors)
    errors = validate_obslog(
        ['{"event": "query.plan", "ts": 1, "seq": 1, "schema": 1}']
    )
    assert any("query_id" in e for e in errors)
    errors = validate_obslog(
        ['{"event": "query.slow", "ts": 1, "seq": 1, "schema": 1, '
         '"query_id": "x"}']
    )
    assert any("profile" in e for e in errors)
    assert validate_obslog([]) == ["log is empty: no events were recorded"]


def test_validate_obslog_type_checks():
    errors = validate_obslog(
        ['{"event": "x", "ts": "late", "seq": 1.5, "schema": 1}', "[1, 2]"]
    )
    assert any("'ts' must be numeric" in e for e in errors)
    assert any("'seq' must be an integer" in e for e in errors)
    assert any("not a JSON object" in e for e in errors)


# ---------------------------------------------------------------------------
# Size rotation
# ---------------------------------------------------------------------------
def _read_events(path):
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


def test_rotation_shifts_backups_and_marks_the_fresh_file(tmp_path):
    path = tmp_path / "log.jsonl"
    log = QueryLog(sink=str(path), max_bytes=200, backup_count=2)
    for i in range(40):
        log.emit("event.%02d" % i, payload="x" * 40)
    log.close()
    # Backups exist, newest first, and none has grown past one record
    # over the limit.
    backup1 = tmp_path / "log.jsonl.1"
    backup2 = tmp_path / "log.jsonl.2"
    assert backup1.exists() and backup2.exists()
    assert not (tmp_path / "log.jsonl.3").exists()
    # Every rotated-into file starts with a log.rotated record (the very
    # first file is the only one allowed to start with a plain event).
    for rotated in (path, backup1):
        first = _read_events(rotated)[0]
        assert first["event"] == "log.rotated"
        assert first["max_bytes"] == 200
        assert first["backup_count"] == 2
        assert first["rotated_to"].endswith("log.jsonl.1")
        assert first["rotated_bytes"] >= 200
    # No event was lost inside the retained window: seq is contiguous
    # across backup2 → backup1 → live file.
    seqs = [
        r["seq"]
        for rotated in (backup2, backup1, path)
        for r in _read_events(rotated)
    ]
    assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))
    # The live file overshoots the cap by at most one record (the size
    # check runs before each write).
    longest = max(
        len(line) + 1 for line in path.read_text().splitlines()
    )
    assert path.stat().st_size < 200 + longest


def test_rotation_with_zero_backups_truncates_in_place(tmp_path):
    path = tmp_path / "log.jsonl"
    log = QueryLog(sink=str(path), max_bytes=150, backup_count=0)
    for i in range(30):
        log.emit("event", payload="y" * 40)
    log.close()
    assert not (tmp_path / "log.jsonl.1").exists()
    events = _read_events(path)
    assert events[0]["event"] == "log.rotated"
    assert events[0]["rotated_to"] is None


def test_no_rotation_without_max_bytes(tmp_path):
    path = tmp_path / "log.jsonl"
    log = QueryLog(sink=str(path))
    for i in range(50):
        log.emit("event", payload="z" * 80)
    log.close()
    assert not (tmp_path / "log.jsonl.1").exists()
    assert all(r["event"] == "event" for r in _read_events(path))


def test_rotated_log_validates_and_session_survives_rotation(tmp_path):
    path = tmp_path / "log.jsonl"
    log = QueryLog(sink=str(path), max_bytes=400, backup_count=3)
    session = _session(obslog=log)
    for _ in range(6):
        session.query(EXAMPLE2_QUERY)
    log.close()
    assert (tmp_path / "log.jsonl.1").exists()
    assert validate_obslog(path.read_text().splitlines()) == []
    assert validate_obslog(
        (tmp_path / "log.jsonl.1").read_text().splitlines()
    ) == []


def test_validate_obslog_checks_rotation_and_profile_fields():
    errors = validate_obslog(
        ['{"event": "log.rotated", "ts": 1, "seq": 1, "schema": 1}']
    )
    assert any("max_bytes" in e for e in errors)
    errors = validate_obslog(
        ['{"event": "query.slow", "ts": 1, "seq": 1, "schema": 1, '
         '"query_id": "x", "profile": {"nodes": []}, '
         '"profile_samples": "nope"}']
    )
    assert any("profile_samples" in e for e in errors)
