"""Unit tests for bounded-treewidth / bounded-hypertreewidth evaluation."""

import pytest

from repro.core.atoms import atom
from repro.core.cq import cq
from repro.core.database import Database
from repro.cqalgs.dispatch import evaluate, holds
from repro.cqalgs.naive import evaluate_naive
from repro.cqalgs.structured import (
    evaluate_bounded_hypertreewidth,
    evaluate_bounded_treewidth,
)
from repro.exceptions import ClassMembershipError
from repro.workloads.generators import (
    cycle_cq,
    grid_cq,
    path_cq,
    random_graph_database,
)


@pytest.fixture
def db():
    return random_graph_database(7, 22, seed=7)


@pytest.mark.parametrize(
    "query",
    [
        path_cq(3),
        cycle_cq(4),
        cycle_cq(5),
        grid_cq(2, 3),
        cq(["?x"], [atom("E", "?x", "?y"), atom("E", "?y", "?z"), atom("E", "?z", "?x")]),
    ],
    ids=["path3", "cycle4", "cycle5", "grid2x3", "triangle-free-x"],
)
def test_td_engine_agrees_with_naive(db, query):
    assert evaluate_bounded_treewidth(query, db) == evaluate_naive(query, db)


@pytest.mark.parametrize(
    "query",
    [path_cq(3), cycle_cq(4), cq([], [atom("E", "?x", "?y"), atom("E", "?y", "?x")])],
    ids=["path3", "cycle4", "two-cycle"],
)
def test_hw_engine_agrees_with_naive(db, query):
    assert evaluate_bounded_hypertreewidth(query, db) == evaluate_naive(query, db)


def test_width_bound_enforced(db):
    tri = cycle_cq(3)
    with pytest.raises(ClassMembershipError):
        evaluate_bounded_treewidth(tri, db, k=1)
    assert evaluate_bounded_treewidth(tri, db, k=2) == evaluate_naive(tri, db)


def test_hw_bound_enforced(db):
    tri = cycle_cq(3)
    with pytest.raises(ClassMembershipError):
        evaluate_bounded_hypertreewidth(tri, db, k=1)


def test_ground_atom_filters():
    db = Database([atom("E", 1, 2), atom("M", 5)])
    q_ok = cq(["?x"], [atom("E", "?x", "?y"), atom("M", 5)])
    q_fail = cq(["?x"], [atom("E", "?x", "?y"), atom("M", 6)])
    assert evaluate_bounded_treewidth(q_ok, db) == evaluate_naive(q_ok, db)
    assert evaluate_bounded_treewidth(q_fail, db) == frozenset()


def test_constants_inside_atoms(db):
    q = cq(["?y"], [atom("E", 0, "?y"), atom("E", "?y", "?z"), atom("E", "?z", 0)])
    assert evaluate_bounded_treewidth(q, db) == evaluate_naive(q, db)


def test_repeated_variables(db):
    q = cq(["?x"], [atom("E", "?x", "?x"), atom("E", "?x", "?y")])
    assert evaluate_bounded_treewidth(q, db) == evaluate_naive(q, db)


class TestDispatch:
    def test_auto_acyclic(self, db):
        q = path_cq(3)
        assert evaluate(q, db) == evaluate_naive(q, db)

    def test_auto_cyclic_small_width(self, db):
        q = cycle_cq(4)
        assert evaluate(q, db) == evaluate_naive(q, db)

    def test_explicit_methods_agree(self, db):
        q = cycle_cq(4)
        results = {
            evaluate(q, db, method=m)
            for m in ("naive", "treewidth", "hypertreewidth")
        }
        assert len(results) == 1

    def test_unknown_method(self, db):
        with pytest.raises(ValueError):
            evaluate(path_cq(2), db, method="quantum")

    def test_holds(self, db):
        assert holds(cq([], [atom("E", "?x", "?y")]), db)
        assert not holds(cq([], [atom("Z", "?x")]), db)
