"""Property-based parity: the sharded backend is observationally
identical to memory and SQLite.

Random workloads run against :class:`repro.dist.backend.ShardedBackend`
at 1/2/4 shards and must return exactly the single-process answers —
through the Session evaluators (``query``/``query_maximal``, with and
without the result cache and resource budgets) and through the planner's
router on acyclic CQs, where a sharded database takes the distributed
Yannakakis shard program.  The recovery tests crash shard processes
(both via the in-worker crash hook and an external ``SIGKILL``) and
assert the query still answers correctly after the automatic
WAL-rebuild-and-retry; a permanently failing fleet must surface a clean
:class:`~repro.exceptions.ReproError`, never a raw
``BrokenProcessPool``.
"""

import os
import pickle
import signal

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.atoms import atom  # noqa: E402
from repro.dist.backend import ShardedBackend  # noqa: E402
from repro.dist.exec import ShardFailure  # noqa: E402
from repro.engine import Session  # noqa: E402
from repro.exceptions import ReproError, ResourceBudgetExceeded  # noqa: E402
from repro.planner.planner import Planner  # noqa: E402
from repro.storage import MemoryBackend, SQLiteBackend  # noqa: E402
from repro.telemetry.obslog import QueryLog  # noqa: E402
from repro.telemetry.resources import ResourceBudget  # noqa: E402
from repro.telemetry.tracer import Tracer, tracing  # noqa: E402
from repro.workloads.generators import (  # noqa: E402
    path_cq,
    random_database,
    random_wdpt,
    star_cq,
)

RELATIONS = ("E", "F")
SHARD_COUNTS = (1, 2, 4)


def _facts(seed, n_facts=15, domain_size=3):
    return random_database(
        n_facts, relations=RELATIONS, domain_size=domain_size, seed=seed
    ).facts()


def _query(seed):
    # Kept small (one atom and one fresh variable per node): free-variable
    # counts beyond a handful make the answer space explode combinatorially,
    # and the property needs many examples, not big ones.
    return random_wdpt(
        depth=2,
        fanout=2,
        atoms_per_node=1,
        fresh_vars_per_node=1,
        relations=RELATIONS,
        seed=seed,
    )


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6))
def test_wdpt_parity_across_shard_counts(seed):
    facts = _facts(seed)
    query = _query(seed)
    with Session(MemoryBackend(facts), cache=False) as s_mem:
        expected = s_mem.query(query).answers
        expected_max = s_mem.query_maximal(query).answers
    with Session(SQLiteBackend(facts), cache=False) as s_sql:
        assert s_sql.query(query).answers == expected
    for shards in SHARD_COUNTS:
        with Session(
            list(facts), backend="sharded", shards=shards, cache=False
        ) as session:
            assert session.query(query).answers == expected, shards
            assert session.query_maximal(query).answers == expected_max, shards


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10 ** 6),
    length=st.integers(min_value=1, max_value=4),
    rays=st.integers(min_value=1, max_value=3),
)
def test_acyclic_cq_parity(seed, length, rays):
    # The planner's router resolves the ``dist`` kernel for a sharded
    # database: the whole Yannakakis run fans out as a shard program.
    facts = _facts(seed, n_facts=30, domain_size=5)
    mem = MemoryBackend(facts)
    sharded = ShardedBackend(facts, shards=2)
    try:
        for q in (path_cq(length), star_cq(rays)):
            assert Planner().evaluate_cq(q, mem) == Planner().evaluate_cq(
                q, sharded
            )
    finally:
        sharded.shutdown()


def test_sharded_backend_selects_dist_kernel():
    from repro.relalg.config import KERNEL_DIST, default_kernel

    backend = ShardedBackend([atom("E", 1, 2)], shards=2)
    try:
        assert default_kernel(backend) == KERNEL_DIST
    finally:
        backend.shutdown()


def test_budget_parity_and_enforcement():
    facts = _facts(3, n_facts=30, domain_size=4)
    query = _query(3)
    generous = ResourceBudget(hard_intermediate_rows=10 ** 6)
    with Session(MemoryBackend(facts), cache=False, budgets=generous) as s_mem:
        expected = s_mem.query(query).answers
    with Session(
        list(facts), backend="sharded", shards=2, cache=False, budgets=generous
    ) as session:
        result = session.query(query)
        assert result.answers == expected
        # The shard program reports its global row cardinalities to the
        # coordinator's resource monitor.
        assert result.resources.peak_intermediate_rows > 0

    tiny = ResourceBudget(hard_intermediate_rows=1)
    with Session(
        list(facts), backend="sharded", shards=2, cache=False, budgets=tiny
    ) as session:
        with pytest.raises(ResourceBudgetExceeded):
            session.query(query)


def test_cache_and_mutation_parity():
    facts = _facts(7)
    query = _query(7)
    with Session(MemoryBackend(facts), cache=True) as s_mem, Session(
        list(facts), backend="sharded", shards=2, cache=True
    ) as s_dist:
        assert s_dist.query(query).answers == s_mem.query(query).answers
        # Second run is a version-keyed cache hit on both sessions.
        assert s_dist.query(query).answers == s_mem.query(query).answers
        extra = [atom("E", 0, 1), atom("F", 1, 2), atom("E", 2, 0)]
        assert s_mem.database.add_many(extra) == s_dist.database.add_many(extra)
        victim = sorted(s_mem.database.facts(), key=repr)[0]
        s_mem.database.remove(victim)
        s_dist.database.remove(victim)
        assert s_mem.database == s_dist.database
        # The caches are version-keyed: both sessions re-evaluate against
        # the mutated database (the shards replay their WAL suffix).
        assert s_dist.query(query).answers == s_mem.query(query).answers


@pytest.mark.parametrize("kind", ["memory", "sqlite", "sharded"])
def test_add_many_bumps_version_once(kind):
    db = {
        "memory": MemoryBackend,
        "sqlite": SQLiteBackend,
        "sharded": lambda: ShardedBackend(shards=2),
    }[kind]()
    try:
        before = db.data_version
        batch = [atom("E", 1, 2), atom("E", 2, 3), atom("F", 1, 1)]
        assert db.add_many(batch) == 3
        assert db.data_version == before + 1
        # A batch of pure duplicates is a no-op: no new version, so
        # version-keyed caches stay valid.
        assert db.add_many(batch) == 0
        assert db.data_version == before + 1
    finally:
        shutdown = getattr(db, "shutdown", None)
        if shutdown is not None:
            shutdown()


def test_session_env_and_kwarg_wiring(monkeypatch):
    facts = _facts(9)
    query = _query(9)
    with Session(MemoryBackend(facts), cache=False) as s_mem:
        expected = s_mem.query(query).answers
    monkeypatch.setenv("REPRO_BACKEND", "sharded")
    monkeypatch.setenv("REPRO_SHARDS", "3")
    with Session(list(facts), cache=False) as session:
        assert isinstance(session.database, ShardedBackend)
        assert session.database.shards == 3
        assert session.query(query).answers == expected
    monkeypatch.delenv("REPRO_BACKEND")
    monkeypatch.delenv("REPRO_SHARDS")
    # ``shards=`` alone implies the sharded backend.
    with Session(list(facts), shards=2, cache=False) as session:
        assert isinstance(session.database, ShardedBackend)
        assert session.database.shards == 2
        assert session.query(query).answers == expected


def test_sharded_backend_pickles_to_memory():
    # Crossing a process boundary (e.g. into a run_batch worker) must not
    # spawn nested shard fleets: the pickle round-trip demotes to a plain
    # in-memory backend with the same facts and version.
    backend = ShardedBackend(_facts(1), shards=2)
    try:
        clone = pickle.loads(pickle.dumps(backend))
        assert isinstance(clone, MemoryBackend)
        assert clone == backend
        assert clone.data_version == backend.data_version
    finally:
        backend.shutdown()


# ---------------------------------------------------------------------------
# Robustness: shard death, WAL rebuild, retry
# ---------------------------------------------------------------------------
def test_crashed_shard_rebuilds_and_query_retries():
    facts = _facts(11, n_facts=25, domain_size=4)
    q = path_cq(2)
    expected = Planner().evaluate_cq(q, MemoryBackend(facts))
    log = QueryLog()
    backend = ShardedBackend(facts, shards=2)
    backend.attach_telemetry(obslog=log)
    try:
        planner = Planner()
        assert planner.evaluate_cq(q, backend) == expected
        pids = backend.shard_pids()
        backend.fail_shard_next(0)  # the shard's next RPC dies abruptly
        assert planner.evaluate_cq(q, backend) == expected
        assert backend.shard_pids()[0] != pids[0], "shard 0 was not respawned"
        assert log.events("dist.retry")
        assert log.events("dist.shard_rebuilt")
    finally:
        backend.shutdown()


def test_sigkilled_shard_recovers():
    facts = _facts(13, n_facts=25, domain_size=4)
    q = star_cq(2)
    expected = Planner().evaluate_cq(q, MemoryBackend(facts))
    backend = ShardedBackend(facts, shards=2)
    try:
        pids = backend.shard_pids()
        os.kill(pids[1], signal.SIGKILL)
        assert Planner().evaluate_cq(q, backend) == expected
    finally:
        backend.shutdown()


def test_double_failure_is_a_clean_error(monkeypatch):
    import repro.dist.backend as dist_backend

    backend = ShardedBackend(_facts(2), shards=2)
    try:

        def always_dead(*args, **kwargs):
            raise ShardFailure({0})

        monkeypatch.setattr(dist_backend, "run_program", always_dead)
        with pytest.raises(ReproError, match="retry after rebuilding"):
            backend.dist_yannakakis([atom("E", "?x", "?y")], {}, ())
    finally:
        backend.shutdown()


# ---------------------------------------------------------------------------
# Telemetry through the shard envelopes
# ---------------------------------------------------------------------------
def test_dist_obslog_events_and_shard_metrics():
    log = QueryLog()
    facts = _facts(5, n_facts=20, domain_size=3)
    query = _query(5)
    with Session(
        list(facts), backend="sharded", shards=2, cache=False, obslog=log
    ) as session:
        session.query(query)
        exchanges = log.events("dist.exchange_rows")
        assert exchanges and all(ev["shards"] == 2 for ev in exchanges)
        assert log.events("dist.shard_ms")
        timings = session.planner.metrics.labeled_histograms(
            "dist.shard_ms", "shard"
        )
        assert set(timings) == {"s0", "s1"}


def _span_names(span):
    yield span["name"]
    for child in span.get("children", ()):
        for name in _span_names(child):
            yield name


def test_dist_spans_grafted_from_shard_workers():
    facts = _facts(6, n_facts=20, domain_size=3)
    q = path_cq(2)
    backend = ShardedBackend(facts, shards=2)
    try:
        tracer = Tracer()
        with tracing(tracer):
            Planner().evaluate_cq(q, backend)
        names = [
            name
            for root in tracer.roots
            for name in _span_names(root.to_dict())
        ]
        assert "yannakakis.dist" in names
        # Worker-side spans ride home in the reply envelopes and are
        # grafted under the coordinator's tree.
        assert "dist.shard" in names
    finally:
        backend.shutdown()
