"""Unit tests for plain-text database I/O."""

import os

import pytest

from repro.core.atoms import atom
from repro.core.database import Database
from repro.core.io import (
    format_fact,
    load_facts,
    load_tsv_directory,
    parse_fact,
    save_facts,
    save_tsv_directory,
)
from repro.exceptions import ReproError


@pytest.fixture
def db():
    return Database(
        [
            atom("E", 1, 2),
            atom("E", 2, 3),
            atom("label", "node one", "red"),
            atom("U", -5),
        ]
    )


class TestFactFormat:
    def test_roundtrip_line(self):
        for fact in (atom("E", 1, 2), atom("L", "a b", "x'y"), atom("U", -5)):
            if "'" in str(fact.args):
                continue  # quoting of embedded quotes is out of scope
            assert parse_fact(format_fact(fact)) == fact

    def test_parse_quoted(self):
        assert parse_fact("R('hello world', 3)") == atom("R", "hello world", 3)
        assert parse_fact('R("double", x)') == atom("R", "double", "x")

    def test_parse_integers(self):
        assert parse_fact("E(1, -2)") == atom("E", 1, -2)

    def test_parse_errors(self):
        for bad in ("nope", "R()", "R(a", "(a, b)"):
            with pytest.raises(ReproError):
                parse_fact(bad)

    def test_file_roundtrip(self, db, tmp_path):
        path = str(tmp_path / "data.facts")
        save_facts(db, path)
        assert load_facts(path) == db

    def test_comments_and_blanks(self, tmp_path):
        path = str(tmp_path / "data.facts")
        with open(path, "w") as f:
            f.write("# comment\n\nE(1, 2)\n")
        assert load_facts(path) == Database([atom("E", 1, 2)])

    def test_error_reports_line(self, tmp_path):
        path = str(tmp_path / "bad.facts")
        with open(path, "w") as f:
            f.write("E(1, 2)\ngarbage\n")
        with pytest.raises(ReproError, match=":2:"):
            load_facts(path)


class TestTsvFormat:
    def test_roundtrip(self, db, tmp_path):
        directory = str(tmp_path / "rel")
        save_tsv_directory(db, directory)
        assert sorted(os.listdir(directory)) == ["E.tsv", "U.tsv", "label.tsv"]
        assert load_tsv_directory(directory) == db

    def test_non_tsv_files_ignored(self, tmp_path):
        directory = str(tmp_path / "rel")
        os.makedirs(directory)
        with open(os.path.join(directory, "E.tsv"), "w") as f:
            f.write("1\t2\n")
        with open(os.path.join(directory, "README"), "w") as f:
            f.write("not data\n")
        assert load_tsv_directory(directory) == Database([atom("E", 1, 2)])

    def test_evaluation_after_load(self, db, tmp_path):
        from repro.core.cq import cq
        from repro.cqalgs.naive import evaluate_naive

        directory = str(tmp_path / "rel")
        save_tsv_directory(db, directory)
        loaded = load_tsv_directory(directory)
        q = cq(["?x"], [atom("E", "?x", "?y")])
        assert evaluate_naive(q, loaded) == evaluate_naive(q, db)
