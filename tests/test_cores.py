"""Unit tests for CQ cores and semantic width membership."""

import pytest

from repro.core.atoms import atom
from repro.core.cq import cq
from repro.cqalgs.containment import are_equivalent
from repro.cqalgs.cores import (
    core,
    is_core,
    semantically_in_beta_hw,
    semantically_in_tw,
)


class TestCore:
    def test_core_is_equivalent(self):
        q = cq([], [atom("E", "?x", "?y"), atom("E", "?a", "?b"), atom("E", "?b", "?c")])
        c = core(q)
        assert are_equivalent(q, c)

    def test_redundant_edge_folds_away(self):
        q = cq([], [atom("E", "?x", "?y"), atom("E", "?u", "?v"), atom("E", "?v", "?u")])
        c = core(q)
        # The 2-cycle absorbs the single edge.
        assert len(c.variables()) == 2

    def test_core_of_core_is_core(self):
        q = cq([], [atom("E", "?x", "?y"), atom("E", "?y", "?z")])
        assert core(core(q)) == core(q)

    def test_free_variables_fixed(self):
        q = cq(["?x"], [atom("E", "?x", "?y"), atom("E", "?u", "?v")])
        c = core(q)
        assert c.free_variables == (q.free_variables[0],)
        # ?u, ?v can fold onto ?x, ?y but ?x must survive.
        assert q.free_variables[0] in c.variables()

    def test_triangle_is_its_own_core(self):
        tri = cq([], [atom("E", "?x", "?y"), atom("E", "?y", "?z"), atom("E", "?z", "?x")])
        assert is_core(tri)
        assert core(tri) == tri

    def test_loop_folds_triangle_with_loop(self):
        q = cq(
            [],
            [
                atom("E", "?x", "?y"),
                atom("E", "?y", "?z"),
                atom("E", "?z", "?x"),
                atom("E", "?w", "?w"),
            ],
        )
        c = core(q)
        assert len(c.atoms) == 1  # everything folds into the self-loop

    def test_is_core_detects_foldable(self):
        q = cq([], [atom("E", "?x", "?y"), atom("E", "?a", "?b")])
        assert not is_core(q)


class TestSemanticMembership:
    def test_triangle_semantic_tw(self):
        tri = cq([], [atom("E", "?x", "?y"), atom("E", "?y", "?z"), atom("E", "?z", "?x")])
        assert not semantically_in_tw(tri, 1)
        assert semantically_in_tw(tri, 2)

    def test_triangle_with_loop_is_semantically_tw1(self):
        q = cq(
            [],
            [
                atom("E", "?x", "?y"),
                atom("E", "?y", "?z"),
                atom("E", "?z", "?x"),
                atom("E", "?w", "?w"),
            ],
        )
        assert semantically_in_tw(q, 1)

    def test_semantic_beta_hw(self):
        tri = cq([], [atom("E", "?x", "?y"), atom("E", "?y", "?z"), atom("E", "?z", "?x")])
        assert not semantically_in_beta_hw(tri, 1)
        assert semantically_in_beta_hw(tri, 2)

    def test_acyclic_query_trivially_member(self):
        q = cq(["?x"], [atom("E", "?x", "?y"), atom("F", "?y", "?z")])
        assert semantically_in_tw(q, 1)
        assert semantically_in_beta_hw(q, 1)
