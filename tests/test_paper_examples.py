"""Every numbered example/claim of the paper, verified end-to-end.

This file is the "does the reproduction actually match the paper?" test:
each test cites the paper artifact it reproduces.
"""

import pytest

from repro.core.atoms import atom
from repro.core.cq import cq
from repro.core.mappings import Mapping
from repro.hypergraphs.gyo import is_alpha_acyclic
from repro.hypergraphs.hypergraph import hypergraph_of_cq
from repro.hypergraphs.treewidth import treewidth_exact
from repro.wdpt.classes import (
    has_bounded_interface,
    interface_width,
    is_globally_in_tw,
    is_locally_in_tw,
)
from repro.wdpt.evaluation import evaluate, evaluate_max
from repro.wdpt.eval_tractable import eval_tractable
from repro.wdpt.subsumption import is_max_equivalent, is_subsumption_equivalent
from repro.wdpt.unions import UWDPT, phi_cq
from repro.workloads.families import (
    complete_graph_edges,
    example2_graph,
    example5_theta,
    figure1_wdpt,
    figure2_family,
    odd_cycle_edges,
    prop2_family,
    three_colorability_instance,
)


@pytest.fixture
def db():
    return example2_graph().to_database()


class TestExample1And2:
    """Query (1), Figure 1, Example 2: the evaluation over D consists of
    exactly μ₁ and μ₂."""

    def test_answers(self, db):
        p = figure1_wdpt()
        mu1 = Mapping({"?x": "Our_love", "?y": "Caribou"})
        mu2 = Mapping({"?x": "Swim", "?y": "Caribou", "?z": "2"})
        assert evaluate(p, db) == {mu1, mu2}


class TestExample3:
    """Projecting out x restricts μ₁, μ₂ to μ₁', μ₂'."""

    def test_answers(self, db):
        p = figure1_wdpt(projection=("?y", "?z", "?z2"))
        mu1p = Mapping({"?y": "Caribou"})
        mu2p = Mapping({"?y": "Caribou", "?z": "2"})
        assert evaluate(p, db) == {mu1p, mu2p}

    def test_mu1_subsumed_but_still_answer(self, db):
        """The paper stresses that with projection, both a mapping and a
        proper extension can be solutions simultaneously."""
        p = figure1_wdpt(projection=("?y", "?z", "?z2"))
        answers = evaluate(p, db)
        mu1p = Mapping({"?y": "Caribou"})
        assert mu1p in answers
        assert any(mu1p.properly_subsumed_by(a) for a in answers)


class TestExample4:
    """Path CQs are TW(1); closing the cycle gives TW(2); the clique on n
    variables has treewidth n − 1."""

    def test_path(self):
        q = cq([], [atom("E", "?x%d" % i, "?x%d" % (i + 1)) for i in range(4)])
        assert treewidth_exact(hypergraph_of_cq(q)) == 1

    def test_cycle(self):
        atoms = [atom("E", "?x%d" % i, "?x%d" % (i + 1)) for i in range(4)]
        atoms.append(atom("E", "?x0", "?x4"))
        assert treewidth_exact(hypergraph_of_cq(cq([], atoms))) == 2

    def test_clique(self):
        n = 5
        atoms = [
            atom("E", "?x%d" % i, "?x%d" % j)
            for i in range(n)
            for j in range(n)
            if i != j
        ]
        assert treewidth_exact(hypergraph_of_cq(cq([], atoms))) == n - 1


class TestExample5:
    """θ_n is acyclic (HW(1)) but of unbounded treewidth."""

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_theta(self, n):
        H = hypergraph_of_cq(example5_theta(n))
        assert is_alpha_acyclic(H)
        assert treewidth_exact(H) == n - 1


class TestExample6:
    """Figure 1's WDPT is in ℓ-TW(1) and BI(2)."""

    def test_classes(self):
        p = figure1_wdpt()
        assert is_locally_in_tw(p, 1)
        assert interface_width(p) == 2
        assert has_bounded_interface(p, 2)
        assert not has_bounded_interface(p, 1)


class TestExample7:
    """With projection to {y, z}: p(D) = {μ₁, μ₂} but p_m(D) = {μ₂}."""

    def test_max_semantics(self, db):
        p = figure1_wdpt(projection=("?y", "?z"))
        mu1 = Mapping({"?y": "Caribou"})
        mu2 = Mapping({"?y": "Caribou", "?z": "2"})
        assert evaluate(p, db) == {mu1, mu2}
        assert evaluate_max(p, db) == {mu2}


class TestExample8:
    """φ_cq of the projected Figure 1 WDPT is the union of four CQs."""

    def test_four_disjuncts(self):
        p = figure1_wdpt(projection=("?y", "?z", "?z2"))
        assert len(phi_cq(UWDPT([p]))) == 4


class TestProposition2:
    """Global tractability is strictly weaker than local + bounded
    interface: the family is in g-TW(1) but outside every BI(c)."""

    def test_separation(self):
        for n in (2, 5, 8):
            p = prop2_family(n)
            assert is_globally_in_tw(p, 1)
            assert not has_bounded_interface(p, n - 1)


class TestProposition3:
    """EVAL(g-TW(1)) encodes 3-colorability."""

    @pytest.mark.parametrize(
        "n,edges,expected",
        [
            (3, complete_graph_edges(3), True),
            (4, complete_graph_edges(4), False),
            (5, odd_cycle_edges(5), True),
        ],
        ids=["K3", "K4", "C5"],
    )
    def test_reduction(self, n, edges, expected):
        dbc, p, h = three_colorability_instance(n, edges)
        assert is_globally_in_tw(p, 1)
        assert eval_tractable(p, dbc, h) is expected


class TestTheorem15:
    """Figure 2: |p₁| = O(n²), |p₂| = Ω(2ⁿ), p₂ ⊑ p₁, p₂ ∈ WB(k),
    p₁ ∉ WB(k)."""

    def test_blowup_shape(self):
        sizes1, sizes2 = [], []
        for n in (2, 3, 4, 5):
            p1, p2 = figure2_family(n, k=2)
            sizes1.append(p1.size())
            sizes2.append(p2.size())
        # p2 at least doubles with each step eventually; p1 grows slower.
        assert sizes2[-1] / sizes2[-2] >= 1.8
        assert sizes1[-1] / sizes1[-2] < 1.8

    def test_subsumption_and_classes(self):
        from repro.wdpt.subsumption import is_subsumed_by

        p1, p2 = figure2_family(2, k=2)
        assert is_subsumed_by(p2, p1)
        assert is_globally_in_tw(p2, 2) and not is_globally_in_tw(p1, 2)


class TestProposition5:
    """≡ₛ coincides with ≡_max (implemented as the same test)."""

    def test_alias(self):
        p = figure1_wdpt()
        assert is_max_equivalent(p, p) == is_subsumption_equivalent(p, p) is True
