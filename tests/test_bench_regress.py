"""Tests for the benchmark-trajectory regression gate."""

import json
import sys

import pytest

from repro.benchharness.regress import (
    BENCHMARKS,
    TRAJECTORY_SCHEMA,
    Regression,
    append_point,
    build_point,
    compare_points,
    inject_regression,
    load_trajectory,
)


def _fake_point(**seconds):
    return {
        "schema": TRAJECTORY_SCHEMA,
        "meta": {"created": 0.0},
        "benchmarks": {
            name: {"seconds": s, "stages": {}} for name, s in seconds.items()
        },
        "planner": {},
    }


# ---------------------------------------------------------------------------
# Point construction (one real run, small repeats)
# ---------------------------------------------------------------------------
def test_build_point_runs_named_benchmarks():
    point = build_point(names=["fig1.query", "thm6.dp"], repeats=1)
    assert point["schema"] == TRAJECTORY_SCHEMA
    assert set(point["benchmarks"]) == {"fig1.query", "thm6.dp"}
    for bench in point["benchmarks"].values():
        assert bench["seconds"] > 0
        assert set(bench["stages"]) == {"analysis", "engine", "semijoin"}
    planner = point["planner"]
    assert 0.0 <= planner["plan_cache_hit_rate"] <= 1.0
    assert planner["engine_selections"], "the shared planner saw the runs"
    for snap in planner["engine_latency"].values():
        assert set(snap) == {"count", "p50", "p95", "p99", "max"}


def test_build_point_rejects_unknown_names():
    with pytest.raises(KeyError):
        build_point(names=["no.such.bench"])
    assert "fig1.query" in BENCHMARKS  # the registry itself is intact


# ---------------------------------------------------------------------------
# Trajectory file
# ---------------------------------------------------------------------------
def test_trajectory_roundtrip(tmp_path):
    path = str(tmp_path / "BENCH_eval.json")
    assert load_trajectory(path) == {"schema": TRAJECTORY_SCHEMA, "points": []}
    append_point(path, _fake_point(a=0.1))
    doc = append_point(path, _fake_point(a=0.11))
    assert len(doc["points"]) == 2
    reloaded = load_trajectory(path)
    assert reloaded["points"][1]["benchmarks"]["a"]["seconds"] == 0.11
    with open(path) as handle:  # valid, pretty-printed JSON on disk
        assert json.load(handle) == reloaded


def test_load_trajectory_rejects_other_json(tmp_path):
    path = tmp_path / "other.json"
    path.write_text("[1, 2, 3]")
    with pytest.raises(ValueError):
        load_trajectory(str(path))


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------
def test_compare_flags_only_regressions_beyond_threshold():
    prev = _fake_point(a=0.100, b=0.100, c=0.100)
    curr = _fake_point(a=0.120, b=0.130, c=0.090)
    regressions = compare_points(prev, curr, threshold_pct=25.0)
    assert [r.name for r in regressions] == ["b"]
    assert regressions[0].change_pct == pytest.approx(30.0)
    assert "b" in repr(regressions[0])


def test_compare_respects_noise_floor():
    prev = _fake_point(fast=0.00001)
    curr = _fake_point(fast=0.00009)  # 9x, but below the floor
    assert compare_points(prev, curr, min_seconds=1e-4) == []
    assert len(compare_points(prev, curr, min_seconds=1e-6)) == 1


def test_compare_ignores_new_and_removed_benchmarks():
    prev = _fake_point(old=0.1)
    curr = _fake_point(new=9.9)
    assert compare_points(prev, curr) == []


def test_inject_regression_scales_and_marks():
    point = _fake_point(a=0.1)
    inject_regression(point, "a", 10.0)
    assert point["benchmarks"]["a"]["seconds"] == pytest.approx(1.0)
    assert point["benchmarks"]["a"]["injected_factor"] == 10.0
    with pytest.raises(KeyError):
        inject_regression(point, "missing", 2.0)


def test_regression_repr_and_pct():
    r = Regression("x", 0.1, 0.2)
    assert r.change_pct == pytest.approx(100.0)


# ---------------------------------------------------------------------------
# The script end-to-end (driven in-process)
# ---------------------------------------------------------------------------
def _run_script(argv):
    import importlib.util
    import os

    spec = importlib.util.spec_from_file_location(
        "bench_regress",
        os.path.join(
            os.path.dirname(__file__), os.pardir, "scripts", "bench_regress.py"
        ),
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.main(argv)


def test_script_baseline_then_injected_regression(tmp_path, capsys):
    out = str(tmp_path / "BENCH_eval.json")
    common = ["--out", out, "--repeats", "1", "--names", "fig1.query"]
    assert _run_script(common) == 0
    assert "baseline recorded" in capsys.readouterr().out
    # A generous threshold passes...
    assert _run_script(common + ["--threshold", "10000"]) == 0
    capsys.readouterr()
    # ...an injected 100x slowdown must fail without corrupting the file.
    points_before = len(load_trajectory(out)["points"])
    code = _run_script(
        common + ["--inject", "fig1.query=100", "--no-append"]
    )
    assert code == 1
    assert "REGRESSION" in capsys.readouterr().err
    assert len(load_trajectory(out)["points"]) == points_before
