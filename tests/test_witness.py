"""Unit tests for answer provenance (witness certificates)."""

import pytest

from repro.core.atoms import atom
from repro.core.database import Database
from repro.core.mappings import Mapping
from repro.wdpt.evaluation import evaluate
from repro.wdpt.witness import witness
from repro.wdpt.wdpt import wdpt_from_nested
from repro.workloads.families import example2_graph, figure1_wdpt
from repro.workloads.generators import random_database, random_wdpt


@pytest.fixture
def figure1():
    return figure1_wdpt()


@pytest.fixture
def db():
    return example2_graph().to_database()


class TestFigure1Witnesses:
    def test_partial_answer_witness(self, figure1, db):
        w = witness(figure1, db, Mapping({"?x": "Our_love", "?y": "Caribou"}))
        assert w is not None
        assert w.subtree == frozenset({0})
        assert set(w.blocked_children) == {1, 2}
        assert w.verify()

    def test_extended_answer_witness(self, figure1, db):
        w = witness(figure1, db, Mapping({"?x": "Swim", "?y": "Caribou", "?z": "2"}))
        assert w is not None
        assert w.subtree == frozenset({0, 1})
        assert w.blocked_children == (2,)
        assert w.verify()

    def test_non_answer_has_no_witness(self, figure1, db):
        assert witness(figure1, db, Mapping({"?x": "Swim", "?y": "Caribou"})) is None
        assert witness(figure1, db, Mapping({"?x": "Nope"})) is None

    def test_describe_readable(self, figure1, db):
        w = witness(figure1, db, Mapping({"?x": "Our_love", "?y": "Caribou"}))
        text = w.describe()
        assert "matched nodes" in text and "OPT failed" in text


class TestVerification:
    def test_tampered_certificate_fails(self, figure1, db):
        w = witness(figure1, db, Mapping({"?x": "Our_love", "?y": "Caribou"}))
        # Tamper: claim a bigger subtree.
        w.subtree = frozenset({0, 1})
        assert not w.verify()

    def test_wrong_blocked_set_fails(self, figure1, db):
        w = witness(figure1, db, Mapping({"?x": "Our_love", "?y": "Caribou"}))
        w.blocked_children = (1,)  # missing child 2
        assert not w.verify()


class TestRandomInstances:
    @pytest.mark.parametrize("seed", range(5))
    def test_every_answer_has_verified_witness(self, seed):
        p = random_wdpt(depth=2, fanout=2, atoms_per_node=2, fresh_vars_per_node=1, seed=seed)
        db = random_database(10, relations=("E",), domain_size=5, seed=seed + 3)
        for answer in sorted(evaluate(p, db), key=repr)[:8]:
            w = witness(p, db, answer)
            assert w is not None and w.verify()

    def test_projection_hides_variables_but_witness_is_total(self):
        p = wdpt_from_nested(
            ([atom("A", "?x", "?u")], [([atom("B", "?u", "?y")], [])]),
            free_variables=["?x", "?y"],
        )
        db = Database([atom("A", 1, 10), atom("B", 10, 5)])
        w = witness(p, db, Mapping({"?x": 1, "?y": 5}))
        assert w is not None
        assert w.homomorphism["?u"].value == 10
