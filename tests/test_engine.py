"""Unit tests for the Session API."""

import pytest

from repro.core.atoms import atom
from repro.core.database import Database
from repro.core.mappings import Mapping
from repro.engine import Result, Session
from repro.exceptions import ParseError
from repro.workloads.families import FIGURE1_QUERY_TEXT, example2_graph

SURFACE = (
    "SELECT ?x ?y ?z WHERE { "
    '?x recorded_by ?y . ?x published "after_2010" '
    "OPTIONAL { ?x NME_rating ?z } }"
)


@pytest.fixture
def session():
    return Session(example2_graph())


class TestConstruction:
    def test_from_graph(self, session):
        assert session.size == 5

    def test_from_database(self):
        s = Session(Database([atom("E", 1, 2)]))
        assert s.size == 1

    def test_from_atoms(self):
        s = Session([atom("E", 1, 2), atom("E", 2, 3)])
        assert s.size == 2


class TestParsing:
    def test_surface_sparql(self, session):
        p = session.parse(SURFACE)
        assert len(p.tree) == 2

    def test_algebraic_fallback(self, session):
        p = session.parse(FIGURE1_QUERY_TEXT)
        assert len(p.tree) == 3

    def test_cache(self, session):
        a = session.parse(SURFACE)
        b = session.parse(SURFACE)
        assert a is b

    def test_wdpt_passthrough(self, session):
        p = session.parse(SURFACE)
        assert session.parse(p) is p

    def test_unparseable(self, session):
        with pytest.raises(ParseError):
            session.parse("SELECT garbage {{{{")


class TestQuerying:
    def test_query(self, session):
        result = session.query(SURFACE)
        assert len(result) == 2
        assert Mapping({"?x": "Swim", "?y": "Caribou", "?z": "2"}) in result

    def test_iteration_sorted(self, session):
        answers = list(session.query(SURFACE))
        assert answers == sorted(answers, key=repr)

    def test_maximal_semantics(self, session):
        result = session.query_maximal(
            "SELECT ?y ?z WHERE { "
            '?x recorded_by ?y . ?x published "after_2010" '
            "OPTIONAL { ?x NME_rating ?z } }"
        )
        assert result.answers == frozenset([Mapping({"?y": "Caribou", "?z": "2"})])

    def test_decision_procedures(self, session):
        answer = Mapping({"?x": "Swim", "?y": "Caribou", "?z": "2"})
        assert session.ask(SURFACE, answer)
        assert not session.ask(SURFACE, Mapping({"?x": "Swim", "?y": "Caribou"}))
        assert session.is_partial(SURFACE, Mapping({"?y": "Caribou"}))
        p7 = "SELECT ?y ?z WHERE { ?x recorded_by ?y OPTIONAL { ?x NME_rating ?z } }"
        assert session.is_maximal(p7, Mapping({"?y": "Caribou", "?z": "2"}))
        assert not session.is_maximal(p7, Mapping({"?y": "Caribou"}))


class TestResult:
    def test_witness(self, session):
        result = session.query(SURFACE)
        answer = Mapping({"?x": "Our_love", "?y": "Caribou"})
        w = result.witness(answer)
        assert w is not None and w.verify()

    def test_profile(self, session):
        profile = session.query(SURFACE).profile()
        assert profile.tree_size == 2

    def test_to_table(self, session):
        table = session.query(SURFACE).to_table()
        assert "?x" in table and "-" in table  # missing optional rendered

    def test_to_table_limit(self, session):
        table = session.query(SURFACE).to_table(limit=1)
        assert table.count("\n") == 2  # header + rule + 1 row


class TestMutation:
    def test_add_triples_changes_future_queries(self, session):
        before = len(session.query(SURFACE))
        session.add_triples([("New_album", "recorded_by", "Caribou"),
                             ("New_album", "published", "after_2010")])
        after = len(session.query(SURFACE))
        assert after == before + 1

    def test_add_fact(self):
        s = Session([atom("E", 1, 2)])
        assert s.add(atom("E", 2, 3))
        assert not s.add(atom("E", 2, 3))
        assert s.size == 2
