"""Property-based tests for the WDPT-level theory.

Deeper invariants than :mod:`tests.test_properties`: order laws of
subsumption on random trees, semantic soundness of the syntactic
subsumption test, φ_cq equivalence, witness certificates, serialization
round-trips, and the Theorem 4 / Theorem 6 agreement on projection-free
inputs.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.atoms import atom
from repro.core.database import Database

COMMON = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def wdpt_and_db(draw):
    from repro.workloads.generators import random_database, random_wdpt

    seed = draw(st.integers(0, 10**6))
    p = random_wdpt(
        depth=draw(st.integers(1, 2)),
        fanout=2,
        atoms_per_node=draw(st.integers(1, 2)),
        fresh_vars_per_node=1,
        free_fraction=draw(st.sampled_from([0.4, 0.8, 1.0])),
        seed=seed,
    )
    db = random_database(
        draw(st.integers(4, 12)), relations=("E",), domain_size=5, seed=seed + 1
    )
    return p, db


@st.composite
def two_wdpts(draw):
    from repro.workloads.generators import random_wdpt

    seed = draw(st.integers(0, 10**6))
    p = random_wdpt(depth=1, fanout=2, fresh_vars_per_node=1, seed=seed)
    q = random_wdpt(depth=1, fanout=2, fresh_vars_per_node=1, seed=seed + 1)
    return p, q


# ---------------------------------------------------------------------------
# Subsumption order laws
# ---------------------------------------------------------------------------
@COMMON
@given(two_wdpts())
def test_subsumption_reflexive_and_semantically_sound(pair):
    from repro.wdpt.subsumption import is_subsumed_by, subsumed_on
    from repro.workloads.generators import random_database

    p, q = pair
    assert is_subsumed_by(p, p)
    db = random_database(8, relations=("E",), domain_size=4, seed=11)
    if is_subsumed_by(p, q):
        assert subsumed_on(p, q, db)


@COMMON
@given(wdpt_and_db())
def test_projection_monotonicity(pair):
    """Dropping free variables always gives a ⊑-smaller query, both
    syntactically and semantically."""
    from repro.wdpt.evaluation import evaluate
    from repro.wdpt.subsumption import is_subsumed_by

    p, db = pair
    frees = sorted(p.free_variables)
    if len(frees) < 2:
        return
    narrower = p.with_free_variables(frees[:-1])
    assert is_subsumed_by(narrower, p)
    wide = evaluate(p, db)
    for answer in evaluate(narrower, db):
        assert any(answer.subsumed_by(w) for w in wide)


# ---------------------------------------------------------------------------
# φ_cq faithfulness
# ---------------------------------------------------------------------------
@COMMON
@given(wdpt_and_db())
def test_phi_cq_answers_bracket_wdpt_answers(pair):
    """φ_cq ≡ₛ φ, checked semantically: the union's answers subsume the
    tree's answers and vice versa on a concrete database."""
    from repro.cqalgs.naive import evaluate_naive
    from repro.wdpt.evaluation import evaluate
    from repro.wdpt.unions import UWDPT, phi_cq

    p, db = pair
    tree_answers = evaluate(p, db)
    union_answers = set()
    for q in phi_cq(UWDPT([p])):
        union_answers |= evaluate_naive(q, db)
    for a in tree_answers:
        assert any(a.subsumed_by(u) for u in union_answers)
    for u in union_answers:
        assert any(u.subsumed_by(a) for a in tree_answers)


# ---------------------------------------------------------------------------
# Witness certificates
# ---------------------------------------------------------------------------
@COMMON
@given(wdpt_and_db())
def test_answers_have_verified_witnesses(pair):
    from repro.wdpt.evaluation import evaluate
    from repro.wdpt.witness import witness

    p, db = pair
    for answer in sorted(evaluate(p, db), key=repr)[:4]:
        w = witness(p, db, answer)
        assert w is not None and w.verify()


# ---------------------------------------------------------------------------
# Projection-free agreement (Theorem 4 vs Theorem 6)
# ---------------------------------------------------------------------------
@COMMON
@given(wdpt_and_db())
def test_projection_free_algorithms_agree(pair):
    from repro.wdpt.eval_tractable import eval_tractable
    from repro.wdpt.evaluation import evaluate
    from repro.wdpt.projection_free import eval_projection_free

    p, db = pair
    if not p.is_projection_free():
        p = p.with_free_variables(sorted(p.variables()))
    answers = evaluate(p, db)
    for answer in sorted(answers, key=repr)[:4]:
        assert eval_projection_free(p, db, answer)
        assert eval_tractable(p, db, answer)
        domain = sorted(answer.domain())
        if domain:
            smaller = answer.restrict(domain[:-1])
            expected = smaller in answers
            assert eval_projection_free(p, db, smaller) == expected
            assert eval_tractable(p, db, smaller) == expected


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------
@COMMON
@given(wdpt_and_db())
def test_serialization_roundtrip_preserves_semantics(pair):
    from repro.serialize import dumps, loads
    from repro.wdpt.evaluation import evaluate

    p, db = pair
    p2 = loads(dumps(p))
    db2 = loads(dumps(db))
    assert p2 == p and db2 == db
    assert evaluate(p2, db2) == evaluate(p, db)


# ---------------------------------------------------------------------------
# Lemma 1 + classes interplay
# ---------------------------------------------------------------------------
@COMMON
@given(wdpt_and_db())
def test_normal_form_preserves_partial_and_max_answers(pair):
    from repro.wdpt.evaluation import evaluate_max
    from repro.wdpt.partial_eval import partial_answers
    from repro.wdpt.transform import lemma1_normal_form

    p, db = pair
    norm = lemma1_normal_form(p)
    assert evaluate_max(p, db) == evaluate_max(norm, db)
    assert partial_answers(p, db) == partial_answers(norm, db)
