"""Unit tests for workload generators and the paper families."""

import pytest

from repro.core.mappings import Mapping
from repro.hypergraphs.hypergraph import hypergraph_of_cq
from repro.hypergraphs.gyo import is_alpha_acyclic
from repro.hypergraphs.treewidth import treewidth_exact
from repro.wdpt.classes import interface_width, is_globally_in_tw
from repro.workloads.datasets import company_directory, music_catalog
from repro.workloads.families import (
    complete_graph_edges,
    example5_theta,
    figure2_family,
    odd_cycle_edges,
    prop2_family,
    three_colorability_instance,
)
from repro.workloads.generators import (
    clique_cq,
    cycle_cq,
    grid_cq,
    path_cq,
    random_cq,
    random_database,
    random_graph_database,
    random_wdpt,
    star_cq,
)


class TestGenerators:
    def test_random_database_deterministic(self):
        assert random_database(20, seed=5) == random_database(20, seed=5)
        assert random_database(20, seed=5) != random_database(20, seed=6)

    def test_random_database_size(self):
        assert len(random_database(30, domain_size=10)) == 30

    def test_random_graph_database(self):
        db = random_graph_database(5, 10, seed=1)
        assert len(db) == 10

    def test_cq_families_widths(self):
        assert treewidth_exact(hypergraph_of_cq(path_cq(4))) == 1
        assert treewidth_exact(hypergraph_of_cq(cycle_cq(5))) == 2
        assert treewidth_exact(hypergraph_of_cq(clique_cq(5))) == 4
        assert treewidth_exact(hypergraph_of_cq(grid_cq(3, 3))) == 3
        assert treewidth_exact(hypergraph_of_cq(star_cq(5))) == 1

    def test_random_cq_shape(self):
        q = random_cq(4, 5, n_free=2, seed=3)
        assert len(q.free_variables) <= 2

    def test_random_wdpt_well_designed_and_deterministic(self):
        p1 = random_wdpt(depth=2, fanout=2, seed=9)
        p2 = random_wdpt(depth=2, fanout=2, seed=9)
        assert p1 == p2  # construction validated well-designedness already

    def test_random_wdpt_interface_knob(self):
        p = random_wdpt(depth=1, fanout=3, shared_vars_per_child=2,
                        fresh_vars_per_node=3, seed=0)
        assert interface_width(p) <= 2 * 3  # at most shared × fanout


class TestFigure2Family:
    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_sizes(self, n):
        p1, p2 = figure2_family(n, k=2)
        assert p1.size() <= 4 * (n + 3) ** 2 + 10 * n + 10   # O(n²)
        assert p2.size() >= n * 2 ** n                        # Ω(2ⁿ)

    def test_classes(self):
        p1, p2 = figure2_family(3, k=2)
        assert is_globally_in_tw(p2, 2)
        assert not is_globally_in_tw(p1, 2)

    def test_free_variables_match(self):
        p1, p2 = figure2_family(2, k=2)
        assert p1.free_variables == p2.free_variables

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            figure2_family(0)


class TestProp2Family:
    @pytest.mark.parametrize("n", [1, 3, 5])
    def test_globally_tractable_unbounded_interface(self, n):
        p = prop2_family(n)
        assert is_globally_in_tw(p, 1)
        assert interface_width(p) == n


class TestThreeColorability:
    def test_instance_shape(self):
        db, p, h = three_colorability_instance(3, complete_graph_edges(3))
        assert len(db) == 3
        assert len(p.tree) == 1 + 3 * 3
        assert h == Mapping({"?x": 1})

    def test_globally_tractable(self):
        _, p, _ = three_colorability_instance(4, complete_graph_edges(4))
        assert is_globally_in_tw(p, 1)

    def test_edge_out_of_range(self):
        with pytest.raises(ValueError):
            three_colorability_instance(2, [(0, 5)])

    def test_cycle_helpers(self):
        assert len(odd_cycle_edges(5)) == 5
        assert len(complete_graph_edges(4)) == 6


class TestExample5:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_acyclic_but_wide(self, n):
        q = example5_theta(n)
        H = hypergraph_of_cq(q)
        assert is_alpha_acyclic(H)
        assert treewidth_exact(H) == n - 1

    def test_bad_n(self):
        with pytest.raises(ValueError):
            example5_theta(1)


class TestDatasets:
    def test_music_catalog_mandatory_triples(self):
        g = music_catalog(n_bands=4, records_per_band=2, seed=1)
        assert len(list(g.triples_with(predicate="recorded_by"))) == 8
        assert len(list(g.triples_with(predicate="published"))) == 8

    def test_music_catalog_optional_fractions(self):
        none = music_catalog(n_bands=10, rating_fraction=0.0, formed_in_fraction=0.0, seed=2)
        full = music_catalog(n_bands=10, rating_fraction=1.0, formed_in_fraction=1.0, seed=2)
        assert not list(none.triples_with(predicate="NME_rating"))
        assert len(list(full.triples_with(predicate="formed_in"))) == 10

    def test_company_directory_schema(self):
        db = company_directory(n_departments=2, employees_per_department=3, seed=3)
        assert db.schema.arity("works_in") == 2
        assert len(db.facts("works_in")) == 6
        assert len(db.facts("dept_head")) == 2

    def test_company_optional_fractions(self):
        db = company_directory(phone_fraction=0.0, seed=4)
        assert not db.facts("phone")
