"""Unit tests for TW(k)/HW'(k) approximations of CQs (BLR'14 machinery)."""

import pytest

from repro.core.atoms import atom
from repro.core.cq import cq
from repro.cqalgs.approximation import (
    approximations,
    beta_hw_approximations,
    in_tw,
    is_approximation,
    tw_approximations,
    union_approximation,
)
from repro.cqalgs.containment import are_equivalent, is_contained_in
from repro.exceptions import ConstantsNotSupportedError
from repro.hypergraphs.hypergraph import hypergraph_of_cq
from repro.hypergraphs.treewidth import treewidth_at_most


@pytest.fixture
def tri():
    return cq([], [atom("E", "?x", "?y"), atom("E", "?y", "?z"), atom("E", "?z", "?x")])


class TestTwApproximations:
    def test_triangle_tw1_is_self_loop(self, tri):
        apps = tw_approximations(tri, 1)
        assert len(apps) == 1
        assert are_equivalent(apps[0], cq([], [atom("E", "?w", "?w")]))

    def test_already_in_class_returns_core(self):
        q = cq(["?x"], [atom("E", "?x", "?y")])
        apps = tw_approximations(q, 1)
        assert len(apps) == 1 and are_equivalent(apps[0], q)

    def test_soundness(self, tri):
        for k in (1, 2):
            for a in tw_approximations(tri, k):
                assert is_contained_in(a, tri)
                assert treewidth_at_most(hypergraph_of_cq(a), k)

    def test_tw2_approximation_is_triangle_itself(self, tri):
        apps = tw_approximations(tri, 2)
        assert len(apps) == 1 and are_equivalent(apps[0], tri)

    def test_free_variables_preserved(self):
        q = cq(
            ["?x"],
            [atom("E", "?x", "?y"), atom("E", "?y", "?z"), atom("E", "?z", "?x")],
        )
        for a in tw_approximations(q, 1):
            assert a.free_variables == q.free_variables

    def test_constants_rejected(self):
        with pytest.raises(ConstantsNotSupportedError):
            tw_approximations(cq([], [atom("E", "?x", "c")]), 1)


class TestBetaHwApproximations:
    def test_triangle_hw1(self, tri):
        apps = beta_hw_approximations(tri, 1)
        assert apps
        for a in apps:
            assert is_contained_in(a, tri)

    def test_k2_keeps_triangle(self, tri):
        apps = beta_hw_approximations(tri, 2)
        assert len(apps) == 1 and are_equivalent(apps[0], tri)


class TestIsApproximation:
    def test_positive(self, tri):
        loop = cq([], [atom("E", "?w", "?w")])
        assert is_approximation(loop, tri, in_tw(1))

    def test_rejects_non_member(self, tri):
        assert not is_approximation(tri, tri, in_tw(1))

    def test_rejects_non_maximal(self, tri):
        # E(w,w) ∧ G(u) is in TW(1) and ⊆ tri, but strictly below the
        # self-loop approximation, hence not maximal.
        weaker = cq([], [atom("E", "?w", "?w"), atom("G", "?u")])
        loop = cq([], [atom("E", "?w", "?w")])
        assert is_contained_in(weaker, loop)
        assert not are_equivalent(weaker, loop)
        assert not is_approximation(weaker, tri, in_tw(1))

    def test_rejects_not_contained(self, tri):
        other = cq([], [atom("F", "?x", "?x")])
        assert not is_approximation(other, tri, in_tw(1))


class TestUnionApproximation:
    def test_union_is_union_of_approximations(self, tri):
        edge = cq([], [atom("E", "?a", "?b")])
        apps = union_approximation([tri, edge], in_tw(1))
        # tri contributes its loop approximation, edge contributes itself.
        assert any(are_equivalent(a, cq([], [atom("E", "?w", "?w")])) for a in apps)
        assert any(are_equivalent(a, edge) for a in apps)
