"""Exhaustive semantic validation of the subsumption characterization.

The syntactic test (canonical witnesses + PARTIAL-EVAL) is proved correct
in docs/ALGORITHMS.md §4.  Here we *measure* that proof on a small world:
for pairs of tiny WDPTs over a fixed signature, we enumerate **every**
database over a 2-element domain and check

* soundness:     syntactic ``p₁ ⊑ p₂``  ⇒  semantic subsumption on every D;
* completeness:  syntactic ``p₁ ⋢ p₂``  ⇒  some enumerated D refutes it
  semantically, OR one of the canonical witnesses does (the proof
  guarantees a canonical refutation; enumerated databases use a smaller
  domain than the frozen constants, so both sources are consulted).
"""

import itertools

import pytest

from repro.core.atoms import Atom, atom
from repro.core.database import Database
from repro.wdpt.subsumption import is_subsumed_by, subsumed_on
from repro.wdpt.containment import canonical_witnesses
from repro.wdpt.wdpt import WDPT, wdpt_from_nested


def all_databases(relations, domain):
    """Every database over the given (name, arity) signature and domain."""
    facts = []
    for name, arity in relations:
        for args in itertools.product(domain, repeat=arity):
            facts.append(Atom(name, args))
    for mask in range(1 << len(facts)):
        chosen = [f for i, f in enumerate(facts) if mask >> i & 1]
        yield Database(chosen)


SIGNATURE = [("A", 1), ("B", 2)]
DOMAIN = (0, 1)

PAIRS = [
    # (p1, p2) — a mix of subsumed and non-subsumed pairs.
    (
        wdpt_from_nested(([atom("A", "?x")], []), free_variables=["?x"]),
        wdpt_from_nested(([atom("A", "?x")], [([atom("B", "?x", "?y")], [])]),
                         free_variables=["?x", "?y"]),
    ),
    (
        wdpt_from_nested(([atom("A", "?x")], [([atom("B", "?x", "?y")], [])]),
                         free_variables=["?x", "?y"]),
        wdpt_from_nested(([atom("A", "?x")], []), free_variables=["?x"]),
    ),
    (
        wdpt_from_nested(([atom("A", "?x"), atom("B", "?x", "?x")], []),
                         free_variables=["?x"]),
        wdpt_from_nested(([atom("A", "?x")], []), free_variables=["?x"]),
    ),
    (
        wdpt_from_nested(([atom("B", "?x", "?y")], []), free_variables=["?x"]),
        wdpt_from_nested(([atom("B", "?x", "?x")], []), free_variables=["?x"]),
    ),
    (
        wdpt_from_nested(([atom("B", "?x", "?x")], []), free_variables=["?x"]),
        wdpt_from_nested(([atom("B", "?x", "?y")], []), free_variables=["?x"]),
    ),
    (
        wdpt_from_nested(
            ([atom("A", "?x")],
             [([atom("B", "?x", "?y")], [([atom("A", "?y")], [])])]),
            free_variables=["?x", "?y"],
        ),
        wdpt_from_nested(
            ([atom("A", "?x")], [([atom("B", "?x", "?y")], [])]),
            free_variables=["?x", "?y"],
        ),
    ),
]


@pytest.mark.parametrize("index", range(len(PAIRS)))
def test_syntactic_vs_semantic_subsumption(index):
    p1, p2 = PAIRS[index]
    syntactic = is_subsumed_by(p1, p2)
    refuted = None
    for db in all_databases(SIGNATURE, DOMAIN):
        if not subsumed_on(p1, p2, db):
            refuted = db
            break
    if refuted is None:
        for db in canonical_witnesses(p1):
            if not subsumed_on(p1, p2, db):
                refuted = db
                break
    if syntactic:
        assert refuted is None, (
            "syntactic test claimed p1 ⊑ p2 but %r refutes it" % (refuted,)
        )
    else:
        assert refuted is not None, (
            "syntactic test claimed p1 ⋢ p2 but no database refutes it"
        )


def test_small_world_size_sanity():
    # 2 unary + 4 binary possible facts → 64 databases: genuinely exhaustive.
    assert sum(1 for _ in all_databases(SIGNATURE, DOMAIN)) == 64
