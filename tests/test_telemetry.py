"""Tests for the telemetry layer: tracer, metrics, exporters, EXPLAIN
ANALYZE, and the zero-cost-when-disabled guarantee."""

import json
import threading
import time

import pytest

from repro.benchharness import stage_breakdown
from repro.core.atoms import atom
from repro.engine import Session
from repro.telemetry.export import (
    aggregate_spans,
    from_chrome_trace,
    render_stage_breakdown,
    render_trace,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.metrics import (
    Histogram,
    MetricsRegistry,
    NodeStatsCollector,
)
from repro.telemetry.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Tracer,
    current_tracer,
    set_tracer,
    tracing,
)
from repro.wdpt.eval_tractable import eval_tractable
from repro.wdpt.evaluation import evaluate
from repro.wdpt.wdpt import wdpt_from_nested
from repro.workloads.datasets import company_directory
from repro.workloads.families import FIGURE1_QUERY_TEXT, example2_graph

EXAMPLE2_QUERY = "SELECT ?x ?y ?z ?z2 WHERE " + FIGURE1_QUERY_TEXT


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------
def test_span_nesting_and_attributes():
    tracer = Tracer()
    with tracer.span("outer", query="q1") as outer:
        with tracer.span("inner") as inner:
            inner.set(rows=7)
    assert [root.name for root in tracer.roots] == ["outer"]
    assert [child.name for child in outer.children] == ["inner"]
    assert outer.attrs == {"query": "q1"}
    assert inner.attrs == {"rows": 7}
    assert inner.duration <= outer.duration
    assert [span.name for span in tracer.walk()] == ["outer", "inner"]
    assert list(tracer.find("inner")) == [inner]
    assert tracer.total_seconds("outer") == outer.duration


def test_sibling_spans_attach_to_the_same_parent():
    tracer = Tracer()
    with tracer.span("parent"):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
    (parent,) = tracer.roots
    assert [c.name for c in parent.children] == ["a", "b"]


def test_tracer_is_thread_safe():
    tracer = Tracer()

    def work(label):
        with tracer.span("thread-%s" % label):
            with tracer.span("child-%s" % label):
                time.sleep(0.001)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # Each thread's spans nest on its own stack: 4 roots, each 1 child.
    assert len(tracer.roots) == 4
    assert all(len(root.children) == 1 for root in tracer.roots)


def test_set_tracer_and_tracing_restore_previous():
    assert current_tracer() is NULL_TRACER
    with tracing() as tracer:
        assert current_tracer() is tracer
        with tracer.span("inside"):
            pass
    assert current_tracer() is NULL_TRACER
    assert [s.name for s in tracer.walk()] == ["inside"]
    previous = set_tracer(None)
    assert previous is NULL_TRACER and current_tracer() is NULL_TRACER


def test_null_tracer_records_nothing():
    span = NULL_TRACER.span("anything", big=list(range(10)))
    assert span is NULL_SPAN
    with span as s:
        s.set(more=1)
    assert list(NULL_TRACER.walk()) == []
    assert NULL_TRACER.total_seconds("anything") == 0.0


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------
def test_histogram_quantiles_and_snapshot():
    h = Histogram("t")
    for value in range(1, 101):
        h.observe(float(value))
    assert h.count == 100
    assert h.sum == sum(range(1, 101))
    assert h.max == 100.0
    assert h.quantile(0.0) == 1.0
    assert h.quantile(1.0) == 100.0
    assert h.quantile(0.50) in (50.0, 51.0)
    assert h.quantile(0.95) in (95.0, 96.0)
    snap = h.snapshot()
    assert snap["count"] == 100 and snap["max"] == 100.0
    assert snap["p50"] == h.quantile(0.50) and snap["p95"] == h.quantile(0.95)
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_histogram_reservoir_is_bounded():
    h = Histogram("t", reservoir=10)
    for value in range(1000):
        h.observe(float(value))
    assert h.count == 1000  # exact even though the reservoir is bounded
    assert h.quantile(0.0) == 990.0  # only the most recent 10 retained


def test_registry_get_or_create_and_reset():
    registry = MetricsRegistry()
    registry.counter("a.x").inc()
    registry.counter("a.x").inc(2.5)
    registry.counter("a.y").inc()
    registry.gauge("g").set(7)
    registry.histogram("h").observe(1.0)
    assert registry.counter("a.x").value == 3.5
    assert registry.counters_with_prefix("a.") == {"x": 3.5, "y": 1.0}
    snap = registry.snapshot()
    assert snap["counters"]["a.x"] == 3.5 and snap["gauges"]["g"] == 7.0
    registry.reset()
    assert registry.counter("a.x").value == 0.0
    assert registry.histogram("h").count == 0


def test_node_stats_collector_accumulates_per_key():
    collector = NodeStatsCollector()
    collector.add(0, candidates=2, seconds=0.5)
    collector.add(0, candidates=3)
    collector.add(1, extensions=1)
    assert collector.rows() == {
        0: {"candidates": 5, "seconds": 0.5},
        1: {"extensions": 1},
    }


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------
def _sample_tracer():
    tracer = Tracer()
    with tracer.span("root", kind="demo"):
        with tracer.span("a"):
            with tracer.span("a.1"):
                pass
        with tracer.span("b", rows=3):
            pass
    with tracer.span("root2"):
        pass
    return tracer


def test_chrome_trace_round_trip():
    tracer = _sample_tracer()
    events = to_chrome_trace(tracer)
    assert validate_chrome_trace(events) == []
    rebuilt = from_chrome_trace(events)

    def shape(spans):
        return [(s.name, shape(s.children)) for s in spans]

    assert shape(rebuilt) == shape(tracer.roots)
    # Attributes survive (JSON-coerced).
    (root, _) = rebuilt[0], rebuilt[1]
    assert root.attrs["kind"] == "demo"
    assert root.children[1].attrs["rows"] == 3


def test_chrome_trace_file_and_validator(tmp_path):
    tracer = _sample_tracer()
    path = str(tmp_path / "trace.json")
    count = write_chrome_trace(tracer, path)
    with open(path) as handle:
        payload = json.load(handle)
    assert len(payload) == count == 5
    assert validate_chrome_trace(payload) == []
    assert validate_chrome_trace({"traceEvents": payload}) == []


def test_validator_rejects_empty_and_malformed_traces():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace("nope") != []
    errors = validate_chrome_trace([{"name": "", "ph": "Z", "ts": "x"}])
    assert any("missing key" in e for e in errors)
    assert any("non-empty string" in e for e in errors)
    assert any("unknown phase" in e for e in errors)
    assert validate_chrome_trace(
        [{"name": "s", "ph": "X", "ts": 0, "dur": -1, "pid": 0, "tid": 0}]
    ) != []


def test_aggregate_and_render():
    tracer = _sample_tracer()
    totals = aggregate_spans(tracer)
    assert totals["root"]["calls"] == 1 and totals["a.1"]["calls"] == 1
    text = render_trace(tracer)
    assert "root" in text and "  a" in text and "kind=demo" in text
    breakdown = render_stage_breakdown(tracer)
    assert "per-stage time" in breakdown and "root2" in breakdown


# ---------------------------------------------------------------------------
# Instrumented query path + EXPLAIN ANALYZE
# ---------------------------------------------------------------------------
def test_session_query_records_spans():
    session = Session(example2_graph())
    with tracing() as tracer:
        result = session.query(EXAMPLE2_QUERY)
    assert len(result) == 2
    (root,) = tracer.roots
    assert root.name == "session.query"
    names = {span.name for span in tracer.walk()}
    assert {"session.parse", "session.profile", "wdpt.evaluate",
            "wdpt.maximal_homomorphisms"} <= names
    (evaluator,) = tracer.find("wdpt.maximal_homomorphisms")
    assert isinstance(evaluator.attrs["node_stats"], dict)


def test_analyze_end_to_end_on_example2_query_path():
    session = Session(example2_graph())
    report = session.analyze(EXAMPLE2_QUERY)
    assert report.mode == "query" and report.n_answers == 2
    # One row per tree node of the Figure 1 WDPT, root first.
    assert [row["node"] for row in report.rows] == [0, 1, 2]
    root = report.node_row(0)
    assert root["depth"] == 0 and root["atoms"] == 2
    assert root["engine"] and root["theorem"]
    assert root["candidates"] > 0 and root["extensions"] > 0
    assert root["seconds"] > 0
    text = report.as_text()
    assert "EXPLAIN ANALYZE (query)" in text
    for fragment in ("node 0", "node 1", "node 2", "per-stage time"):
        assert fragment in text
    payload = report.as_dict()
    assert payload["answers"] == 2 and len(payload["nodes"]) == 3


def test_analyze_end_to_end_on_example2_dp_path():
    session = Session(example2_graph())
    answer = max(session.query(EXAMPLE2_QUERY).answers, key=len)
    report = session.analyze(EXAMPLE2_QUERY, candidate=answer)
    assert report.mode == "ask"
    assert [row["node"] for row in report.rows] == [0, 1, 2]
    # The Theorem 6 DP touched the tree: interface candidates were tried
    # and per-node CQ satisfiability checks ran through the planner …
    assert sum(row["candidates"] for row in report.rows) > 0
    assert sum(row["sat_checks"] for row in report.rows) > 0
    # … which routed the (acyclic) node CQs to Yannakakis.
    runs = list(report.tracer.find("yannakakis"))
    assert runs and all("kernel" in run.attrs for run in runs)
    # Python semi-join passes report intermediate relation sizes; on a
    # SQLite backend the whole tree runs as one SQL statement instead.
    semijoins = list(report.tracer.find("yannakakis.semijoin_up"))
    pushdowns = list(report.tracer.find("yannakakis.sql"))
    assert semijoins or pushdowns
    assert all("relation_sizes" in span.attrs for span in semijoins)
    assert "EXPLAIN ANALYZE (ask)" in report.as_text()


def test_analyze_does_not_leak_a_tracer():
    session = Session(example2_graph())
    session.analyze(EXAMPLE2_QUERY)
    assert isinstance(current_tracer(), NullTracer)


def test_yannakakis_spans_carry_intermediate_sizes():
    session = Session(example2_graph())
    answer = max(session.query(EXAMPLE2_QUERY).answers, key=len)
    with tracing() as tracer:
        session.ask(EXAMPLE2_QUERY, answer)
    (ask_root,) = tracer.roots
    assert ask_root.name == "session.ask"
    runs = list(tracer.find("yannakakis"))
    assert runs, "auto method should dispatch acyclic node CQs to Yannakakis"
    for run in runs:
        phases = {child.name for child in run.children}
        if "yannakakis.sql" in phases:
            # SQLite backend: the whole tree ran as one SQL statement.
            assert run.attrs["kernel"] == "sql"
        else:
            assert (
                "yannakakis.scan" in phases
                and "yannakakis.semijoin_up" in phases
            )


def test_stage_breakdown_buckets():
    query = wdpt_from_nested(
        (
            [atom("works_in", "?e", "?d")],
            [([atom("phone", "?e", "?p")], [])],
        ),
        free_variables=["?e", "?d", "?p"],
    )
    db = company_directory(n_departments=2, employees_per_department=4, seed=1)
    h = max(evaluate(query, db), key=len)
    stages = stage_breakdown(lambda: eval_tractable(query, db, h, method="auto"))
    assert set(stages) == {"analysis", "engine", "semijoin"}
    assert stages["engine"] > 0
    assert stages["semijoin"] <= stages["engine"]


# ---------------------------------------------------------------------------
# Planner metrics + EXPLAIN cache
# ---------------------------------------------------------------------------
def test_explain_cache_hits_and_result_profile_memoization():
    session = Session(example2_graph())
    first = session.explain(EXAMPLE2_QUERY)
    second = session.explain(EXAMPLE2_QUERY)
    assert first is second
    stats = session.stats()
    assert stats["explain_cache"]["hits"] >= 1
    result = session.query(EXAMPLE2_QUERY)
    assert result.profile() is result.profile()  # memoized on the Result
    assert result.profile() is first  # served from the planner cache
    assert session.stats()["explain_cache"]["hits"] >= 2


def test_planner_engine_latency_histograms():
    session = Session(example2_graph())
    answer = max(session.query(EXAMPLE2_QUERY).answers, key=len)
    session.ask(EXAMPLE2_QUERY, answer)
    stats = session.stats()
    assert stats["engine_selections"].get("yannakakis", 0) > 0
    latency = stats["engine_latency"]["yannakakis"]
    assert latency["count"] > 0 and latency["p95"] is not None
    # The public recorder and the legacy alias are the same method.
    session.planner.record_engine("custom", 0.25)
    assert session.stats()["engine_selections"]["custom"] == 1
    session.planner.reset_counters()
    assert session.stats()["engine_selections"] == {}


# ---------------------------------------------------------------------------
# Zero-cost-when-disabled gate
# ---------------------------------------------------------------------------
def _overhead_workload():
    """The bench_table1_eval DP workload (ℓ-TW(1) ∩ BI(1) company query)."""
    query = wdpt_from_nested(
        (
            [atom("works_in", "?e", "?d")],
            [
                ([atom("phone", "?e", "?p")], []),
                ([atom("reports_to", "?e", "?m")],
                 [([atom("office", "?m", "?o")], [])]),
            ],
        ),
        free_variables=["?e", "?d", "?p", "?m", "?o"],
    )
    db = company_directory(n_departments=4, employees_per_department=8, seed=1)
    h = max(evaluate(query, db), key=lambda m: (len(m), repr(m)))
    return lambda: eval_tractable(query, db, h)


def test_null_tracer_overhead_below_5_percent():
    """The disabled-path cost of every instrumentation hit the workload
    performs must stay under 5% of the workload's own runtime."""
    workload = _overhead_workload()
    # How many spans does this workload actually record when enabled?
    with tracing() as tracer:
        workload()
    n_spans = sum(1 for _ in tracer.walk())
    assert n_spans > 0
    assert isinstance(current_tracer(), NullTracer)
    workload_seconds = min(
        _timed(workload) for _ in range(5)
    )
    null = current_tracer()

    def null_hits():
        for _ in range(n_spans):
            with null.span("site", method="auto"):
                pass

    null_seconds = min(_timed(null_hits) for _ in range(5))
    assert null_seconds < 0.05 * workload_seconds, (
        "null-tracer path took %.3gs for %d spans vs %.3gs workload"
        % (null_seconds, n_spans, workload_seconds)
    )


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


# ---------------------------------------------------------------------------
# Quantile configuration and labeled metric families
# ---------------------------------------------------------------------------
def test_quantile_key_rendering():
    from repro.telemetry.metrics import quantile_key

    assert quantile_key(0.5) == "p50"
    assert quantile_key(0.95) == "p95"
    assert quantile_key(0.99) == "p99"
    assert quantile_key(0.999) == "p99.9"


def test_histogram_default_quantiles_include_p99():
    h = Histogram("t")
    for value in range(1, 101):
        h.observe(float(value))
    snap = h.snapshot()
    assert set(k for k in snap if k.startswith("p")) == {"p50", "p95", "p99"}
    assert snap["p99"] >= snap["p95"] >= snap["p50"]


def test_histogram_custom_quantiles():
    h = Histogram("t", quantiles=(0.25, 0.75))
    for value in range(1, 101):
        h.observe(float(value))
    snap = h.snapshot()
    assert "p25" in snap and "p75" in snap and "p95" not in snap


def test_registry_labeled_instruments_are_distinct():
    registry = MetricsRegistry()
    a = registry.counter("sel", {"engine": "a"})
    b = registry.counter("sel", {"engine": "b"})
    assert a is not b
    a.inc(2)
    b.inc(3)
    assert registry.labeled_values("sel", "engine") == {"a": 2.0, "b": 3.0}
    ha = registry.histogram("lat", labels={"engine": "a"})
    ha.observe(0.5)
    assert registry.labeled_histograms("lat", "engine")["a"] is ha
    snapshot = registry.snapshot()
    assert 'sel{engine="a"}' in snapshot["counters"]
    # Same (name, labels) key returns the same instrument.
    assert registry.counter("sel", {"engine": "a"}) is a


def test_engine_latency_stats_report_p99():
    # cache=False so each repeat reaches the engine and is observed.
    session = Session(example2_graph(), cache=False)
    for _ in range(4):
        session.query(EXAMPLE2_QUERY)
    latency = session.stats()["engine_latency"]["wdpt-topdown"]
    assert latency["count"] == 4
    assert latency["p99"] is not None and latency["p99"] >= latency["p50"]


def test_format_planner_stats_renders_latency_rows():
    from repro.benchharness.reporting import format_planner_stats

    session = Session(example2_graph())
    session.query(EXAMPLE2_QUERY)
    table = format_planner_stats(session.stats())
    assert "latency[wdpt-topdown]" in table
    assert "p99" in table


# ---------------------------------------------------------------------------
# Session.reset_stats
# ---------------------------------------------------------------------------
def test_session_reset_stats_keeps_warm_caches():
    session = Session(example2_graph())
    session.query(EXAMPLE2_QUERY)
    session.query(EXAMPLE2_QUERY)
    stats = session.stats()
    assert stats["engine_selections"]
    assert stats["parse_cache"]["hits"] >= 1
    cached_parses = len(session.planner.parses)
    session.reset_stats()
    stats = session.stats()
    assert stats["engine_selections"] == {}
    assert stats["parse_cache"]["hits"] == 0
    assert stats["engine_seconds"] == 0.0
    # The caches themselves survive: the next query is a parse hit.
    assert len(session.planner.parses) == cached_parses
    session.query(EXAMPLE2_QUERY)
    assert session.stats()["parse_cache"]["hits"] == 1
    assert session.stats()["parse_cache"]["misses"] == 0
