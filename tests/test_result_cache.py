"""Tests for the version-keyed result cache (repro.storage.cache +
Session wiring): hits, invalidation by mutation, batch executors,
metrics/obslog visibility, and the warm-vs-cold speedup."""

import time

import pytest

from repro.core.atoms import atom
from repro.engine import Session
from repro.storage import MemoryBackend, SQLiteBackend, ResultCache
from repro.storage.cache import HITS, MISSES
from repro.telemetry.obslog import QueryLog
from repro.workloads.families import FIGURE1_QUERY_TEXT, example2_graph

QUERY = (
    "SELECT ?x ?z WHERE { ?x recorded_by ?y OPTIONAL { ?x NME_rating ?z } }"
)
NEW_FACT = atom("triple", "new_subject", "recorded_by", "someone")


@pytest.fixture(params=["memory", "sqlite"])
def session(request):
    return Session(example2_graph(), backend=request.param)


class TestHitsAndInvalidation:
    def test_repeat_query_hits(self, session):
        first = session.query(QUERY)
        second = session.query(QUERY)
        assert first.answers == second.answers
        assert session.result_cache.hits == 1
        assert session.result_cache.misses == 1

    def test_query_maximal_and_ask_are_cached_separately(self, session):
        session.query(QUERY)
        session.query_maximal(QUERY)  # distinct op → distinct key
        assert session.result_cache.hits == 0
        session.query_maximal(QUERY)
        assert session.result_cache.hits == 1
        answer = sorted(session.query(QUERY).answers, key=repr)[0]
        assert session.ask(QUERY, answer) is session.ask(QUERY, answer)
        assert session.result_cache.hits == 3  # query repeat + ask repeat

    def test_ask_distinguishes_candidates(self, session):
        a, b = sorted(session.query(QUERY).answers, key=repr)[:2]
        session.ask(QUERY, a)
        session.ask(QUERY, b)  # different candidate → not a hit
        assert session.result_cache.hits == 0
        session.ask(QUERY, b)  # same candidate again → hit
        assert session.result_cache.hits == 1

    def test_add_invalidates(self, session):
        session.query(QUERY)
        session.add(NEW_FACT)
        session.query(QUERY)
        assert session.result_cache.hits == 0
        assert session.result_cache.misses == 2

    def test_noop_add_does_not_invalidate(self, session):
        session.add(NEW_FACT)
        session.query(QUERY)
        session.add(NEW_FACT)  # duplicate: version unchanged
        session.query(QUERY)
        assert session.result_cache.hits == 1

    def test_remove_invalidates(self, session):
        session.add(NEW_FACT)
        before = session.query(QUERY).answers
        session.remove(NEW_FACT)
        after = session.query(QUERY).answers
        assert session.result_cache.hits == 0
        assert before != after

    def test_update_invalidates(self, session):
        session.query(QUERY)
        session.database.update([NEW_FACT])
        session.query(QUERY)
        assert session.result_cache.hits == 0

    def test_invalidated_answers_are_correct(self, session):
        before = session.query(QUERY).answers
        session.add(NEW_FACT)
        after = session.query(QUERY).answers
        fresh = Session(session.database, cache=False).query(QUERY).answers
        assert after == fresh and after != before

    def test_cache_disabled(self):
        session = Session(example2_graph(), cache=False)
        assert session.result_cache is None
        assert session.query(QUERY).answers == session.query(QUERY).answers

    def test_shared_cache_instance(self):
        shared = ResultCache(maxsize=8)
        db = MemoryBackend(example2_graph().to_database().facts())
        one = Session(db, cache=shared)
        two = Session(db, cache=shared)
        one.query(QUERY)
        two.query(QUERY)  # same backend id + version → cross-session hit
        assert shared.hits == 1


class TestBatchExecutors:
    def test_thread_batch_shares_the_session_cache(self):
        with Session(example2_graph()) as session:
            batch = session.run_batch([QUERY] * 4, jobs=2, executor="thread")
            answers = batch.answers()
            assert answers.count(answers[0]) == 4
            stats = session.result_cache.stats()
            assert stats["misses"] >= 1
            assert stats["hits"] + stats["misses"] == 4

    def test_process_batch_matches_sequential(self):
        with Session(example2_graph()) as session:
            expected = session.query(QUERY).answers
            batch = session.run_batch([QUERY] * 4, jobs=2, executor="process")
            assert batch.answers() == [expected] * 4

    def test_process_batch_respects_cache_off(self):
        with Session(example2_graph(), cache=False) as session:
            expected = session.query(QUERY).answers
            batch = session.run_batch([QUERY] * 3, jobs=2, executor="process")
            assert batch.answers() == [expected] * 3


class TestObservability:
    def test_stats_and_reset(self, session):
        session.query(QUERY)
        session.query(QUERY)
        stats = session.stats()["result_cache"]
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["size"] == 1 and 0 < stats["hit_rate"] < 1
        session.reset_stats()
        stats = session.stats()["result_cache"]
        assert stats["hits"] == 0 and stats["misses"] == 0
        # Entries survive the reset: the next repeat is still a hit.
        session.query(QUERY)
        assert session.stats()["result_cache"]["hits"] == 1

    def test_counters_visible_in_metrics_registry(self, session):
        session.query(QUERY)
        session.query(QUERY)
        registry = session.planner.metrics
        assert registry.counter(HITS).value == 1
        assert registry.counter(MISSES).value == 1
        exposition = registry.to_prometheus()
        assert "session_result_cache_hits" in exposition

    def test_obslog_cache_events(self):
        log = QueryLog()
        session = Session(example2_graph(), obslog=log)
        session.query(QUERY)
        session.query(QUERY)
        session.add(NEW_FACT)
        session.query(QUERY)
        outcomes = [r["outcome"] for r in log.events("query.cache")]
        assert outcomes == ["miss", "hit", "miss"]
        qid = log.events("query.parse")[0]["query_id"]
        assert all(r["query_id"] == qid for r in log.events("query.cache"))

    def test_lru_bound_evicts(self):
        session = Session(example2_graph(), cache_size=1)
        session.query(QUERY)
        session.query(FIGURE1_QUERY_TEXT)  # different shape → evicts
        session.query(QUERY)
        stats = session.stats()["result_cache"]
        assert stats["evictions"] >= 1
        assert stats["hits"] == 0


class TestWarmVsCold:
    def test_warm_query_measurably_faster_than_cold(self):
        from repro.workloads.datasets import company_directory
        from repro.wdpt.wdpt import wdpt_from_nested

        query = wdpt_from_nested(
            (
                [atom("works_in", "?e", "?d")],
                [
                    ([atom("phone", "?e", "?p")], []),
                    ([atom("reports_to", "?e", "?m")],
                     [([atom("office", "?m", "?o")], [])]),
                ],
            ),
            free_variables=["?e", "?d", "?p", "?m", "?o"],
        )
        db = company_directory(
            n_departments=6, employees_per_department=20, seed=3
        )
        session = Session(db)
        session.parse(query)  # exclude parse/profile from the cold timing
        start = time.perf_counter()
        cold_result = session.query(query)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        warm_result = session.query(query)
        warm = time.perf_counter() - start
        assert warm_result.answers == cold_result.answers
        assert session.result_cache.hits == 1
        # Benchmark gate: a cache hit skips evaluation entirely, so even
        # on a noisy host the warm path must be far below the cold one.
        assert warm < cold / 5, "warm %.6fs vs cold %.6fs" % (warm, cold)
