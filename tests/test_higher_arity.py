"""Cross-engine tests on higher-arity schemas (the HW(k) motivation).

Bounded treewidth is the wrong yardstick once relations get wide —
hypertree decompositions cover a whole atom with one edge.  These tests
run every engine over ternary/quaternary relations and check agreement,
including the RDF triple relation that instantiates the paper's semantic
web reading.
"""

import pytest

from repro.core.atoms import atom
from repro.core.cq import cq
from repro.core.database import Database
from repro.core.mappings import Mapping
from repro.cqalgs.naive import evaluate_naive
from repro.cqalgs.structured import (
    evaluate_bounded_hypertreewidth,
    evaluate_bounded_treewidth,
)
from repro.cqalgs.yannakakis import evaluate_acyclic
from repro.hypergraphs.hypergraph import hypergraph_of_cq
from repro.hypergraphs.hypertree import hypertreewidth_exact
from repro.workloads.families import example5_theta


@pytest.fixture
def ternary_db():
    facts = []
    for i in range(4):
        for j in range(4):
            if (i + j) % 2 == 0:
                facts.append(atom("T", i, j, (i * j) % 4))
    facts += [atom("E", i, (i + 1) % 4) for i in range(4)]
    return Database(facts)


class TestTernary:
    def test_single_wide_atom(self, ternary_db):
        q = cq(["?a", "?c"], [atom("T", "?a", "?b", "?c")])
        expected = evaluate_naive(q, ternary_db)
        assert evaluate_acyclic(q, ternary_db) == expected
        assert evaluate_bounded_hypertreewidth(q, ternary_db) == expected

    def test_chain_of_wide_atoms(self, ternary_db):
        q = cq(
            ["?a", "?e"],
            [atom("T", "?a", "?b", "?c"), atom("T", "?c", "?d", "?e")],
        )
        expected = evaluate_naive(q, ternary_db)
        assert evaluate_acyclic(q, ternary_db) == expected
        assert evaluate_bounded_treewidth(q, ternary_db) == expected
        assert evaluate_bounded_hypertreewidth(q, ternary_db) == expected

    def test_wide_atom_with_binary_cycle(self, ternary_db):
        # T(a,b,c) covers the triangle a-b-c in one hyperedge: ghw 1.
        q = cq(
            ["?a"],
            [
                atom("T", "?a", "?b", "?c"),
                atom("E", "?a", "?b"),
                atom("E", "?b", "?c"),
            ],
        )
        assert hypertreewidth_exact(hypergraph_of_cq(q)) == 1
        expected = evaluate_naive(q, ternary_db)
        assert evaluate_bounded_hypertreewidth(q, ternary_db) == expected

    def test_repeated_positions(self, ternary_db):
        q = cq(["?a"], [atom("T", "?a", "?a", "?b")])
        expected = evaluate_naive(q, ternary_db)
        assert evaluate_acyclic(q, ternary_db) == expected
        assert evaluate_bounded_hypertreewidth(q, ternary_db) == expected


class TestThetaEvaluation:
    def test_theta4_all_engines(self):
        q = example5_theta(4)
        db = Database(
            [atom("E", i, j) for i in range(4) for j in range(4) if i != j]
            + [atom("T4", 0, 1, 2, 3), atom("T4", 1, 2, 3, 0)]
        )
        expected = evaluate_naive(q, db)
        assert expected == frozenset([Mapping()])
        assert evaluate_acyclic(q, db) == expected
        assert evaluate_bounded_hypertreewidth(q, db) == expected

    def test_theta4_unsatisfiable(self):
        q = example5_theta(4)
        db = Database(
            [atom("E", i, j) for i in range(4) for j in range(4) if i < j]  # one-way
            + [atom("T4", 3, 2, 1, 0)]  # clique needs E both ways under this tuple
        )
        expected = evaluate_naive(q, db)
        assert evaluate_acyclic(q, db) == expected
        assert evaluate_bounded_hypertreewidth(q, db) == expected


class TestRDFTriples:
    def test_wdpt_over_triple_relation(self):
        from repro.rdf import RDFGraph
        from repro.wdpt.eval_tractable import eval_tractable
        from repro.wdpt.evaluation import evaluate
        from repro.wdpt.wdpt import wdpt_from_nested

        g = RDFGraph(
            [
                ("a", "knows", "b"),
                ("b", "knows", "c"),
                ("a", "age", "30"),
            ]
        )
        db = g.to_database()
        p = wdpt_from_nested(
            (
                [atom("triple", "?x", "knows", "?y")],
                [([atom("triple", "?x", "age", "?age")], [])],
            ),
            free_variables=["?x", "?y", "?age"],
        )
        answers = evaluate(p, db)
        assert Mapping({"?x": "a", "?y": "b", "?age": "30"}) in answers
        assert Mapping({"?x": "b", "?y": "c"}) in answers
        for h in answers:
            assert eval_tractable(p, db, h)
