"""Unit tests for the ≡ₛ-preserving rewriter."""

import pytest

from repro.core.atoms import atom
from repro.wdpt.rewrite import (
    merge_duplicate_branches,
    optimize,
    remove_redundant_atoms,
)
from repro.wdpt.subsumption import is_subsumption_equivalent
from repro.wdpt.wdpt import wdpt_from_nested
from repro.workloads.generators import random_wdpt


class TestRedundantAtoms:
    def test_folds_unpinned_duplicate(self):
        p = wdpt_from_nested(
            ([atom("E", "?x", "?y"), atom("E", "?x", "?u")], []),
            free_variables=["?x", "?y"],
        )
        reduced = remove_redundant_atoms(p)
        assert reduced.atom_count() == 1
        assert is_subsumption_equivalent(p, reduced)

    def test_keeps_pinned_variables(self):
        # ?u is shared with the child: must not be folded away.
        p = wdpt_from_nested(
            (
                [atom("E", "?x", "?y"), atom("E", "?x", "?u")],
                [([atom("F", "?u", "?w")], [])],
            ),
            free_variables=["?x", "?y", "?w"],
        )
        reduced = remove_redundant_atoms(p)
        assert reduced.atom_count() == p.atom_count()

    def test_keeps_free_variables(self):
        p = wdpt_from_nested(
            ([atom("E", "?x", "?y"), atom("E", "?x", "?u")], []),
            free_variables=["?x", "?y", "?u"],
        )
        assert remove_redundant_atoms(p).atom_count() == 2

    def test_constants_matter(self):
        p = wdpt_from_nested(
            ([atom("E", "?x", "c"), atom("E", "?x", "?u")], []),
            free_variables=["?x"],
        )
        reduced = remove_redundant_atoms(p)
        # E(x, u) folds onto E(x, c) — but not vice versa.
        assert reduced.atom_count() == 1
        assert atom("E", "?x", "c") in reduced.labels[0]


class TestDuplicateBranches:
    def test_isomorphic_existential_siblings_merged(self):
        # Same branch twice, differing only in the local existential name.
        p = wdpt_from_nested(
            (
                [atom("A", "?x")],
                [([atom("B", "?x", "?y1")], []), ([atom("B", "?x", "?y2")], [])],
            ),
            free_variables=["?x"],
        )
        merged = merge_duplicate_branches(p)
        assert len(merged.tree) == 2
        assert is_subsumption_equivalent(p, merged)

    def test_free_variable_copies_kept(self):
        # The copies introduce *free* variables: distinct answers, keep both.
        p = wdpt_from_nested(
            (
                [atom("A", "?x")],
                [([atom("B", "?x", "?y1")], []), ([atom("B", "?x", "?y2")], [])],
            ),
            free_variables=["?x", "?y1", "?y2"],
        )
        assert merge_duplicate_branches(p) == p

    def test_distinct_siblings_kept(self):
        p = wdpt_from_nested(
            (
                [atom("A", "?x")],
                [([atom("B", "?x", "?y")], []), ([atom("C", "?x", "?z")], [])],
            ),
            free_variables=["?x", "?y", "?z"],
        )
        assert merge_duplicate_branches(p) == p

    def test_nested_duplicates(self):
        dup1 = ([atom("B", "?x", "?u1")], [([atom("C", "?u1", "?w1")], [])])
        dup2 = ([atom("B", "?x", "?u2")], [([atom("C", "?u2", "?w2")], [])])
        p = wdpt_from_nested(
            ([atom("A", "?x")], [dup1, dup2]),
            free_variables=["?x"],
        )
        merged = merge_duplicate_branches(p)
        assert len(merged.tree) == 3
        assert is_subsumption_equivalent(p, merged)

    def test_semantic_agreement_after_merge(self):
        from repro.core.database import Database
        from repro.wdpt.evaluation import evaluate

        p = wdpt_from_nested(
            (
                [atom("A", "?x")],
                [([atom("B", "?x", "?y1")], []), ([atom("B", "?x", "?y2")], [])],
            ),
            free_variables=["?x"],
        )
        merged = merge_duplicate_branches(p)
        db = Database([atom("A", 1), atom("A", 2), atom("B", 2, 9)])
        assert evaluate(p, db) == evaluate(merged, db)


class TestOptimize:
    def test_composition(self):
        p = wdpt_from_nested(
            (
                [atom("A", "?x"), atom("A", "?x2")],  # A(x2) folds away
                [
                    ([atom("B", "?x", "?y")], []),      # free branch, kept
                    ([atom("B", "?x", "?u1")], []),     # existential dup #1
                    ([atom("B", "?x", "?u2")], []),     # existential dup #2
                    ([atom("Z", "?x", "?q")], []),      # prunable (no frees)
                ],
            ),
            free_variables=["?x", "?y"],
        )
        optimized = optimize(p)
        # Pruning drops the three free-variable-less branches entirely
        # (they never affect projections), redundancy folds A(x2).
        assert len(optimized.tree) == 2
        assert optimized.atom_count() == 2
        assert is_subsumption_equivalent(p, optimized)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_trees_verified(self, seed):
        p = random_wdpt(depth=2, fanout=2, atoms_per_node=2,
                        fresh_vars_per_node=1, seed=seed)
        optimized = optimize(p, verify=True)  # raises if unsound
        assert optimized.size() <= p.size()

    def test_verify_flag_off(self):
        p = wdpt_from_nested(([atom("A", "?x")], []), free_variables=["?x"])
        assert optimize(p, verify=False) == p
