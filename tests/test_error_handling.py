"""Failure-injection tests: every malformed input raises the right error
from the :mod:`repro.exceptions` hierarchy, and never a bare ``KeyError``
or silent wrong answer.
"""

import pytest

from repro.core.atoms import atom
from repro.core.cq import cq
from repro.core.database import Database
from repro.core.mappings import Mapping
from repro.exceptions import (
    BudgetExceededError,
    ClassMembershipError,
    ConstantsNotSupportedError,
    NotGroundError,
    NotWellDesignedError,
    ParseError,
    ReproError,
    SchemaError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            BudgetExceededError,
            ClassMembershipError,
            ConstantsNotSupportedError,
            NotGroundError,
            NotWellDesignedError,
            ParseError,
            SchemaError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")


class TestCoreFailures:
    def test_database_rejects_variables(self):
        with pytest.raises(NotGroundError):
            Database([atom("E", "?x", 1)])

    def test_cq_rejects_unknown_free(self):
        with pytest.raises(SchemaError):
            cq(["?nope"], [atom("E", "?x", "?y")])

    def test_mapping_type_errors(self):
        with pytest.raises(TypeError):
            Mapping({"plainstring": 1})


class TestWdptFailures:
    def test_disconnected_variable(self):
        from repro.wdpt.wdpt import wdpt_from_nested

        with pytest.raises(NotWellDesignedError):
            wdpt_from_nested(
                ([atom("A", "?x")], [([atom("B", "?q")], []), ([atom("C", "?q")], [])]),
                free_variables=["?x"],
            )

    def test_decision_procedures_return_false_not_raise(self):
        """Queries about foreign variables are answers, not crashes."""
        from repro.wdpt.eval_tractable import eval_tractable
        from repro.wdpt.max_eval import max_eval
        from repro.wdpt.partial_eval import partial_eval
        from repro.wdpt.wdpt import wdpt_from_nested

        p = wdpt_from_nested(([atom("A", "?x")], []), free_variables=["?x"])
        db = Database([atom("A", 1)])
        foreign = Mapping({"?zz": 1})
        assert eval_tractable(p, db, foreign) is False
        assert partial_eval(p, db, foreign) is False
        assert max_eval(p, db, foreign) is False


class TestApproximationFailures:
    def test_constants_blocked_everywhere(self):
        from repro.cqalgs.approximation import tw_approximations
        from repro.wdpt.approximation import wb_approximations
        from repro.wdpt.wdpt import WDPT, wdpt_from_nested

        q = cq([], [atom("E", "?x", "const")])
        with pytest.raises(ConstantsNotSupportedError):
            tw_approximations(q, 1)
        p = wdpt_from_nested(
            ([atom("E", "?x", "const")], [([atom("F", "?x", "?w")], [])]),
            free_variables=["?x"],
        )
        with pytest.raises(ConstantsNotSupportedError):
            wb_approximations(p, 1)

    def test_quotient_budget(self):
        from repro.cqalgs.quotients import enumerate_quotients

        wide = cq([], [atom("R", *["?v%d" % i for i in range(13)])])
        with pytest.raises(BudgetExceededError):
            list(enumerate_quotients(wide))


class TestEngineFailures:
    def test_yannakakis_needs_acyclic(self):
        from repro.cqalgs.yannakakis import evaluate_acyclic

        tri = cq([], [atom("E", "?x", "?y"), atom("E", "?y", "?z"), atom("E", "?z", "?x")])
        with pytest.raises(ClassMembershipError):
            evaluate_acyclic(tri, Database([atom("E", 1, 1)]))

    def test_width_bound_violation(self):
        from repro.cqalgs.structured import evaluate_bounded_treewidth

        tri = cq([], [atom("E", "?x", "?y"), atom("E", "?y", "?z"), atom("E", "?z", "?x")])
        with pytest.raises(ClassMembershipError):
            evaluate_bounded_treewidth(tri, Database([atom("E", 1, 1)]), k=1)

    def test_treewidth_budget(self):
        import itertools

        from repro.hypergraphs.hypergraph import Hypergraph
        from repro.hypergraphs.treewidth import treewidth_exact

        K30 = Hypergraph([{i, j} for i, j in itertools.combinations(range(30), 2)])
        with pytest.raises(BudgetExceededError):
            treewidth_exact(K30)


class TestParserFailures:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "(?x, p, ?y",
            "(?x, p)",
            "(?x AND ?y)",
            "SELECT WHERE (?x, p, ?y) garbage",
        ],
    )
    def test_parse_errors(self, text):
        from repro.rdf.parser import parse_query

        with pytest.raises(ParseError):
            parse_query(text)

    def test_non_well_designed_pattern_rejected(self):
        from repro.rdf.parser import parse_query

        with pytest.raises(NotWellDesignedError):
            parse_query("((?x, a, ?y) OPT (?y, b, ?z)) AND (?z, c, ?w)")
