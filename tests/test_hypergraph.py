"""Unit tests for repro.hypergraphs.hypergraph."""

import pytest

from repro.core.atoms import atom
from repro.core.cq import cq
from repro.core.terms import Variable
from repro.hypergraphs.hypergraph import Hypergraph, hypergraph_of_atoms, hypergraph_of_cq


class TestStructure:
    def test_vertices_from_edges(self):
        H = Hypergraph([{1, 2}, {2, 3}])
        assert H.vertices == {1, 2, 3}

    def test_isolated_vertices(self):
        H = Hypergraph([{1, 2}], vertices=[5])
        assert 5 in H.vertices
        assert H.degree(5) == 0

    def test_empty_edges_dropped(self):
        H = Hypergraph([set(), {1}])
        assert H.edges == {frozenset({1})}

    def test_incident_and_degree(self):
        H = Hypergraph([{1, 2}, {2, 3}, {2}])
        assert H.degree(2) == 3
        assert H.degree(1) == 1

    def test_neighbours(self):
        H = Hypergraph([{1, 2, 3}, {3, 4}])
        assert H.neighbours(3) == {1, 2, 4}

    def test_equality_and_hash(self):
        assert Hypergraph([{1, 2}]) == Hypergraph([{2, 1}])
        assert hash(Hypergraph([{1, 2}])) == hash(Hypergraph([{1, 2}]))


class TestDerived:
    def test_primal_graph(self):
        H = Hypergraph([{1, 2, 3}])
        primal = H.primal_graph()
        assert primal[1] == {2, 3}

    def test_induced_subhypergraph(self):
        H = Hypergraph([{1, 2, 3}, {3, 4}])
        sub = H.induced_subhypergraph({1, 2, 3})
        assert sub.vertices == {1, 2, 3}
        assert frozenset({1, 2, 3}) in sub.edges
        assert frozenset({3}) in sub.edges  # {3,4} ∩ keep

    def test_partial_subhypergraph(self):
        H = Hypergraph([{1, 2}, {2, 3}])
        sub = H.partial_subhypergraph([frozenset({1, 2})])
        assert sub.edges == {frozenset({1, 2})}
        with pytest.raises(ValueError):
            H.partial_subhypergraph([frozenset({9})])

    def test_connected_components(self):
        H = Hypergraph([{1, 2}, {3, 4}], vertices=[5])
        comps = {frozenset(c) for c in H.connected_components()}
        assert comps == {frozenset({1, 2}), frozenset({3, 4}), frozenset({5})}
        assert not H.is_connected()

    def test_empty_is_connected(self):
        assert Hypergraph([]).is_connected()
        assert Hypergraph([]).is_empty()


class TestCQBridge:
    def test_hypergraph_of_cq_ignores_constants(self):
        q = cq([], [atom("R", "?x", "?y", "?z"), atom("R", "?x", "?v", "?v"), atom("E", "?v", "?z")])
        H = hypergraph_of_cq(q)
        # The example after Theorem 2 in the paper.
        assert frozenset({Variable("x"), Variable("y"), Variable("z")}) in H.edges
        assert frozenset({Variable("x"), Variable("v")}) in H.edges
        assert frozenset({Variable("v"), Variable("z")}) in H.edges

    def test_all_constant_atoms_contribute_nothing(self):
        q = cq([], [atom("R", 1, 2), atom("E", "?x", "?y")])
        H = hypergraph_of_cq(q)
        assert len(H.edges) == 1

    def test_hypergraph_of_atoms(self):
        H = hypergraph_of_atoms([atom("E", "?x", "?y")])
        assert H.vertices == {Variable("x"), Variable("y")}
