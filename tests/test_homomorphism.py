"""Unit tests for query-to-query homomorphisms."""

from repro.core.atoms import atom
from repro.core.terms import Constant, Variable
from repro.cqalgs.homomorphism import (
    apply_homomorphism,
    has_query_homomorphism,
    is_query_homomorphism,
    query_homomorphisms,
)


def test_path_to_edge():
    path = [atom("E", "?x", "?y"), atom("E", "?y", "?z")]
    loop = [atom("E", "?a", "?a")]
    assert has_query_homomorphism(path, loop)
    assert not has_query_homomorphism(loop, path)


def test_fixed_variables():
    source = [atom("E", "?x", "?y")]
    target = [atom("E", "?a", "?b")]
    assert has_query_homomorphism(source, target, fixed={Variable("x"): Variable("a")})
    assert not has_query_homomorphism(source, target, fixed={Variable("x"): Variable("b")})


def test_fixed_to_constant():
    source = [atom("E", "?x", "?y")]
    target = [atom("E", "c", "?b")]
    assert has_query_homomorphism(source, target, fixed={Variable("x"): Constant("c")})
    assert not has_query_homomorphism(source, target, fixed={Variable("x"): Constant("d")})


def test_constants_must_match():
    assert not has_query_homomorphism([atom("E", "?x", "a")], [atom("E", "?y", "b")])
    assert has_query_homomorphism([atom("E", "?x", "a")], [atom("E", "?y", "a")])


def test_enumeration_is_complete():
    source = [atom("E", "?x", "?y")]
    target = [atom("E", "?a", "?b"), atom("E", "?b", "?a")]
    homs = list(query_homomorphisms(source, target))
    assert len(homs) == 2


def test_apply_and_verify():
    source = frozenset([atom("E", "?x", "?y"), atom("E", "?y", "?z")])
    target = frozenset([atom("E", "?a", "?a")])
    for h in query_homomorphisms(source, target):
        image = apply_homomorphism(source, h)
        assert image <= target
        assert is_query_homomorphism(source, target, h)


def test_limit():
    source = [atom("E", "?x", "?y")]
    target = [atom("E", "?a", "?b"), atom("E", "?b", "?c"), atom("E", "?c", "?a")]
    assert len(list(query_homomorphisms(source, target, limit=2))) == 2


def test_range_mixes_variables_and_constants():
    source = [atom("E", "?x", "?y")]
    target = [atom("E", "?a", "k")]
    homs = list(query_homomorphisms(source, target))
    assert homs == [{Variable("x"): Variable("a"), Variable("y"): Constant("k")}]
