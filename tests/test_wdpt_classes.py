"""Unit tests for WDPT class predicates (Sections 3.2/3.3/5)."""

import pytest

from repro.core.atoms import atom
from repro.wdpt.classes import (
    WB_BETA_HW,
    WB_TW,
    check_proposition2,
    cq_class_test,
    has_bounded_interface,
    interface_width,
    is_globally_in_beta_hw,
    is_globally_in_hw,
    is_globally_in_tw,
    is_in_wb,
    is_locally_in_hw,
    is_locally_in_tw,
    proposition2_bound,
)
from repro.wdpt.wdpt import wdpt_from_nested
from repro.workloads.families import figure1_wdpt, figure2_family, prop2_family


@pytest.fixture
def figure1():
    return figure1_wdpt()


def triangle_root_wdpt():
    return wdpt_from_nested(
        (
            [atom("E", "?x", "?y"), atom("E", "?y", "?z"), atom("E", "?z", "?x")],
            [([atom("F", "?x", "?w")], [])],
        ),
        free_variables=["?x", "?w"],
    )


class TestLocalTractability:
    def test_figure1_example6(self, figure1):
        # Example 6 of the paper: p ∈ ℓ-TW(1).
        assert is_locally_in_tw(figure1, 1)

    def test_triangle_root(self):
        p = triangle_root_wdpt()
        assert not is_locally_in_tw(p, 1)
        assert is_locally_in_tw(p, 2)

    def test_local_hw(self):
        p = triangle_root_wdpt()
        assert not is_locally_in_hw(p, 1)
        assert is_locally_in_hw(p, 2)


class TestBoundedInterface:
    def test_figure1_example6(self, figure1):
        # Example 6: x shared with child 1, y with child 2 → BI(2).
        assert interface_width(figure1) == 2
        assert has_bounded_interface(figure1, 2)
        assert not has_bounded_interface(figure1, 1)

    def test_single_node(self):
        from repro.core.cq import cq
        from repro.wdpt.wdpt import WDPT

        p = WDPT.from_cq(cq(["?x"], [atom("E", "?x", "?y")]))
        assert interface_width(p) == 0

    def test_prop2_family_unbounded(self):
        for n in (2, 4, 6):
            assert interface_width(prop2_family(n)) == n


class TestGlobalTractability:
    def test_figure1(self, figure1):
        assert is_globally_in_tw(figure1, 1)
        assert is_globally_in_hw(figure1, 1)

    def test_triangle_root(self):
        p = triangle_root_wdpt()
        assert not is_globally_in_tw(p, 1)
        assert is_globally_in_tw(p, 2)
        assert is_globally_in_hw(p, 2)
        assert not is_globally_in_beta_hw(p, 1)
        assert is_globally_in_beta_hw(p, 2)

    def test_prop2_family_globally_tractable(self):
        assert is_globally_in_tw(prop2_family(6), 1)

    def test_figure2_classes(self):
        p1, p2 = figure2_family(3, k=2)
        assert is_globally_in_tw(p2, 2)
        assert not is_globally_in_tw(p1, 2)


class TestWB:
    def test_variants(self):
        p = triangle_root_wdpt()
        assert not is_in_wb(p, 1, WB_TW)
        assert is_in_wb(p, 2, WB_TW)
        assert not is_in_wb(p, 1, WB_BETA_HW)
        assert is_in_wb(p, 2, WB_BETA_HW)

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            is_in_wb(triangle_root_wdpt(), 1, "nope")

    def test_cq_class_test(self):
        from repro.core.cq import cq

        tri = cq([], [atom("E", "?x", "?y"), atom("E", "?y", "?z"), atom("E", "?z", "?x")])
        assert not cq_class_test(1, WB_TW)(tri)
        assert cq_class_test(2, WB_TW)(tri)
        assert cq_class_test(2, WB_BETA_HW)(tri)


class TestProposition2:
    def test_bound_value(self):
        assert proposition2_bound(1, 2) == 5

    @pytest.mark.parametrize("n", [2, 3])
    def test_holds_on_random_trees(self, n):
        from repro.workloads.generators import random_wdpt

        for seed in range(5):
            p = random_wdpt(depth=2, fanout=2, seed=seed, shared_vars_per_child=n)
            assert check_proposition2(p, k=2, c=interface_width(p))

    def test_holds_on_figure1(self, figure1):
        assert check_proposition2(figure1, k=1, c=2)
