"""Unit tests for GYO reduction, acyclicity, and join trees."""

import pytest

from repro.core.atoms import atom
from repro.hypergraphs.gyo import (
    gyo_reduction,
    is_alpha_acyclic,
    join_tree_children,
    join_tree_is_valid,
    join_tree_of_atoms,
    join_tree_root,
)
from repro.hypergraphs.hypergraph import Hypergraph


class TestAcyclicity:
    def test_path_acyclic(self):
        assert is_alpha_acyclic(Hypergraph([{1, 2}, {2, 3}, {3, 4}]))

    def test_triangle_cyclic(self):
        assert not is_alpha_acyclic(Hypergraph([{1, 2}, {2, 3}, {1, 3}]))

    def test_triangle_plus_big_edge_acyclic(self):
        # α-acyclicity is NOT closed under subhypergraphs.
        H = Hypergraph([{1, 2}, {2, 3}, {1, 3}, {1, 2, 3}])
        assert is_alpha_acyclic(H)

    def test_empty_and_single(self):
        assert is_alpha_acyclic(Hypergraph([]))
        assert is_alpha_acyclic(Hypergraph([{1, 2, 3}]))

    def test_cycle4_cyclic(self):
        assert not is_alpha_acyclic(Hypergraph([{1, 2}, {2, 3}, {3, 4}, {4, 1}]))

    def test_reduction_remainder(self):
        H = Hypergraph([{1, 2}, {2, 3}, {1, 3}])
        remainder = gyo_reduction(H)
        assert len(remainder.edges) == 3  # irreducible core


class TestJoinTrees:
    def test_path_query(self):
        atoms = [atom("E", "?x", "?y"), atom("E", "?y", "?z"), atom("E", "?z", "?w")]
        links = join_tree_of_atoms(atoms)
        assert links is not None
        assert join_tree_is_valid(atoms, links)

    def test_cyclic_query_has_no_join_tree(self):
        atoms = [atom("E", "?x", "?y"), atom("E", "?y", "?z"), atom("E", "?z", "?x")]
        assert join_tree_of_atoms(atoms) is None

    def test_duplicate_variable_sets(self):
        atoms = [atom("E", "?x", "?y"), atom("F", "?x", "?y")]
        links = join_tree_of_atoms(atoms)
        assert links is not None and join_tree_is_valid(atoms, links)

    def test_disconnected_query(self):
        atoms = [atom("E", "?x", "?y"), atom("E", "?u", "?v")]
        links = join_tree_of_atoms(atoms)
        assert links is not None and join_tree_is_valid(atoms, links)

    def test_single_atom(self):
        assert join_tree_of_atoms([atom("E", "?x", "?y")]) == []

    def test_empty(self):
        assert join_tree_of_atoms([]) == []

    def test_root_and_children(self):
        atoms = [atom("E", "?x", "?y"), atom("E", "?y", "?z")]
        links = join_tree_of_atoms(atoms)
        root = join_tree_root(links, 2)
        children = join_tree_children(links, 2)
        assert set(children[root]) == {1 - root}

    def test_star_query(self):
        atoms = [atom("E", "?c", "?r%d" % i) for i in range(4)]
        links = join_tree_of_atoms(atoms)
        assert links is not None and join_tree_is_valid(atoms, links)

    def test_validity_rejects_bad_tree(self):
        atoms = [atom("E", "?x", "?y"), atom("F", "?y", "?z"), atom("G", "?x", "?w")]
        # Connecting G to F breaks running intersection for ?x.
        assert not join_tree_is_valid(atoms, [(0, 1), (2, 1)])
