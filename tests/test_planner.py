"""Unit and property tests for the query-planning layer.

Covers the satellite acceptance criteria: stable structural fingerprints,
LRU bound + hit/miss accounting of the plan cache, analysis reuse across
structurally identical queries, cross-engine answer equivalence on seeded
random workloads, and the session-level instrumentation surface.
"""

import pytest

from repro.core.atoms import atom
from repro.core.cq import ConjunctiveQuery
from repro.core.mappings import Mapping
from repro.cqalgs.dispatch import evaluate
from repro.cqalgs.naive import evaluate_naive
from repro.engine import Session
from repro.planner import (
    ENGINE_NAIVE,
    ENGINE_TREEWIDTH,
    ENGINE_YANNAKAKIS,
    PlanCache,
    Planner,
)
from repro.wdpt.eval_tractable import eval_tractable
from repro.wdpt.max_eval import max_eval
from repro.wdpt.partial_eval import partial_eval
from repro.workloads.generators import random_cq, random_database, random_wdpt


# ---------------------------------------------------------------------------
# Structural fingerprints
# ---------------------------------------------------------------------------
class TestFingerprints:
    def test_cq_fingerprint_ignores_atom_order_and_identity(self):
        a1 = [atom("E", "?x", "?y"), atom("E", "?y", "?z")]
        q1 = ConjunctiveQuery(["?x"], a1)
        q2 = ConjunctiveQuery(["?x"], list(reversed(a1)))
        q3 = ConjunctiveQuery(["?x"], [atom("E", "?x", "?y"), atom("E", "?y", "?z")])
        assert q1.structural_fingerprint() == q2.structural_fingerprint()
        assert q1.structural_fingerprint() == q3.structural_fingerprint()

    def test_cq_fingerprint_distinguishes_structure(self):
        q1 = ConjunctiveQuery(["?x"], [atom("E", "?x", "?y")])
        q2 = ConjunctiveQuery(["?x"], [atom("E", "?y", "?x")])
        q3 = ConjunctiveQuery(["?y"], [atom("E", "?x", "?y")])
        assert q1.structural_fingerprint() != q2.structural_fingerprint()
        assert q1.structural_fingerprint() != q3.structural_fingerprint()

    def test_wdpt_fingerprint_stable_across_objects(self):
        p1 = random_wdpt(depth=2, fanout=2, seed=7)
        p2 = random_wdpt(depth=2, fanout=2, seed=7)
        p3 = random_wdpt(depth=2, fanout=2, seed=8)
        assert p1 is not p2
        assert p1.structural_fingerprint() == p2.structural_fingerprint()
        assert p1.structural_fingerprint() != p3.structural_fingerprint()

    def test_fingerprint_is_cached(self):
        q = ConjunctiveQuery(["?x"], [atom("E", "?x", "?y")])
        assert q.structural_fingerprint() is q.structural_fingerprint()


# ---------------------------------------------------------------------------
# PlanCache
# ---------------------------------------------------------------------------
class TestPlanCache:
    def test_hit_miss_accounting(self):
        c = PlanCache(maxsize=4)
        assert c.get("a") is None
        c.put("a", 1)
        assert c.get("a") == 1
        assert (c.hits, c.misses) == (1, 1)
        assert c.hit_rate() == 0.5

    def test_lru_eviction_bound(self):
        c = PlanCache(maxsize=3)
        for i in range(10):
            c.put(i, i)
            assert len(c) <= 3
        assert c.evictions == 7
        # Least-recently-used entries are the evicted ones.
        assert all(i in c for i in (7, 8, 9))
        assert all(i not in c for i in range(7))

    def test_get_refreshes_recency(self):
        c = PlanCache(maxsize=2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")          # "a" becomes most recent
        c.put("c", 3)       # evicts "b", not "a"
        assert "a" in c and "c" in c and "b" not in c

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)


# ---------------------------------------------------------------------------
# Planner: analysis reuse and routing
# ---------------------------------------------------------------------------
class TestPlannerReuse:
    def test_profile_shared_across_equal_objects(self):
        planner = Planner()
        q1 = ConjunctiveQuery(["?x"], [atom("E", "?x", "?y"), atom("E", "?y", "?z")])
        q2 = ConjunctiveQuery(["?x"], [atom("E", "?y", "?z"), atom("E", "?x", "?y")])
        assert planner.profile_cq(q1) is planner.profile_cq(q2)
        assert planner.profiles.hits == 1
        assert planner.profiles.misses == 1

    def test_routing_matches_structure(self):
        planner = Planner()
        path = ConjunctiveQuery(["?x"], [atom("E", "?x", "?y"), atom("E", "?y", "?z")])
        assert planner.plan_cq(path).engine == ENGINE_YANNAKAKIS
        triangle = ConjunctiveQuery(
            ["?x"],
            [atom("E", "?x", "?y"), atom("E", "?y", "?z"), atom("E", "?z", "?x")],
        )
        assert planner.plan_cq(triangle).engine == ENGINE_TREEWIDTH
        assert "Theorem" in planner.plan_cq(path).theorem

    def test_plan_describe_names_theorem(self):
        planner = Planner()
        q = ConjunctiveQuery(["?x"], [atom("E", "?x", "?y")])
        text = planner.plan_cq(q).describe()
        assert "yannakakis" in text and "Theorem 3" in text

    def test_subtree_profiles_reused_across_candidates(self):
        planner = Planner()
        p = random_wdpt(depth=2, fanout=2, seed=3)
        db = random_database(40, domain_size=5, seed=3)
        free = sorted(p.free_variables)
        candidates = [Mapping({free[0]: c}) for c in range(5)]
        for h in candidates:
            partial_eval(p, db, h, method="auto", planner=planner)
        stats = planner.stats()
        assert stats["subtree_profiles"]["hits"] > 0
        # One tree profile, one structural analysis of its subtree shape.
        assert stats["subtree_profiles"]["misses"] <= len(p.tree.nodes())
        assert stats["plan_cache"]["misses"] == 1


# ---------------------------------------------------------------------------
# Cross-engine answer equivalence (seeded random workloads)
# ---------------------------------------------------------------------------
class TestCrossEngineEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_cq_auto_matches_naive(self, seed):
        planner = Planner()
        q = random_cq(4, 5, n_free=2, seed=seed)
        db = random_database(30, domain_size=6, seed=seed)
        expected = evaluate_naive(q, db)
        assert evaluate(q, db, method="auto", planner=planner) == expected
        # Second evaluation of an equal query object hits the cache and
        # still agrees.
        q2 = random_cq(4, 5, n_free=2, seed=seed)
        assert evaluate(q2, db, method="auto", planner=planner) == expected
        assert planner.profiles.hits >= 1

    @pytest.mark.parametrize("seed", range(5))
    def test_wdpt_decision_problems_auto_matches_naive(self, seed):
        planner = Planner()
        p = random_wdpt(depth=2, fanout=2, seed=seed)
        db = random_database(35, domain_size=5, seed=seed)
        free = sorted(p.free_variables)
        candidates = [Mapping()] + [
            Mapping({free[0]: c}) for c in range(4)
        ]
        if len(free) > 1:
            candidates.append(Mapping({free[0]: 0, free[1]: 1}))
        for h in candidates:
            assert partial_eval(p, db, h) == partial_eval(
                p, db, h, method="auto", planner=planner
            )
            assert max_eval(p, db, h) == max_eval(
                p, db, h, method="auto", planner=planner
            )
            assert eval_tractable(p, db, h) == eval_tractable(
                p, db, h, method="auto", planner=planner
            )


class TestCrossEnginePropertyBased:
    """Hypothesis drives the workload generators; one shared planner across
    examples exercises cache reuse under a stream of distinct shapes."""

    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    shared_planner = Planner(profile_cache_size=16)

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        n_atoms=st.integers(min_value=1, max_value=5),
        n_variables=st.integers(min_value=2, max_value=6),
        n_free=st.integers(min_value=0, max_value=2),
        db_seed=st.integers(min_value=0, max_value=10**6),
        q_seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_planned_evaluation_matches_naive(
        self, n_atoms, n_variables, n_free, db_seed, q_seed
    ):
        q = random_cq(n_atoms, n_variables, n_free=min(n_free, n_variables), seed=q_seed)
        db = random_database(25, domain_size=5, seed=db_seed)
        assert evaluate(
            q, db, method="auto", planner=self.shared_planner
        ) == evaluate_naive(q, db)


# ---------------------------------------------------------------------------
# Session instrumentation
# ---------------------------------------------------------------------------
class TestSessionStats:
    def test_stats_keys_and_counters(self):
        # cache=False: a result-cache hit would skip the second engine
        # selection, and this test is about plan-cache reuse across runs.
        s = Session([atom("E", 1, 2), atom("E", 2, 3)], cache=False)
        p = random_wdpt(depth=1, fanout=2, seed=1)
        s.query(p)
        s.query(p)
        stats = s.stats()
        for key in (
            "plan_cache",
            "parse_cache",
            "subtree_profiles",
            "engine_selections",
            "plans_built",
            "analysis_seconds",
            "engine_seconds",
        ):
            assert key in stats
        assert stats["engine_selections"].get("wdpt-topdown") == 2
        assert stats["plan_cache"]["hits"] >= 1  # second query reused the profile
        assert stats["engine_seconds"] > 0

    def test_parse_cache_counted(self):
        from repro.workloads.families import example2_graph

        s = Session(example2_graph())
        text = (
            "SELECT ?x ?y WHERE { ?x recorded_by ?y "
            'OPTIONAL { ?x NME_rating ?z } }'
        )
        a = s.parse(text)
        b = s.parse(text)
        assert a is b
        assert s.stats()["parse_cache"]["hits"] == 1
        assert "1 cached queries" in repr(s)

    def test_dedicated_planner_isolated_from_default(self):
        planner = Planner(profile_cache_size=2)
        s = Session([atom("E", 1, 2)], planner=planner)
        assert s.planner is planner
        from repro.planner import get_default_planner

        assert get_default_planner() is not planner
