"""Validation of the SAT → EVAL reduction against brute-force SAT."""

import random

import pytest

from repro.wdpt.classes import is_locally_in_tw
from repro.wdpt.eval_tractable import eval_tractable
from repro.wdpt.evaluation import eval_check
from repro.workloads.families import brute_force_sat, sat_eval_instance


KNOWN = [
    # (n_vars, clauses, satisfiable)
    (1, [[1]], True),
    (1, [[1], [-1]], False),
    (2, [[1, 2], [-1, 2], [1, -2]], True),
    (2, [[1, 2], [-1, 2], [1, -2], [-1, -2]], False),
    (3, [[1, 2, 3], [-1, -2, -3], [1, -2, 3]], True),
    (2, [], True),
]


class TestKnownFormulas:
    @pytest.mark.parametrize("n,clauses,expected", KNOWN)
    def test_brute_force(self, n, clauses, expected):
        assert brute_force_sat(n, clauses) is expected

    @pytest.mark.parametrize("n,clauses,expected", KNOWN)
    def test_reduction_matches(self, n, clauses, expected):
        db, p, h = sat_eval_instance(n, clauses)
        assert eval_tractable(p, db, h) is expected
        assert eval_check(p, db, h) is expected

    def test_instance_is_locally_tractable(self):
        _, p, _ = sat_eval_instance(3, [[1, -2, 3], [-1, 2, -3]])
        assert is_locally_in_tw(p, 1)

    def test_bad_literal(self):
        with pytest.raises(ValueError):
            sat_eval_instance(2, [[3]])


class TestRandomFormulas:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_3cnf(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 5)
        clauses = []
        for _ in range(rng.randint(1, 8)):
            clause = []
            for _ in range(3):
                v = rng.randint(1, n)
                clause.append(v if rng.random() < 0.5 else -v)
            clauses.append(clause)
        expected = brute_force_sat(n, clauses)
        db, p, h = sat_eval_instance(n, clauses)
        assert eval_tractable(p, db, h) is expected
