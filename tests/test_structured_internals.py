"""Edge-case tests for the structured CQ engine internals."""

import pytest

from repro.core.atoms import atom
from repro.core.cq import cq
from repro.core.database import Database
from repro.core.mappings import Mapping
from repro.cqalgs.naive import evaluate_naive
from repro.cqalgs.structured import (
    evaluate_bounded_hypertreewidth,
    evaluate_bounded_treewidth,
)
from repro.hypergraphs.treedecomp import TreeDecomposition


@pytest.fixture
def db():
    return Database(
        [atom("E", i, (i + 1) % 5) for i in range(5)]
        + [atom("E", i, i) for i in (0, 2)]
        + [atom("U", 3)]
    )


class TestExplicitDecompositions:
    def test_user_supplied_decomposition(self, db):
        from repro.core.terms import Variable

        q = cq(["?x"], [atom("E", "?x", "?y"), atom("E", "?y", "?z")])
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        td = TreeDecomposition([{x, y}, {y, z}], [(0, 1)])
        assert evaluate_bounded_treewidth(q, db, decomposition=td) == evaluate_naive(q, db)

    def test_single_bag_decomposition(self, db):
        from repro.core.terms import Variable

        q = cq([], [atom("E", "?x", "?y"), atom("E", "?y", "?x")])
        td = TreeDecomposition([{Variable("x"), Variable("y")}], [])
        assert evaluate_bounded_treewidth(q, db, decomposition=td) == evaluate_naive(q, db)

    def test_decomposition_missing_atom_rejected(self, db):
        from repro.core.terms import Variable
        from repro.exceptions import ClassMembershipError

        q = cq([], [atom("E", "?x", "?y"), atom("E", "?y", "?z")])
        td = TreeDecomposition([{Variable("x"), Variable("y")}, {Variable("z")}], [(0, 1)])
        with pytest.raises(ClassMembershipError):
            evaluate_bounded_treewidth(q, db, decomposition=td)


class TestDegenerateQueries:
    def test_all_ground_query_true(self, db):
        q = cq([], [atom("E", 0, 1), atom("U", 3)])
        assert evaluate_bounded_treewidth(q, db) == frozenset([Mapping()])

    def test_all_ground_query_false(self, db):
        q = cq([], [atom("E", 0, 3)])
        assert evaluate_bounded_treewidth(q, db) == frozenset()

    def test_mixed_ground_and_variable(self, db):
        q = cq(["?x"], [atom("E", "?x", "?x"), atom("U", 3)])
        assert evaluate_bounded_treewidth(q, db) == evaluate_naive(q, db)

    def test_unary_relation_join(self, db):
        q = cq(["?x"], [atom("U", "?x"), atom("E", "?x", "?y")])
        assert evaluate_bounded_treewidth(q, db) == evaluate_naive(q, db)
        assert evaluate_bounded_hypertreewidth(q, db) == evaluate_naive(q, db)

    def test_empty_answer_propagates(self):
        db = Database([atom("E", 1, 2)])
        q = cq(["?x"], [atom("E", "?x", "?y"), atom("F", "?y")])
        assert evaluate_bounded_treewidth(q, db) == frozenset()


class TestSelfLoops:
    def test_loop_heavy_query(self, db):
        q = cq(
            ["?x", "?z"],
            [atom("E", "?x", "?x"), atom("E", "?x", "?z"), atom("E", "?z", "?z")],
        )
        assert evaluate_bounded_treewidth(q, db) == evaluate_naive(q, db)
        assert evaluate_bounded_hypertreewidth(q, db) == evaluate_naive(q, db)
