"""The columnar relation layer: per-kernel unit tests and cross-path
parity properties.

The unit half pins down the edge semantics the legacy Mapping path
established (empty right side of a semi-join, no shared variables,
Boolean relations over the empty schema).  The property half drives
random acyclic CQs and WDPTs through all three execution paths —
``columnar``, ``legacy``, and (on SQLite) the whole-tree SQL pushdown —
and requires identical answer sets.
"""

import pytest

from repro.core.atoms import Atom, atom
from repro.core.database import Database
from repro.core.mappings import Mapping
from repro.core.terms import Constant, Variable
from repro.cqalgs.yannakakis import evaluate_acyclic, satisfiable_with_join_tree
from repro.hypergraphs.gyo import join_tree_of_atoms
from repro.relalg import (
    Relation,
    dedup,
    from_mappings,
    hash_join,
    project,
    scan,
    semijoin,
    to_mappings,
)
from repro.relalg.config import (
    KERNELS_ENV,
    choose_kernel,
    default_kernel,
    force_kernels,
    kernel_mode,
)

X, Y, Z = Variable("x"), Variable("y"), Variable("z")
a, b, c = Constant("a"), Constant("b"), Constant("c")


def _rel(schema, rows):
    return Relation(tuple(schema), [tuple(r) for r in rows])


# ---------------------------------------------------------------------------
# Kernel unit tests: the edge cases the parity suite relies on
# ---------------------------------------------------------------------------
def test_scan_projects_and_dedups_repeated_variables():
    db = Database()
    db.add(Atom("E", ("a", "a")))
    db.add(Atom("E", ("a", "b")))
    db.add(Atom("E", ("b", "b")))
    rel = scan(atom("E", "?x", "?x"), db)
    assert rel.schema == (X,)
    assert sorted(rel.rows) == [(a,), (b,)]


def test_scan_ground_pattern_is_boolean():
    db = Database()
    db.add(Atom("E", ("a", "b")))
    assert scan(atom("E", "a", "b"), db).rows == [()]
    assert scan(atom("E", "b", "a"), db).rows == []


def test_semijoin_empty_right_empties_left_even_without_shared_vars():
    left = _rel([X], [(a,), (b,)])
    assert semijoin(left, _rel([Z], [])).rows == []


def test_semijoin_no_shared_vars_keeps_left_unchanged():
    left = _rel([X], [(a,), (b,)])
    out = semijoin(left, _rel([Z], [(c,)]))
    assert out.schema == (X,) and sorted(out.rows) == [(a,), (b,)]


def test_semijoin_filters_on_multi_variable_key():
    left = _rel([X, Y, Z], [(a, b, c), (a, c, c), (b, b, a)])
    right = _rel([Y, X], [(b, a), (c, b)])
    out = semijoin(left, right)
    assert out.rows == [(a, b, c)]


def test_semijoin_against_boolean_relations():
    left = _rel([X], [(a,)])
    assert semijoin(left, Relation((), [()])).rows == [(a,)]
    assert semijoin(left, Relation((), [])).rows == []


def test_hash_join_schema_and_rows():
    left = _rel([X, Y], [(a, b), (b, c)])
    right = _rel([Y, Z], [(b, c), (b, a), (a, a)])
    out = hash_join(left, right)
    assert out.schema == (X, Y, Z)
    assert sorted(out.rows) == [(a, b, a), (a, b, c)]


def test_hash_join_without_shared_vars_is_cross_product():
    out = hash_join(_rel([X], [(a,), (b,)]), _rel([Z], [(c,)]))
    assert out.schema == (X, Z)
    assert sorted(out.rows) == [(a, c), (b, c)]


def test_hash_join_with_empty_side_is_empty():
    assert hash_join(_rel([X], []), _rel([X], [(a,)])).rows == []
    assert hash_join(_rel([X], [(a,)]), _rel([X], [])).rows == []


def test_project_dedups_and_handles_missing_variables():
    rel = _rel([X, Y], [(a, b), (a, c)])
    out = project(rel, [X, Z])
    assert out.schema == (X,)
    assert list(out.rows) == [(a,)]


def test_project_onto_empty_schema_is_boolean():
    assert list(project(_rel([X], [(a,)]), []).rows) == [()]
    assert list(project(_rel([X], []), []).rows) == []


def test_dedup_removes_duplicate_rows():
    rel = Relation((X,), [(a,), (a,), (b,)])
    assert sorted(dedup(rel).rows) == [(a,), (b,)]


def test_mapping_round_trip():
    mappings = frozenset(
        [Mapping({X: a, Y: b}), Mapping({X: b, Y: c})]
    )
    rel = from_mappings(mappings, (X, Y))
    assert to_mappings(rel) == mappings
    assert to_mappings(Relation((), [()])) == frozenset([Mapping()])
    assert to_mappings(Relation((), [])) == frozenset()


# ---------------------------------------------------------------------------
# Kernel selection policy
# ---------------------------------------------------------------------------
class _SQLCapable:
    supports_sql_yannakakis = True


def test_kernel_mode_reads_environment(monkeypatch):
    monkeypatch.delenv(KERNELS_ENV, raising=False)
    assert kernel_mode() == "auto"
    monkeypatch.setenv(KERNELS_ENV, "LEGACY")
    assert kernel_mode() == "legacy"
    monkeypatch.setenv(KERNELS_ENV, "vectorized")
    with pytest.raises(ValueError):
        kernel_mode()


def test_force_kernels_overrides_environment(monkeypatch):
    monkeypatch.setenv(KERNELS_ENV, "legacy")
    with force_kernels("columnar"):
        assert kernel_mode() == "columnar"
        with force_kernels("auto"):
            assert kernel_mode() == "auto"
        assert kernel_mode() == "columnar"
    assert kernel_mode() == "legacy"
    with pytest.raises(ValueError):
        with force_kernels("nope"):
            pass


def test_choose_kernel_matrix():
    db = Database()
    with force_kernels("legacy"):
        assert choose_kernel(_SQLCapable()) == "legacy"
    with force_kernels("columnar"):
        assert choose_kernel(_SQLCapable()) == "columnar"
    with force_kernels("auto"):
        assert choose_kernel(db) == "columnar"
        assert choose_kernel(_SQLCapable()) == "sql"
        # a worker pool keeps execution on the Python side
        assert choose_kernel(_SQLCapable(), pool=object()) == "columnar"
        assert default_kernel(_SQLCapable()) == "sql"
        assert default_kernel(None) == "columnar"


# ---------------------------------------------------------------------------
# Cross-path parity properties
# ---------------------------------------------------------------------------
hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.engine import Session  # noqa: E402
from repro.storage import SQLiteBackend  # noqa: E402
from repro.workloads.generators import (  # noqa: E402
    path_cq,
    random_cq,
    random_database,
    random_wdpt,
    star_cq,
)

RELATIONS = ("E", "F")


def _db(seed, n_facts=25, domain_size=4):
    return random_database(
        n_facts, relations=RELATIONS, domain_size=domain_size, seed=seed
    )


def _acyclic_queries(seed, length, rays):
    queries = [path_cq(length), star_cq(rays), path_cq(length, frees=[])]
    q = random_cq(4, 4, relations=RELATIONS, seed=seed)
    if join_tree_of_atoms(tuple(sorted(q.atoms))) is not None:
        queries.append(q)
    return queries


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10 ** 6),
    length=st.integers(min_value=1, max_value=4),
    rays=st.integers(min_value=1, max_value=3),
)
def test_columnar_legacy_sql_parity_on_acyclic_cqs(seed, length, rays):
    db = _db(seed)
    lite = SQLiteBackend(db.facts())
    for q in _acyclic_queries(seed, length, rays):
        with force_kernels("legacy"):
            expected = evaluate_acyclic(q, db)
        with force_kernels("columnar"):
            assert evaluate_acyclic(q, db) == expected
        with force_kernels("auto"):
            # on SQLite this is the whole-tree SQL pushdown
            assert evaluate_acyclic(q, lite) == expected


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10 ** 6),
    length=st.integers(min_value=1, max_value=4),
)
def test_boolean_fast_path_parity(seed, length):
    db = _db(seed)
    lite = SQLiteBackend(db.facts())
    atoms = tuple(sorted(path_cq(length).atoms))
    links = join_tree_of_atoms(atoms)
    assert links is not None
    with force_kernels("legacy"):
        expected = satisfiable_with_join_tree(atoms, links, db)
    with force_kernels("columnar"):
        assert satisfiable_with_join_tree(atoms, links, db) is expected
    with force_kernels("auto"):
        assert satisfiable_with_join_tree(atoms, links, lite) is expected


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6))
def test_wdpt_evaluation_parity_across_kernel_modes(seed):
    db = _db(seed, n_facts=15, domain_size=3)
    query = random_wdpt(
        depth=2,
        fanout=2,
        atoms_per_node=1,
        fresh_vars_per_node=1,
        relations=RELATIONS,
        seed=seed,
    )
    with force_kernels("legacy"):
        expected = Session(db, cache=False).query(query).answers
        expected_max = Session(db, cache=False).query_maximal(query).answers
    for mode in ("columnar", "auto"):
        with force_kernels(mode):
            assert Session(db, cache=False).query(query).answers == expected
            assert (
                Session(db, cache=False).query_maximal(query).answers
                == expected_max
            )
