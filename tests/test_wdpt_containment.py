"""Unit tests for the containment semi-decision procedures (Theorem 10)."""

import pytest

from repro.core.atoms import atom
from repro.core.database import Database
from repro.wdpt.containment import (
    canonical_witnesses,
    certify_containment_via_subsumption,
    containment_holds_on,
    equivalence_counterexample,
    refute_containment,
)
from repro.wdpt.wdpt import wdpt_from_nested


@pytest.fixture
def base():
    return wdpt_from_nested(
        ([atom("A", "?x")], [([atom("B", "?x", "?y")], [])]),
        free_variables=["?x", "?y"],
    )


class TestRefutation:
    def test_subsumption_is_not_containment(self, base):
        """The classic gap: fewer free variables give ⊑ but not ⊆."""
        narrower = base.with_free_variables(["?x"])
        from repro.wdpt.subsumption import is_subsumed_by

        assert is_subsumed_by(narrower, base)
        counterexample = refute_containment(narrower, base)
        assert counterexample is not None
        assert not containment_holds_on(narrower, base, counterexample)

    def test_reflexive_never_refuted(self, base):
        assert refute_containment(base, base) is None

    def test_extra_databases_consulted(self, base):
        stronger = wdpt_from_nested(
            ([atom("A", "?x"), atom("C", "?x")], [([atom("B", "?x", "?y")], [])]),
            free_variables=["?x", "?y"],
        )
        # base ⊄ stronger; a database with A but no C separates them.
        witness = Database([atom("A", 1)])
        counterexample = refute_containment(base, stronger, extra_databases=[witness])
        assert counterexample is not None

    def test_canonical_witness_count(self, base):
        assert len(canonical_witnesses(base)) == 2


class TestCertification:
    def test_certifies_reordered_equivalents(self):
        a = wdpt_from_nested(
            ([atom("R", "?x")], [([atom("S", "?x", "?y")], []), ([atom("T", "?x", "?z")], [])]),
            free_variables=["?x", "?y", "?z"],
        )
        b = wdpt_from_nested(
            ([atom("R", "?x")], [([atom("T", "?x", "?z")], []), ([atom("S", "?x", "?y")], [])]),
            free_variables=["?x", "?y", "?z"],
        )
        assert certify_containment_via_subsumption(a, b)
        assert certify_containment_via_subsumption(b, a)

    def test_refuses_without_subsumption(self, base):
        other = wdpt_from_nested(([atom("Z", "?q")], []), free_variables=["?q"])
        assert not certify_containment_via_subsumption(base, other)

    def test_refuses_on_counterexample(self, base):
        narrower = base.with_free_variables(["?x"])
        assert not certify_containment_via_subsumption(narrower, base)


class TestEquivalenceCounterexample:
    def test_separating_database_found(self, base):
        narrower = base.with_free_variables(["?x"])
        result = equivalence_counterexample(base, narrower)
        assert result is not None
        db, direction = result
        assert direction in ("p1 ⊄ p2", "p2 ⊄ p1")

    def test_none_for_identical(self, base):
        assert equivalence_counterexample(base, base) is None
