"""Unit tests for the Lemma 1 normal-form transformations."""

import pytest

from repro.core.atoms import atom
from repro.wdpt.subsumption import is_subsumption_equivalent
from repro.wdpt.transform import (
    introduces_free_variable,
    lemma1_normal_form,
    merge_chains,
    prune_non_free_branches,
)
from repro.wdpt.wdpt import wdpt_from_nested
from repro.workloads.generators import random_database, random_wdpt


@pytest.fixture
def deep():
    """Root(x) — chain of two existential nodes — leaf introducing free w,
    plus a purely existential side branch."""
    return wdpt_from_nested(
        (
            [atom("A", "?x")],
            [
                (
                    [atom("B", "?x", "?u")],
                    [([atom("C", "?u", "?v")], [([atom("D", "?v", "?w")], [])])],
                ),
                ([atom("Z", "?x", "?q")], []),
            ],
        ),
        free_variables=["?x", "?w"],
    )


class TestIntroduces:
    def test_root(self, deep):
        assert introduces_free_variable(deep, 0)

    def test_existential_nodes(self, deep):
        assert not introduces_free_variable(deep, 1)
        assert not introduces_free_variable(deep, 2)
        assert not introduces_free_variable(deep, 4)

    def test_leaf(self, deep):
        assert introduces_free_variable(deep, 3)


class TestPrune:
    def test_drops_existential_branch(self, deep):
        pruned = prune_non_free_branches(deep)
        assert len(pruned.tree) == 4  # Z-branch dropped
        assert not any("Z" in repr(label) for label in pruned.labels)

    def test_keeps_path_to_free(self, deep):
        pruned = prune_non_free_branches(deep)
        assert any("D" in repr(label) for label in pruned.labels)

    def test_equivalence_preserved(self, deep):
        assert is_subsumption_equivalent(deep, prune_non_free_branches(deep))

    def test_noop_when_all_introduce(self):
        p = wdpt_from_nested(
            ([atom("A", "?x")], [([atom("B", "?x", "?y")], [])]),
            free_variables=["?x", "?y"],
        )
        assert prune_non_free_branches(p) == p


class TestMerge:
    def test_merges_chain(self, deep):
        pruned = prune_non_free_branches(deep)
        merged = merge_chains(pruned)
        # Nodes 1 and 2 (no new frees, single child) collapse into node 3.
        assert len(merged.tree) == 2

    def test_merged_labels_union(self, deep):
        merged = merge_chains(prune_non_free_branches(deep))
        leaf_label = merged.labels[1]
        names = {a.relation for a in leaf_label}
        assert names == {"B", "C", "D"}

    def test_equivalence_preserved(self, deep):
        pruned = prune_non_free_branches(deep)
        assert is_subsumption_equivalent(pruned, merge_chains(pruned))

    def test_branching_node_not_merged(self):
        p = wdpt_from_nested(
            (
                [atom("A", "?x")],
                [([atom("B", "?x", "?u")],
                  [([atom("C", "?u", "?y")], []), ([atom("D", "?u", "?z")], [])])],
            ),
            free_variables=["?x", "?y", "?z"],
        )
        assert merge_chains(p) == p


class TestNormalForm:
    def test_deep_example(self, deep):
        norm = lemma1_normal_form(deep)
        assert len(norm.tree) == 2
        assert is_subsumption_equivalent(deep, norm)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_trees_equivalence(self, seed):
        p = random_wdpt(depth=2, fanout=2, atoms_per_node=1, fresh_vars_per_node=1,
                        free_fraction=0.3, seed=seed)
        norm = lemma1_normal_form(p)
        assert is_subsumption_equivalent(p, norm)
        assert len(norm.tree) <= len(p.tree)

    @pytest.mark.parametrize("seed", range(3))
    def test_semantic_spot_check(self, seed):
        from repro.wdpt.evaluation import evaluate_max

        p = random_wdpt(depth=2, fanout=2, atoms_per_node=1, fresh_vars_per_node=1,
                        free_fraction=0.3, seed=seed)
        norm = lemma1_normal_form(p)
        db = random_database(8, relations=("E",), domain_size=4, seed=seed)
        # ≡ₛ ⇒ identical maximal answers (Proposition 5).
        assert evaluate_max(p, db) == evaluate_max(norm, db)
