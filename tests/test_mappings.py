"""Unit tests for repro.core.mappings — the subsumption order ⊑."""

import pytest

from repro.core.mappings import EMPTY_MAPPING, Mapping, is_maximal_in, maximal_mappings
from repro.core.terms import Constant, Variable


class TestConstruction:
    def test_coercion(self):
        m = Mapping({"?x": "a", Variable("y"): 2})
        assert m[Variable("x")] == Constant("a")
        assert m["?y"] == Constant(2)

    def test_bad_key(self):
        with pytest.raises(TypeError):
            Mapping({"notavar": 1})  # plain string is a constant, not a key

    def test_bad_value(self):
        with pytest.raises(TypeError):
            Mapping({"?x": Variable("y")})

    def test_empty(self):
        assert len(EMPTY_MAPPING) == 0
        assert EMPTY_MAPPING.domain() == frozenset()


class TestSubsumption:
    def test_reflexive(self):
        m = Mapping({"?x": 1})
        assert m.subsumed_by(m)

    def test_domain_inclusion(self):
        small = Mapping({"?x": 1})
        big = Mapping({"?x": 1, "?y": 2})
        assert small.subsumed_by(big)
        assert not big.subsumed_by(small)

    def test_value_disagreement(self):
        assert not Mapping({"?x": 1}).subsumed_by(Mapping({"?x": 2, "?y": 3}))

    def test_proper(self):
        small = Mapping({"?x": 1})
        big = Mapping({"?x": 1, "?y": 2})
        assert small.properly_subsumed_by(big)
        assert not small.properly_subsumed_by(small)

    def test_empty_subsumed_by_all(self):
        assert EMPTY_MAPPING.subsumed_by(Mapping({"?x": 1}))

    def test_antisymmetry(self):
        a = Mapping({"?x": 1})
        b = Mapping({"?x": 1})
        assert a.subsumed_by(b) and b.subsumed_by(a) and a == b


class TestAlgebra:
    def test_compatible(self):
        assert Mapping({"?x": 1}).compatible(Mapping({"?y": 2}))
        assert Mapping({"?x": 1}).compatible(Mapping({"?x": 1, "?y": 2}))
        assert not Mapping({"?x": 1}).compatible(Mapping({"?x": 2}))

    def test_union(self):
        u = Mapping({"?x": 1}).union(Mapping({"?y": 2}))
        assert u == Mapping({"?x": 1, "?y": 2})

    def test_union_conflict(self):
        with pytest.raises(ValueError):
            Mapping({"?x": 1}).union(Mapping({"?x": 2}))

    def test_restrict(self):
        m = Mapping({"?x": 1, "?y": 2})
        assert m.restrict(["?x", "?z"]) == Mapping({"?x": 1})

    def test_extend(self):
        m = Mapping({"?x": 1}).extend("?y", 2)
        assert m == Mapping({"?x": 1, "?y": 2})
        with pytest.raises(ValueError):
            m.extend("?x", 3)

    def test_apply(self):
        m = Mapping({"?x": 1})
        assert m.apply(Variable("x")) == Constant(1)
        assert m.apply(Variable("z")) == Variable("z")
        assert m.apply(Constant(9)) == Constant(9)

    def test_as_dict_is_copy(self):
        m = Mapping({"?x": 1})
        d = m.as_dict()
        d[Variable("y")] = Constant(2)
        assert len(m) == 1


class TestMaximal:
    def test_maximal_mappings(self):
        a = Mapping({"?x": 1})
        b = Mapping({"?x": 1, "?y": 2})
        c = Mapping({"?x": 3})
        assert maximal_mappings([a, b, c]) == frozenset([b, c])

    def test_incomparable_all_kept(self):
        a = Mapping({"?x": 1})
        b = Mapping({"?y": 2})
        assert maximal_mappings([a, b]) == frozenset([a, b])

    def test_empty_input(self):
        assert maximal_mappings([]) == frozenset()

    def test_is_maximal_in(self):
        a = Mapping({"?x": 1})
        b = Mapping({"?x": 1, "?y": 2})
        assert not is_maximal_in(a, [a, b])
        assert is_maximal_in(b, [a, b])

    def test_brute_force_agreement(self):
        mappings = [
            Mapping({}),
            Mapping({"?x": 1}),
            Mapping({"?x": 2}),
            Mapping({"?x": 1, "?y": 1}),
            Mapping({"?y": 1}),
            Mapping({"?x": 2, "?y": 1, "?z": 1}),
        ]
        expected = frozenset(
            m
            for m in mappings
            if not any(m.properly_subsumed_by(o) for o in mappings)
        )
        assert maximal_mappings(mappings) == expected
