"""Unit tests for PARTIAL-EVAL (Theorem 8)."""

import pytest

from repro.core.atoms import atom
from repro.core.database import Database
from repro.core.mappings import Mapping
from repro.wdpt.evaluation import partial_eval_check
from repro.wdpt.partial_eval import partial_answers, partial_eval
from repro.wdpt.wdpt import wdpt_from_nested
from repro.workloads.families import example2_graph, figure1_wdpt
from repro.workloads.generators import random_database, random_wdpt


@pytest.fixture
def figure1():
    return figure1_wdpt()


@pytest.fixture
def db():
    return example2_graph().to_database()


class TestFigure1:
    def test_partial_positive(self, figure1, db):
        assert partial_eval(figure1, db, Mapping({"?y": "Caribou"}))
        assert partial_eval(figure1, db, Mapping({"?x": "Swim"}))
        assert partial_eval(figure1, db, Mapping({"?x": "Swim", "?z": "2"}))

    def test_partial_negative(self, figure1, db):
        assert not partial_eval(figure1, db, Mapping({"?y": "Beatles"}))
        assert not partial_eval(figure1, db, Mapping({"?x": "Swim", "?z": "9"}))

    def test_empty_mapping_iff_any_answer(self, figure1, db):
        assert partial_eval(figure1, db, Mapping({}))
        assert not partial_eval(figure1, Database([atom("other", 1, 2, 3)]), Mapping({}))

    def test_non_free_variable_rejected(self, figure1, db):
        p = figure1.with_free_variables(["?y"])
        assert not partial_eval(p, db, Mapping({"?x": "Swim"}))

    def test_structured_method_agrees(self, figure1, db):
        for h in (Mapping({"?y": "Caribou"}), Mapping({"?y": "Beatles"})):
            assert partial_eval(figure1, db, h) == partial_eval(
                figure1, db, h, method="auto"
            )


class TestAgainstReference:
    @pytest.mark.parametrize("seed", range(6))
    def test_agrees_with_enumeration(self, seed):
        p = random_wdpt(depth=2, fanout=2, atoms_per_node=2, fresh_vars_per_node=1, seed=seed)
        db = random_database(10, relations=("E",), domain_size=5, seed=seed + 7)
        reference = partial_answers(p, db)
        # Every reference partial answer passes; some perturbed ones match
        # the slow decision procedure.
        for h in list(reference)[:20]:
            assert partial_eval(p, db, h)
            assert partial_eval_check(p, db, h)
        adom = sorted(db.active_domain())
        frees = sorted(p.free_variables)
        if frees and adom:
            probe = Mapping({frees[-1]: adom[0]})
            assert partial_eval(p, db, probe) == partial_eval_check(p, db, probe)


class TestPartialAnswersHelper:
    def test_downward_closure(self):
        p = wdpt_from_nested(
            ([atom("A", "?x")], [([atom("B", "?x", "?y")], [])]),
            free_variables=["?x", "?y"],
        )
        db = Database([atom("A", 1), atom("B", 1, 5)])
        answers = partial_answers(p, db)
        assert Mapping({}) in answers
        assert Mapping({"?x": 1}) in answers
        assert Mapping({"?y": 5}) in answers
        assert Mapping({"?x": 1, "?y": 5}) in answers
