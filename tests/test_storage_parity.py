"""Property-based parity: memory and SQLite backends are observationally
identical.

Random workloads from :mod:`repro.workloads.generators` run against both
backends through every evaluator the Session exposes — the top-down
evaluators (``query``/``query_maximal``), the Theorem 6 DP (``ask``),
and the Theorem 8/9 decision procedures (``is_partial``/``is_maximal``)
— plus Yannakakis directly on acyclic CQs, which on SQLite takes the SQL
semi-join pushdown path.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.engine import Session  # noqa: E402
from repro.planner.planner import Planner  # noqa: E402
from repro.storage import MemoryBackend, SQLiteBackend  # noqa: E402
from repro.workloads.generators import (  # noqa: E402
    path_cq,
    random_database,
    random_wdpt,
    star_cq,
)

RELATIONS = ("E", "F")


def _pair(seed, n_facts=15, domain_size=3):
    facts = random_database(
        n_facts, relations=RELATIONS, domain_size=domain_size, seed=seed
    ).facts()
    return MemoryBackend(facts), SQLiteBackend(facts)


def _query(seed):
    # Kept small (one atom and one fresh variable per node): free-variable
    # counts beyond a handful make the answer space explode combinatorially,
    # and the property needs many examples, not big ones.
    return random_wdpt(
        depth=2,
        fanout=2,
        atoms_per_node=1,
        fresh_vars_per_node=1,
        relations=RELATIONS,
        seed=seed,
    )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6))
def test_query_and_maximal_parity(seed):
    mem, sql = _pair(seed)
    s_mem = Session(mem, cache=False)
    s_sql = Session(sql, cache=False)
    query = _query(seed)
    assert s_mem.query(query).answers == s_sql.query(query).answers
    assert (
        s_mem.query_maximal(query).answers == s_sql.query_maximal(query).answers
    )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6))
def test_decision_procedure_parity(seed):
    mem, sql = _pair(seed)
    s_mem = Session(mem, cache=False)
    s_sql = Session(sql, cache=False)
    query = _query(seed)
    answers = sorted(s_mem.query(query).answers, key=repr)[:3]
    for candidate in answers:
        assert s_mem.ask(query, candidate) is s_sql.ask(query, candidate) is True
        partial = candidate.restrict(sorted(candidate.domain(), key=repr)[:1])
        assert s_mem.is_partial(query, partial) is s_sql.is_partial(query, partial)
        assert s_mem.is_maximal(query, candidate) is s_sql.is_maximal(
            query, candidate
        )


@pytest.mark.parametrize("mode", ["auto", "columnar", "legacy"])
@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10 ** 6),
    length=st.integers(min_value=1, max_value=4),
    rays=st.integers(min_value=1, max_value=3),
)
def test_acyclic_cq_parity_per_kernel_mode(mode, seed, length, rays):
    # ``auto`` on SQLite is the whole-tree SQL pushdown; ``columnar`` and
    # ``legacy`` pin the two Python kernels on both backends.
    from repro.relalg.config import force_kernels

    mem, sql = _pair(seed, n_facts=30, domain_size=5)
    with force_kernels(mode):
        for q in (path_cq(length), star_cq(rays)):
            assert Planner().evaluate_cq(q, mem) == Planner().evaluate_cq(q, sql)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6))
def test_parity_survives_mutation(seed):
    mem, sql = _pair(seed)
    query = _query(seed)
    s_mem = Session(mem)
    s_sql = Session(sql)
    assert s_mem.query(query).answers == s_sql.query(query).answers
    victim = sorted(mem.facts(), key=repr)[0]
    for db in (mem, sql):
        db.remove(victim)
    assert mem == sql
    # Caches are version-keyed, so both sessions re-evaluate and agree.
    assert s_mem.query(query).answers == s_sql.query(query).answers
