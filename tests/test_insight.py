"""Tests for the plan-quality insight layer.

* the cardinality estimator: AGM-tagged estimates are genuine upper
  bounds on the homomorphism count (property-based), independence
  estimates are sane, empty/ground corner cases;
* EXPLAIN ANALYZE surfaces estimated vs. actual rows with the per-node
  q-error across engines and all three kernel paths;
* the per-query-shape :class:`QueryStatsStore`: recording, LRU bound,
  deterministic merge, JSON persistence, and the planner's historical
  kernel preference built on top;
* trace correlation: one ``trace_id`` stitches spans, obslog records,
  and resource accounting together — including across process workers.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.atoms import atom
from repro.core.database import Database
from repro.cqalgs.naive import count_homomorphisms
from repro.engine import Session
from repro.exceptions import ResourceBudgetExceeded
from repro.planner.planner import Planner
from repro.planner.profile import StructuralProfile
from repro.relalg.config import (
    KERNEL_COLUMNAR,
    KERNEL_LEGACY,
    KERNEL_SQL,
    force_kernels,
    resolve_kernel,
)
from repro.telemetry.insight import (
    MIN_KERNEL_SAMPLES,
    QueryStatsStore,
    STATS_SCHEMA,
    CardinalityEstimate,
    estimate_profile,
    q_error,
)
from repro.telemetry.obslog import QueryLog
from repro.telemetry.resources import ResourceBudget
from repro.telemetry.tracer import Tracer, tracing
from repro.wdpt.wdpt import wdpt_from_nested
from repro.workloads.datasets import company_directory
from repro.workloads.families import FIGURE1_QUERY_TEXT, example2_graph

EXAMPLE2_QUERY = "SELECT ?x ?y ?z ?z2 WHERE " + FIGURE1_QUERY_TEXT

COMMON = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _company_query():
    return wdpt_from_nested(
        (
            [atom("works_in", "?e", "?d")],
            [
                ([atom("phone", "?e", "?p")], []),
                ([atom("reports_to", "?e", "?m")],
                 [([atom("office", "?m", "?o")], [])]),
            ],
        ),
        free_variables=["?e", "?d", "?p", "?m", "?o"],
    )


# ---------------------------------------------------------------------------
# q_error
# ---------------------------------------------------------------------------
def test_q_error_symmetric_and_clamped():
    assert q_error(100, 10) == q_error(10, 100) == 10.0
    assert q_error(7, 7) == 1.0
    assert q_error(0, 0) == 1.0          # both clamp to 1
    assert q_error(0.25, 1) == 1.0       # sub-1 estimates clamp too


@given(st.floats(0, 1e6), st.floats(0, 1e6))
@COMMON
def test_q_error_always_at_least_one(a, b):
    assert q_error(a, b) >= 1.0
    assert q_error(a, b) == q_error(b, a)


# ---------------------------------------------------------------------------
# The estimator
# ---------------------------------------------------------------------------
@st.composite
def db_and_atoms(draw):
    rng = random.Random(draw(st.integers(0, 10**6)))
    n = draw(st.integers(1, 7))
    predicates = ["r", "s", "t"]
    facts = [
        atom(rng.choice(predicates), rng.randrange(n), rng.randrange(n))
        for _ in range(draw(st.integers(1, 30)))
    ]
    variables = ["?a", "?b", "?c", "?d"]
    atoms = [
        atom(rng.choice(predicates), rng.choice(variables), rng.choice(variables))
        for _ in range(draw(st.integers(1, 3)))
    ]
    return Database(facts), atoms


@given(db_and_atoms())
@COMMON
def test_agm_estimates_are_upper_bounds(pair):
    """method == "agm" is a *guarantee*: the estimate dominates the true
    homomorphism count (the AGM bound, Atserias–Grohe–Marx)."""
    db, atoms = pair
    estimate = estimate_profile(StructuralProfile(atoms), db)
    assert isinstance(estimate, CardinalityEstimate)
    assert estimate.estimated_rows >= 0
    if estimate.method == "agm":
        actual = count_homomorphisms(atoms, db)
        # 1e-9 relative slack for float pow round-off only.
        assert estimate.estimated_rows * (1 + 1e-9) >= actual


def test_estimator_exact_on_a_single_atom():
    db = Database([atom("E", 1, 2), atom("E", 2, 3), atom("F", 1, 1)])
    estimate = estimate_profile(StructuralProfile([atom("E", "?x", "?y")]), db)
    assert estimate.relation_rows == (2,)
    assert estimate.estimated_rows == 2.0
    assert estimate.method == "agm"   # a single atom covers itself


def test_estimator_trivial_and_empty_relation_cases():
    db = Database([atom("E", 1, 2)])
    trivial = estimate_profile(StructuralProfile([]), db)
    assert trivial.method == "trivial" and trivial.estimated_rows == 1.0
    empty = estimate_profile(StructuralProfile([atom("nope", "?x", "?y")]), db)
    assert empty.estimated_rows == 0.0


def test_estimates_memoized_per_data_version():
    db = Database([atom("E", 1, 2), atom("E", 2, 3)])
    planner = Planner()
    profile = planner.profile_cq_atoms = StructuralProfile([atom("E", "?x", "?y")])
    first = planner.estimate_for_profile(profile, db)
    assert planner.estimate_for_profile(profile, db) is first  # cache hit
    db.add(atom("E", 3, 4))  # bumps data_version
    second = planner.estimate_for_profile(profile, db)
    assert second is not first
    assert second.estimated_rows == 3.0


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE: estimated vs. actual rows, all kernels and engines
# ---------------------------------------------------------------------------
def _assert_estimates_in_report(report):
    assert all(row.get("est_rows") is not None for row in report.rows)
    assert all(
        row["q_error"] >= 1.0
        for row in report.rows
        if row.get("q_error") is not None
    )
    text = str(report)
    assert "est rows" in text and "q-err" in text
    summary = report.q_error_summary()
    assert summary["count"] >= 1
    assert summary["max"] >= summary["p95"] >= summary["p50"] >= 1.0


@pytest.mark.parametrize("kernel", [KERNEL_COLUMNAR, KERNEL_LEGACY])
def test_analyze_shows_estimates_under_forced_kernels(kernel):
    with force_kernels(kernel):
        session = Session(example2_graph())
        report = session.analyze(EXAMPLE2_QUERY)
    _assert_estimates_in_report(report)
    assert any(row.get("kernel") == kernel for row in report.rows)


def test_analyze_shows_estimates_on_the_sql_pushdown_path():
    session = Session(example2_graph(), backend="sqlite")
    report = session.analyze(EXAMPLE2_QUERY)
    _assert_estimates_in_report(report)
    assert any(row.get("kernel") == KERNEL_SQL for row in report.rows)


def test_analyze_shows_estimates_across_modes():
    session = Session(company_directory(
        n_departments=3, employees_per_department=4, seed=1
    ))
    p = _company_query()
    _assert_estimates_in_report(session.analyze(p))
    _assert_estimates_in_report(session.analyze(p, maximal=True))
    h = max(session.query(p).answers, key=lambda m: (len(m), repr(m)))
    dp_report = session.analyze(p, candidate=h)
    assert all(row.get("est_rows") is not None for row in dp_report.rows)


def test_agm_rows_dominate_measured_candidates():
    """Where analyze tags a node "agm", the estimate upper-bounds the
    measured candidate count (candidates are path-CQ homomorphisms)."""
    session = Session(example2_graph())
    report = session.analyze(EXAMPLE2_QUERY)
    agm_rows = [r for r in report.rows if r.get("est_method") == "agm"]
    assert agm_rows, "expected at least one AGM-tagged node"
    for row in agm_rows:
        assert row["est_rows"] * (1 + 1e-9) >= row["candidates"]


def test_misestimate_event_fires_above_threshold():
    log = QueryLog(slow_threshold=0.0, misestimate_threshold=0.5)
    with Session(example2_graph(), obslog=log) as session:
        session.query(EXAMPLE2_QUERY)
    (record,) = log.events("misestimate.detected")
    assert record["max_q_error"] > 0.5
    assert record["est_method"] in ("agm", "independence", "trivial")
    assert record["actual_rows"] >= 0 and record["est_rows"] >= 0
    assert record["trace_id"]


# ---------------------------------------------------------------------------
# QueryStatsStore
# ---------------------------------------------------------------------------
def test_stats_store_records_and_snapshots():
    store = QueryStatsStore()
    store.record("q1", wall_seconds=0.5, rows=10, engine="yannakakis",
                 kernel="columnar", cache_hit=False, max_q_error=2.0)
    store.record("q1", wall_seconds=0.1, rows=10, cache_hit=True)
    entry = store.snapshot("q1")
    assert entry["executions"] == 2
    assert entry["wall_seconds"] == pytest.approx(0.6)
    assert entry["max_wall_seconds"] == 0.5
    assert entry["rows"] == 20 and entry["last_rows"] == 10
    assert entry["cache_hits"] == 1 and entry["cache_misses"] == 1
    assert entry["engines"] == {"yannakakis": 1}
    assert entry["kernels"]["columnar"]["count"] == 1
    assert entry["q_error"] == {"count": 1, "total": 2.0, "max": 2.0, "last": 2.0}
    assert store.snapshot("missing") is None


def test_stats_store_is_lru_bounded():
    store = QueryStatsStore(maxsize=2)
    for qid in ("a", "b", "c"):
        store.record(qid)
    assert len(store) == 2
    assert store.snapshot("a") is None and store.snapshot("c") is not None
    with pytest.raises(ValueError):
        QueryStatsStore(maxsize=0)


def test_stats_store_merge_equals_direct_recording():
    direct, left, right = QueryStatsStore(), QueryStatsStore(), QueryStatsStore()
    samples = [
        ("q1", 0.2, 4, "yannakakis", "columnar"),
        ("q1", 0.3, 4, "yannakakis", "legacy"),
        ("q2", 0.1, 1, "naive", None),
    ]
    for i, (qid, wall, rows, engine, kernel) in enumerate(samples):
        direct.record(qid, wall_seconds=wall, rows=rows, engine=engine,
                      kernel=kernel)
        (left if i % 2 == 0 else right).record(
            qid, wall_seconds=wall, rows=rows, engine=engine, kernel=kernel
        )
    merged = QueryStatsStore()
    merged.merge_dump(left.dump())
    merged.merge_dump(right.dump())
    for qid in ("q1", "q2"):
        d, m = direct.snapshot(qid), merged.snapshot(qid)
        for key in ("executions", "wall_seconds", "rows", "engines", "kernels"):
            assert d[key] == m[key], key


def test_stats_store_rejects_foreign_schema():
    store = QueryStatsStore()
    with pytest.raises(ValueError):
        store.merge_dump({"schema": STATS_SCHEMA + 1, "queries": {}})


def test_stats_store_persists_and_reloads(tmp_path):
    store = QueryStatsStore()
    store.record("q1", wall_seconds=0.25, rows=3, kernel="columnar",
                 max_q_error=4.0)
    path = str(tmp_path / "stats.json")
    store.save(path)
    reloaded = QueryStatsStore.load(path)
    assert reloaded.dump() == store.dump()
    assert reloaded.dump()["schema"] == STATS_SCHEMA


def test_best_kernel_needs_seasoned_history():
    store = QueryStatsStore()
    for _ in range(MIN_KERNEL_SAMPLES - 1):
        store.record("q1", wall_seconds=0.1, kernel="legacy")
    assert store.best_kernel("q1") is None          # too thin
    store.record("q1", wall_seconds=0.1, kernel="legacy")
    assert store.best_kernel("q1") == "legacy"
    for _ in range(MIN_KERNEL_SAMPLES):
        store.record("q1", wall_seconds=0.01, kernel="columnar")
    assert store.best_kernel("q1") == "columnar"    # lower mean latency wins
    assert store.best_kernel("unknown") is None


def test_planner_prefers_historical_kernel_in_auto_mode():
    db = example2_graph()
    store = QueryStatsStore()
    planner = Planner(stats_store=store)
    fingerprint = "f" * 16
    for _ in range(MIN_KERNEL_SAMPLES):
        store.record(fingerprint, wall_seconds=0.01, kernel=KERNEL_LEGACY)
    assert planner._preferred_kernel(fingerprint, db) == KERNEL_LEGACY
    # Explicit modes are user policy: history never overrides them.
    with force_kernels(KERNEL_COLUMNAR):
        assert planner._preferred_kernel(fingerprint, db) == KERNEL_COLUMNAR
    # No history / no fingerprint: the static default.
    assert planner._preferred_kernel("0" * 16, db) == resolve_kernel(db)
    assert planner._preferred_kernel("", db) == resolve_kernel(db)


def test_resolve_kernel_preference_is_advisory():
    db = example2_graph()
    assert resolve_kernel(db, preferred=KERNEL_LEGACY) == KERNEL_LEGACY
    with force_kernels(KERNEL_COLUMNAR):  # explicit mode wins
        assert resolve_kernel(db, preferred=KERNEL_LEGACY) == KERNEL_COLUMNAR
    # sql needs a backend that supports pushdown: infeasible → fallback.
    assert resolve_kernel(db, preferred=KERNEL_SQL) == resolve_kernel(db)


def test_session_feeds_the_stats_store():
    store = QueryStatsStore()
    with Session(example2_graph(), stats_store=store) as session:
        session.query(EXAMPLE2_QUERY)
        session.query(EXAMPLE2_QUERY)
    (query_id,) = store.dump()["queries"].keys()
    entry = store.snapshot(query_id)
    assert entry["executions"] == 2
    assert entry["cache_hits"] == 1 and entry["cache_misses"] == 1
    assert entry["rows"] > 0
    assert sum(k["count"] for k in entry["kernels"].values()) >= 1


# ---------------------------------------------------------------------------
# Trace correlation
# ---------------------------------------------------------------------------
def _walk(spans):
    for span in spans:
        yield span
        for child in _walk(span.children):
            yield child


def test_single_query_shares_one_trace_id_everywhere():
    log = QueryLog()
    with Session(example2_graph(), obslog=log, track_resources=True) as session:
        result = session.query(EXAMPLE2_QUERY)
    trace_ids = {r["trace_id"] for r in log.recent()}
    assert len(trace_ids) == 1
    assert result.resources.trace_id == trace_ids.pop()


def test_budget_kill_carries_the_trace_id():
    log = QueryLog()
    budget = ResourceBudget(hard_intermediate_rows=1)
    with Session(
        company_directory(n_departments=3, employees_per_department=4, seed=1),
        obslog=log, budgets=budget,
    ) as session:
        with pytest.raises(ResourceBudgetExceeded) as info:
            session.query(_company_query())
    assert info.value.trace_id
    assert "[trace %s]" % info.value.trace_id in str(info.value)
    assert any(r["trace_id"] == info.value.trace_id for r in log.recent())


def test_thread_batch_stitches_under_one_trace_id():
    log = QueryLog()
    with Session(example2_graph(), obslog=log) as session:
        with tracing(Tracer()) as tracer:
            session.run_batch([EXAMPLE2_QUERY] * 3, jobs=2)
    batch_ids = {r["trace_id"] for r in log.events("batch.start")}
    assert len(batch_ids) == 1
    trace_id = batch_ids.pop()
    assert all(r["trace_id"] == trace_id for r in log.events("query.complete"))
    batch_spans = [s for s in _walk(tracer.roots) if s.name == "parallel.run_batch"]
    assert batch_spans and batch_spans[0].attrs["trace_id"] == trace_id


def test_process_batch_stitches_under_one_trace_id():
    """The acceptance scenario: a query fanned across *process* workers
    produces spans and obslog events that share one trace_id."""
    log = QueryLog()
    db = company_directory(n_departments=2, employees_per_department=4, seed=1)
    with Session(db, executor="process", obslog=log, cache=False) as session:
        with tracing(Tracer()) as tracer:
            session.run_batch([_company_query()] * 3, jobs=2)
    trace_ids = {r["trace_id"] for r in log.recent()}
    assert len(trace_ids) == 1, "all events (incl. worker-side) share the trace"
    trace_id = trace_ids.pop()
    # Worker-side query lifecycle events made it back into the parent log.
    completes = log.events("query.complete")
    assert len(completes) == 3
    assert all(r.get("worker", "").startswith("p") for r in completes)
    # Worker spans were grafted under the parent's run_batch span.
    spans = list(_walk(tracer.roots))
    batch_span = next(s for s in spans if s.name == "parallel.run_batch")
    assert batch_span.attrs["trace_id"] == trace_id
    task_spans = [s for s in spans if s.name == "parallel.task"]
    assert len(task_spans) == 3
    assert all(s.attrs["trace_id"] == trace_id for s in task_spans)
    assert {s.attrs["index"] for s in task_spans} == {0, 1, 2}
    assert all(s.attrs["worker"].startswith("p") for s in task_spans)


def test_process_batch_merges_worker_stats_store():
    store = QueryStatsStore()
    db = company_directory(n_departments=2, employees_per_department=4, seed=1)
    with Session(db, executor="process", stats_store=store, cache=False) as session:
        session.run_batch([_company_query()] * 4, jobs=2)
    (query_id,) = store.dump()["queries"].keys()
    assert store.snapshot(query_id)["executions"] == 4
