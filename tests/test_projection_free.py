"""Unit tests for projection-free evaluation (Theorem 4)."""

import pytest

from repro.core.atoms import atom
from repro.core.database import Database
from repro.core.mappings import Mapping
from repro.wdpt.eval_tractable import eval_tractable
from repro.wdpt.evaluation import evaluate
from repro.wdpt.projection_free import eval_projection_free, evaluate_projection_free
from repro.wdpt.wdpt import wdpt_from_nested
from repro.workloads.families import example2_graph, figure1_wdpt
from repro.workloads.generators import random_database, random_wdpt


@pytest.fixture
def figure1():
    return figure1_wdpt()  # projection-free by default


@pytest.fixture
def db():
    return example2_graph().to_database()


class TestFigure1:
    def test_positive(self, figure1, db):
        assert eval_projection_free(
            figure1, db, Mapping({"?x": "Our_love", "?y": "Caribou"})
        )
        assert eval_projection_free(
            figure1, db, Mapping({"?x": "Swim", "?y": "Caribou", "?z": "2"})
        )

    def test_non_maximal_rejected(self, figure1, db):
        assert not eval_projection_free(
            figure1, db, Mapping({"?x": "Swim", "?y": "Caribou"})
        )

    def test_wrong_domain_rejected(self, figure1, db):
        # h defined on a variable its witness region doesn't cover.
        assert not eval_projection_free(
            figure1, db, Mapping({"?x": "Our_love", "?y": "Caribou", "?z2": "1990"})
        )

    def test_projection_required(self, figure1, db):
        p = figure1.with_free_variables(["?x"])
        with pytest.raises(ValueError):
            eval_projection_free(p, db, Mapping({"?x": "Swim"}))
        with pytest.raises(ValueError):
            evaluate_projection_free(p, db)


class TestAgainstGeneralDP:
    @pytest.mark.parametrize("seed", range(6))
    def test_agrees_with_theorem6_dp(self, seed):
        p = random_wdpt(
            depth=2, fanout=2, atoms_per_node=2, fresh_vars_per_node=1,
            free_fraction=1.0, seed=seed,
        )
        assert p.is_projection_free()
        db = random_database(10, relations=("E",), domain_size=5, seed=seed + 9)
        answers = evaluate(p, db)
        for h in list(answers)[:10]:
            assert eval_projection_free(p, db, h)
            assert eval_tractable(p, db, h)
        # some negatives: strict restrictions
        for h in list(answers)[:5]:
            domain = sorted(h.domain())
            if len(domain) > 1:
                restricted = h.restrict(domain[:-1])
                assert eval_projection_free(p, db, restricted) == (restricted in answers)

    def test_evaluate_projection_free_wrapper(self, figure1, db):
        assert evaluate_projection_free(figure1, db) == evaluate(figure1, db)


class TestEdgeCases:
    def test_unmatched_root(self):
        p = wdpt_from_nested(([atom("A", "?x")], []), free_variables=["?x"])
        db = Database([atom("B", 1)])
        assert not eval_projection_free(p, db, Mapping({"?x": 1}))

    def test_foreign_variable(self):
        p = wdpt_from_nested(([atom("A", "?x")], []), free_variables=["?x"])
        db = Database([atom("A", 1)])
        assert not eval_projection_free(p, db, Mapping({"?zz": 1}))

    def test_frontier_blocking(self):
        p = wdpt_from_nested(
            ([atom("A", "?x")], [([atom("B", "?x", "?y")], [])]),
            free_variables=["?x", "?y"],
        )
        db = Database([atom("A", 1), atom("A", 2), atom("B", 2, 5)])
        assert eval_projection_free(p, db, Mapping({"?x": 1}))
        assert not eval_projection_free(p, db, Mapping({"?x": 2}))
        assert eval_projection_free(p, db, Mapping({"?x": 2, "?y": 5}))
