"""Unit tests for treewidth computation and tree decompositions."""

import itertools

import pytest

from repro.exceptions import BudgetExceededError, DecompositionError
from repro.hypergraphs.hypergraph import Hypergraph
from repro.hypergraphs.treedecomp import (
    TreeDecomposition,
    decomposition_from_elimination_order,
)
from repro.hypergraphs.treewidth import (
    min_degree_order,
    min_fill_order,
    order_width,
    tree_decomposition,
    treewidth_at_most,
    treewidth_exact,
    treewidth_lower_bound,
    treewidth_upper_bound,
)


def clique(n):
    return Hypergraph([{i, j} for i, j in itertools.combinations(range(n), 2)])


def path(n):
    return Hypergraph([{i, i + 1} for i in range(n - 1)])


def cycle(n):
    return Hypergraph([{i, (i + 1) % n} for i in range(n)])


def grid(r, c):
    edges = [{(i, j), (i + 1, j)} for i in range(r - 1) for j in range(c)]
    edges += [{(i, j), (i, j + 1)} for i in range(r) for j in range(c - 1)]
    return Hypergraph(edges)


class TestExact:
    def test_known_values(self):
        assert treewidth_exact(path(6)) == 1
        assert treewidth_exact(cycle(6)) == 2
        assert treewidth_exact(clique(5)) == 4
        assert treewidth_exact(grid(3, 3)) == 3
        assert treewidth_exact(grid(4, 4)) == 4

    def test_empty_and_singleton(self):
        assert treewidth_exact(Hypergraph([])) == -1
        assert treewidth_exact(Hypergraph([{1}])) == 0

    def test_disconnected_max_over_components(self):
        H = Hypergraph([{1, 2}, {2, 3}, {10, 11}, {11, 12}, {12, 10}])
        assert treewidth_exact(H) == 2

    def test_hyperedge_forces_width(self):
        H = Hypergraph([{1, 2, 3, 4}])
        assert treewidth_exact(H) == 3

    def test_budget(self):
        with pytest.raises(BudgetExceededError):
            treewidth_exact(clique(30))


class TestDecision:
    @pytest.mark.parametrize("k,expected", [(1, False), (2, True), (3, True)])
    def test_cycle(self, k, expected):
        assert treewidth_at_most(cycle(5), k) is expected

    def test_empty(self):
        assert treewidth_at_most(Hypergraph([]), 0)


class TestBounds:
    @pytest.mark.parametrize(
        "H", [path(5), cycle(7), clique(6), grid(3, 4)], ids=["path", "cycle", "clique", "grid"]
    )
    def test_bounds_bracket_exact(self, H):
        exact = treewidth_exact(H)
        assert treewidth_lower_bound(H) <= exact <= treewidth_upper_bound(H)

    def test_order_width_of_greedy_orders(self):
        H = grid(3, 3)
        for order in (min_fill_order(H), min_degree_order(H)):
            assert set(order) == set(H.vertices)
            assert order_width(H, order) >= treewidth_exact(H)


class TestDecompositions:
    @pytest.mark.parametrize(
        "H", [path(5), cycle(6), clique(5), grid(3, 3)], ids=["path", "cycle", "clique", "grid"]
    )
    def test_exact_decomposition_valid_and_tight(self, H):
        td = tree_decomposition(H)
        assert td.is_valid_for(H)
        assert td.width() == treewidth_exact(H)

    def test_heuristic_decomposition_valid(self):
        H = grid(4, 4)
        td = tree_decomposition(H, exact=False)
        assert td.is_valid_for(H)

    def test_from_elimination_order(self):
        H = cycle(5)
        td = decomposition_from_elimination_order(H, sorted(H.vertices))
        assert td.is_valid_for(H)

    def test_elimination_order_must_cover(self):
        with pytest.raises(DecompositionError):
            decomposition_from_elimination_order(path(3), [0])

    def test_disconnected_decomposition(self):
        H = Hypergraph([{1, 2}, {3, 4}])
        td = tree_decomposition(H)
        assert td.is_valid_for(H)


class TestTreeDecompositionValidity:
    def test_detects_missing_edge(self):
        H = Hypergraph([{1, 2}, {2, 3}])
        bad = TreeDecomposition([{1, 2}, {3}], [(0, 1)])
        assert not bad.is_valid_for(H)
        assert any("hyperedge" in v for v in bad.violations(H))

    def test_detects_disconnected_occurrence(self):
        H = Hypergraph([{1, 2}, {2, 3}])
        bad = TreeDecomposition([{1, 2}, {3}, {2, 3}], [(0, 1), (1, 2)])
        assert not bad.is_valid_for(H)

    def test_tree_shape_enforced(self):
        with pytest.raises(DecompositionError):
            TreeDecomposition([{1}, {2}], [])  # forest, not a tree
        with pytest.raises(DecompositionError):
            TreeDecomposition([{1}], [(0, 0)])

    def test_width(self):
        td = TreeDecomposition([{1, 2, 3}, {3}], [(0, 1)])
        assert td.width() == 2
