"""Tests for per-query resource accounting: monitors, budgets, the
engine accounting hooks, and the disabled-path overhead gate."""

import time

import pytest

from repro.core.atoms import atom
from repro.engine import Session
from repro.exceptions import ResourceBudgetExceeded
from repro.telemetry.resources import (
    ResourceBudget,
    ResourceMonitor,
    account_rows,
    account_subquery,
    current_monitor,
)
from repro.wdpt.eval_tractable import eval_tractable
from repro.wdpt.evaluation import evaluate
from repro.wdpt.wdpt import wdpt_from_nested
from repro.workloads.datasets import company_directory
from repro.workloads.families import FIGURE1_QUERY_TEXT, example2_graph

EXAMPLE2_QUERY = "SELECT ?x ?y ?z ?z2 WHERE " + FIGURE1_QUERY_TEXT


# ---------------------------------------------------------------------------
# Monitor mechanics
# ---------------------------------------------------------------------------
def test_accounting_is_noop_without_monitor():
    assert current_monitor() is None
    account_rows(10 ** 9)  # must not raise, must not allocate a monitor
    account_subquery()
    assert current_monitor() is None


def test_monitor_records_peaks_and_clocks():
    with ResourceMonitor() as monitor:
        assert current_monitor() is monitor
        account_rows(10)
        account_rows(3)  # peak keeps the max
        account_subquery(2)
    assert current_monitor() is None
    usage = monitor.usage
    assert usage.peak_intermediate_rows == 10
    assert usage.subqueries == 2
    assert usage.wall_seconds > 0 and usage.cpu_seconds >= 0
    assert usage.peak_memory_bytes is None  # memory tracing off by default
    d = usage.as_dict()
    assert d["peak_intermediate_rows"] == 10 and d["subqueries"] == 2


def test_monitors_nest():
    with ResourceMonitor() as outer:
        account_rows(5)
        with ResourceMonitor() as inner:
            account_rows(7)
        assert current_monitor() is outer
        account_rows(6)
    assert inner.usage.peak_intermediate_rows == 7
    assert outer.usage.peak_intermediate_rows == 6


def test_memory_tracing_reports_peak():
    with ResourceMonitor(trace_memory=True) as monitor:
        blob = [list(range(1000)) for _ in range(50)]
    assert monitor.usage.peak_memory_bytes > 0
    assert blob  # keep alive through the window


# ---------------------------------------------------------------------------
# Budgets
# ---------------------------------------------------------------------------
def test_hard_rows_budget_raises_in_flight():
    budget = ResourceBudget(hard_intermediate_rows=100)
    with pytest.raises(ResourceBudgetExceeded) as info:
        with ResourceMonitor(budget):
            account_rows(101)
            pytest.fail("account_rows must abort immediately")
    assert info.value.dimension == "intermediate-rows"
    assert info.value.limit == 100 and info.value.observed == 101
    assert current_monitor() is None  # monitor uninstalled despite the raise


def test_hard_wall_budget_enforced_at_accounting_points():
    budget = ResourceBudget(hard_wall_seconds=0.01)
    with pytest.raises(ResourceBudgetExceeded) as info:
        with ResourceMonitor(budget):
            time.sleep(0.02)
            account_rows(1)
    assert info.value.dimension == "wall-seconds"


def test_hard_wall_budget_enforced_post_hoc():
    budget = ResourceBudget(hard_wall_seconds=0.01)
    with pytest.raises(ResourceBudgetExceeded):
        with ResourceMonitor(budget):
            time.sleep(0.02)  # no accounting point: caught on exit


def test_soft_budgets_record_violations_without_raising():
    budget = ResourceBudget(soft_wall_seconds=0.0, soft_intermediate_rows=1)
    with ResourceMonitor(budget) as monitor:
        account_rows(5)
        time.sleep(0.001)
    violations = monitor.usage.soft_violations
    assert any("wall-seconds" in v for v in violations)
    assert any("intermediate-rows" in v for v in violations)


def test_post_hoc_checks_skipped_when_already_raising():
    budget = ResourceBudget(hard_wall_seconds=0.0)
    with pytest.raises(KeyError):  # the original error, not the budget one
        with ResourceMonitor(budget):
            time.sleep(0.001)
            raise KeyError("original")


# ---------------------------------------------------------------------------
# Session wiring
# ---------------------------------------------------------------------------
def test_session_tracks_resources_on_results():
    session = Session(example2_graph(), track_resources=True)
    result = session.query(EXAMPLE2_QUERY)
    assert result.resources is not None
    assert result.resources.peak_intermediate_rows > 0
    assert result.resources.wall_seconds > 0
    # Maximal-semantics evaluation is tracked too.
    assert session.query_maximal(EXAMPLE2_QUERY).resources is not None


def test_session_without_tracking_attaches_nothing():
    session = Session(example2_graph())
    assert session.query(EXAMPLE2_QUERY).resources is None


def test_session_hard_budget_aborts_query():
    budget = ResourceBudget(hard_intermediate_rows=0)
    session = Session(example2_graph(), budgets=budget)
    with pytest.raises(ResourceBudgetExceeded):
        session.query(EXAMPLE2_QUERY)


def test_session_soft_budget_logged_as_event():
    from repro.telemetry.obslog import QueryLog

    log = QueryLog()
    budget = ResourceBudget(soft_intermediate_rows=0)
    session = Session(example2_graph(), obslog=log, budgets=budget)
    result = session.query(EXAMPLE2_QUERY)
    assert result.resources.soft_violations
    (event,) = log.events("query.budget")
    assert any("intermediate-rows" in v for v in event["violations"])


def test_dp_subqueries_are_counted():
    query = wdpt_from_nested(
        (
            [atom("works_in", "?e", "?d")],
            [([atom("phone", "?e", "?p")], [])],
        ),
        free_variables=["?e", "?d", "?p"],
    )
    db = company_directory(n_departments=2, employees_per_department=4, seed=1)
    h = max(evaluate(query, db), key=lambda m: (len(m), repr(m)))
    with ResourceMonitor() as monitor:
        assert eval_tractable(query, db, h, method="auto")
    assert monitor.usage.subqueries > 0
    assert monitor.usage.peak_intermediate_rows > 0


def test_is_partial_and_is_maximal_count_subqueries():
    session = Session(example2_graph())
    answer = max(session.query(EXAMPLE2_QUERY).answers, key=len)
    with ResourceMonitor() as monitor:
        assert session.is_partial(EXAMPLE2_QUERY, answer)
        assert session.is_maximal(EXAMPLE2_QUERY, answer)
    assert monitor.usage.subqueries >= 2


# ---------------------------------------------------------------------------
# Disabled-path overhead gate (<5%)
# ---------------------------------------------------------------------------
def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_disabled_accounting_overhead_below_5_percent():
    """With no monitor installed, the per-hook cost (one thread-local
    read) must stay under 5% of a real DP workload's runtime."""
    query = wdpt_from_nested(
        (
            [atom("works_in", "?e", "?d")],
            [
                ([atom("phone", "?e", "?p")], []),
                ([atom("reports_to", "?e", "?m")],
                 [([atom("office", "?m", "?o")], [])]),
            ],
        ),
        free_variables=["?e", "?d", "?p", "?m", "?o"],
    )
    db = company_directory(n_departments=4, employees_per_department=8, seed=1)
    h = max(evaluate(query, db), key=lambda m: (len(m), repr(m)))
    workload = lambda: eval_tractable(query, db, h, method="auto")  # noqa: E731

    # Count the accounting hits the workload actually performs.
    with ResourceMonitor() as monitor:
        workload()
    n_hits = monitor.usage.subqueries + 1  # sat checks + candidate sets
    assert n_hits > 1

    workload_seconds = min(_timed(workload) for _ in range(5))

    def disabled_hits():
        for _ in range(n_hits):
            account_rows(1)
            account_subquery()

    assert current_monitor() is None
    disabled_seconds = min(_timed(disabled_hits) for _ in range(5))
    assert disabled_seconds < 0.05 * workload_seconds, (
        "disabled accounting took %.3gs for %d hits vs %.3gs workload"
        % (disabled_seconds, n_hits, workload_seconds)
    )
