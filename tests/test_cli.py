"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestProfile:
    def test_surface_query(self, capsys):
        assert main(["profile", "SELECT ?x WHERE { ?x knows ?y }"]) == 0
        out = capsys.readouterr().out
        assert "WDPT profile" in out and "EVAL route" in out

    def test_algebraic_fallback(self, capsys):
        assert main(["profile", "(?x, knows, ?y) OPT (?x, age, ?a)"]) == 0
        out = capsys.readouterr().out
        assert "tree nodes" in out

    def test_unparseable(self, capsys):
        assert main(["profile", "((("]) == 1
        assert "error:" in capsys.readouterr().err


class TestRun:
    @pytest.fixture
    def triples_file(self, tmp_path):
        path = tmp_path / "data.tsv"
        path.write_text("# comment\na knows b\nb knows c\na age 30\n")
        return str(path)

    def test_run(self, capsys, triples_file):
        code = main(
            ["run", "SELECT ?x ?a WHERE { ?x knows ?y OPTIONAL { ?x age ?a } }",
             triples_file]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 answer(s)" in out
        assert "'30'" in out

    def test_bad_triples_line(self, capsys, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("only two\n")
        assert main(["run", "{ ?x knows ?y }", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        with pytest.raises(FileNotFoundError):
            main(["run", "{ ?x knows ?y }", "/nonexistent/file.tsv"])


class TestDemo:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Our_love" in out and "Theorem 7" in out
