"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestProfile:
    def test_surface_query(self, capsys):
        assert main(["profile", "SELECT ?x WHERE { ?x knows ?y }"]) == 0
        out = capsys.readouterr().out
        assert "WDPT profile" in out and "EVAL route" in out

    def test_algebraic_fallback(self, capsys):
        assert main(["profile", "(?x, knows, ?y) OPT (?x, age, ?a)"]) == 0
        out = capsys.readouterr().out
        assert "tree nodes" in out

    def test_unparseable(self, capsys):
        assert main(["profile", "((("]) == 1
        assert "error:" in capsys.readouterr().err


class TestRun:
    @pytest.fixture
    def triples_file(self, tmp_path):
        path = tmp_path / "data.tsv"
        path.write_text("# comment\na knows b\nb knows c\na age 30\n")
        return str(path)

    def test_run(self, capsys, triples_file):
        code = main(
            ["run", "SELECT ?x ?a WHERE { ?x knows ?y OPTIONAL { ?x age ?a } }",
             triples_file]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 answer(s)" in out
        assert "'30'" in out

    def test_bad_triples_line(self, capsys, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("only two\n")
        assert main(["run", "{ ?x knows ?y }", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["run", "{ ?x knows ?y }", "/nonexistent/file.tsv"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "/nonexistent/file.tsv" in err

    def test_unparseable_query(self, capsys):
        assert main(["run", "(((", "/nonexistent/file.tsv"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_trace_out_unwritable(self, capsys, triples_file):
        code = main(
            ["run", "{ ?x knows ?y }", triples_file,
             "--trace-out", "/nonexistent/dir/trace.json"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err and "cannot write trace" in err

    def test_query_log_and_slow_capture(self, capsys, triples_file, tmp_path):
        import json

        log_path = tmp_path / "queries.jsonl"
        code = main(
            ["run", "{ ?x knows ?y }", triples_file,
             "--log-queries", str(log_path), "--slow-ms", "0"]
        )
        assert code == 0
        assert "wrote query log" in capsys.readouterr().out
        events = [
            json.loads(line) for line in log_path.read_text().splitlines()
        ]
        names = [e["event"] for e in events]
        assert "query.plan" in names and "query.slow" in names
        (slow,) = [e for e in events if e["event"] == "query.slow"]
        assert slow["profile"]["nodes"]

    def test_query_log_unwritable(self, capsys, triples_file):
        code = main(
            ["run", "{ ?x knows ?y }", triples_file,
             "--log-queries", "/nonexistent/dir/q.jsonl"]
        )
        assert code == 1
        assert "cannot open query log" in capsys.readouterr().err


class TestAnalyzeErrors:
    def test_missing_triples_file(self, capsys):
        assert main(["analyze", "{ ?x knows ?y }", "/nonexistent/f.tsv"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_unparseable_query(self, capsys):
        assert main(["analyze", "((("]) == 1
        assert "error:" in capsys.readouterr().err


class TestMetrics:
    def test_metrics_prints_exposition(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_planner_engine_selected counter" in out
        assert 'engine="wdpt-topdown"' in out
        assert 'quantile="0.99"' in out

    def test_serve_metrics_self_check(self, capsys):
        assert main(["serve-metrics", "--self-check"]) == 0
        out = capsys.readouterr().out
        assert "serving http://127.0.0.1:" in out
        assert '"status": "ok"' in out
        assert "repro_planner_engine_selected" in out


class TestDemo:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Our_love" in out and "Theorem 7" in out
