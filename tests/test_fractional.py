"""Unit tests for fractional edge covers and fractional hypertree width."""

import itertools

import pytest

from repro.hypergraphs.fractional import (
    fractional_cover_number,
    fractional_hypertreewidth,
    fractional_hypertreewidth_upper_bound,
)
from repro.hypergraphs.hypergraph import Hypergraph
from repro.hypergraphs.hypertree import hypertreewidth_exact


def triangle():
    return Hypergraph([{1, 2}, {2, 3}, {1, 3}])


def clique(n):
    return Hypergraph([{i, j} for i, j in itertools.combinations(range(n), 2)])


class TestFractionalCover:
    def test_triangle_is_three_halves(self):
        assert fractional_cover_number(triangle(), frozenset({1, 2, 3})) == pytest.approx(1.5)

    def test_single_edge(self):
        H = Hypergraph([{1, 2, 3}])
        assert fractional_cover_number(H, frozenset({1, 2, 3})) == pytest.approx(1.0)

    def test_empty_bag(self):
        assert fractional_cover_number(triangle(), frozenset()) == 0.0

    def test_uncoverable(self):
        H = Hypergraph([{1}], vertices=[2])
        assert fractional_cover_number(H, frozenset({2})) == float("inf")

    def test_at_most_integral_cover(self):
        from repro.hypergraphs.hypertree import edge_cover_number

        for H in (triangle(), clique(5)):
            bag = frozenset(H.vertices)
            integral = edge_cover_number(H, bag, len(H.edges))
            assert integral is not None
            assert fractional_cover_number(H, bag) <= integral + 1e-9

    def test_k5_is_five_halves(self):
        # K_n with pair edges: ρ*(all vertices) = n/2.
        assert fractional_cover_number(clique(5), frozenset(range(5))) == pytest.approx(2.5)


class TestFhw:
    def test_acyclic_is_one(self):
        H = Hypergraph([{1, 2}, {2, 3}])
        assert fractional_hypertreewidth(H) == pytest.approx(1.0)

    def test_triangle(self):
        assert fractional_hypertreewidth(triangle()) == pytest.approx(1.5)

    def test_at_most_ghw(self):
        for H in (triangle(), clique(4), clique(5)):
            assert fractional_hypertreewidth(H) <= hypertreewidth_exact(H) + 1e-9

    def test_upper_bound_is_upper(self):
        for H in (triangle(), clique(4)):
            assert (
                fractional_hypertreewidth(H)
                <= fractional_hypertreewidth_upper_bound(H) + 1e-9
            )

    def test_empty(self):
        assert fractional_hypertreewidth(Hypergraph([])) == 0.0

    def test_disconnected(self):
        H = Hypergraph([{1, 2}, {2, 3}, {1, 3}, {10, 11}])
        assert fractional_hypertreewidth(H) == pytest.approx(1.5)
