"""Unit tests for the backtracking CQ engine."""

import pytest

from repro.core.atoms import atom
from repro.core.cq import cq
from repro.core.database import Database
from repro.core.mappings import Mapping
from repro.cqalgs.naive import (
    count_homomorphisms,
    evaluate_naive,
    homomorphisms,
    is_answer,
    satisfiable,
)


@pytest.fixture
def db():
    return Database([atom("E", 1, 2), atom("E", 2, 3), atom("E", 3, 1), atom("E", 2, 2)])


class TestEvaluate:
    def test_single_atom(self, db):
        q = cq(["?x", "?y"], [atom("E", "?x", "?y")])
        assert len(evaluate_naive(q, db)) == 4

    def test_projection(self, db):
        q = cq(["?x"], [atom("E", "?x", "?y")])
        assert evaluate_naive(q, db) == {
            Mapping({"?x": 1}),
            Mapping({"?x": 2}),
            Mapping({"?x": 3}),
        }

    def test_join(self, db):
        q = cq(["?x", "?z"], [atom("E", "?x", "?y"), atom("E", "?y", "?z")])
        answers = evaluate_naive(q, db)
        assert Mapping({"?x": 1, "?z": 3}) in answers
        assert Mapping({"?x": 1, "?z": 2}) in answers  # through the loop at 2

    def test_boolean(self, db):
        q = cq([], [atom("E", "?x", "?x")])
        assert evaluate_naive(q, db) == {Mapping({})}

    def test_boolean_false(self, db):
        q = cq([], [atom("E", 1, 1)])
        assert evaluate_naive(q, db) == frozenset()

    def test_constants_in_atoms(self, db):
        q = cq(["?y"], [atom("E", 2, "?y")])
        assert evaluate_naive(q, db) == {Mapping({"?y": 3}), Mapping({"?y": 2})}

    def test_repeated_variable(self, db):
        q = cq(["?x"], [atom("E", "?x", "?x")])
        assert evaluate_naive(q, db) == {Mapping({"?x": 2})}


class TestHomomorphisms:
    def test_total_on_variables(self, db):
        homs = list(homomorphisms([atom("E", "?x", "?y")], db))
        assert all(len(h) == 2 for h in homs)
        assert len(homs) == 4

    def test_no_duplicates(self, db):
        homs = list(homomorphisms([atom("E", "?x", "?y"), atom("E", "?x", "?y")], db))
        assert len(homs) == len(set(homs))

    def test_pre_assignment(self, db):
        pre = Mapping({"?x": 2})
        homs = set(homomorphisms([atom("E", "?x", "?y")], db, pre))
        assert homs == {Mapping({"?x": 2, "?y": 3}), Mapping({"?x": 2, "?y": 2})}

    def test_pre_assignment_with_foreign_variable(self, db):
        pre = Mapping({"?q": 7})
        homs = list(homomorphisms([atom("E", "?x", "?x")], db, pre))
        assert homs == [Mapping({"?q": 7, "?x": 2})]

    def test_limit(self, db):
        homs = list(homomorphisms([atom("E", "?x", "?y")], db, limit=2))
        assert len(homs) == 2

    def test_count(self, db):
        assert count_homomorphisms([atom("E", "?x", "?y")], db) == 4

    def test_cartesian_product(self, db):
        homs = list(homomorphisms([atom("E", "?a", "?b"), atom("E", "?c", "?d")], db))
        assert len(homs) == 16


class TestDecision:
    def test_satisfiable(self, db):
        assert satisfiable([atom("E", "?x", "?x")], db)
        assert not satisfiable([atom("E", 1, 1)], db)

    def test_satisfiable_with_pre(self, db):
        assert satisfiable([atom("E", "?x", "?y")], db, Mapping({"?x": 1}))
        assert not satisfiable([atom("E", "?x", "?y")], db, Mapping({"?x": 99}))

    def test_is_answer_exact_domain(self, db):
        q = cq(["?x"], [atom("E", "?x", "?y")])
        assert is_answer(q, db, Mapping({"?x": 1}))
        assert not is_answer(q, db, Mapping({"?x": 1, "?y": 2}))  # wrong domain
        assert not is_answer(q, db, Mapping({"?x": 99}))
