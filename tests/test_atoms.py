"""Unit tests for repro.core.atoms."""

import pytest

from repro.core.atoms import Atom, Schema, atom, constants_of, variables_of
from repro.core.terms import Constant, Variable
from repro.exceptions import SchemaError


class TestAtom:
    def test_construction_and_coercion(self):
        a = Atom("E", ("?x", 1))
        assert a.relation == "E"
        assert a.args == (Variable("x"), Constant(1))

    def test_arity(self):
        assert atom("R", "?x", "?y", "?z").arity == 3

    def test_zero_arity_rejected(self):
        with pytest.raises(SchemaError):
            Atom("R", ())

    def test_bad_relation_name(self):
        with pytest.raises(SchemaError):
            Atom("", ("?x",))

    def test_variables_and_constants(self):
        a = atom("R", "?x", "c", "?x", 3)
        assert a.variables() == {Variable("x")}
        assert a.constants() == {Constant("c"), Constant(3)}

    def test_is_ground(self):
        assert atom("R", 1, 2).is_ground()
        assert not atom("R", "?x", 2).is_ground()

    def test_substitute_partial(self):
        a = atom("R", "?x", "?y")
        b = a.substitute({Variable("x"): Constant(1)})
        assert b == atom("R", 1, "?y")

    def test_rename(self):
        a = atom("R", "?x", "?y")
        assert a.rename({Variable("x"): Variable("z")}) == atom("R", "?z", "?y")

    def test_equality_and_hash(self):
        assert atom("R", "?x") == atom("R", "?x")
        assert atom("R", "?x") != atom("R", "?y")
        assert atom("R", "?x") != atom("S", "?x")
        assert len({atom("R", "?x"), atom("R", "?x")}) == 1

    def test_repr_roundtrip_style(self):
        assert repr(atom("E", "?x", 1)) == "E(?x, 1)"

    def test_ordering_is_total_on_examples(self):
        atoms = [atom("B", 1), atom("A", 2), atom("A", 1)]
        assert sorted(atoms) == [atom("A", 1), atom("A", 2), atom("B", 1)]


class TestSchema:
    def test_add_and_lookup(self):
        s = Schema({"E": 2})
        assert s.arity("E") == 2
        assert "E" in s and "F" not in s

    def test_conflicting_arity(self):
        s = Schema({"E": 2})
        with pytest.raises(SchemaError):
            s.add_relation("E", 3)

    def test_reregister_same_arity_ok(self):
        s = Schema({"E": 2})
        s.add_relation("E", 2)
        assert len(s) == 1

    def test_unknown_relation(self):
        with pytest.raises(SchemaError):
            Schema().arity("E")

    def test_validate_atom(self):
        s = Schema({"E": 2})
        s.validate_atom(atom("E", 1, 2))
        with pytest.raises(SchemaError):
            s.validate_atom(atom("E", 1))
        with pytest.raises(SchemaError):
            s.validate_atom(atom("F", 1))

    def test_infer(self):
        s = Schema.infer([atom("E", 1, 2), atom("U", 1)])
        assert s.arity("E") == 2 and s.arity("U") == 1

    def test_bad_arity_rejected(self):
        with pytest.raises(SchemaError):
            Schema({"E": 0})


def test_variables_of_and_constants_of():
    atoms = [atom("E", "?x", "?y"), atom("F", "?y", 1)]
    assert variables_of(atoms) == {Variable("x"), Variable("y")}
    assert constants_of(atoms) == {Constant(1)}
