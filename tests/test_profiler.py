"""Tests for the span-aware sampling profiler: sampling mechanics, phase
attribution, flamegraph exports, GC/pool health gauges, the
/debug/profile route, and the disabled-path overhead gate."""

import gc
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.engine import Session
from repro.telemetry import profiler as profiler_mod
from repro.telemetry import tracer as tracer_mod
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.obslog import QueryLog, validate_obslog
from repro.telemetry.profiler import (
    GCMonitor,
    SamplingProfiler,
    current_profiler,
    ensure_profiler,
    folded_stacks,
    folded_text,
    gc_summary,
    profiling,
    span_phase,
    summarize_samples,
    to_speedscope,
    validate_folded,
    validate_speedscope,
)
from repro.telemetry.promhttp import MetricsServer
from repro.telemetry.tracer import tracing
from repro.workloads.families import FIGURE1_QUERY_TEXT, example2_graph

EXAMPLE2_QUERY = "SELECT ?x ?y ?z ?z2 WHERE " + FIGURE1_QUERY_TEXT


def _busy(seconds):
    """Burn CPU in a recognizably-named frame until ``seconds`` elapse."""
    deadline = time.monotonic() + seconds
    n = 0
    while time.monotonic() < deadline:
        n += sum(i * i for i in range(200))
    return n


@pytest.fixture(autouse=True)
def _no_leftover_hooks():
    """Every test must leave the module-level hooks clean."""
    yield
    leftover = current_profiler()
    if leftover is not None:
        leftover.stop()
    assert current_profiler() is None
    assert tracer_mod._span_registry is None


# ---------------------------------------------------------------------------
# Sampling mechanics
# ---------------------------------------------------------------------------
def test_sampler_collects_root_first_stacks():
    profiler = SamplingProfiler(hz=400)
    profiler.start()
    try:
        _busy(0.15)
    finally:
        profiler.stop()
    samples = profiler.samples
    assert len(samples) >= 5
    ts, ident, frames, trace_id, span, phase = samples[0]
    assert isinstance(ts, float) and isinstance(ident, int)
    assert trace_id is None and span is None and phase is None
    # Root-first: the leaf (deepest frame) is last; our busy loop should
    # dominate some sample's leaf end.
    assert any("_busy" in f for s in samples for f in s[2])
    leaves = [s[2][-1] for s in samples]
    assert any("_busy" in leaf or "genexpr" in leaf for leaf in leaves)


def test_start_stop_are_idempotent_and_restore_hooks():
    profiler = SamplingProfiler(hz=200)
    assert not profiler.running
    profiler.start()
    profiler.start()  # no-op, no second thread
    assert profiler.running
    assert current_profiler() is profiler
    assert tracer_mod._span_registry is not None
    profiler.stop()
    profiler.stop()  # no-op
    assert not profiler.running
    assert current_profiler() is None
    assert tracer_mod._span_registry is None


def test_max_samples_bounds_memory_and_counts_drops():
    profiler = SamplingProfiler(hz=500, max_samples=10)
    profiler.start()
    try:
        _busy(0.2)
    finally:
        profiler.stop()
    assert profiler.sample_count <= 10
    assert profiler.dropped + profiler.sample_count >= 10


def test_profiling_contextmanager_and_ensure_profiler():
    with profiling(hz=300) as profiler:
        assert current_profiler() is profiler
        assert profiler.running
        # ensure_profiler reuses the running one.
        assert ensure_profiler(300) is profiler
    assert current_profiler() is None
    # ensure_profiler creates + starts one when none is running.
    profiler = ensure_profiler(250)
    try:
        assert profiler.running and profiler.hz == 250
    finally:
        profiler.stop()


# ---------------------------------------------------------------------------
# Phase classification and span attribution
# ---------------------------------------------------------------------------
def test_span_phase_table():
    assert span_phase("session.parse") == "plan"
    assert span_phase("planner.estimate") == "plan"
    assert span_phase("yannakakis.semijoin_up") == "semijoin"
    assert span_phase("yannakakis.scan") == "semijoin"
    assert span_phase("yannakakis.join") == "join"
    assert span_phase("cq.containment") == "join"
    assert span_phase("wdpt.extend") == "enumerate"
    assert span_phase("session.query") == "enumerate"
    assert span_phase("something.else") == "other"
    assert span_phase(None) is None


def test_samples_are_tagged_with_trace_span_and_phase():
    from repro.telemetry.context import set_trace_context

    profiler = SamplingProfiler(hz=500)
    profiler.start()
    try:
        previous = set_trace_context("trace-abc", None)
        try:
            with tracing() as tracer:
                with tracer.span("yannakakis.semijoin_up"):
                    _busy(0.1)
        finally:
            set_trace_context(*previous)
    finally:
        profiler.stop()
    tagged = [s for s in profiler.samples if s[3] == "trace-abc"]
    assert tagged
    assert {s[4] for s in tagged} == {"yannakakis.semijoin_up"}
    assert {s[5] for s in tagged} == {"semijoin"}
    assert profiler.samples_for_trace("trace-abc") == tagged
    assert profiler.samples_for_trace("other-trace") == []


def test_span_attribution_tracks_nesting():
    profiler = SamplingProfiler(hz=500)
    profiler.start()
    try:
        with tracing() as tracer:
            with tracer.span("planner.estimate"):
                _busy(0.06)
                with tracer.span("yannakakis.join"):
                    _busy(0.06)
                # Back in the outer span after the inner exits.
                _busy(0.06)
    finally:
        profiler.stop()
    phases = {s[5] for s in profiler.samples}
    assert "plan" in phases and "join" in phases


# ---------------------------------------------------------------------------
# Folded stacks and speedscope export
# ---------------------------------------------------------------------------
def _tagged_samples():
    return [
        (1.0, 1, ("a.py:f", "b.py:g"), "t1", "yannakakis.join", "join"),
        (1.1, 1, ("a.py:f", "b.py:g"), "t1", "yannakakis.join", "join"),
        (1.2, 1, ("a.py:f", "c.py:h"), "t2", None, None),
    ]


def test_folded_stacks_by_frames_phase_and_trace():
    samples = _tagged_samples()
    by_frames = folded_stacks(samples, by="frames")
    assert by_frames["a.py:f;b.py:g"] == 2
    assert by_frames["a.py:f;c.py:h"] == 1
    by_phase = folded_stacks(samples, by="phase")
    assert by_phase["phase:join;a.py:f;b.py:g"] == 2
    assert by_phase["phase:(no span);a.py:f;c.py:h"] == 1
    only_t1 = folded_stacks(samples, by="frames", trace_id="t1")
    assert sum(only_t1.values()) == 2
    text = folded_text(samples, by="frames")
    lines = text.strip().splitlines()
    # Hottest first, "stack count" format.
    assert lines[0] == "a.py:f;b.py:g 2"
    assert validate_folded(text) == []


def test_speedscope_payload_validates_and_carries_trace_id():
    samples = [s for s in _tagged_samples() if s[3] == "t1"]
    payload = to_speedscope(samples, hz=100, name="unit")
    assert validate_speedscope(payload) == []
    assert payload["$schema"] == profiler_mod.SPEEDSCOPE_SCHEMA
    assert payload["trace_id"] == "t1"  # all samples share one trace
    profile = payload["profiles"][0]
    assert profile["type"] == "sampled"
    assert len(profile["samples"]) == len(profile["weights"]) == 2
    assert profile["weights"][0] == pytest.approx(1 / 100)
    # Mixed traces → no top-level trace_id.
    mixed = to_speedscope(_tagged_samples(), hz=100)
    assert "trace_id" not in mixed or mixed["trace_id"] is None


def test_write_speedscope_roundtrip(tmp_path):
    path = tmp_path / "out.speedscope.json"
    profiler_mod.write_speedscope(_tagged_samples(), 100, str(path))
    payload = json.loads(path.read_text())
    assert validate_speedscope(payload) == []


def test_validators_reject_garbage():
    assert validate_speedscope(None)
    assert validate_speedscope({})
    assert validate_speedscope({"$schema": "x", "shared": {}, "profiles": []})
    # Empty profile is an error (CI must fail on an empty flamegraph).
    empty = to_speedscope([], hz=100)
    assert any("no samples" in e or "empty" in e
               for e in validate_speedscope(empty))
    assert validate_folded("")
    assert validate_folded("no-count-here\n")
    assert validate_folded("a;b notanumber\n")
    assert validate_folded("a;b 3\n") == []


def test_summarize_samples_reports_phases_and_top():
    summary = summarize_samples(_tagged_samples(), hz=100, top=5)
    assert summary["samples"] == 3
    assert summary["seconds"] == pytest.approx(3 / 100)
    assert summary["phases"] == {"join": 2, "(no span)": 1}
    assert summary["trace_ids"] == 2
    assert summary["top"][0][1] == 2


# ---------------------------------------------------------------------------
# Dump / absorb (the process-pool envelope path)
# ---------------------------------------------------------------------------
def test_dump_absorb_roundtrip():
    import pickle

    source = SamplingProfiler(hz=100)
    source.absorb(_tagged_samples())
    dump = source.dump(drain=True)
    assert source.sample_count == 0
    # The envelope must survive pickling (process pool transport).
    dump = pickle.loads(pickle.dumps(dump))
    target = SamplingProfiler(hz=100)
    assert target.absorb_dump(dump) == 3
    assert target.sample_count == 3
    assert target.absorb_dump(None) == 0


# ---------------------------------------------------------------------------
# Session integration: Result.profile_samples + obslog slow records
# ---------------------------------------------------------------------------
def test_result_profile_samples_attached_under_running_profiler():
    session = Session(example2_graph(), cache=False)
    result = session.query(EXAMPLE2_QUERY)
    assert result.profile_samples is None  # no profiler → untouched
    with profiling(hz=800):
        result = session.query(EXAMPLE2_QUERY)
    assert result.profile_samples is not None  # [] when too fast to sample
    for sample in result.profile_samples:
        assert sample[3] is not None


def test_slow_record_embeds_profile_digest_and_shares_trace_id(tmp_path):
    path = tmp_path / "log.jsonl"
    log = QueryLog(sink=str(path), slow_threshold=0.0)
    session = Session(example2_graph(), obslog=log, cache=False)
    with profiling(hz=800) as profiler:
        result = session.query(EXAMPLE2_QUERY)
    log.close()
    slow = [r for r in log.events("query.slow")]
    assert slow, "slow_threshold=0 must capture every query"
    record = slow[-1]
    digest = record.get("profile_samples")
    assert isinstance(digest, dict)
    assert digest["trace_id"] == record["trace_id"]
    assert validate_obslog(path.read_text().splitlines()) == []
    # Acceptance: the speedscope export filtered to this trace carries
    # the same trace_id as the obslog record and the result's samples.
    trace_id = record["trace_id"]
    payload = to_speedscope(
        profiler.samples_for_trace(trace_id), hz=profiler.hz,
        trace_id=trace_id,
    )
    if payload["profiles"][0]["samples"]:
        assert payload["trace_id"] == trace_id
    for sample in result.profile_samples:
        assert sample[3] == trace_id


def test_process_batch_merges_worker_samples():
    db = example2_graph()
    queries = [EXAMPLE2_QUERY] * 4
    with profiling(hz=500) as profiler:
        with Session(db, executor="process", cache=False) as session:
            batch = session.run_batch(queries, jobs=2, executor="process")
    assert len(batch.results) == 4
    # Worker samples were absorbed into the parent profiler (the parent
    # also samples itself, so just require absorbed worker frames to be
    # plausible: every sample keeps the 6-tuple shape).
    for sample in profiler.samples:
        assert len(sample) == 6


# ---------------------------------------------------------------------------
# GC gauges
# ---------------------------------------------------------------------------
def test_gc_monitor_records_pauses_and_generations():
    registry = MetricsRegistry()
    monitor = GCMonitor(registry).install()
    try:
        for _ in range(3):
            gc.collect()
    finally:
        monitor.uninstall()
    assert monitor._callback not in gc.callbacks
    summary = gc_summary(registry)
    assert summary["enabled"] is True
    assert sum(summary["collections"].values()) >= 3
    assert summary["pause_ms"]["count"] >= 3
    assert gc_summary(MetricsRegistry()) == {"enabled": False}
    assert gc_summary(None) == {"enabled": False}


def test_session_stats_surface_gc_summary():
    session = Session(example2_graph())
    assert session.stats()["gc"] == {"enabled": False}
    with profiling(hz=100, registry=session.planner.metrics):
        gc.collect()
        session.query(EXAMPLE2_QUERY)
    stats = session.stats()
    assert stats["gc"]["enabled"] is True
    assert sum(stats["gc"]["collections"].values()) >= 1


# ---------------------------------------------------------------------------
# Pool saturation gauges
# ---------------------------------------------------------------------------
def test_thread_pool_exports_saturation_gauges():
    from repro.parallel.pool import WorkerPool

    registry = MetricsRegistry()
    with WorkerPool(jobs=2, metrics=registry) as pool:
        assert pool.map_tasks(lambda x: x * x, list(range(8))) == [
            x * x for x in range(8)
        ]
    labels = {"executor": "thread"}
    assert registry.counter("pool.tasks_total", labels).value == 8
    # Settled after the map: nothing queued, nothing active.
    assert registry.gauge("pool.queue_depth", labels).value == 0
    assert registry.gauge("pool.active_workers", labels).value == 0


def test_inline_pool_counts_tasks_without_gauges():
    from repro.parallel.pool import WorkerPool

    registry = MetricsRegistry()
    with WorkerPool(jobs=1, metrics=registry) as pool:
        pool.map_tasks(lambda x: x, [1, 2, 3])
    assert registry.counter(
        "pool.tasks_total", {"executor": "thread"}).value == 3


def test_session_pools_feed_the_planner_registry():
    session = Session(example2_graph(), jobs=2)
    session.run_batch([EXAMPLE2_QUERY] * 4, jobs=2)
    exposition = session.planner.metrics.to_prometheus()
    assert "repro_pool_tasks_total" in exposition


# ---------------------------------------------------------------------------
# /debug/profile over HTTP
# ---------------------------------------------------------------------------
def _get(url):
    with urllib.request.urlopen(url) as response:
        return response.status, json.loads(response.read().decode())


def test_debug_profile_lifecycle_over_http():
    registry = MetricsRegistry()
    with MetricsServer(registry, port=0) as server:
        status, payload = _get(server.url + "/debug/profile")
        assert status == 200 and payload["running"] is False
        assert "hint" in payload
        status, payload = _get(
            server.url + "/debug/profile?action=start&hz=300")
        assert status == 200
        assert payload["running"] is True and payload["hz"] == 300
        _busy(0.05)
        status, snapshot = _get(
            server.url + "/debug/profile?action=snapshot")
        assert status == 200 and "phases" in snapshot
        with urllib.request.urlopen(
            server.url + "/debug/profile?format=speedscope"
        ) as response:
            speedscope = json.loads(response.read().decode())
        # May legitimately be empty if no sample landed yet; only
        # validate the shape keys.
        assert speedscope["$schema"] == profiler_mod.SPEEDSCOPE_SCHEMA
        with urllib.request.urlopen(
            server.url + "/debug/profile?format=folded"
        ) as response:
            assert response.headers["Content-Type"].startswith("text/plain")
        status, payload = _get(server.url + "/debug/profile?action=stop")
        assert status == 200 and payload["running"] is False
    # Server stop also stops the owned profiler and clears the hooks.
    assert current_profiler() is None


def test_debug_profile_error_paths():
    with MetricsServer(MetricsRegistry(), port=0) as server:
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(server.url + "/debug/profile?action=flood")
        assert err.value.code == 400
        assert "unknown profile action" in json.loads(
            err.value.read().decode())["error"]
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                server.url + "/debug/profile?action=start&hz=abc")
        assert err.value.code == 400
        # Export before any profiler exists → 404.
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                server.url + "/debug/profile?format=speedscope")
        assert err.value.code == 404


def test_debug_profile_survives_concurrent_start_stop_races():
    with MetricsServer(MetricsRegistry(), port=0) as server:
        errors = []

        def hammer(action):
            for _ in range(10):
                try:
                    _get(server.url + "/debug/profile?action=" + action)
                except Exception as exc:  # noqa: BLE001 - collect all
                    errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(action,))
            for action in ("start", "stop", "snapshot", "start", "stop")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # Whatever the interleaving, stop leaves exactly zero samplers.
        _get(server.url + "/debug/profile?action=stop")
    assert current_profiler() is None
    assert not any(
        thread.name.startswith("repro-profiler")
        for thread in threading.enumerate()
    )


def test_debug_unknown_route_and_broken_provider_still_honored():
    """The pre-existing error contracts hold with the profile route added:
    unknown /debug names 404 with the route list (now including
    /debug/profile), and a raising provider is a 500 JSON."""
    with MetricsServer(
        MetricsRegistry(),
        port=0,
        debug={"boom": lambda: 1 / 0},
    ) as server:
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(server.url + "/debug/nope")
        assert err.value.code == 404
        body = json.loads(err.value.read().decode())
        assert "/debug/profile" in body["routes"]
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(server.url + "/debug/boom")
        assert err.value.code == 500
        assert "ZeroDivisionError" in json.loads(
            err.value.read().decode())["error"]


# ---------------------------------------------------------------------------
# Overhead gate
# ---------------------------------------------------------------------------
def _kernel_workload():
    from repro.planner.planner import Planner
    from repro.workloads.generators import path_cq, random_graph_database

    planner = Planner()
    q = path_cq(5)
    db = random_graph_database(50, 320, seed=7)
    return lambda: planner.evaluate_cq(q, db)


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_path_is_structurally_zero_cost():
    # No profiler → the per-span hook is a single module-global read
    # that is None, and the trace-map is the only context write.
    assert tracer_mod._span_registry is None
    assert current_profiler() is None
    # NullTracer span path untouched: entering spans with tracing
    # disabled must not populate any registry even while one exists.
    registry = {}
    previous = tracer_mod.set_span_registry(registry)
    try:
        from repro.telemetry.tracer import trace_span

        with trace_span("yannakakis.join"):
            pass
        assert registry == {}  # NullSpan never touches the registry
    finally:
        tracer_mod.set_span_registry(previous)


def test_profiled_overhead_within_five_percent():
    workload = _kernel_workload()
    workload()  # warm caches
    # Best-of-N filters scheduler noise, and the whole comparison is
    # retried: a single run can still catch a page-cache hiccup, but
    # three in a row exceeding the gate means real overhead.
    attempts = []
    for _ in range(3):
        baseline = _best_of(workload, repeats=5)
        profiler = SamplingProfiler(hz=100, gc_stats=False)
        profiler.start()
        try:
            profiled = _best_of(workload, repeats=5)
        finally:
            profiler.stop()
        attempts.append((baseline, profiled))
        if profiled <= baseline * 1.05 + 5e-4:
            return
    pytest.fail(
        "profiling overhead above 5%% at 100 Hz in all attempts: %s"
        % ", ".join("%.6fs -> %.6fs" % pair for pair in attempts)
    )
