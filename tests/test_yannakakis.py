"""Unit tests for Yannakakis' algorithm (cross-checked against naive)."""

import pytest

from repro.core.atoms import atom
from repro.core.cq import cq
from repro.core.database import Database
from repro.cqalgs.naive import evaluate_naive
from repro.cqalgs.yannakakis import evaluate_acyclic
from repro.exceptions import ClassMembershipError
from repro.workloads.generators import path_cq, random_graph_database, star_cq


@pytest.fixture
def db():
    return random_graph_database(8, 25, seed=42)


@pytest.mark.parametrize("length", [1, 2, 3, 5])
def test_path_queries_agree_with_naive(db, length):
    q = path_cq(length)
    assert evaluate_acyclic(q, db) == evaluate_naive(q, db)


def test_star_query(db):
    q = star_cq(3)
    assert evaluate_acyclic(q, db) == evaluate_naive(q, db)


def test_boolean_query(db):
    q = path_cq(4, frees=[])
    assert evaluate_acyclic(q, db) == evaluate_naive(q, db)


def test_full_query(db):
    q = path_cq(3)
    q_full = q.full()
    assert evaluate_acyclic(q_full, db) == evaluate_naive(q_full, db)


def test_cyclic_rejected(db):
    tri = cq([], [atom("E", "?x", "?y"), atom("E", "?y", "?z"), atom("E", "?z", "?x")])
    with pytest.raises(ClassMembershipError):
        evaluate_acyclic(tri, db)


def test_dangling_tuples_removed():
    """The classic case semi-joins exist for: tuples that join locally but
    not globally must not survive."""
    db = Database([atom("R", 1, 2), atom("S", 2, 3), atom("T", 3, 4), atom("S", 2, 9)])
    q = cq(["?a"], [atom("R", "?a", "?b"), atom("S", "?b", "?c"), atom("T", "?c", "?d")])
    assert evaluate_acyclic(q, db) == evaluate_naive(q, db)


def test_empty_relation_short_circuits():
    db = Database([atom("R", 1, 2)])
    q = cq([], [atom("R", "?x", "?y"), atom("Z", "?y", "?w")])
    assert evaluate_acyclic(q, db) == frozenset()


def test_constants_in_query(db):
    q = cq(["?y"], [atom("E", 0, "?x"), atom("E", "?x", "?y")])
    assert evaluate_acyclic(q, db) == evaluate_naive(q, db)


def test_disconnected_query(db):
    q = cq(["?x", "?u"], [atom("E", "?x", "?y"), atom("E", "?u", "?v")])
    assert evaluate_acyclic(q, db) == evaluate_naive(q, db)


def test_theta_family_is_acyclic_and_agrees():
    from repro.workloads.families import example5_theta

    q = example5_theta(3)
    db = Database(
        [atom("E", i, j) for i in range(3) for j in range(3)]
        + [atom("T3", 0, 1, 2), atom("T3", 1, 1, 1)]
    )
    assert evaluate_acyclic(q, db) == evaluate_naive(q, db)
