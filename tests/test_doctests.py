"""Run every doctest in the library — documentation that executes."""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _iter_modules():
    yield "repro"
    for pkg in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield pkg.name


MODULES = sorted(set(_iter_modules()))


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, "%d doctest failure(s) in %s" % (
        results.failed,
        module_name,
    )
