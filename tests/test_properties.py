"""Property-based tests (hypothesis) for core invariants.

Strategies build small random structures; the properties assert the
cross-engine and order-theoretic invariants the library's correctness
rests on:

* ⊑ is a partial order on mappings; ``maximal_mappings`` matches the
  brute-force definition;
* all CQ engines agree;
* both WDPT evaluators agree, and the Theorem 6/8/9 algorithms agree with
  the enumeration-based definitions;
* tree decompositions produced by elimination orders are always valid;
* cores are equivalent to their queries;
* quotients are contained in their queries.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.atoms import Atom, atom
from repro.core.cq import ConjunctiveQuery
from repro.core.database import Database
from repro.core.mappings import Mapping, maximal_mappings
from repro.hypergraphs.gyo import join_tree_of_atoms
from repro.hypergraphs.hypergraph import Hypergraph
from repro.hypergraphs.treedecomp import decomposition_from_elimination_order
from repro.hypergraphs.treewidth import (
    min_fill_order,
    treewidth_exact,
    treewidth_lower_bound,
    treewidth_upper_bound,
)

COMMON = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
small_mapping = st.dictionaries(
    keys=st.sampled_from(["?a", "?b", "?c", "?d"]),
    values=st.integers(0, 2),
    max_size=4,
).map(Mapping)


@st.composite
def small_database(draw):
    # Sparse on purpose: dense binary relations make WDPT answer sets (and
    # hence any correct evaluator's output) combinatorially large.
    n = draw(st.integers(1, 12))
    rng = random.Random(draw(st.integers(0, 10**6)))
    facts = [
        atom("E", rng.randrange(6), rng.randrange(6)) for _ in range(n)
    ]
    return Database(facts)


@st.composite
def small_cq(draw):
    n_atoms = draw(st.integers(1, 4))
    pool = ["?v0", "?v1", "?v2", "?v3", "?v4"]
    rng = random.Random(draw(st.integers(0, 10**6)))
    atoms = [
        atom("E", rng.choice(pool), rng.choice(pool)) for _ in range(n_atoms)
    ]
    used = sorted({v for a in atoms for v in a.variables()})
    n_free = draw(st.integers(0, len(used)))
    return ConjunctiveQuery(used[:n_free], atoms)


@st.composite
def small_wdpt(draw):
    from repro.workloads.generators import random_wdpt

    seed = draw(st.integers(0, 10**6))
    depth = draw(st.integers(1, 2))
    return random_wdpt(
        depth=depth,
        fanout=2,
        atoms_per_node=draw(st.integers(1, 2)),
        fresh_vars_per_node=1,
        free_fraction=draw(st.sampled_from([0.3, 0.6, 1.0])),
        seed=seed,
    )


@st.composite
def small_hypergraph(draw):
    n_edges = draw(st.integers(1, 8))
    rng = random.Random(draw(st.integers(0, 10**6)))
    edges = []
    for _ in range(n_edges):
        size = rng.randint(1, 3)
        edges.append({rng.randrange(7) for _ in range(size)})
    return Hypergraph(edges)


# ---------------------------------------------------------------------------
# Mapping order properties
# ---------------------------------------------------------------------------
@COMMON
@given(small_mapping, small_mapping, small_mapping)
def test_subsumption_is_a_partial_order(a, b, c):
    assert a.subsumed_by(a)
    if a.subsumed_by(b) and b.subsumed_by(a):
        assert a == b
    if a.subsumed_by(b) and b.subsumed_by(c):
        assert a.subsumed_by(c)


@COMMON
@given(st.lists(small_mapping, max_size=8))
def test_maximal_mappings_matches_brute_force(mappings):
    expected = frozenset(
        m for m in mappings if not any(m.properly_subsumed_by(o) for o in mappings)
    )
    assert maximal_mappings(mappings) == expected


@COMMON
@given(small_mapping, small_mapping)
def test_union_when_compatible_subsumes_both(a, b):
    if a.compatible(b):
        u = a.union(b)
        assert a.subsumed_by(u) and b.subsumed_by(u)


# ---------------------------------------------------------------------------
# CQ engines agree
# ---------------------------------------------------------------------------
@COMMON
@given(small_cq(), small_database())
def test_cq_engines_agree(query, db):
    from repro.cqalgs.naive import evaluate_naive
    from repro.cqalgs.structured import evaluate_bounded_treewidth
    from repro.cqalgs.yannakakis import evaluate_acyclic

    expected = evaluate_naive(query, db)
    assert evaluate_bounded_treewidth(query, db) == expected
    if join_tree_of_atoms(sorted(query.atoms)) is not None:
        assert evaluate_acyclic(query, db) == expected


# ---------------------------------------------------------------------------
# Width machinery invariants
# ---------------------------------------------------------------------------
@COMMON
@given(small_hypergraph())
def test_treewidth_bounds_bracket_exact(H):
    exact = treewidth_exact(H)
    assert treewidth_lower_bound(H) <= exact <= treewidth_upper_bound(H)


@COMMON
@given(small_hypergraph())
def test_elimination_order_decomposition_valid(H):
    td = decomposition_from_elimination_order(H, min_fill_order(H))
    assert td.is_valid_for(H)


# ---------------------------------------------------------------------------
# Cores and quotients
# ---------------------------------------------------------------------------
@COMMON
@given(small_cq())
def test_core_is_equivalent_and_idempotent(query):
    from repro.cqalgs.containment import are_equivalent
    from repro.cqalgs.cores import core

    c = core(query)
    assert are_equivalent(query, c)
    assert core(c) == c


@COMMON
@given(small_cq())
def test_quotients_contained_in_query(query):
    from repro.cqalgs.containment import is_contained_in
    from repro.cqalgs.quotients import enumerate_quotients

    for q in enumerate_quotients(query):
        assert is_contained_in(q, query)


# ---------------------------------------------------------------------------
# WDPT evaluators and decision procedures agree
# ---------------------------------------------------------------------------
@COMMON
@given(small_wdpt(), small_database())
def test_wdpt_evaluators_agree(p, db):
    from repro.wdpt.evaluation import evaluate, evaluate_reference

    assert evaluate(p, db) == evaluate_reference(p, db)


@COMMON
@given(small_wdpt(), small_database())
def test_eval_dp_agrees_on_answers_and_restrictions(p, db):
    from repro.wdpt.eval_tractable import eval_tractable
    from repro.wdpt.evaluation import evaluate

    answers = evaluate(p, db)
    for h in list(answers)[:6]:
        assert eval_tractable(p, db, h)
        domain = sorted(h.domain())
        if domain:
            restricted = h.restrict(domain[1:])
            assert eval_tractable(p, db, restricted) == (restricted in answers)


@COMMON
@given(small_wdpt(), small_database())
def test_partial_and_max_eval_agree_with_definitions(p, db):
    from repro.wdpt.evaluation import evaluate, evaluate_max
    from repro.wdpt.max_eval import max_eval
    from repro.wdpt.partial_eval import partial_eval

    answers = evaluate(p, db)
    maximal = evaluate_max(p, db)
    for h in list(answers)[:5]:
        assert partial_eval(p, db, h)
        assert max_eval(p, db, h) == (h in maximal)


@COMMON
@given(small_wdpt())
def test_lemma1_normal_form_equivalent(p):
    from repro.wdpt.subsumption import is_subsumption_equivalent
    from repro.wdpt.transform import lemma1_normal_form

    assert is_subsumption_equivalent(p, lemma1_normal_form(p))
