"""Setup shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only enables
legacy editable installs (``pip install -e . --no-build-isolation
--no-use-pep517``) on offline machines where PEP 660 builds fail.
"""

from setuptools import setup

setup()
