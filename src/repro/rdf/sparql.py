"""Surface SPARQL syntax: ``SELECT … WHERE { … OPTIONAL { … } }``.

The algebraic parser (:mod:`repro.rdf.parser`) accepts the paper's
notation; this module accepts the syntax users actually write::

    SELECT ?record ?band ?rating WHERE {
        ?record recorded_by ?band .
        ?record published "after_2010" .
        OPTIONAL { ?record NME_rating ?rating }
        OPTIONAL { ?band formed_in ?year
                   OPTIONAL { ?band disbanded_in ?year2 } }
    }

Supported fragment: basic graph patterns (dot-separated triples) and
arbitrarily nested ``OPTIONAL`` groups — exactly the {AND, OPT} fragment
the paper studies.  ``SELECT *`` (or omitting SELECT) yields a
projection-free WDPT.  The group structure maps one-to-one onto pattern
tree nodes, so no normalization step is needed; well-designedness is
checked by the :class:`~repro.wdpt.wdpt.WDPT` constructor.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple

from ..core.atoms import Atom
from ..exceptions import ParseError
from ..wdpt.tree import PatternTree
from ..wdpt.wdpt import WDPT
from .graph import TRIPLE_RELATION

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<lbrace>\{)
  | (?P<rbrace>\})
  | (?P<dot>\.)
  | (?P<string>"[^"]*")
  | (?P<word>[^\s{}."]+)
""",
    re.VERBOSE,
)

_KEYWORDS = {"SELECT", "WHERE", "OPTIONAL"}


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError("cannot tokenize SPARQL at %r" % (text[pos : pos + 20],))
        pos = m.end()
        if m.lastgroup != "ws":
            tokens.append(m.group())
    return tokens


class _Group:
    """A ``{ … }`` group: its own triples plus nested OPTIONAL groups."""

    def __init__(self) -> None:
        self.triples: List[Tuple[str, str, str]] = []
        self.optionals: List["_Group"] = []


class _SparqlParser:
    def __init__(self, tokens: List[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self, expected: Optional[str] = None) -> str:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of query (expected %r)" % (expected,))
        if expected is not None and tok.upper() != expected:
            raise ParseError("expected %r but found %r" % (expected, tok))
        self.pos += 1
        return tok

    def query(self) -> Tuple[Optional[List[str]], _Group]:
        projection: Optional[List[str]] = None
        if self.peek() is not None and self.peek().upper() == "SELECT":
            self.take("SELECT")
            projection = []
            star = False
            while self.peek() is not None and self.peek().upper() != "WHERE":
                tok = self.take()
                if tok == "*":
                    star = True
                elif tok.startswith("?"):
                    projection.append(tok)
                else:
                    raise ParseError("SELECT expects variables or *, found %r" % (tok,))
            self.take("WHERE")
            if star:
                if projection:
                    raise ParseError("SELECT * cannot be combined with variables")
                projection = None
        elif self.peek() is not None and self.peek().upper() == "WHERE":
            self.take("WHERE")
        group = self.group()
        if self.peek() is not None:
            raise ParseError("trailing input starting at %r" % (self.peek(),))
        return projection, group

    def group(self) -> _Group:
        self.take("{")
        out = _Group()
        while True:
            tok = self.peek()
            if tok is None:
                raise ParseError("unterminated group: missing '}'")
            if tok == "}":
                self.take("}")
                return out
            if tok.upper() == "OPTIONAL":
                self.take("OPTIONAL")
                out.optionals.append(self.group())
                continue
            out.triples.append(self.triple())
            if self.peek() == ".":
                self.take(".")

    def triple(self) -> Tuple[str, str, str]:
        parts = []
        for _ in range(3):
            tok = self.peek()
            if tok is None or tok in ("{", "}", ".") or tok.upper() in _KEYWORDS:
                raise ParseError("incomplete triple near %r" % (tok,))
            parts.append(self.take())
        return tuple(_strip(p) for p in parts)  # type: ignore[return-value]


def _strip(token: str) -> str:
    if token.startswith('"') and token.endswith('"') and len(token) >= 2:
        return token[1:-1]
    return token


def parse_sparql(text: str) -> WDPT:
    """Parse a ``SELECT … WHERE { … }`` query into a WDPT.

    >>> p = parse_sparql('SELECT ?b WHERE { ?r recorded_by ?b }')
    >>> p.free_variables
    (?b,)
    >>> p2 = parse_sparql(
    ...     'SELECT ?r ?v WHERE { ?r recorded_by ?b '
    ...     'OPTIONAL { ?r NME_rating ?v } }')
    >>> len(p2.tree)
    2
    """
    projection, root = _SparqlParser(_tokenize(text)).query()

    labels: List[List[Atom]] = []
    parents: List[int] = []

    def emit(group: _Group, parent: Optional[int]) -> None:
        if not group.triples:
            raise ParseError(
                "every group needs at least one triple (empty BGP found)"
            )
        labels.append([Atom(TRIPLE_RELATION, t) for t in group.triples])
        my_id = len(labels) - 1
        if parent is not None:
            parents.append(parent)
        for opt in group.optionals:
            emit(opt, my_id)

    emit(root, None)
    if projection is None:
        all_vars = sorted({v for label in labels for a in label for v in a.variables()})
        frees: Sequence[object] = all_vars
    else:
        frees = projection
    return WDPT(PatternTree(parents), labels, frees)
