"""Translation between well-designed {AND, OPT} patterns and WDPTs.

The construction of [17]: a well-designed pattern is first rewritten into
*OPT normal form* using the equivalence (valid for well-designed patterns)

    ``(P₁ OPT P₂) AND P₃  ≡  (P₁ AND P₃) OPT P₂``

after which the pattern has the shape ``(…((B OPT Q₁) OPT Q₂)… OPT Q_m)``
with ``B`` a conjunction of triple patterns; the WDPT then has a node
labelled ``B`` with the (recursively translated) ``Qᵢ`` as children.

``SELECT``-style projection is modelled by the WDPT's free-variable tuple;
translating with no explicit projection yields a projection-free WDPT,
matching the semantics of [18].
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom
from ..core.terms import Variable
from ..exceptions import NotWellDesignedError
from ..wdpt.tree import ROOT, PatternTree
from ..wdpt.wdpt import WDPT
from .algebra import And, Opt, Pattern, TriplePattern, is_well_designed
from .graph import TRIPLE_RELATION

#: (basic graph pattern, translated children) — OPT normal form node.
_NormalNode = Tuple[List[TriplePattern], List["_NormalNode"]]


def pattern_to_wdpt(
    pattern: Pattern, projection: Optional[Iterable[object]] = None
) -> WDPT:
    """Translate a well-designed {AND, OPT} pattern into a WDPT.

    ``projection`` selects the free variables (``None`` = all variables,
    i.e. a projection-free WDPT).

    >>> from repro.rdf.algebra import TriplePattern, Opt
    >>> p = pattern_to_wdpt(Opt(TriplePattern("?x", "a", "?y"),
    ...                         TriplePattern("?x", "b", "?z")))
    >>> len(p.tree)
    2
    """
    if not is_well_designed(pattern):
        raise NotWellDesignedError(
            "pattern %r is not well-designed; only well-designed {AND,OPT} "
            "patterns translate to WDPTs" % (pattern,)
        )
    normal = _normalize(pattern)
    labels: List[List[Atom]] = []
    parents: List[int] = []

    def emit(node: _NormalNode, parent: Optional[int]) -> None:
        bgp, children = node
        labels.append([_triple_atom(t) for t in bgp])
        my_id = len(labels) - 1
        if parent is not None:
            parents.append(parent)
        for child in children:
            emit(child, my_id)

    emit(normal, None)
    if projection is None:
        all_vars: Set[Variable] = set()
        for label in labels:
            for a in label:
                all_vars |= a.variables()
        frees: Sequence[object] = sorted(all_vars)
    else:
        frees = list(projection)
    return WDPT(PatternTree(parents), labels, frees)


def wdpt_to_pattern(p: WDPT) -> Pattern:
    """Translate an RDF WDPT (all atoms over the triple relation) back into
    an {AND, OPT} pattern.  Inverse of :func:`pattern_to_wdpt` up to
    pattern-algebra associativity."""

    def bgp_of(node: int) -> Pattern:
        atoms = sorted(p.labels[node])
        parts: List[Pattern] = []
        for a in atoms:
            if a.relation != TRIPLE_RELATION or a.arity != 3:
                raise ValueError(
                    "atom %r is not a triple; only RDF WDPTs translate back" % (a,)
                )
            parts.append(TriplePattern(*a.args))
        combined = parts[0]
        for extra in parts[1:]:
            combined = And(combined, extra)
        return combined

    def walk(node: int) -> Pattern:
        result = bgp_of(node)
        for child in p.tree.children(node):
            result = Opt(result, walk(child))
        return result

    return walk(ROOT)


def _normalize(pattern: Pattern) -> _NormalNode:
    """Rewrite into OPT normal form (see module docstring)."""
    if isinstance(pattern, TriplePattern):
        return ([pattern], [])
    if isinstance(pattern, And):
        left_bgp, left_children = _normalize(pattern.left)
        right_bgp, right_children = _normalize(pattern.right)
        # ((B₁ OPT …) AND (B₂ OPT …))  ≡  (B₁ AND B₂) OPT … OPT …
        return (left_bgp + right_bgp, left_children + right_children)
    if isinstance(pattern, Opt):
        left_bgp, left_children = _normalize(pattern.left)
        return (left_bgp, left_children + [_normalize(pattern.right)])
    raise TypeError("not a pattern: %r" % (pattern,))


def _triple_atom(t: TriplePattern) -> Atom:
    return Atom(TRIPLE_RELATION, t.terms())
