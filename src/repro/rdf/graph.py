"""RDF graphs as databases over a single ternary relation.

The paper's *RDF WDPTs* are WDPTs over a schema with one ternary relation
(the triple relation); all lower bounds hold already there.  This module
provides a small triple store, :class:`RDFGraph`, that converts losslessly
to/from the relational :class:`~repro.core.database.Database` used by every
algorithm — so the whole library applies to semantic web data unchanged.

``rdflib`` is unavailable offline; this is a from-scratch equivalent that
exercises the same code path (see DESIGN.md, substitutions table).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Optional, Set, Tuple

from ..core.atoms import Atom
from ..core.database import Database

#: Name of the ternary relation carrying RDF triples.
TRIPLE_RELATION = "triple"

Triple = Tuple[object, object, object]


class RDFGraph:
    """A set of (subject, predicate, object) triples.

    Components may be arbitrary hashable values (strings in practice).

    >>> g = RDFGraph([("Swim", "recorded_by", "Caribou")])
    >>> ("Swim", "recorded_by", "Caribou") in g
    True
    >>> len(g.to_database())
    1
    """

    __slots__ = ("_triples",)

    def __init__(self, triples: Iterable[Triple] = ()):
        self._triples: Set[Triple] = set()
        for t in triples:
            self.add(t)

    def add(self, triple: Triple) -> bool:
        """Insert a triple; return ``True`` iff it was new."""
        s, p, o = triple
        t = (s, p, o)
        if t in self._triples:
            return False
        self._triples.add(t)
        return True

    def __contains__(self, triple: Triple) -> bool:
        return tuple(triple) in self._triples

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RDFGraph) and other._triples == self._triples

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __repr__(self) -> str:
        return "RDFGraph(%d triples)" % len(self._triples)

    def subjects(self) -> FrozenSet[object]:
        return frozenset(s for s, _, _ in self._triples)

    def predicates(self) -> FrozenSet[object]:
        return frozenset(p for _, p, _ in self._triples)

    def objects(self) -> FrozenSet[object]:
        return frozenset(o for _, _, o in self._triples)

    def triples_with(
        self,
        subject: Optional[object] = None,
        predicate: Optional[object] = None,
        obj: Optional[object] = None,
    ) -> Iterator[Triple]:
        """Triples matching the given fixed components (``None`` = any)."""
        for s, p, o in self._triples:
            if subject is not None and s != subject:
                continue
            if predicate is not None and p != predicate:
                continue
            if obj is not None and o != obj:
                continue
            yield (s, p, o)

    # ------------------------------------------------------------------
    # Relational bridge
    # ------------------------------------------------------------------
    def to_database(self) -> Database:
        """The relational view: one fact ``triple(s, p, o)`` per triple."""
        return Database(Atom(TRIPLE_RELATION, t) for t in sorted(self._triples, key=repr))

    @classmethod
    def from_database(cls, db: Database) -> "RDFGraph":
        """Inverse of :meth:`to_database` (ignores other relations)."""
        graph = cls()
        for fact in db.facts(TRIPLE_RELATION):
            s, p, o = (c.value for c in fact.args)  # type: ignore[union-attr]
            graph.add((s, p, o))
        return graph
