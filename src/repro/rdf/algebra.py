"""The {AND, OPT} fragment of SPARQL, in the algebraic notation of [18].

Graph patterns are built from triple patterns with the binary operators
``AND`` (conjunction / join) and ``OPT`` (optional matching / left outer
join).  A pattern is *well-designed* (Pérez et al. [18]) if for every
sub-pattern ``P' = (P₁ OPT P₂)`` and every variable ``x`` occurring both in
``P₂`` and outside ``P'``, the variable also occurs in ``P₁``.  The
well-designed patterns are exactly the ones representable as WDPTs [17]
(see :mod:`repro.rdf.translate`).
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, Tuple, Union

from ..core.terms import Term, Variable, term


class TriplePattern:
    """A triple pattern ``(s, p, o)`` over variables and constants.

    Strings starting with ``"?"`` denote variables.

    >>> TriplePattern("?x", "recorded_by", "?y").variables() == frozenset(
    ...     {Variable("x"), Variable("y")})
    True
    """

    __slots__ = ("subject", "predicate", "object")

    def __init__(self, subject: object, predicate: object, obj: object):
        self.subject: Term = term(subject)
        self.predicate: Term = term(predicate)
        self.object: Term = term(obj)

    def terms(self) -> Tuple[Term, Term, Term]:
        return (self.subject, self.predicate, self.object)

    def variables(self) -> FrozenSet[Variable]:
        return frozenset(t for t in self.terms() if isinstance(t, Variable))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TriplePattern) and other.terms() == self.terms()

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(("TriplePattern",) + self.terms())

    def __repr__(self) -> str:
        return "(%r, %r, %r)" % self.terms()


class And:
    """``P₁ AND P₂``."""

    __slots__ = ("left", "right")

    def __init__(self, left: "Pattern", right: "Pattern"):
        self.left = left
        self.right = right

    def variables(self) -> FrozenSet[Variable]:
        return self.left.variables() | self.right.variables()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and (other.left, other.right) == (self.left, self.right)

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(("And", self.left, self.right))

    def __repr__(self) -> str:
        return "(%r AND %r)" % (self.left, self.right)


class Opt:
    """``P₁ OPT P₂``."""

    __slots__ = ("left", "right")

    def __init__(self, left: "Pattern", right: "Pattern"):
        self.left = left
        self.right = right

    def variables(self) -> FrozenSet[Variable]:
        return self.left.variables() | self.right.variables()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Opt) and (other.left, other.right) == (self.left, self.right)

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(("Opt", self.left, self.right))

    def __repr__(self) -> str:
        return "(%r OPT %r)" % (self.left, self.right)


Pattern = Union[TriplePattern, And, Opt]


def triple_patterns(pattern: Pattern) -> Iterator[TriplePattern]:
    """All triple patterns of ``pattern`` (left-to-right)."""
    if isinstance(pattern, TriplePattern):
        yield pattern
    else:
        yield from triple_patterns(pattern.left)
        yield from triple_patterns(pattern.right)


def is_well_designed(pattern: Pattern) -> bool:
    """The well-designedness condition of Pérez et al. [18].

    For every sub-pattern ``(P₁ OPT P₂)``: each variable of ``P₂`` that
    also occurs outside the sub-pattern must occur in ``P₁``.
    """
    violations = list(_violations(pattern, pattern))
    return not violations


def _violations(node: Pattern, root: Pattern) -> Iterator[Tuple[Opt, Variable]]:
    if isinstance(node, TriplePattern):
        return
    if isinstance(node, Opt):
        inside = node.variables()
        outside = _variables_outside(root, node)
        for v in sorted(node.right.variables()):
            if v in outside and v not in node.left.variables():
                yield (node, v)
    yield from _violations(node.left, root)
    yield from _violations(node.right, root)


def _variables_outside(root: Pattern, exclude: Pattern) -> FrozenSet[Variable]:
    """Variables occurring in ``root`` outside the sub-pattern ``exclude``
    (by object identity on the pattern tree)."""
    out: set = set()

    def walk(node: Pattern) -> None:
        if node is exclude:
            return
        if isinstance(node, TriplePattern):
            out.update(node.variables())
        else:
            walk(node.left)
            walk(node.right)

    walk(root)
    return frozenset(out)
