"""Direct evaluation of {AND, OPT} patterns — the Pérez et al. semantics.

The original SPARQL semantics [18] is defined compositionally on the
algebra, not on pattern trees:

* ``⟦t⟧_G``         — all mappings sending the triple pattern into ``G``;
* ``⟦P₁ AND P₂⟧_G`` — the compatible join ``⟦P₁⟧ ⋈ ⟦P₂⟧``;
* ``⟦P₁ OPT P₂⟧_G`` — the left outer join
  ``(⟦P₁⟧ ⋈ ⟦P₂⟧) ∪ (⟦P₁⟧ ∖ ⟦P₂⟧)`` where ``∖`` keeps the mappings of
  ``⟦P₁⟧`` compatible with no mapping of ``⟦P₂⟧``.

For *well-designed* patterns, [17] proves this coincides with the
(projection-free) pattern-tree semantics of Definition 2.  This module
implements the compositional semantics verbatim, giving the library a
fully independent evaluator to cross-validate the WDPT engines against —
the tests exercise exactly that theorem.

For non-well-designed patterns the compositional semantics is still
computed (it is defined for all patterns); only the equivalence with
pattern trees is specific to the well-designed fragment.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from ..core.mappings import Mapping
from ..core.terms import Constant, Variable
from .algebra import And, Opt, Pattern, TriplePattern
from .graph import RDFGraph


def evaluate_pattern(pattern: Pattern, graph: RDFGraph) -> FrozenSet[Mapping]:
    """``⟦pattern⟧_G`` under the compositional SPARQL semantics.

    >>> from repro.rdf.algebra import TriplePattern, Opt
    >>> g = RDFGraph([("a", "p", "b")])
    >>> pat = Opt(TriplePattern("?x", "p", "?y"), TriplePattern("?y", "q", "?z"))
    >>> evaluate_pattern(pat, g) == frozenset([Mapping({"?x": "a", "?y": "b"})])
    True
    """
    if isinstance(pattern, TriplePattern):
        return _triple_matches(pattern, graph)
    if isinstance(pattern, And):
        return join(
            evaluate_pattern(pattern.left, graph),
            evaluate_pattern(pattern.right, graph),
        )
    if isinstance(pattern, Opt):
        left = evaluate_pattern(pattern.left, graph)
        right = evaluate_pattern(pattern.right, graph)
        return left_outer_join(left, right)
    raise TypeError("not a pattern: %r" % (pattern,))


def _triple_matches(t: TriplePattern, graph: RDFGraph) -> FrozenSet[Mapping]:
    out: Set[Mapping] = set()
    for s, p, o in graph:
        binding: Dict[Variable, Constant] = {}
        ok = True
        for term, value in zip(t.terms(), (s, p, o)):
            if isinstance(term, Variable):
                existing = binding.get(term)
                if existing is None:
                    binding[term] = Constant(value)
                elif existing != Constant(value):
                    ok = False
                    break
            else:
                assert isinstance(term, Constant)
                if term != Constant(value):
                    ok = False
                    break
        if ok:
            out.add(Mapping(binding))
    return frozenset(out)


def join(left: FrozenSet[Mapping], right: FrozenSet[Mapping]) -> FrozenSet[Mapping]:
    """``Ω₁ ⋈ Ω₂``: unions of all compatible pairs."""
    out: Set[Mapping] = set()
    for m1 in left:
        for m2 in right:
            if m1.compatible(m2):
                out.add(m1.union(m2))
    return frozenset(out)


def difference(left: FrozenSet[Mapping], right: FrozenSet[Mapping]) -> FrozenSet[Mapping]:
    """``Ω₁ ∖ Ω₂``: mappings of ``Ω₁`` compatible with nothing in ``Ω₂``."""
    return frozenset(
        m1 for m1 in left if not any(m1.compatible(m2) for m2 in right)
    )


def left_outer_join(
    left: FrozenSet[Mapping], right: FrozenSet[Mapping]
) -> FrozenSet[Mapping]:
    """``Ω₁ ⟕ Ω₂ = (Ω₁ ⋈ Ω₂) ∪ (Ω₁ ∖ Ω₂)``."""
    return join(left, right) | difference(left, right)
