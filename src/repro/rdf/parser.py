"""Parser for the paper's algebraic {AND, OPT} SPARQL notation.

Accepts queries written the way the paper writes them, e.g. query (1):

    (((?x, recorded_by, ?y) AND (?x, published, "after_2010"))
        OPT (?x, NME_rating, ?z)) OPT (?y, formed_in, ?z2)

optionally prefixed by a projection:  ``SELECT ?y ?z WHERE <pattern>``.

Grammar (left-associative binary operators)::

    query    := [ 'SELECT' var* 'WHERE' ] pattern
    pattern  := unit ( ('AND' | 'OPT') unit )*
    unit     := triple | '(' pattern ')'
    triple   := '(' term ',' term ',' term ')'
    term     := VARIABLE | QUOTED_STRING | WORD

Variables are ``?name`` tokens; quoted strings and bare words are
constants.
"""

from __future__ import annotations

import re
from typing import List, Optional

from ..exceptions import ParseError
from ..wdpt.wdpt import WDPT
from .algebra import And, Opt, Pattern, TriplePattern
from .translate import pattern_to_wdpt

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<string>"[^"]*")
  | (?P<word>[^\s(),"]+)
""",
    re.VERBOSE,
)

_KEYWORDS = {"AND", "OPT", "SELECT", "WHERE"}


def tokenize(text: str) -> List[str]:
    """Split ``text`` into tokens (raises on garbage)."""
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError("cannot tokenize at %r" % (text[pos : pos + 20],))
        pos = m.end()
        if m.lastgroup != "ws":
            tokens.append(m.group())
    return tokens


class _Parser:
    def __init__(self, tokens: List[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self, expected: Optional[str] = None) -> str:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of input (expected %r)" % (expected,))
        if expected is not None and tok != expected:
            raise ParseError("expected %r but found %r" % (expected, tok))
        self.pos += 1
        return tok

    # pattern := unit (('AND'|'OPT') unit)*
    def pattern(self) -> Pattern:
        left = self.unit()
        while self.peek() in ("AND", "OPT"):
            op = self.take()
            right = self.unit()
            left = And(left, right) if op == "AND" else Opt(left, right)
        return left

    # unit := '(' ... — triple if a comma follows the first term
    def unit(self) -> Pattern:
        self.take("(")
        if self._looks_like_triple():
            s = self.term()
            self.take(",")
            p = self.term()
            self.take(",")
            o = self.term()
            self.take(")")
            return TriplePattern(s, p, o)
        inner = self.pattern()
        self.take(")")
        return inner

    def _looks_like_triple(self) -> bool:
        tok = self.peek()
        if tok in ("(", None) or tok in _KEYWORDS:
            return False
        return self.pos + 1 < len(self.tokens) and self.tokens[self.pos + 1] == ","

    def term(self) -> object:
        tok = self.take()
        if tok.startswith('"') and tok.endswith('"'):
            return tok[1:-1]
        if tok in _KEYWORDS or tok in ("(", ")", ","):
            raise ParseError("expected a term, found %r" % (tok,))
        return tok  # '?x' coerces to a variable, anything else to a constant

    def projection(self) -> Optional[List[str]]:
        if self.peek() != "SELECT":
            return None
        self.take("SELECT")
        variables: List[str] = []
        while self.peek() not in ("WHERE", None):
            tok = self.take()
            if not tok.startswith("?"):
                raise ParseError("SELECT expects variables, found %r" % (tok,))
            variables.append(tok)
        self.take("WHERE")
        return variables


def parse_pattern(text: str) -> Pattern:
    """Parse a bare {AND, OPT} pattern."""
    parser = _Parser(tokenize(text))
    pattern = parser.pattern()
    if parser.peek() is not None:
        raise ParseError("trailing input starting at %r" % (parser.peek(),))
    return pattern


def parse_query(text: str) -> WDPT:
    """Parse a query (optional ``SELECT … WHERE`` + pattern) into a WDPT.

    >>> p = parse_query('SELECT ?y WHERE (?x, recorded_by, ?y)')
    >>> p.free_variables
    (?y,)
    """
    parser = _Parser(tokenize(text))
    projection = parser.projection()
    pattern = parser.pattern()
    if parser.peek() is not None:
        raise ParseError("trailing input starting at %r" % (parser.peek(),))
    return pattern_to_wdpt(pattern, projection)
