"""Semantic web frontend: triple stores, {AND, OPT} SPARQL, WDPT bridge.

The paper's results are stated over arbitrary relational schemas but apply
verbatim to RDF (a single ternary relation); this package provides that
instantiation end-to-end: parse an {AND, OPT} query, translate it to a
WDPT, and evaluate it over a triple store.
"""

from .algebra import And, Opt, Pattern, TriplePattern, is_well_designed, triple_patterns
from .graph import TRIPLE_RELATION, RDFGraph
from .parser import parse_pattern, parse_query, tokenize
from .sparql import parse_sparql
from .translate import pattern_to_wdpt, wdpt_to_pattern

__all__ = [
    "And",
    "Opt",
    "Pattern",
    "TriplePattern",
    "is_well_designed",
    "triple_patterns",
    "TRIPLE_RELATION",
    "RDFGraph",
    "parse_pattern",
    "parse_sparql",
    "parse_query",
    "tokenize",
    "pattern_to_wdpt",
    "wdpt_to_pattern",
]
