"""EXPLAIN ANALYZE: the static profile joined with the execution trace.

:func:`build_report` takes the planner's memoized
:class:`~repro.wdpt.explain.WDPTProfile` (what the paper's theorems
*predict*: per-node widths, interface sizes, engine routing) and a
:class:`~repro.telemetry.tracer.Tracer` recorded while the query actually
ran (what *happened*: per-node wall time, candidate-mapping counts,
extension attempts, semijoin intermediate sizes) and joins them per tree
node into an :class:`AnalyzeReport`.

The measured side comes from the ``node_stats`` attribute that
:func:`repro.wdpt.evaluation.maximal_homomorphisms` (top-down path) and
:func:`repro.wdpt.eval_tractable.eval_tractable` (Theorem 6 DP, whose
per-node CQ checks route through Yannakakis under ``method="auto"``)
attach to their spans, plus the aggregated engine spans
(``yannakakis.*``, ``planner.*``).

Entry point: :meth:`repro.engine.Session.analyze`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .planner.planner import Planner
from .telemetry.export import aggregate_spans, render_stage_breakdown, trace_to_dict
from .telemetry.insight import q_error
from .telemetry.tracer import Tracer
from .wdpt.explain import WDPTProfile
from .wdpt.wdpt import WDPT

#: Span names whose ``node_stats`` attribute carries per-tree-node rows.
_NODE_STATS_SPANS = ("wdpt.maximal_homomorphisms", "wdpt.eval_tractable")


class AnalyzeReport:
    """The result of ``EXPLAIN ANALYZE``: one row per tree node, plus the
    per-stage time rollup and (optionally) the answer count.

    Attributes
    ----------
    rows:
        One dict per tree node, pre-order: static fields (``depth``,
        ``atoms``, ``treewidth``, ``interface``, ``engine``, ``theorem``)
        joined with measured fields (``seconds``, ``candidates``,
        ``extensions``, ``sat_checks``, …; 0 when the node was never
        touched).
    stages:
        ``{span name: {"calls", "seconds"}}`` aggregated over the trace.
    tracer:
        The raw trace, for the Chrome exporter.
    """

    def __init__(
        self,
        query: WDPT,
        profile: WDPTProfile,
        rows: List[Dict[str, Any]],
        stages: Dict[str, Dict[str, float]],
        tracer: Tracer,
        n_answers: Optional[int] = None,
        mode: str = "query",
    ):
        self.query = query
        self.profile = profile
        self.rows = rows
        self.stages = stages
        self.tracer = tracer
        self.n_answers = n_answers
        self.mode = mode

    def node_row(self, node: int) -> Dict[str, Any]:
        for row in self.rows:
            if row["node"] == node:
                return row
        raise KeyError("no report row for node %d" % node)

    def total_seconds(self) -> float:
        return sum(root.duration for root in self.tracer.roots)

    def q_error_summary(self) -> Dict[str, float]:
        """Distribution of per-node q-errors (nodes with an estimate and
        measured candidates): count / p50 / p95 / max / mean."""
        errors = sorted(
            row["q_error"] for row in self.rows if row.get("q_error") is not None
        )
        if not errors:
            return {"count": 0, "p50": 0.0, "p95": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": len(errors),
            "p50": _percentile(errors, 0.50),
            "p95": _percentile(errors, 0.95),
            "max": errors[-1],
            "mean": sum(errors) / len(errors),
        }

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (the CLI's ``--json`` payload)."""
        return {
            "mode": self.mode,
            "fingerprint": self.profile.fingerprint,
            "eval_route": self.profile.eval_route(),
            "partial_eval_route": self.profile.partial_eval_route(),
            "answers": self.n_answers,
            "total_seconds": self.total_seconds(),
            "nodes": self.rows,
            "q_error": self.q_error_summary(),
            "stages": self.stages,
            "trace": trace_to_dict(self.tracer),
        }

    def as_text(self) -> str:
        """The tree-shaped EXPLAIN ANALYZE report."""
        from .benchharness.reporting import format_table

        header = [
            "EXPLAIN ANALYZE (%s) — fingerprint %s"
            % (self.mode, self.profile.fingerprint[:12]),
            "routes: %s | %s"
            % (self.profile.eval_route(), self.profile.partial_eval_route()),
        ]
        if self.n_answers is not None:
            header.append(
                "%d answer(s) in %s"
                % (self.n_answers, _fmt_seconds(self.total_seconds()))
            )
        else:
            header.append("decided in %s" % _fmt_seconds(self.total_seconds()))

        table_rows: List[List[object]] = []
        for row in self.rows:
            indent = "  " * row["depth"]
            marker = "" if row["depth"] == 0 else "└ "
            table_rows.append(
                [
                    "%s%snode %d" % (indent, marker, row["node"]),
                    row["atoms"],
                    _fmt_opt(row["treewidth"]),
                    row["interface"],
                    row["engine"],
                    row.get("kernel") or "-",
                    _fmt_seconds(row["seconds"]),
                    _fmt_estimate(row.get("est_rows"), row.get("est_method")),
                    int(row["candidates"]),
                    _fmt_q_error(row.get("q_error")),
                    int(row["extensions"]),
                    int(row["sat_checks"]),
                ]
            )
        node_table = format_table(
            ["tree node", "atoms", "tw", "iface", "engine", "kernel", "time",
             "est rows", "candidates", "q-err", "extensions", "cq checks"],
            table_rows,
        )
        summary = self.q_error_summary()
        if summary["count"]:
            header.append(
                "estimate quality: q-error p50 %.2f, p95 %.2f, max %.2f over %d node(s)"
                % (summary["p50"], summary["p95"], summary["max"], summary["count"])
            )
        stage_table = render_stage_breakdown(self.tracer)
        return "\n".join(header) + "\n\n" + node_table + "\n\n" + stage_table

    def __repr__(self) -> str:
        return self.as_text()


def build_report(
    p: WDPT,
    profile: WDPTProfile,
    tracer: Tracer,
    planner: Planner,
    n_answers: Optional[int] = None,
    mode: str = "query",
    db: Optional[Any] = None,
) -> AnalyzeReport:
    """Join the static profile with the measured trace, per tree node.

    ``db`` (the session's storage backend, when available) lets each
    Yannakakis-routed node report the relational kernel its CQ checks
    resolve to (``sql``/``columnar``/``legacy``)."""
    measured = _merge_node_stats(tracer)
    tree_profile = profile.tree_profile
    rows: List[Dict[str, Any]] = []
    for node in p.tree.nodes():
        plan = planner.plan_for_profile("", tree_profile.node_profile(node), db)
        stats = measured.get(node, {})
        candidates = stats.get("candidates", 0)
        estimate = _node_estimate(p, tree_profile, planner, node, db)
        rows.append(
            {
                "node": node,
                "depth": p.tree.depth(node),
                "parent": p.tree.parent(node),
                "atoms": len(p.labels[node]),
                "treewidth": profile.node_treewidths[node],
                "hypertreewidth": profile.node_hypertreewidths[node],
                "interface": profile.node_interfaces[node],
                "engine": plan.engine,
                "kernel": plan.kernel,
                "theorem": plan.theorem,
                "seconds": float(stats.get("seconds", 0.0)),
                "candidates": candidates,
                "extensions": stats.get("extensions", 0),
                "sat_checks": stats.get("sat_checks", 0),
                "in_calls": stats.get("in_calls", 0),
                "blocked_checks": stats.get("blocked_checks", 0),
                "est_rows": None if estimate is None else estimate.estimated_rows,
                "est_method": None if estimate is None else estimate.method,
                "q_error": (
                    None
                    if estimate is None or not candidates
                    else q_error(estimate.estimated_rows, candidates)
                ),
            }
        )
    # The root of the top-down evaluator has no per-child timer around it;
    # fall back to the enclosing evaluator span so its time is not zero.
    if rows and rows[0]["seconds"] == 0.0:
        enclosing = sum(
            span.duration for name in _NODE_STATS_SPANS for span in tracer.find(name)
        )
        children_seconds = sum(row["seconds"] for row in rows[1:])
        rows[0]["seconds"] = max(0.0, enclosing - children_seconds)
    return AnalyzeReport(
        p,
        profile,
        rows,
        aggregate_spans(tracer),
        tracer,
        n_answers=n_answers,
        mode=mode,
    )


def _node_estimate(
    p: WDPT, tree_profile: Any, planner: Planner, node: int, db: Optional[Any]
):
    """The planner's cardinality estimate for the root→``node`` *path* CQ.

    A node's measured ``candidates`` counts the candidate mappings seen
    there — in the top-down evaluator these are exactly the
    homomorphisms of the CQ made of all atoms from the root down to the
    node, so that path CQ (not the node label alone) is the estimand the
    AGM bound must cover.  Path profiles are rooted subtrees, hence
    memoized by :meth:`~repro.planner.profile.TreeProfile.subtree_profile`,
    and the estimate itself is memoized by the planner."""
    if db is None:
        return None
    path = []
    current: Optional[int] = node
    while current is not None:
        path.append(current)
        current = p.tree.parent(current)
    try:
        path_profile = tree_profile.subtree_profile(frozenset(path))
        return planner.estimate_for_profile(path_profile, db)
    except Exception:  # estimation must never break EXPLAIN ANALYZE
        return None


def _merge_node_stats(tracer: Tracer) -> Dict[int, Dict[str, float]]:
    """Sum the ``node_stats`` attributes of every evaluator span."""
    merged: Dict[int, Dict[str, float]] = {}
    for name in _NODE_STATS_SPANS:
        for span in tracer.find(name):
            stats = span.attrs.get("node_stats")
            if not isinstance(stats, dict):
                continue
            for node, fields in stats.items():
                row = merged.setdefault(int(node), {})
                for field, amount in fields.items():
                    row[field] = row.get(field, 0) + amount
    return merged


def _fmt_opt(value: Optional[int]) -> str:
    return "?" if value is None else str(value)


def _fmt_estimate(rows: Optional[float], method: Optional[str]) -> str:
    if rows is None:
        return "-"
    tag = {"agm": "≤", "independence": "≈", "trivial": "="}.get(method or "", "≈")
    return "%s%.4g" % (tag, rows)


def _fmt_q_error(value: Optional[float]) -> str:
    return "-" if value is None else "%.2f" % value


def _percentile(ordered: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1:
        return "%.2fs" % seconds
    if seconds >= 1e-3:
        return "%.2fms" % (seconds * 1e3)
    return "%.0fµs" % (seconds * 1e6)
