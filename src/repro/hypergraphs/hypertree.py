"""Generalized hypertree decompositions and the ``HW(k)`` test.

The paper works with *generalized* hypertreewidth (its Remark in
Section 3.1): a hypertree decomposition is a tree decomposition ``(S, ν)``
together with edge covers ``κ(s)`` (≤ width many hyperedges per node) such
that ``ν(s) ⊆ ⋃κ(s)``.

Recognizing ``ghw ≤ k`` is NP-hard even for fixed ``k``, so any exact
procedure is exponential.  We exploit the classical correspondence between
tree decompositions and elimination orders: every tree decomposition can be
refined into one induced by an elimination order whose bags are (subsets of)
the original bags, and the edge-cover number ``ρ`` is monotone under taking
subsets.  Hence

    ``ghw(H) = min over elimination orders of max_s ρ(bag(s))``

and the same memoized subset dynamic program used for treewidth
(:mod:`repro.hypergraphs.treewidth`) applies with the bag-size cost replaced
by an exact set-cover computation.  Fast paths: ``ghw ≤ 1`` iff α-acyclic
(GYO), and a greedy cover bound short-circuits most positive instances.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from ..exceptions import BudgetExceededError
from .gyo import is_alpha_acyclic
from .hypergraph import Edge, Hypergraph, Vertex
from .treedecomp import TreeDecomposition, decomposition_from_elimination_order
from .treewidth import (
    EXACT_VERTEX_LIMIT,
    _BitGraph,
    _iter_bits,
    min_degree_order,
    min_fill_order,
)


# ---------------------------------------------------------------------------
# Edge covers
# ---------------------------------------------------------------------------
def edge_cover_number(H: Hypergraph, bag: FrozenSet[Vertex], limit: int) -> Optional[int]:
    """Exact minimum number of hyperedges of ``H`` covering ``bag``.

    Returns the cover number if it is ≤ ``limit``, else ``None``.  Runs a
    branch-and-bound over the uncovered vertex with fewest candidate edges.
    """
    if not bag:
        return 0
    usable = [e for e in H.edges if e & bag]
    return _cover(bag, usable, limit)


def _cover(uncovered: FrozenSet[Vertex], edges: Sequence[Edge], limit: int) -> Optional[int]:
    if not uncovered:
        return 0
    if limit <= 0:
        return None
    # Branch on the hardest vertex (fewest covering edges).
    best_vertex = None
    best_candidates: List[Edge] = []
    for v in uncovered:
        candidates = [e for e in edges if v in e]
        if not candidates:
            return None
        if best_vertex is None or len(candidates) < len(best_candidates):
            best_vertex, best_candidates = v, candidates
    best: Optional[int] = None
    # Deduplicate candidates by their effect on the uncovered set.
    seen_effects: Set[FrozenSet[Vertex]] = set()
    for e in sorted(best_candidates, key=lambda e: -len(e & uncovered)):
        effect = e & uncovered
        if effect in seen_effects:
            continue
        seen_effects.add(effect)
        budget = limit - 1 if best is None else min(limit - 1, best - 2)
        sub = _cover(uncovered - e, edges, budget)
        if sub is not None:
            total = sub + 1
            if best is None or total < best:
                best = total
                if best == 1:
                    break
    return best


def greedy_edge_cover(H: Hypergraph, bag: FrozenSet[Vertex]) -> Optional[List[Edge]]:
    """A greedy (not necessarily minimum) edge cover of ``bag``, or ``None``
    when some vertex of ``bag`` lies in no edge."""
    uncovered = set(bag)
    cover: List[Edge] = []
    while uncovered:
        best = max(H.edges, key=lambda e: len(e & uncovered), default=None)
        if best is None or not best & uncovered:
            return None
        cover.append(best)
        uncovered -= best
    return cover


def minimum_edge_cover(
    H: Hypergraph, bag: FrozenSet[Vertex], limit: int
) -> Optional[List[Edge]]:
    """A minimum edge cover of ``bag`` of size ≤ ``limit`` (or ``None``)."""
    size = edge_cover_number(H, bag, limit)
    if size is None:
        return None
    return _cover_witness(frozenset(bag), [e for e in H.edges if e & bag], size)


def _cover_witness(
    uncovered: FrozenSet[Vertex], edges: Sequence[Edge], budget: int
) -> Optional[List[Edge]]:
    if not uncovered:
        return []
    if budget <= 0:
        return None
    v = min(uncovered, key=lambda u: sum(1 for e in edges if u in e))
    for e in sorted((e for e in edges if v in e), key=lambda e: -len(e & uncovered)):
        rest = _cover_witness(uncovered - e, edges, budget - 1)
        if rest is not None:
            return [e] + rest
    return None


# ---------------------------------------------------------------------------
# Generalized hypertreewidth
# ---------------------------------------------------------------------------
def hypertreewidth_at_most(H: Hypergraph, k: int) -> bool:
    """Decision ``ghw(H) ≤ k``.

    Fast paths: ``k ≥ |E|`` (cover everything edge-by-edge), ``k = 1`` via
    GYO, and a greedy min-fill order whose greedy covers already fit.
    """
    if k < 0:
        return False
    if not H.edges:
        return True
    if any(not H.incident_edges(v) for v in H.vertices):
        # A vertex in no hyperedge can never be covered.
        return False
    if len(H.edges) <= k:
        return True
    if is_alpha_acyclic(H):
        return k >= 1
    if k == 1:
        return False  # not acyclic
    if _order_hypertree_width(H, min_fill_order(H)) <= k:
        return True
    components = H.connected_components()
    if len(components) > 1:
        return all(
            hypertreewidth_at_most(H.induced_subhypergraph(c), k) for c in components
        )
    if len(H.vertices) > EXACT_VERTEX_LIMIT:
        raise BudgetExceededError(
            "exact ghw decision limited to %d vertices, got %d"
            % (EXACT_VERTEX_LIMIT, len(H.vertices))
        )
    return _decide_ghw(H, k)


def hypertreewidth_exact(H: Hypergraph) -> int:
    """Exact generalized hypertreewidth (0 for edgeless hypergraphs)."""
    if not H.edges:
        return 0
    lo, hi = 1, len(H.edges)
    while lo < hi:
        mid = (lo + hi) // 2
        if hypertreewidth_at_most(H, mid):
            hi = mid
        else:
            lo = mid + 1
    return lo


def _order_hypertree_width(H: Hypergraph, order: Sequence[Vertex]) -> int:
    """Max bag edge-cover number along an elimination order (greedy covers
    upper-bound the true ρ, so this is an upper bound on ghw)."""
    adjacency: Dict[Vertex, Set[Vertex]] = {v: set(ns) for v, ns in H.primal_graph().items()}
    width = 0
    for v in order:
        bag = frozenset(adjacency[v] | {v})
        cover = greedy_edge_cover(H, bag)
        if cover is None:
            return len(H.edges) + 1
        width = max(width, len(cover))
        neighbourhood = adjacency[v]
        for a in neighbourhood:
            adjacency[a].discard(v)
            adjacency[a].update(neighbourhood - {a})
        del adjacency[v]
    return width


def _decide_ghw(H: Hypergraph, k: int) -> bool:
    """Memoized elimination-order DP with the exact ρ(bag) ≤ k cost."""
    graph = _BitGraph(H)
    vertices = graph.vertices
    memo: Dict[int, bool] = {}
    cover_memo: Dict[FrozenSet[Vertex], bool] = {}

    def bag_ok(mask_v: int, eliminated: int) -> bool:
        bag = frozenset(
            [vertices[mask_v]]
            + [vertices[u] for u in _iter_bits(graph.q_mask(eliminated, mask_v))]
        )
        cached = cover_memo.get(bag)
        if cached is None:
            cached = edge_cover_number(H, bag, k) is not None
            cover_memo[bag] = cached
        return cached

    def feasible(remaining: int) -> bool:
        if remaining == 0:
            return True
        cached = memo.get(remaining)
        if cached is not None:
            return cached
        eliminated = graph.full & ~remaining
        result = False
        for v in _iter_bits(remaining):
            if bag_ok(v, eliminated) and feasible(remaining & ~(1 << v)):
                result = True
                break
        memo[remaining] = result
        return result

    return feasible(graph.full)


def hypertree_decomposition(H: Hypergraph, k: Optional[int] = None) -> TreeDecomposition:
    """A generalized hypertree decomposition of width ≤ ``k`` (default: the
    exact ghw), with per-bag edge covers attached.

    Built from a witness elimination order; the order is recovered greedily
    against the memoized feasibility predicate.
    """
    if not H.edges:
        return TreeDecomposition([frozenset(H.vertices)], [], covers=[frozenset()])
    width = hypertreewidth_exact(H) if k is None else k
    if not hypertreewidth_at_most(H, width):
        raise BudgetExceededError("hypergraph has ghw > %d" % width)
    order = _ghw_order(H, width)
    td = decomposition_from_elimination_order(H, order)
    covers = []
    for bag in td.bags:
        cover = minimum_edge_cover(H, bag, len(H.edges))
        if cover is None:  # pragma: no cover - every variable is in an edge
            raise BudgetExceededError("bag %r has no edge cover" % (sorted(map(repr, bag)),))
        covers.append(frozenset(cover))
    return TreeDecomposition(td.bags, td.tree_edges, covers=covers)


def _ghw_order(H: Hypergraph, k: int) -> List[Vertex]:
    """An elimination order whose bags all have ρ ≤ k."""
    # Cheap attempt first: a greedy order might already fit.
    for heuristic in (min_fill_order, min_degree_order):
        order = heuristic(H)
        if _order_exact_width_at_most(H, order, k):
            return order
    graph = _BitGraph(H)
    vertices = graph.vertices
    memo: Dict[int, bool] = {}

    def feasible(remaining: int) -> bool:
        if remaining == 0:
            return True
        cached = memo.get(remaining)
        if cached is not None:
            return cached
        eliminated = graph.full & ~remaining
        result = False
        for v in _iter_bits(remaining):
            bag = frozenset(
                [vertices[v]]
                + [vertices[u] for u in _iter_bits(graph.q_mask(eliminated, v))]
            )
            if edge_cover_number(H, bag, k) is not None and feasible(remaining & ~(1 << v)):
                result = True
                break
        memo[remaining] = result
        return result

    order: List[Vertex] = []
    remaining = graph.full
    eliminated = 0
    while remaining:
        for v in _iter_bits(remaining):
            bag = frozenset(
                [vertices[v]]
                + [vertices[u] for u in _iter_bits(graph.q_mask(eliminated, v))]
            )
            if edge_cover_number(H, bag, k) is not None and feasible(remaining & ~(1 << v)):
                order.append(vertices[v])
                remaining &= ~(1 << v)
                eliminated |= 1 << v
                break
        else:  # pragma: no cover
            raise AssertionError("no feasible elimination step found")
    return order


def _order_exact_width_at_most(H: Hypergraph, order: Sequence[Vertex], k: int) -> bool:
    adjacency: Dict[Vertex, Set[Vertex]] = {v: set(ns) for v, ns in H.primal_graph().items()}
    for v in order:
        bag = frozenset(adjacency[v] | {v})
        if edge_cover_number(H, bag, k) is None:
            return False
        neighbourhood = adjacency[v]
        for a in neighbourhood:
            adjacency[a].discard(v)
            adjacency[a].update(neighbourhood - {a})
        del adjacency[v]
    return True
