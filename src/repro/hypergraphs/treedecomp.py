"""Tree decompositions as first-class, validated objects.

A tree decomposition of a hypergraph ``H = (V, E)`` is a pair ``(S, ν)``
with ``S`` a tree and ``ν`` assigning a *bag* of vertices to each tree node
such that (1) for each vertex the nodes whose bags contain it form a
connected subtree, and (2) every hyperedge is contained in some bag
(Section 3.1).  The width is ``max |ν(s)| − 1``.

The same class also carries hypertree decompositions
``(S, ν, κ)`` via the optional per-node edge covers ``κ`` (Section 3.1):
condition (2') requires ``ν(s) ⊆ ⋃ κ(s)``; the hypertree width is
``max |κ(s)|``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..exceptions import DecompositionError
from .hypergraph import Edge, Hypergraph, Vertex

NodeId = int


class TreeDecomposition:
    """A (hyper)tree decomposition.

    Parameters
    ----------
    bags:
        ``bags[i]`` is the vertex bag ``ν(i)`` of tree node ``i``.
    tree_edges:
        Undirected edges ``(i, j)`` between tree-node indices.  With ``n``
        nodes there must be exactly ``n − 1`` edges forming a tree (a single
        node needs no edges).
    covers:
        Optional ``κ``: for each node, the hyperedges covering its bag.
        When present the object is a *hypertree* decomposition.
    """

    __slots__ = ("bags", "tree_edges", "covers", "_adjacency")

    def __init__(
        self,
        bags: Sequence[Iterable[Vertex]],
        tree_edges: Iterable[Tuple[NodeId, NodeId]],
        covers: Optional[Sequence[Iterable[Edge]]] = None,
    ):
        self.bags: Tuple[FrozenSet[Vertex], ...] = tuple(frozenset(b) for b in bags)
        self.tree_edges: Tuple[Tuple[NodeId, NodeId], ...] = tuple(
            (min(i, j), max(i, j)) for i, j in tree_edges
        )
        self.covers: Optional[Tuple[FrozenSet[Edge], ...]] = (
            tuple(frozenset(frozenset(e) for e in c) for c in covers)
            if covers is not None
            else None
        )
        if self.covers is not None and len(self.covers) != len(self.bags):
            raise DecompositionError(
                "got %d covers for %d bags" % (len(self.covers), len(self.bags))
            )
        n = len(self.bags)
        adjacency: Dict[NodeId, Set[NodeId]] = {i: set() for i in range(n)}
        for i, j in self.tree_edges:
            if not (0 <= i < n and 0 <= j < n):
                raise DecompositionError("tree edge (%d, %d) out of range" % (i, j))
            adjacency[i].add(j)
            adjacency[j].add(i)
        self._adjacency = {i: frozenset(js) for i, js in adjacency.items()}
        self._check_is_tree()

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.bags)

    def neighbours(self, node: NodeId) -> FrozenSet[NodeId]:
        return self._adjacency[node]

    def width(self) -> int:
        """Treewidth-style width: ``max |bag| − 1``."""
        return max(len(b) for b in self.bags) - 1

    def hypertree_width(self) -> int:
        """Hypertree-style width: ``max |κ(s)|`` (requires covers)."""
        if self.covers is None:
            raise DecompositionError("no edge covers: not a hypertree decomposition")
        return max((len(c) for c in self.covers), default=0)

    def _check_is_tree(self) -> None:
        n = len(self.bags)
        if n == 0:
            raise DecompositionError("a decomposition needs at least one node")
        if len(self.tree_edges) != n - 1:
            raise DecompositionError(
                "%d nodes need %d tree edges, got %d" % (n, n - 1, len(self.tree_edges))
            )
        seen: Set[NodeId] = set()
        stack: List[NodeId] = [0]
        while stack:
            i = stack.pop()
            if i in seen:
                continue
            seen.add(i)
            stack.extend(self._adjacency[i] - seen)
        if len(seen) != n:
            raise DecompositionError("decomposition tree is disconnected")

    # ------------------------------------------------------------------
    # Validity against a hypergraph
    # ------------------------------------------------------------------
    def violations(self, H: Hypergraph) -> List[str]:
        """Human-readable list of validity violations (empty = valid)."""
        problems: List[str] = []
        covered = set()
        for b in self.bags:
            covered.update(b)
        missing_vertices = H.vertices - covered
        if missing_vertices:
            problems.append("vertices not in any bag: %r" % (sorted(map(repr, missing_vertices)),))
        for e in H.edges:
            if not any(e <= b for b in self.bags):
                problems.append("hyperedge %r not contained in any bag" % (sorted(map(repr, e)),))
        for v in H.vertices:
            nodes = [i for i, b in enumerate(self.bags) if v in b]
            if nodes and not self._nodes_connected(nodes):
                problems.append("bags containing %r are not connected" % (v,))
        if self.covers is not None:
            for i, (bag, cover) in enumerate(zip(self.bags, self.covers)):
                stray = cover - H.edges
                if stray:
                    problems.append("node %d cover uses foreign edges" % i)
                union: Set[Vertex] = set()
                for e in cover:
                    union.update(e)
                if not bag <= union:
                    problems.append("node %d: bag not covered by its κ edges" % i)
        return problems

    def is_valid_for(self, H: Hypergraph) -> bool:
        """Is this a valid (hyper)tree decomposition of ``H``?"""
        return not self.violations(H)

    def _nodes_connected(self, nodes: Sequence[NodeId]) -> bool:
        wanted = set(nodes)
        seen: Set[NodeId] = set()
        stack = [nodes[0]]
        while stack:
            i = stack.pop()
            if i in seen:
                continue
            seen.add(i)
            stack.extend(j for j in self._adjacency[i] if j in wanted and j not in seen)
        return seen == wanted

    def __repr__(self) -> str:
        kind = "HypertreeDecomposition" if self.covers is not None else "TreeDecomposition"
        return "%s(%d nodes, width=%d)" % (kind, len(self.bags), self.width())


def decomposition_from_elimination_order(
    H: Hypergraph, order: Sequence[Vertex]
) -> TreeDecomposition:
    """Tree decomposition induced by a vertex elimination order.

    Standard construction: eliminate vertices in ``order`` from the primal
    graph, at each step creating a bag with the vertex and its current
    neighbourhood, and filling in the neighbourhood into a clique.  The
    resulting decomposition's width equals the width of the elimination
    order; minimizing over orders yields the exact treewidth.
    """
    if set(order) != set(H.vertices):
        raise DecompositionError("elimination order must cover exactly the vertices")
    adjacency: Dict[Vertex, Set[Vertex]] = {v: set(ns) for v, ns in H.primal_graph().items()}
    bags: List[FrozenSet[Vertex]] = []
    bag_of_vertex: Dict[Vertex, int] = {}
    for v in order:
        neighbourhood = frozenset(adjacency[v])
        bags.append(frozenset({v}) | neighbourhood)
        bag_of_vertex[v] = len(bags) - 1
        for a in neighbourhood:
            adjacency[a].discard(v)
            adjacency[a].update(neighbourhood - {a})
        del adjacency[v]
    # Connect each bag to the bag of the earliest-eliminated remaining
    # neighbour; the last bag is the root.
    position = {v: i for i, v in enumerate(order)}
    edges: List[Tuple[NodeId, NodeId]] = []
    for i, v in enumerate(order):
        later = [u for u in bags[i] if u != v and position[u] > position[v]]
        if later:
            parent_vertex = min(later, key=lambda u: position[u])
            edges.append((i, bag_of_vertex[parent_vertex]))
        elif i != len(order) - 1:
            edges.append((i, len(order) - 1))
    return TreeDecomposition(bags, edges)
