"""Hypergraphs of conjunctive queries.

The hypergraph ``H_q = (V, E)`` of a CQ has the query's variables as
vertices and, for each atom, the set of variables of that atom as a
hyperedge (Section 3.1).  All width notions (treewidth, hypertreewidth,
β-acyclicity) are defined on this object.

Vertices can be arbitrary hashable values; the CQ bridge uses
:class:`~repro.core.terms.Variable` vertices.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Set

from ..core.atoms import Atom
from ..core.cq import ConjunctiveQuery

Vertex = Hashable
Edge = FrozenSet[Vertex]


class Hypergraph:
    """An immutable hypergraph ``(V, E)``.

    ``vertices`` may include isolated vertices not covered by any edge.
    Empty hyperedges are dropped (they carry no structural information for
    width purposes).

    >>> H = Hypergraph([{1, 2, 3}, {3, 4}])
    >>> sorted(H.vertices)
    [1, 2, 3, 4]
    >>> H.degree(3)
    2
    """

    __slots__ = ("vertices", "edges", "_incidence", "_hash")

    def __init__(
        self,
        edges: Iterable[Iterable[Vertex]],
        vertices: Iterable[Vertex] = (),
    ):
        edge_set = frozenset(frozenset(e) for e in edges if frozenset(e))
        vertex_set = set(vertices)
        for e in edge_set:
            vertex_set.update(e)
        self.vertices: FrozenSet[Vertex] = frozenset(vertex_set)
        self.edges: FrozenSet[Edge] = edge_set
        incidence: Dict[Vertex, Set[Edge]] = {v: set() for v in self.vertices}
        for e in edge_set:
            for v in e:
                incidence[v].add(e)
        self._incidence = {v: frozenset(es) for v, es in incidence.items()}
        self._hash = hash((self.vertices, self.edges))

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    def incident_edges(self, v: Vertex) -> FrozenSet[Edge]:
        """Hyperedges containing vertex ``v``."""
        return self._incidence.get(v, frozenset())

    def degree(self, v: Vertex) -> int:
        """Number of hyperedges containing ``v``."""
        return len(self.incident_edges(v))

    def neighbours(self, v: Vertex) -> FrozenSet[Vertex]:
        """Vertices sharing an edge with ``v`` (excluding ``v``)."""
        out: Set[Vertex] = set()
        for e in self.incident_edges(v):
            out.update(e)
        out.discard(v)
        return frozenset(out)

    def is_empty(self) -> bool:
        return not self.vertices

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Hypergraph)
            and other.vertices == self.vertices
            and other.edges == self.edges
        )

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return "Hypergraph(|V|=%d, |E|=%d)" % (len(self.vertices), len(self.edges))

    # ------------------------------------------------------------------
    # Derived graphs and subobjects
    # ------------------------------------------------------------------
    def primal_graph(self) -> Dict[Vertex, FrozenSet[Vertex]]:
        """Adjacency of the primal (Gaifman) graph: two vertices are
        adjacent iff they co-occur in some hyperedge."""
        return {v: self.neighbours(v) for v in self.vertices}

    def induced_subhypergraph(self, keep: Iterable[Vertex]) -> "Hypergraph":
        """Vertex-induced subhypergraph: edges are intersected with ``keep``
        (empty intersections dropped).  This is the notion used when
        decomposing components during hypertree decomposition."""
        keep_set = frozenset(keep)
        return Hypergraph(
            (e & keep_set for e in self.edges),
            vertices=keep_set & self.vertices,
        )

    def partial_subhypergraph(self, edges: Iterable[Edge]) -> "Hypergraph":
        """Edge-induced subhypergraph (a *subquery* in the paper's sense:
        keep a subset of the atoms/edges with their full variable sets)."""
        kept = frozenset(edges)
        unknown = kept - self.edges
        if unknown:
            raise ValueError("edges %r are not part of this hypergraph" % (sorted(map(sorted, unknown)),))
        return Hypergraph(kept)

    def connected_components(self) -> List[FrozenSet[Vertex]]:
        """Vertex sets of the connected components (via shared hyperedges)."""
        seen: Set[Vertex] = set()
        components: List[FrozenSet[Vertex]] = []
        for start in self.vertices:
            if start in seen:
                continue
            stack = [start]
            component: Set[Vertex] = set()
            while stack:
                v = stack.pop()
                if v in component:
                    continue
                component.add(v)
                for u in self.neighbours(v):
                    if u not in component:
                        stack.append(u)
            seen.update(component)
            components.append(frozenset(component))
        return components

    def is_connected(self) -> bool:
        return len(self.connected_components()) <= 1


def hypergraph_of_cq(query: ConjunctiveQuery) -> Hypergraph:
    """The hypergraph ``H_q`` of a conjunctive query.

    Vertices are the query's variables; each atom contributes the hyperedge
    of its variables (constants are ignored, exactly as in the paper's
    Example after Theorem 2).  Atoms without variables contribute nothing.
    """
    return Hypergraph(
        (a.variables() for a in query.atoms),
        vertices=query.variables(),
    )


def hypergraph_of_atoms(atoms: Iterable[Atom]) -> Hypergraph:
    """The hypergraph of a bare atom set."""
    atom_list = list(atoms)
    vertices: Set[Vertex] = set()
    for a in atom_list:
        vertices.update(a.variables())
    return Hypergraph((a.variables() for a in atom_list), vertices=vertices)
