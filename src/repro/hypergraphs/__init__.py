"""Hypergraphs, tree decompositions, and width measures.

The structural substrate behind the tractable classes ``TW(k)``, ``HW(k)``
and ``HW'(k)`` of the paper (Sections 3.1 and 5).
"""

from .beta import (
    beta_hypertreewidth_at_most,
    beta_hypertreewidth_exact,
    is_beta_acyclic,
)
from .fractional import (
    fractional_cover_number,
    fractional_hypertreewidth,
    fractional_hypertreewidth_upper_bound,
)
from .gyo import (
    gyo_reduction,
    is_alpha_acyclic,
    join_tree_children,
    join_tree_is_valid,
    join_tree_of_atoms,
    join_tree_root,
)
from .hypergraph import Hypergraph, hypergraph_of_atoms, hypergraph_of_cq
from .hypertree import (
    edge_cover_number,
    greedy_edge_cover,
    hypertree_decomposition,
    hypertreewidth_at_most,
    hypertreewidth_exact,
    minimum_edge_cover,
)
from .treedecomp import TreeDecomposition, decomposition_from_elimination_order
from .treewidth import (
    min_degree_order,
    min_fill_order,
    order_width,
    tree_decomposition,
    treewidth_at_most,
    treewidth_exact,
    treewidth_lower_bound,
    treewidth_upper_bound,
)

__all__ = [
    "beta_hypertreewidth_at_most",
    "beta_hypertreewidth_exact",
    "is_beta_acyclic",
    "fractional_cover_number",
    "fractional_hypertreewidth",
    "fractional_hypertreewidth_upper_bound",
    "gyo_reduction",
    "is_alpha_acyclic",
    "join_tree_children",
    "join_tree_is_valid",
    "join_tree_of_atoms",
    "join_tree_root",
    "Hypergraph",
    "hypergraph_of_atoms",
    "hypergraph_of_cq",
    "edge_cover_number",
    "greedy_edge_cover",
    "hypertree_decomposition",
    "hypertreewidth_at_most",
    "hypertreewidth_exact",
    "minimum_edge_cover",
    "TreeDecomposition",
    "decomposition_from_elimination_order",
    "min_degree_order",
    "min_fill_order",
    "order_width",
    "tree_decomposition",
    "treewidth_at_most",
    "treewidth_exact",
    "treewidth_lower_bound",
    "treewidth_upper_bound",
]
