"""α-acyclicity via GYO reduction, and join trees for Yannakakis.

``HW(1)`` coincides with the class ``AC`` of acyclic CQs (Section 3.1).
Acyclicity is decided by the classic Graham / Yu–Özsoyoğlu reduction:
repeatedly remove *ears* — hyperedges whose private part (vertices occurring
in no other edge) can be stripped so that the rest is contained in another
edge.  The hypergraph is α-acyclic iff the reduction eliminates all but one
edge.  The ear-to-witness links produced along the way form a **join tree**,
the input structure of Yannakakis' algorithm (:mod:`repro.cqalgs.yannakakis`).

Join trees are built over *atom indices*, not hyperedges, because distinct
atoms of a CQ may share the same variable set.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom
from .hypergraph import Hypergraph, Vertex


def gyo_reduction(H: Hypergraph) -> Hypergraph:
    """Run the GYO reduction; return the irreducible remainder.

    The remainder has no edges iff ``H`` is α-acyclic (an empty hypergraph
    and a single-edge hypergraph both reduce fully).
    """
    edges: List[Set[Vertex]] = [set(e) for e in H.edges]
    alive = set(range(len(edges)))
    changed = True
    while changed:
        changed = False
        for i in list(alive):
            if _is_ear(i, edges, alive):
                alive.discard(i)
                changed = True
    return Hypergraph([edges[i] for i in alive])


def is_alpha_acyclic(H: Hypergraph) -> bool:
    """Is ``H`` α-acyclic (equivalently: generalized hypertreewidth ≤ 1)?"""
    return not gyo_reduction(H).edges


def _is_ear(i: int, edges: Sequence[Set[Vertex]], alive: Set[int]) -> bool:
    """Is edge ``i`` an ear among the alive edges?

    Edge ``i`` is an ear iff its non-private vertices (those shared with
    some other alive edge) are all contained in a single other alive edge —
    including the degenerate cases of an edge with only private vertices or
    an edge contained in another.
    """
    shared = {
        v
        for v in edges[i]
        if any(j != i and v in edges[j] for j in alive)
    }
    if not shared:
        return True
    return any(j != i and shared <= edges[j] for j in alive)


def join_tree_of_atoms(atoms: Sequence[Atom]) -> Optional[List[Tuple[int, int]]]:
    """A join tree over atom indices, or ``None`` if the CQ is cyclic.

    Returns parent links ``(child, parent)``; index ``len(result)`` relations
    form a tree rooted at the last surviving atom.  The connectedness
    ("running intersection") property holds: for every variable, the atoms
    containing it form a connected subtree.

    >>> from repro.core.atoms import atom
    >>> links = join_tree_of_atoms([atom("R", "?x", "?y"), atom("S", "?y", "?z")])
    >>> links is not None
    True
    """
    n = len(atoms)
    if n == 0:
        return []
    edges: List[Set[Vertex]] = [set(a.variables()) for a in atoms]
    alive: Set[int] = set(range(n))
    links: List[Tuple[int, int]] = []
    changed = True
    while changed and len(alive) > 1:
        changed = False
        for i in sorted(alive):
            shared = {
                v for v in edges[i] if any(j != i and v in edges[j] for j in alive)
            }
            witness = None
            for j in sorted(alive):
                if j != i and shared <= edges[j]:
                    witness = j
                    break
            if witness is not None:
                links.append((i, witness))
                alive.discard(i)
                changed = True
                break
    if len(alive) > 1:
        return None
    return links


def join_tree_root(links: Sequence[Tuple[int, int]], n_atoms: int) -> int:
    """The root index of a join tree returned by :func:`join_tree_of_atoms`."""
    children = {c for c, _ in links}
    roots = [i for i in range(n_atoms) if i not in children]
    if len(roots) != 1:
        raise ValueError("join tree with %d atoms has %d roots" % (n_atoms, len(roots)))
    return roots[0]


def join_tree_children(
    links: Sequence[Tuple[int, int]], n_atoms: int
) -> Dict[int, List[int]]:
    """Child lists per node for a join tree's parent links."""
    children: Dict[int, List[int]] = {i: [] for i in range(n_atoms)}
    for child, parent in links:
        children[parent].append(child)
    return children


def join_tree_is_valid(atoms: Sequence[Atom], links: Sequence[Tuple[int, int]]) -> bool:
    """Check the running-intersection property of a join tree."""
    n = len(atoms)
    if n == 0:
        return not links
    if len(links) != n - 1:
        return False
    adjacency: Dict[int, Set[int]] = {i: set() for i in range(n)}
    for child, parent in links:
        adjacency[child].add(parent)
        adjacency[parent].add(child)
    # connectivity of the tree itself
    seen: Set[int] = set()
    stack = [0]
    while stack:
        i = stack.pop()
        if i in seen:
            continue
        seen.add(i)
        stack.extend(adjacency[i] - seen)
    if len(seen) != n:
        return False
    # running intersection per variable
    for v in {v for a in atoms for v in a.variables()}:
        holders = [i for i, a in enumerate(atoms) if v in a.variables()]
        wanted = set(holders)
        comp: Set[int] = set()
        stack = [holders[0]]
        while stack:
            i = stack.pop()
            if i in comp:
                continue
            comp.add(i)
            stack.extend(j for j in adjacency[i] if j in wanted and j not in comp)
        if comp != wanted:
            return False
    return True
