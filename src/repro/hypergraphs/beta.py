"""β-acyclicity and the subquery-closed class ``HW'(k)``.

Section 5 of the paper needs CQ classes *closed under taking arbitrary
subqueries* (Lemma 1 merges tree nodes, which takes subqueries).  ``TW(k)``
is closed (treewidth is monotone under subgraphs) but ``HW(k)`` is not, so
the paper restricts to ``HW'(k)``: CQs all of whose subqueries have
(generalized) hypertreewidth ≤ k — the *β-hypertreewidth* of [15], which
for ``k = 1`` coincides with Fagin's β-acyclicity [11].

* :func:`is_beta_acyclic` — polynomial nest-point elimination: a vertex is a
  *nest point* if its incident edges form a ⊆-chain; a hypergraph is
  β-acyclic iff repeatedly removing nest points (and then empty edges)
  removes all vertices.
* :func:`beta_hypertreewidth_at_most` — ``HW'(k)`` for ``k ≥ 2`` via
  enumeration of edge subsets (no polynomial algorithm is known; the paper
  itself needs an NP oracle exactly for this test).  Exponential in the
  number of *distinct* hyperedges, which is small for the queries in scope.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Sequence, Set

from ..exceptions import BudgetExceededError
from .hypergraph import Hypergraph, Vertex
from .hypertree import hypertreewidth_at_most

#: Cap on 2^m subquery enumeration for the k ≥ 2 test.
BETA_EDGE_LIMIT = 16


def _nest_point(H_edges: Sequence[Set[Vertex]], v: Vertex) -> bool:
    """Is ``v`` a nest point: are the edges containing ``v`` a ⊆-chain?"""
    incident = [e for e in H_edges if v in e]
    incident.sort(key=len)
    for small, big in zip(incident, incident[1:]):
        if not small <= big:
            return False
    return True


def is_beta_acyclic(H: Hypergraph) -> bool:
    """β-acyclicity via nest-point elimination (polynomial time).

    >>> triangle = Hypergraph([{1, 2}, {2, 3}, {1, 3}])
    >>> is_beta_acyclic(triangle)
    False
    >>> chain = Hypergraph([{1, 2}, {1, 2, 3}])
    >>> is_beta_acyclic(chain)
    True
    """
    edges: List[Set[Vertex]] = [set(e) for e in H.edges]
    vertices: Set[Vertex] = set(H.vertices)
    progress = True
    while vertices and progress:
        progress = False
        for v in sorted(vertices, key=repr):
            if _nest_point(edges, v):
                vertices.discard(v)
                for e in edges:
                    e.discard(v)
                edges = [e for e in edges if e]
                progress = True
                break
    return not vertices


def beta_hypertreewidth_at_most(H: Hypergraph, k: int) -> bool:
    """Does every edge-subset of ``H`` have generalized hypertreewidth ≤ k?

    For ``k = 1`` this is β-acyclicity and runs in polynomial time.  For
    ``k ≥ 2`` all ``2^m`` subsets of distinct edges are checked (with the
    observation that it suffices to check subsets, not sub-multisets, since
    duplicated edges never change ghw).  Raises
    :class:`~repro.exceptions.BudgetExceededError` beyond
    :data:`BETA_EDGE_LIMIT` distinct edges.
    """
    if k <= 0:
        return not H.edges
    if k == 1:
        return is_beta_acyclic(H)
    if is_beta_acyclic(H):
        return True  # β-hypertreewidth 1 ≤ k
    edges = sorted(H.edges, key=lambda e: (len(e), sorted(map(repr, e))))
    m = len(edges)
    if not hypertreewidth_at_most(H, k):
        return False
    if m > BETA_EDGE_LIMIT:
        raise BudgetExceededError(
            "HW'(%d) test limited to %d distinct edges, got %d"
            % (k, BETA_EDGE_LIMIT, m)
        )
    # Check subsets from large to small; many failures show up near the top.
    for size in range(m - 1, 1, -1):
        for subset in combinations(edges, size):
            if not hypertreewidth_at_most(Hypergraph(subset), k):
                return False
    return True


def beta_hypertreewidth_exact(H: Hypergraph) -> int:
    """Exact β-hypertreewidth (max ghw over edge subsets)."""
    if not H.edges:
        return 0
    k = 1
    while not beta_hypertreewidth_at_most(H, k):
        k += 1
    return k
