"""Fractional edge covers and fractional hypertree width (Grohe–Marx).

The paper's reference [16] (Grohe & Marx, *Constraint solving via
fractional edge covers*) generalizes ``HW(k)``: assign fractional weights
to hyperedges; the *fractional edge cover number* ``ρ*(B)`` of a bag is
the optimal LP value, and the fractional hypertree width ``fhw`` is the
minimum over decompositions of the maximal bag ``ρ*``.  ``fhw ≤ ghw``
always, and queries of bounded fhw are tractable.

This module adds the LP machinery as an *extension* substrate (scipy's
``linprog`` when available, with a pure-Python exact fallback for tiny
bags), plus an fhw upper bound via elimination orders — mirroring how
:mod:`repro.hypergraphs.hypertree` computes ghw, but without the claim of
exactness (the elimination-order argument gives only an upper bound here,
documented below).

Note on exactness: the chordalization argument that makes elimination
orders sufficient for treewidth and ghw applies verbatim to any
bag-monotone cost, and ``ρ*`` is monotone under taking subsets of a bag —
so :func:`fractional_hypertreewidth` is in fact exact for the same reason
as ghw.  We still expose it alongside an explicit
:func:`fractional_cover_number` so callers can audit the LP values.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Sequence, Tuple

from ..exceptions import BudgetExceededError
from .hypergraph import Edge, Hypergraph, Vertex
from .treewidth import EXACT_VERTEX_LIMIT, _BitGraph, _iter_bits, min_fill_order

try:  # scipy is an optional accelerator, not a hard dependency
    from scipy.optimize import linprog as _linprog
except Exception:  # pragma: no cover - exercised on scipy-less installs
    _linprog = None


def fractional_cover_number(H: Hypergraph, bag: FrozenSet[Vertex]) -> float:
    """``ρ*(bag)``: minimum total weight of hyperedges covering every
    vertex of ``bag`` with weight ≥ 1.

    >>> tri = Hypergraph([{1, 2}, {2, 3}, {1, 3}])
    >>> round(fractional_cover_number(tri, frozenset({1, 2, 3})), 3)
    1.5
    """
    if not bag:
        return 0.0
    edges = [e for e in H.edges if e & bag]
    if any(not any(v in e for e in edges) for v in bag):
        return float("inf")
    if _linprog is not None:
        return _lp_cover(bag, edges)
    return _exact_cover_small(bag, edges)


def fractional_cover_weights(
    H: Hypergraph, bag: FrozenSet[Vertex]
) -> Tuple[float, Dict[Edge, float]]:
    """``ρ*(bag)`` together with an optimal per-edge weight assignment.

    The weights are what the AGM output bound needs (``∏ |R_e|^{w_e}``,
    Atserias–Grohe–Marx): :func:`fractional_cover_number` reports only the
    LP value, this variant also returns ``{edge: weight}`` for the edges
    that received positive weight.  Infeasible bags (a vertex no edge
    covers) return ``(inf, {})``.

    >>> tri = Hypergraph([{1, 2}, {2, 3}, {1, 3}])
    >>> value, weights = fractional_cover_weights(tri, frozenset({1, 2, 3}))
    >>> round(value, 3), sorted(round(w, 3) for w in weights.values())
    (1.5, [0.5, 0.5, 0.5])
    """
    if not bag:
        return 0.0, {}
    edges = [e for e in H.edges if e & bag]
    if any(not any(v in e for e in edges) for v in bag):
        return float("inf"), {}
    if _linprog is not None:
        value, weights = _lp_cover_solution(bag, edges)
    else:
        value, weights = _exact_cover_small_solution(bag, edges)
    return value, {
        e: w for e, w in zip(edges, weights) if w > 1e-9
    }


def _lp_cover(bag: FrozenSet[Vertex], edges: Sequence[Edge]) -> float:
    return _lp_cover_solution(bag, edges)[0]


def _lp_cover_solution(
    bag: FrozenSet[Vertex], edges: Sequence[Edge]
) -> Tuple[float, Sequence[float]]:
    vertices = sorted(bag, key=repr)
    index = {v: i for i, v in enumerate(vertices)}
    # minimize 1·w  s.t.  −A w ≤ −1  (A[v][e] = 1 iff v ∈ e),  w ≥ 0
    A = [[0.0] * len(edges) for _ in vertices]
    for j, e in enumerate(edges):
        for v in e & bag:
            A[index[v]][j] = -1.0
    result = _linprog(
        c=[1.0] * len(edges),
        A_ub=A,
        b_ub=[-1.0] * len(vertices),
        bounds=[(0, None)] * len(edges),
        method="highs",
    )
    if not result.success:  # pragma: no cover - LP is always feasible here
        raise RuntimeError("fractional cover LP failed: %s" % result.message)
    return float(result.fun), [float(w) for w in result.x]


def _exact_cover_small(bag: FrozenSet[Vertex], edges: Sequence[Edge]) -> float:
    return _exact_cover_small_solution(bag, edges)[0]


def _exact_cover_small_solution(
    bag: FrozenSet[Vertex], edges: Sequence[Edge]
) -> Tuple[float, Sequence[float]]:
    """LP by vertex enumeration for tiny instances (scipy unavailable).

    The optimum of this covering LP is attained at a basic solution; for
    the bag sizes used in tests (≤ 6) we simply search rational weight
    grids via the dual: ρ* equals the maximum fractional independent set,
    which for tiny bags we bound by brute force over half-integral
    solutions (the covering LP for graphs is half-integral; hypergraphs
    here are small enough for the 1/2-grid to be exact in practice).
    """
    if len(bag) > 10 or len(edges) > 12:
        raise BudgetExceededError(
            "fractional cover fallback limited to tiny bags; install scipy"
        )
    best = float(len(edges))
    best_weights: Sequence[float] = [1.0] * len(edges)
    # weights from {0, 1/2, 1}: sound upper bound, exact on graphs.
    from itertools import product as _product

    for weights in _product((0.0, 0.5, 1.0), repeat=len(edges)):
        if sum(weights) >= best:
            continue
        ok = True
        for v in bag:
            if sum(w for w, e in zip(weights, edges) if v in e) < 1.0 - 1e-9:
                ok = False
                break
        if ok:
            best = sum(weights)
            best_weights = list(weights)
    return best, best_weights


def fractional_hypertreewidth(H: Hypergraph) -> float:
    """``fhw(H)`` via the elimination-order dynamic program.

    Exact by the same chordalization argument as for ghw (``ρ*`` is
    bag-monotone); exponential in the vertex count, like every exact width
    computation here.
    """
    if not H.edges:
        return 0.0
    components = H.connected_components()
    if len(components) > 1:
        return max(
            fractional_hypertreewidth(H.induced_subhypergraph(c)) for c in components
        )
    n = len(H.vertices)
    if n > EXACT_VERTEX_LIMIT:
        raise BudgetExceededError(
            "exact fhw limited to %d vertices, got %d" % (EXACT_VERTEX_LIMIT, n)
        )
    graph = _BitGraph(H)
    vertices = graph.vertices
    cover_memo: Dict[FrozenSet[Vertex], float] = {}

    def bag_cost(v: int, eliminated: int) -> float:
        bag = frozenset(
            [vertices[v]] + [vertices[u] for u in _iter_bits(graph.q_mask(eliminated, v))]
        )
        cached = cover_memo.get(bag)
        if cached is None:
            cached = fractional_cover_number(H, bag)
            cover_memo[bag] = cached
        return cached

    memo: Dict[int, float] = {}

    def best_width(remaining: int) -> float:
        if remaining == 0:
            return 0.0
        cached = memo.get(remaining)
        if cached is not None:
            return cached
        eliminated = graph.full & ~remaining
        best = float("inf")
        for v in _iter_bits(remaining):
            cost = bag_cost(v, eliminated)
            if cost >= best:
                continue
            rest = best_width(remaining & ~(1 << v))
            best = min(best, max(cost, rest))
        memo[remaining] = best
        return best

    return best_width(graph.full)


def fractional_hypertreewidth_upper_bound(H: Hypergraph) -> float:
    """Cheap fhw upper bound: max bag ``ρ*`` along a min-fill order."""
    if not H.edges:
        return 0.0
    adjacency: Dict[Vertex, set] = {v: set(ns) for v, ns in H.primal_graph().items()}
    width = 0.0
    for v in min_fill_order(H):
        bag = frozenset(adjacency[v] | {v})
        width = max(width, fractional_cover_number(H, bag))
        neighbourhood = adjacency[v]
        for a in neighbourhood:
            adjacency[a].discard(v)
            adjacency[a].update(neighbourhood - {a})
        del adjacency[v]
    return width
