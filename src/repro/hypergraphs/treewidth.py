"""Treewidth: exact computation, heuristic bounds, and the ``TW(k)`` test.

Treewidth drives the class ``TW(k)`` of the paper (Section 3.1).  Queries in
scope here are small (tens of variables), so exact treewidth is feasible via
the classic dynamic program over elimination orders:

    ``tw(S) = min over v ∈ S of max(|Q(S∖{v}, v)|, tw(S∖{v}))``

where ``Q(S, v)`` is the set of vertices outside ``S ∪ {v}`` reachable from
``v`` through ``S`` — the bag size that eliminating ``v`` last among ``S``
would incur.  Vertices are packed into bitmasks, and the search is bounded
above/below by the min-fill heuristic and the minor-min-width lower bound so
most instances never reach the exponential core.

Public API:

* :func:`treewidth_exact` — the exact treewidth.
* :func:`treewidth_at_most` — decision ``tw(H) ≤ k`` (with fast paths).
* :func:`treewidth_upper_bound` / :func:`treewidth_lower_bound`.
* :func:`tree_decomposition` — a witness decomposition of minimum width
  (or of heuristic width when ``exact=False``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from ..exceptions import BudgetExceededError
from .hypergraph import Hypergraph, Vertex
from .treedecomp import TreeDecomposition, decomposition_from_elimination_order

#: Above this many vertices the exact algorithm refuses to run.
EXACT_VERTEX_LIMIT = 26


# ---------------------------------------------------------------------------
# Bitmask plumbing
# ---------------------------------------------------------------------------
class _BitGraph:
    """Primal graph with vertices packed into an int bitmask."""

    __slots__ = ("vertices", "index", "adj", "full")

    def __init__(self, H: Hypergraph):
        self.vertices: List[Vertex] = sorted(H.vertices, key=repr)
        self.index: Dict[Vertex, int] = {v: i for i, v in enumerate(self.vertices)}
        primal = H.primal_graph()
        self.adj: List[int] = [0] * len(self.vertices)
        for v, ns in primal.items():
            mask = 0
            for u in ns:
                mask |= 1 << self.index[u]
            self.adj[self.index[v]] = mask
        self.full = (1 << len(self.vertices)) - 1

    def q_size(self, through: int, v: int) -> int:
        """``|Q(through, v)|``: vertices outside ``through ∪ {v}`` reachable
        from ``v`` via paths whose internal vertices lie in ``through``."""
        return _popcount(self.q_mask(through, v))

    def q_mask(self, through: int, v: int) -> int:
        vbit = 1 << v
        outside = self.full & ~through & ~vbit
        reached_outside = self.adj[v] & outside
        frontier = self.adj[v] & through
        visited = vbit | frontier
        while frontier:
            nxt = 0
            f = frontier
            while f:
                low = f & -f
                f ^= low
                nxt |= self.adj[low.bit_length() - 1]
            reached_outside |= nxt & outside
            frontier = nxt & through & ~visited
            visited |= frontier
        return reached_outside


def _popcount(x: int) -> int:
    return bin(x).count("1")


def _iter_bits(mask: int):
    while mask:
        low = mask & -mask
        mask ^= low
        yield low.bit_length() - 1


# ---------------------------------------------------------------------------
# Heuristics
# ---------------------------------------------------------------------------
def min_fill_order(H: Hypergraph) -> List[Vertex]:
    """Elimination order chosen greedily by fewest fill-in edges."""
    return _greedy_order(H, criterion="fill")


def min_degree_order(H: Hypergraph) -> List[Vertex]:
    """Elimination order chosen greedily by minimum degree."""
    return _greedy_order(H, criterion="degree")


def _greedy_order(H: Hypergraph, criterion: str) -> List[Vertex]:
    adjacency: Dict[Vertex, Set[Vertex]] = {v: set(ns) for v, ns in H.primal_graph().items()}
    order: List[Vertex] = []
    while adjacency:
        if criterion == "degree":
            v = min(adjacency, key=lambda u: (len(adjacency[u]), repr(u)))
        else:
            v = min(adjacency, key=lambda u: (_fill_in(adjacency, u), len(adjacency[u]), repr(u)))
        order.append(v)
        neighbourhood = adjacency[v]
        for a in neighbourhood:
            adjacency[a].discard(v)
            adjacency[a].update(neighbourhood - {a})
        del adjacency[v]
    return order


def _fill_in(adjacency: Dict[Vertex, Set[Vertex]], v: Vertex) -> int:
    ns = list(adjacency[v])
    missing = 0
    for i, a in enumerate(ns):
        for b in ns[i + 1 :]:
            if b not in adjacency[a]:
                missing += 1
    return missing


def order_width(H: Hypergraph, order: Sequence[Vertex]) -> int:
    """Width of an elimination order (−1 for the empty hypergraph)."""
    adjacency: Dict[Vertex, Set[Vertex]] = {v: set(ns) for v, ns in H.primal_graph().items()}
    width = -1
    for v in order:
        neighbourhood = adjacency[v]
        width = max(width, len(neighbourhood))
        for a in neighbourhood:
            adjacency[a].discard(v)
            adjacency[a].update(neighbourhood - {a})
        del adjacency[v]
    return width


def treewidth_upper_bound(H: Hypergraph) -> int:
    """Best of the min-fill and min-degree heuristic widths."""
    if not H.vertices:
        return -1
    return min(
        order_width(H, min_fill_order(H)),
        order_width(H, min_degree_order(H)),
    )


def treewidth_lower_bound(H: Hypergraph) -> int:
    """Minor-min-width (MMD+) lower bound.

    Repeatedly contract a minimum-degree vertex into its least-degree
    neighbour; the maximum of the minimum degrees seen is a treewidth lower
    bound (Gogate & Dechter's MMW).
    """
    if not H.vertices:
        return -1
    adjacency: Dict[Vertex, Set[Vertex]] = {v: set(ns) for v, ns in H.primal_graph().items()}
    best = 0
    while len(adjacency) > 1:
        v = min(adjacency, key=lambda u: (len(adjacency[u]), repr(u)))
        degree = len(adjacency[v])
        best = max(best, degree)
        if degree == 0:
            del adjacency[v]
            continue
        u = min(adjacency[v], key=lambda w: (len(adjacency[w]), repr(w)))
        # contract v into u
        merged = (adjacency[v] | adjacency[u]) - {v, u}
        for w in adjacency[v]:
            adjacency[w].discard(v)
        for w in adjacency[u]:
            adjacency[w].discard(u)
        del adjacency[v]
        adjacency[u] = set(merged)
        for w in merged:
            adjacency[w].add(u)
    # A hyperedge of size s forces a bag of size ≥ s, hence width ≥ s − 1.
    edge_bound = max((len(e) - 1 for e in H.edges), default=0)
    return max(best, edge_bound, 0) if H.vertices else -1


# ---------------------------------------------------------------------------
# Exact treewidth
# ---------------------------------------------------------------------------
def treewidth_exact(H: Hypergraph) -> int:
    """Exact treewidth via the elimination-order dynamic program.

    Raises :class:`~repro.exceptions.BudgetExceededError` beyond
    :data:`EXACT_VERTEX_LIMIT` vertices (per connected component).
    """
    components = H.connected_components()
    if not components:
        return -1
    if len(components) > 1:
        return max(
            treewidth_exact(H.induced_subhypergraph(comp)) for comp in components
        )
    n = len(H.vertices)
    if n > EXACT_VERTEX_LIMIT:
        raise BudgetExceededError(
            "exact treewidth limited to %d vertices, got %d; use treewidth_upper_bound"
            % (EXACT_VERTEX_LIMIT, n)
        )
    lb = treewidth_lower_bound(H)
    ub = treewidth_upper_bound(H)
    if lb >= ub:
        return ub
    graph = _BitGraph(H)
    # Binary search the decision DP between the bounds (each decision run
    # reuses its own memo; the window lb..ub is small in practice).
    lo, hi = lb, ub
    while lo < hi:
        mid = (lo + hi) // 2
        if _decide(graph, mid):
            hi = mid
        else:
            lo = mid + 1
    return lo


def treewidth_at_most(H: Hypergraph, k: int) -> bool:
    """Decision problem ``tw(H) ≤ k`` with heuristic fast paths."""
    if not H.vertices:
        return True
    if treewidth_upper_bound(H) <= k:
        return True
    if treewidth_lower_bound(H) > k:
        return False
    components = H.connected_components()
    if len(components) > 1:
        return all(
            treewidth_at_most(H.induced_subhypergraph(comp), k) for comp in components
        )
    n = len(H.vertices)
    if n > EXACT_VERTEX_LIMIT:
        raise BudgetExceededError(
            "exact treewidth decision limited to %d vertices, got %d"
            % (EXACT_VERTEX_LIMIT, n)
        )
    return _decide(_BitGraph(H), k)


def _decide(graph: _BitGraph, k: int) -> bool:
    """Is there an elimination order of width ≤ k?  Memoized DP over the
    set of *remaining* (not yet eliminated) vertices."""
    n = len(graph.vertices)
    memo: Dict[int, bool] = {}

    def feasible(remaining: int) -> bool:
        if remaining == 0:
            return True
        cached = memo.get(remaining)
        if cached is not None:
            return cached
        eliminated = graph.full & ~remaining
        result = False
        for v in _iter_bits(remaining):
            # Eliminating v next: its bag is Q(eliminated, v) ∩ remaining
            # plus the already-eliminated fill neighbours — captured exactly
            # by Q over the eliminated set.
            if graph.q_size(eliminated, v) <= k:
                if feasible(remaining & ~(1 << v)):
                    result = True
                    break
        memo[remaining] = result
        return result

    # Order vertices to eliminate low-degree first for better pruning: the
    # recursion tries vertices in index order; nothing to tune here beyond
    # the memoization.
    return feasible(graph.full)


def _exact_order(H: Hypergraph) -> List[Vertex]:
    """An elimination order realizing the exact treewidth."""
    k = treewidth_exact(H)
    graph = _BitGraph(H)
    memo: Dict[int, bool] = {}

    def feasible(remaining: int) -> bool:
        if remaining == 0:
            return True
        cached = memo.get(remaining)
        if cached is not None:
            return cached
        eliminated = graph.full & ~remaining
        result = any(
            graph.q_size(eliminated, v) <= k and feasible(remaining & ~(1 << v))
            for v in _iter_bits(remaining)
        )
        memo[remaining] = result
        return result

    order: List[Vertex] = []
    remaining = graph.full
    eliminated = 0
    while remaining:
        for v in _iter_bits(remaining):
            if graph.q_size(eliminated, v) <= k and feasible(remaining & ~(1 << v)):
                order.append(graph.vertices[v])
                remaining &= ~(1 << v)
                eliminated |= 1 << v
                break
        else:  # pragma: no cover - contradicts feasibility of `remaining`
            raise AssertionError("no feasible elimination step found")
    return order


def tree_decomposition(H: Hypergraph, exact: bool = True) -> TreeDecomposition:
    """A tree decomposition of ``H`` — minimum width when ``exact`` (default),
    otherwise the best heuristic one."""
    if not H.vertices:
        return TreeDecomposition([frozenset()], [])
    if exact and len(H.vertices) <= EXACT_VERTEX_LIMIT:
        if H.is_connected():
            order = _exact_order(H)
        else:
            # Exact per component, stitched by concatenating orders (widths
            # are independent across components).
            order = []
            for comp in H.connected_components():
                order.extend(_exact_order(H.induced_subhypergraph(comp)))
    else:
        fill = min_fill_order(H)
        degree = min_degree_order(H)
        order = fill if order_width(H, fill) <= order_width(H, degree) else degree
    return decomposition_from_elimination_order(H, order)
