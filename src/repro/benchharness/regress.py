"""Benchmark regression tracking: named workloads → trajectory points.

``scripts/bench_regress.py`` runs the named benchmarks below, appends one
**trajectory point** (per-benchmark best-of-N seconds + per-stage
breakdown, plus planner cache rates and per-engine latency quantiles) to a
JSON trajectory file (``BENCH_eval.json`` by convention), and compares the
new point against the previous one — failing when any benchmark slowed
down by more than a configurable percentage.  CI keeps the trajectory as a
workflow artifact, so perf history is queryable without a dashboard.

Workload naming mirrors the paper: ``fig1.query`` is the running example
(query (1) over the Example 2 database), ``thm6.dp`` the Theorem 6
interface DP, ``thm8.partial_eval`` / ``thm9.max_eval`` the decision
procedures, and ``cq.yannakakis`` a pure acyclic-CQ evaluation through the
planner's router.

Every benchmark factory receives the shared :class:`Planner` of the run,
so the planner section of the point reflects realistic mixed-workload
cache behaviour.  The factories also take the storage ``backend`` kind
(:mod:`repro.storage`), and each point records which backend it measured:
``bench_regress.py --backend sqlite`` times the same workloads against
SQLite-backed databases (compared only against previous sqlite points),
and :func:`compare_backends` produces the side-by-side memory-vs-sqlite
rows in ``docs/BENCHMARKS.md``.  Benchmark sessions always disable the
result cache — the gate times evaluation, not cache lookups.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..core.cq import ConjunctiveQuery
from ..planner.planner import Planner
from .runner import stage_breakdown, time_callable

#: Trajectory file schema version.
TRAJECTORY_SCHEMA = 1

#: Default regression threshold: fail when a benchmark slows by more.
DEFAULT_THRESHOLD_PCT = 25.0

#: Noise floor: timings below this are too jittery to compare.
DEFAULT_MIN_SECONDS = 1e-4

#: Latency-quantile keys copied from histogram snapshots into the point.
_LATENCY_KEYS = ("count", "p50", "p95", "p99", "max")


# ---------------------------------------------------------------------------
# Named workloads
# ---------------------------------------------------------------------------
def _bench_fig1_query(
    planner: Planner, backend: str = "memory"
) -> Callable[[], object]:
    from ..engine import Session
    from ..workloads.families import FIGURE1_QUERY_TEXT, example2_graph

    session = Session(
        example2_graph(), planner=planner, backend=backend, cache=False
    )
    return lambda: session.query(FIGURE1_QUERY_TEXT)


def _company_dp_pieces(backend: str = "memory"):
    from ..core.atoms import atom
    from ..storage import to_backend
    from ..wdpt.evaluation import evaluate
    from ..wdpt.wdpt import wdpt_from_nested
    from ..workloads.datasets import company_directory

    query = wdpt_from_nested(
        (
            [atom("works_in", "?e", "?d")],
            [
                ([atom("phone", "?e", "?p")], []),
                ([atom("reports_to", "?e", "?m")],
                 [([atom("office", "?m", "?o")], [])]),
            ],
        ),
        free_variables=["?e", "?d", "?p", "?m", "?o"],
    )
    db = to_backend(
        company_directory(n_departments=4, employees_per_department=8, seed=1),
        backend,
    )
    h = max(evaluate(query, db), key=lambda m: (len(m), repr(m)))
    return query, db, h


def _bench_thm6_dp(
    planner: Planner, backend: str = "memory"
) -> Callable[[], object]:
    from ..wdpt.eval_tractable import eval_tractable

    query, db, h = _company_dp_pieces(backend)
    return lambda: eval_tractable(query, db, h, method="auto", planner=planner)


def _bench_thm8_partial_eval(
    planner: Planner, backend: str = "memory"
) -> Callable[[], object]:
    from ..wdpt.partial_eval import partial_eval

    query, db, h = _company_dp_pieces(backend)
    partial = h.restrict(sorted(h.domain(), key=repr)[:2])
    return lambda: partial_eval(query, db, partial, method="auto", planner=planner)


def _bench_thm9_max_eval(
    planner: Planner, backend: str = "memory"
) -> Callable[[], object]:
    from ..wdpt.max_eval import max_eval

    query, db, h = _company_dp_pieces(backend)
    return lambda: max_eval(query, db, h, method="auto", planner=planner)


def _bench_cq_yannakakis(
    planner: Planner, backend: str = "memory"
) -> Callable[[], object]:
    from ..core.atoms import atom
    from ..storage import to_backend
    from ..workloads.datasets import company_directory

    q = ConjunctiveQuery(
        ("?e", "?d", "?m"),
        [
            atom("works_in", "?e", "?d"),
            atom("reports_to", "?e", "?m"),
            atom("office", "?m", "?o"),
        ],
    )
    db = to_backend(
        company_directory(n_departments=6, employees_per_department=10, seed=2),
        backend,
    )
    return lambda: planner.evaluate_cq(q, db)


def _kernel_workload(
    planner: Planner, backend: str, mode: str
) -> Callable[[], object]:
    """A path-CQ evaluation over a random graph with the kernel mode
    pinned — ``kernels.columnar`` vs ``kernels.legacy`` in one point is
    the regression gate's view of the columnar win."""
    from ..relalg.config import force_kernels
    from ..storage import to_backend
    from ..workloads.generators import path_cq, random_graph_database

    q = path_cq(5)
    db = to_backend(random_graph_database(50, 320, seed=7), backend)

    def run() -> object:
        with force_kernels(mode):
            return planner.evaluate_cq(q, db)

    return run


def _bench_kernels_columnar(
    planner: Planner, backend: str = "memory"
) -> Callable[[], object]:
    return _kernel_workload(planner, backend, "columnar")


def _bench_kernels_legacy(
    planner: Planner, backend: str = "memory"
) -> Callable[[], object]:
    return _kernel_workload(planner, backend, "legacy")


#: name → factory(planner, backend) → zero-arg timed workload.
BENCHMARKS: Dict[str, Callable[..., Callable[[], object]]] = {
    "fig1.query": _bench_fig1_query,
    "thm6.dp": _bench_thm6_dp,
    "thm8.partial_eval": _bench_thm8_partial_eval,
    "thm9.max_eval": _bench_thm9_max_eval,
    "cq.yannakakis": _bench_cq_yannakakis,
    "kernels.columnar": _bench_kernels_columnar,
    "kernels.legacy": _bench_kernels_legacy,
}


# ---------------------------------------------------------------------------
# Parallel batch scaling (repro.parallel)
# ---------------------------------------------------------------------------
def measure_parallel_scaling(
    jobs_list: Sequence[int] = (1, 2, 4),
    n_queries: int = 24,
    employees: int = 64,
    repeats: int = 2,
    executor: str = "process",
) -> Dict[str, Any]:
    """Batch the table-1 eval workload at each job count and report the
    speedup over ``jobs=1``.

    The workload is ``n_queries`` copies of the bounded-interface company
    query over ``company_directory(4, employees)`` — the same query/data
    family as ``benchmarks/bench_table1_eval.py`` — run through
    ``Session.run_batch`` with the given executor (``"process"`` by
    default: thread pools cannot beat the GIL on this pure-Python compute).
    Worker spawn cost is paid in an untimed warm-up batch per job count;
    every batch's answers are checked against the ``jobs=1`` baseline.

    Returns ``{"seconds": {jobs: s}, "speedup": {jobs: x}, ...}`` — the
    payload ``benchmarks/bench_parallel_scaling.py`` and ``python -m repro
    bench --jobs`` record into the trajectory.  Speedup expectations must
    be gated on ``effective_cpus``: a 1-CPU container cannot beat 1× no
    matter how many workers it spawns.
    """
    from ..core.atoms import atom
    from ..engine import Session
    from ..parallel.pool import effective_cpu_count
    from ..wdpt.wdpt import wdpt_from_nested
    from ..workloads.datasets import company_directory

    query = wdpt_from_nested(
        (
            [atom("works_in", "?e", "?d")],
            [
                ([atom("phone", "?e", "?p")], []),
                ([atom("reports_to", "?e", "?m")],
                 [([atom("office", "?m", "?o")], [])]),
            ],
        ),
        free_variables=["?e", "?d", "?p", "?m", "?o"],
    )
    db = company_directory(
        n_departments=4, employees_per_department=employees, seed=1
    )
    queries = [query] * n_queries
    seconds: Dict[int, float] = {}
    baseline_answers: Optional[List[Any]] = None
    answers_equal = True
    for jobs in jobs_list:
        jobs = int(jobs)
        kind = executor if jobs > 1 else "thread"
        # cache=False: the sweep times evaluation, and a shared result
        # cache would collapse the repeated identical queries to lookups.
        with Session(db, jobs=jobs, executor=kind, cache=False) as session:
            run = lambda: session.run_batch(queries, jobs=jobs, executor=kind)
            batch = run()  # warm-up: spawn workers, warm plan caches
            if baseline_answers is None:
                baseline_answers = batch.answers()
            elif batch.answers() != baseline_answers:
                answers_equal = False
            seconds[jobs] = time_callable(run, repeats=repeats)
    base = seconds[min(seconds)]
    return {
        "workload": "table1.eval",
        "executor": executor,
        "n_queries": n_queries,
        "employees": employees,
        "effective_cpus": effective_cpu_count(),
        "seconds": seconds,
        "speedup": {jobs: base / s for jobs, s in seconds.items()},
        "answers_equal": answers_equal,
    }


# ---------------------------------------------------------------------------
# Distributed shard scaling (repro.dist)
# ---------------------------------------------------------------------------
def _dist_chain_workload(tuples: int, seed: int = 1):
    """A selective three-relation chain over ``tuples`` generated facts.

    The CQ is ``q(?a) :- E1(?a, ?b), E2(?b, ?c), E3(?c, ?d)``.  The
    ``E2``/``E3`` key columns draw from a 20×-restricted window of the
    shared-variable domain, so whichever way the join tree is rooted the
    semi-join sweeps kill ~95% of every relation — the shard-local scans
    and filter passes dominate (and parallelise across shards), while
    the exchanged key sets stay inside the broadcast limit and the final
    gather ships only the few thousand surviving (projected) rows to the
    coordinator."""
    import random

    from ..core.atoms import atom
    from ..core.cq import cq

    rng = random.Random(seed)
    per = max(1, tuples // 3)
    wide, narrow = 1000, 50
    facts = []
    for _ in range(per):
        facts.append(atom("E1", rng.randrange(per), rng.randrange(wide)))
        facts.append(atom("E2", rng.randrange(narrow), rng.randrange(wide)))
        facts.append(atom("E3", rng.randrange(narrow), rng.randrange(per)))
    query = cq(
        ["?a"],
        [
            atom("E1", "?a", "?b"),
            atom("E2", "?b", "?c"),
            atom("E3", "?c", "?d"),
        ],
    )
    return facts, query


def measure_dist_scaling(
    shards_list: Sequence[int] = (1, 2, 4),
    n_queries: int = 6,
    tuples: int = 102_000,
    repeats: int = 2,
) -> Dict[str, Any]:
    """Run the selective chain workload on a sharded backend at each
    shard count and report the speedup over ``shards=1``.

    The same shape as :func:`measure_parallel_scaling`, but the axis is
    *intra-query* distribution: ``n_queries`` evaluations of one acyclic
    chain CQ over a ≥10⁵-tuple generated database, each executed as the
    distributed Yannakakis shard program
    (:func:`repro.dist.exec.run_program`) through the planner's router.
    Shard-process spawn and partition-load cost is paid in an untimed
    warm-up query per shard count; every run's answers are checked
    against an in-memory baseline.  Speedup expectations must be gated
    on ``effective_cpus`` — a 1-CPU container cannot beat 1× however
    many shards it spawns.
    """
    from ..dist.backend import ShardedBackend
    from ..parallel.pool import effective_cpu_count
    from ..storage.memory import MemoryBackend

    facts, query = _dist_chain_workload(tuples)
    planner = Planner()
    baseline_answers = planner.evaluate_cq(query, MemoryBackend(facts))

    seconds: Dict[int, float] = {}
    answers_equal = True
    for shards in shards_list:
        shards = int(shards)
        backend = ShardedBackend(facts, shards=shards)
        run = lambda: [
            planner.evaluate_cq(query, backend) for _ in range(n_queries)
        ]
        answers = planner.evaluate_cq(query, backend)  # warm-up: spawn shards
        if answers != baseline_answers:
            answers_equal = False
        seconds[shards] = time_callable(run, repeats=repeats)
        backend.shutdown()
    base = seconds[min(seconds)]
    return {
        "workload": "dist.chain",
        "n_queries": n_queries,
        "tuples": tuples,
        "effective_cpus": effective_cpu_count(),
        "seconds": seconds,
        "speedup": {shards: base / s for shards, s in seconds.items()},
        "answers_equal": answers_equal,
    }


# ---------------------------------------------------------------------------
# Estimator accuracy (q-error of the planner's cardinality estimates)
# ---------------------------------------------------------------------------
def measure_estimator_accuracy(backend: str = "memory") -> Dict[str, Any]:
    """Per-node q-error distribution of the cardinality estimator over
    the benchmark query families, via EXPLAIN ANALYZE.

    Runs the paper's query (1) and the company-directory WDPT under
    :meth:`repro.engine.Session.analyze` and pools every node's q-error
    (``max(est/actual, actual/est)``).  The summary rides along in each
    trajectory point, so estimator drift is visible in the perf history
    the same way timings are — informational, not gated.
    """
    from ..analyze import _percentile
    from ..engine import Session
    from ..workloads.families import FIGURE1_QUERY_TEXT, example2_graph

    errors: List[float] = []

    def pool(report) -> None:
        errors.extend(
            row["q_error"] for row in report.rows
            if row.get("q_error") is not None
        )

    with Session(example2_graph(), backend=backend, cache=False) as session:
        pool(session.analyze(FIGURE1_QUERY_TEXT))
    query, db, _ = _company_dp_pieces(backend)
    with Session(db, cache=False) as session:
        pool(session.analyze(query))
    errors.sort()
    return {
        "nodes": len(errors),
        "p50": _percentile(errors, 0.50),
        "p95": _percentile(errors, 0.95),
        "max": errors[-1] if errors else 0.0,
    }


# ---------------------------------------------------------------------------
# Trajectory points
# ---------------------------------------------------------------------------
def build_point(
    names: Optional[Sequence[str]] = None,
    repeats: int = 3,
    backend: str = "memory",
    profiler=None,
) -> Dict[str, Any]:
    """Run the named benchmarks (all by default) against the given
    storage backend and return one point.

    With ``profiler=`` (a *running*
    :class:`~repro.telemetry.profiler.SamplingProfiler`) each benchmark
    entry also carries a ``"profile"`` summary — sample counts, phase
    split and hottest folded stacks for that benchmark's timed window —
    and the profiler retains all samples afterwards so the caller can
    export one flamegraph for the whole point.
    """
    from ..telemetry.profiler import summarize_samples

    selected = list(names) if names else sorted(BENCHMARKS)
    unknown = [n for n in selected if n not in BENCHMARKS]
    if unknown:
        raise KeyError(
            "unknown benchmark(s) %s; available: %s"
            % (", ".join(unknown), ", ".join(sorted(BENCHMARKS)))
        )
    planner = Planner()
    benchmarks: Dict[str, Any] = {}
    profiled: List[Any] = []
    for name in selected:
        workload = BENCHMARKS[name](planner, backend)
        workload()  # warm caches: measure steady-state, not first-parse
        if profiler is not None:
            profiled.extend(profiler.drain())  # warm-up samples: keep, unattributed
        benchmarks[name] = {
            "seconds": time_callable(workload, repeats=repeats),
            "stages": stage_breakdown(workload),
        }
        if profiler is not None:
            window = profiler.drain()
            profiled.extend(window)
            benchmarks[name]["profile"] = summarize_samples(
                window, profiler.hz, top=5
            )
    if profiler is not None:
        profiler.absorb(profiled)
    return {
        "schema": TRAJECTORY_SCHEMA,
        "backend": backend,
        "meta": {
            "created": time.time(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "repeats": repeats,
        },
        "benchmarks": benchmarks,
        "planner": _planner_summary(planner),
        "estimator": measure_estimator_accuracy(backend),
    }


def compare_backends(
    names: Optional[Sequence[str]] = None,
    repeats: int = 3,
    backends: Sequence[str] = ("memory", "sqlite"),
) -> List[Dict[str, Any]]:
    """Side-by-side timings of the named benchmarks per backend.

    Returns one row per benchmark — ``{"name", "<backend>_seconds"...,
    "ratio"}`` with ``ratio`` the last backend's seconds over the
    first's — the memory-vs-sqlite table in ``docs/BENCHMARKS.md``
    (informational: backend ratios are not gated).
    """
    points = {b: build_point(names=names, repeats=repeats, backend=b)
              for b in backends}
    rows: List[Dict[str, Any]] = []
    for name in sorted(points[backends[0]]["benchmarks"]):
        row: Dict[str, Any] = {"name": name}
        for b in backends:
            row["%s_seconds" % b] = points[b]["benchmarks"][name]["seconds"]
        first = row["%s_seconds" % backends[0]]
        last = row["%s_seconds" % backends[-1]]
        row["ratio"] = last / first if first else float("nan")
        rows.append(row)
    return rows


def _planner_summary(planner: Planner) -> Dict[str, Any]:
    stats = planner.stats()
    return {
        "plan_cache_hit_rate": stats["plan_cache"]["hit_rate"],
        "parse_cache_hit_rate": stats["parse_cache"]["hit_rate"],
        "engine_selections": dict(stats["engine_selections"]),
        "kernel_selections": dict(stats.get("kernel_selections", {})),
        "engine_latency": {
            engine: {key: snap.get(key) for key in _LATENCY_KEYS}
            for engine, snap in stats["engine_latency"].items()
        },
    }


def inject_regression(point: Dict[str, Any], name: str, factor: float) -> None:
    """Scale one benchmark's timing — the CI self-test that the comparison
    actually fails uses this to fake a slowdown."""
    bench = point["benchmarks"].get(name)
    if bench is None:
        raise KeyError(
            "cannot inject into unknown benchmark %r (have: %s)"
            % (name, ", ".join(sorted(point["benchmarks"])))
        )
    bench["seconds"] *= factor
    bench["injected_factor"] = factor


# ---------------------------------------------------------------------------
# Trajectory file
# ---------------------------------------------------------------------------
def load_trajectory(path: str) -> Dict[str, Any]:
    """The trajectory document at ``path`` (a fresh one when missing)."""
    if not os.path.exists(path):
        return {"schema": TRAJECTORY_SCHEMA, "points": []}
    with open(path) as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or "points" not in doc:
        raise ValueError("%s is not a benchmark trajectory file" % path)
    return doc


def append_point(path: str, point: Dict[str, Any]) -> Dict[str, Any]:
    """Append ``point`` to the trajectory at ``path`` and rewrite it."""
    doc = load_trajectory(path)
    doc["points"].append(point)
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return doc


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------
class Regression:
    """One benchmark that slowed down beyond the threshold."""

    def __init__(self, name: str, previous: float, current: float):
        self.name = name
        self.previous = previous
        self.current = current

    @property
    def change_pct(self) -> float:
        return 100.0 * (self.current - self.previous) / self.previous

    def __repr__(self) -> str:
        return "%s: %.6fs -> %.6fs (%+.1f%%)" % (
            self.name, self.previous, self.current, self.change_pct,
        )


def compare_points(
    previous: Dict[str, Any],
    current: Dict[str, Any],
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> List[Regression]:
    """Benchmarks in ``current`` that regressed against ``previous``.

    Timings under ``min_seconds`` on either side are skipped (too close to
    timer jitter to call a >N% change a regression).
    """
    regressions: List[Regression] = []
    for name in sorted(current.get("benchmarks", {})):
        curr = current["benchmarks"][name]
        prev = previous.get("benchmarks", {}).get(name)
        if prev is None:
            continue
        prev_s = float(prev["seconds"])
        curr_s = float(curr["seconds"])
        if prev_s < min_seconds or curr_s < min_seconds:
            continue
        if 100.0 * (curr_s - prev_s) / prev_s > threshold_pct:
            regressions.append(Regression(name, prev_s, curr_s))
    return regressions
