"""Fixed-width tables for benchmark output.

The benchmarks print rows that mirror the paper's Tables 1 and 2 and the
two figures; this module keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence

from .runner import Series


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: Optional[str] = None
) -> str:
    """Render a fixed-width text table."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series_table(
    series_list: Sequence[Series],
    parameter_name: str = "n",
    cache_hit_rates: Optional[Mapping[str, float]] = None,
    stage_seconds: Optional[Mapping[str, Mapping[str, float]]] = None,
) -> str:
    """One row per parameter value, one column per series, plus a summary
    line with the log–log slope and step-growth ratio of each series.

    ``cache_hit_rates`` optionally maps series names to the planner's
    structural-cache hit rate for that run; matching series get a
    ``cache-hit`` summary row (``-`` for series without one, e.g. the
    naive backend that never consults the planner).

    ``stage_seconds`` optionally maps series names to a per-stage time
    breakdown (``{"analysis": s, "engine": s, "semijoin": s}`` from
    :func:`repro.benchharness.runner.stage_breakdown`); each stage becomes
    a ``t[stage]`` summary row, with ``-`` for series that have no
    measurement for it.
    """
    parameters = sorted({p for s in series_list for p, _ in s.points})
    headers = [parameter_name] + [s.name for s in series_list]
    lookup = [{p: sec for p, sec in s.points} for s in series_list]
    rows: List[List[object]] = []
    for p in parameters:
        row: List[object] = [_fmt_param(p)]
        for table in lookup:
            row.append(_fmt_seconds(table.get(p)))
        rows.append(row)
    summary_slope: List[object] = ["slope≈"]
    summary_ratio: List[object] = ["step×"]
    for s in series_list:
        slope = s.loglog_slope()
        ratio = s.growth_ratio()
        summary_slope.append("%.2f" % slope if slope is not None else "-")
        summary_ratio.append("%.2f" % ratio if ratio is not None else "-")
    rows.append(summary_slope)
    rows.append(summary_ratio)
    if cache_hit_rates is not None:
        hit_row: List[object] = ["cache-hit"]
        for s in series_list:
            rate = cache_hit_rates.get(s.name)
            hit_row.append("%.0f%%" % (100 * rate) if rate is not None else "-")
        rows.append(hit_row)
    if stage_seconds is not None:
        stages: List[str] = []
        for breakdown in stage_seconds.values():
            for stage in breakdown:
                if stage not in stages:
                    stages.append(stage)
        for stage in stages:
            stage_row: List[object] = ["t[%s]" % stage]
            for s in series_list:
                breakdown = stage_seconds.get(s.name)
                stage_row.append(
                    _fmt_seconds(breakdown[stage])
                    if breakdown is not None and stage in breakdown
                    else "-"
                )
            rows.append(stage_row)
    return format_table(headers, rows)


def format_planner_stats(stats: Mapping[str, object], title: str = "planner") -> str:
    """Render :meth:`repro.planner.planner.Planner.stats` (equivalently
    ``session.stats()``) as a table: cache hit rates, per-engine selection
    counts, analysis vs. engine time."""
    rows: List[List[object]] = []
    for cache_key in ("plan_cache", "parse_cache"):
        cache = stats.get(cache_key)
        if isinstance(cache, Mapping):
            rows.append(
                [
                    cache_key,
                    "%d/%d entries, %d hits, %d misses, %d evictions, %.0f%% hit rate"
                    % (
                        cache.get("size", 0),
                        cache.get("maxsize", 0),
                        cache.get("hits", 0),
                        cache.get("misses", 0),
                        cache.get("evictions", 0),
                        100 * float(cache.get("hit_rate", 0.0)),
                    ),
                ]
            )
    subtree = stats.get("subtree_profiles")
    if isinstance(subtree, Mapping):
        rows.append(
            [
                "subtree profiles",
                "%d hits, %d misses"
                % (subtree.get("hits", 0), subtree.get("misses", 0)),
            ]
        )
    selections = stats.get("engine_selections")
    if isinstance(selections, Mapping):
        rows.append(
            [
                "engine selections",
                ", ".join(
                    "%s×%d" % (engine, count)
                    for engine, count in sorted(selections.items())
                )
                or "-",
            ]
        )
    rows.append(["plans built", stats.get("plans_built", 0)])
    rows.append(["analysis time", _fmt_seconds(float(stats.get("analysis_seconds", 0.0)))])
    rows.append(["engine time", _fmt_seconds(float(stats.get("engine_seconds", 0.0)))])
    latency = stats.get("engine_latency")
    if isinstance(latency, Mapping):
        for engine in sorted(latency):
            snap = latency[engine]
            quantile_keys = [k for k in snap if k.startswith("p")]
            quantile_keys.sort(key=lambda k: float(k[1:]))
            rows.append(
                [
                    "latency[%s]" % engine,
                    "n=%d, %s, max %s"
                    % (
                        snap.get("count", 0),
                        ", ".join(
                            "%s %s" % (k, _fmt_seconds(snap[k]))
                            for k in quantile_keys
                        ),
                        _fmt_seconds(snap.get("max")),
                    ),
                ]
            )
    return format_table(["counter", "value"], rows, title=title)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return "%.6f" % value
    return str(value)


def _fmt_param(p: float) -> str:
    return "%d" % p if float(p).is_integer() else "%.3g" % p


def _fmt_seconds(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds >= 1:
        return "%.2fs" % seconds
    if seconds >= 1e-3:
        return "%.2fms" % (seconds * 1e3)
    return "%.0fµs" % (seconds * 1e6)
