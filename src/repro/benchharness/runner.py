"""Timing harness for the paper-shaped benchmarks.

pytest-benchmark measures individual operations; the *tables* of the paper
need parameter sweeps with growth-rate summaries ("does the tractable
algorithm scale polynomially while the general one blows up?").  This
module provides those sweeps:

* :func:`time_callable` — robust best-of-N wall-clock timing;
* :class:`Series` — a named sequence of (parameter, seconds) points with a
  log–log slope estimate (≈ polynomial degree) and a doubling-ratio
  estimate (exponential growth shows up as a ratio ≫ 1 under +1 steps);
* :func:`sweep` — run a factory/workload over a parameter grid.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: Span names rolled up into the coarse pipeline stages benchmarks report:
#: structural analysis vs. CQ-engine time vs. the Yannakakis semijoin
#: passes within it (semijoin time is a subset of engine time).
DEFAULT_STAGES: Sequence[Tuple[str, Tuple[str, ...]]] = (
    ("analysis", ("session.parse", "session.profile", "planner.profile",
                  "planner.explain")),
    ("engine", ("planner.evaluate_cq", "planner.satisfiable")),
    ("semijoin", ("yannakakis.scan", "yannakakis.semijoin_up",
                  "yannakakis.semijoin_down")),
)


def stage_breakdown(
    fn: Callable[[], object],
    stages: Sequence[Tuple[str, Tuple[str, ...]]] = DEFAULT_STAGES,
) -> Dict[str, float]:
    """Run ``fn()`` once under a fresh tracer and roll the recorded spans
    up into ``{stage: seconds}`` — the per-stage columns of the benchmark
    tables.  The instrumented code paths see the tracer through
    :func:`repro.telemetry.tracer.current_tracer`, so this works for any
    workload routed through the Session/planner/engines."""
    from ..telemetry.tracer import Tracer, tracing

    tracer = Tracer()
    with tracing(tracer):
        fn()
    return {
        stage: sum(tracer.total_seconds(name) for name in names)
        for stage, names in stages
    }


def time_callable(fn: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-``repeats`` wall-clock seconds for ``fn()``."""
    best = math.inf
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best


class Series:
    """A named series of (parameter, seconds) measurements."""

    def __init__(self, name: str):
        self.name = name
        self.points: List[Tuple[float, float]] = []

    def add(self, parameter: float, seconds: float) -> None:
        self.points.append((float(parameter), float(seconds)))

    def parameters(self) -> List[float]:
        return [p for p, _ in self.points]

    def seconds(self) -> List[float]:
        return [s for _, s in self.points]

    def loglog_slope(self) -> Optional[float]:
        """Least-squares slope of log(seconds) against log(parameter).

        For a polynomial-time algorithm this approximates the degree; needs
        at least two distinct positive parameters and positive timings.
        """
        pts = [(p, s) for p, s in self.points if p > 0 and s > 0]
        if len(pts) < 2 or len({p for p, _ in pts}) < 2:
            return None
        xs = [math.log(p) for p, _ in pts]
        ys = [math.log(s) for _, s in pts]
        n = len(xs)
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        var_x = sum((x - mean_x) ** 2 for x in xs)
        if var_x == 0:
            return None
        cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        return cov / var_x

    def growth_ratio(self) -> Optional[float]:
        """Geometric mean of consecutive timing ratios (per parameter
        step).  Exponential behaviour yields a ratio comfortably above 1
        that does not shrink as the parameter grows."""
        ratios = [
            b / a
            for (_, a), (_, b) in zip(self.points, self.points[1:])
            if a > 0 and b > 0
        ]
        if not ratios:
            return None
        return math.exp(sum(math.log(r) for r in ratios) / len(ratios))

    def __repr__(self) -> str:
        return "Series(%r, %d points)" % (self.name, len(self.points))


def sweep(
    name: str,
    parameters: Iterable[float],
    make_task: Callable[[float], Callable[[], object]],
    repeats: int = 3,
) -> Series:
    """Measure ``make_task(p)()`` for each parameter ``p``."""
    series = Series(name)
    for p in parameters:
        task = make_task(p)
        series.add(p, time_callable(task, repeats=repeats))
    return series
