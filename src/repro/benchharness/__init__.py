"""Measurement harness: sweeps, growth estimates, table rendering."""

from .reporting import format_planner_stats, format_series_table, format_table
from .runner import DEFAULT_STAGES, Series, stage_breakdown, sweep, time_callable

__all__ = [
    "DEFAULT_STAGES",
    "format_planner_stats",
    "format_series_table",
    "format_table",
    "Series",
    "stage_breakdown",
    "sweep",
    "time_callable",
]
