"""Measurement harness: sweeps, growth estimates, table rendering."""

from .reporting import format_planner_stats, format_series_table, format_table
from .runner import Series, sweep, time_callable

__all__ = [
    "format_planner_stats",
    "format_series_table",
    "format_table",
    "Series",
    "sweep",
    "time_callable",
]
