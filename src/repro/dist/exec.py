"""The distributed query executor: Yannakakis as a shard program.

:func:`run_program` compiles a join tree (the same ``atoms``/``links``
pair every other kernel consumes) into rounds of shard RPCs against a
:class:`~repro.dist.backend.ShardedBackend`:

1. **scan** — every shard materialises its fragment of every atom
   (tuples are hash-partitioned by fact, so each fragment is roughly
   ``1/N`` of the relation);
2. **semi-join sweeps** — the bottom-up and top-down passes run
   level-by-level; for each join-tree edge only *key sets* (distinct
   projections onto the edge's shared variables) cross shard
   boundaries, never whole relations.  Per edge the coordinator picks an
   exchange strategy: **broadcast** the global key set when it is small
   (``≤ broadcast_limit``), else a **targeted repartition** — a second
   key round collects the destination side's per-shard keys so each
   shard receives only the intersection it can possibly match;
3. **gather** — surviving fragments, projected down to the variables
   still needed above (free variables plus the interfaces to tree
   neighbours; join-tree connectedness makes this projection lossless),
   are shipped home and unioned, and the coordinator finishes with the
   ordinary columnar join/projection phase
   (:func:`repro.cqalgs.yannakakis.columnar_join_phase`) — so
   :func:`~repro.telemetry.resources.account_rows` budget accounting at
   the final merge sees the *global* row counts.

Emptiness short-circuits: a globally empty relation after the scan, or a
node emptied by the bottom-up sweep, ends the query immediately (for the
Boolean fast path, ``exists_only=True``, the up sweep alone decides).

Every RPC carries the coordinator's ``trace_id``; shard-side spans and
profiler samples come home in the standard process-worker envelope and
are grafted/absorbed here, labeled per shard.  Per-shard round-trip
times feed the ``dist.shard_ms`` histogram and total cross-shard rows
the ``dist.exchange_rows`` counter (both also summarised as obslog
events at query end).

A shard process dying mid-round surfaces as :class:`ShardFailure`
naming the dead shards; the backend owns recovery (rebuild from its
write-ahead relation log, retry once) — see
:meth:`~repro.dist.backend.ShardedBackend.dist_yannakakis`.
"""

from __future__ import annotations

import time
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, FrozenSet, List, Sequence, Set, Tuple

from ..core.mappings import Mapping
from ..cqalgs.yannakakis import (
    _edge_shared_variables,
    _levels,
    _topological,
    columnar_join_phase,
)
from ..hypergraphs.gyo import join_tree_children, join_tree_root
from ..parallel.batch import _graft_spans
from ..relalg.relation import Relation
from ..telemetry.context import current_trace_id
from ..telemetry.profiler import current_profiler
from ..telemetry.resources import account_rows
from ..telemetry.tracer import current_tracer

__all__ = ["BROADCAST_LIMIT", "ShardFailure", "run_program"]

#: Default per-edge key-set size up to which the global key set is
#: broadcast to every shard; larger edges use the targeted two-round
#: exchange.  Override per backend via ``broadcast_limit``.
BROADCAST_LIMIT = 1024


class ShardFailure(Exception):
    """One or more shard processes died mid-query.

    Carries the dead shard ids; the backend rebuilds exactly those
    partitions from its write-ahead log and retries the query once.
    """

    def __init__(self, dead: Set[int]):
        super().__init__("shard process(es) died: %s" % sorted(dead))
        self.dead = set(dead)


class _Exec:
    """Per-query coordinator state: RPC rounds + telemetry accumulation."""

    def __init__(self, backend, qid: int):
        self.backend = backend
        self.qid = qid
        self.shard_ids = list(range(backend.shards))
        self.exchange_rows = 0
        self.shard_ms: Dict[str, float] = {}
        tracer = current_tracer()
        self._tracer = tracer
        self._want_trace = bool(getattr(tracer, "enabled", False))
        profiler = current_profiler()
        if profiler is not None and not profiler.running:
            profiler = None
        self._profiler = profiler
        self._trace_id = current_trace_id()

    def round(self, op: str, payloads) -> Dict[int, Any]:
        """One RPC round: ``op`` on every shard, all in flight at once.

        ``payloads`` is either one payload for all shards or a
        ``{shard_id: payload}`` dict.  Returns ``{shard_id: value}``;
        raises :class:`ShardFailure` with the full set of shards whose
        process died during the round.
        """
        if not isinstance(payloads, dict):
            payloads = {sid: payloads for sid in self.shard_ids}
        hz = self._profiler.hz if self._profiler is not None else None
        futures: Dict[int, Any] = {}
        starts: Dict[int, float] = {}
        dead: Set[int] = set()
        for sid, payload in payloads.items():
            task = (op, payload, self._trace_id, self._want_trace, hz)
            starts[sid] = time.perf_counter()
            try:
                futures[sid] = self.backend.shard_submit(sid, task)
            except BrokenProcessPool:
                dead.add(sid)
        values: Dict[int, Any] = {}
        for sid, future in futures.items():
            try:
                envelope = future.result()
            except BrokenProcessPool:
                dead.add(sid)
                continue
            (_idx, value, _usage, _wid, _metrics, _records, spans, _stats,
             profile_dump, shard) = envelope
            elapsed_ms = (time.perf_counter() - starts[sid]) * 1000.0
            self.shard_ms[shard] = self.shard_ms.get(shard, 0.0) + elapsed_ms
            metrics = self.backend.metrics
            if metrics is not None:
                metrics.histogram(
                    "dist.shard_ms", labels={"shard": shard}
                ).observe(elapsed_ms)
            if spans and self._want_trace:
                _graft_spans(self._tracer, spans)
            if profile_dump and self._profiler is not None:
                self._profiler.absorb_dump(profile_dump)
            values[sid] = value
        if dead:
            raise ShardFailure(dead)
        return values

    def sweep(
        self,
        edges: Sequence[Tuple[int, int]],
        shared: Dict[Tuple[int, int], Tuple[Any, ...]],
        limit: int,
    ) -> Dict[int, int]:
        """One level of a semi-join sweep: for every ``(src, dst)`` edge,
        filter ``dst`` fragments by the *global* key set of ``src`` on
        the edge's shared variables.  Returns the new global size per
        destination node."""
        # Round A: collect each shard's distinct source-side keys.
        requests = [
            (tag, src, shared[(src, dst)]) for tag, (src, dst) in enumerate(edges)
        ]
        by_shard = self.round("keys", (self.qid, requests))
        global_keys: List[Set[Tuple[Any, ...]]] = [set() for _ in edges]
        for keys_by_tag in by_shard.values():
            for tag, keys in keys_by_tag.items():
                self.exchange_rows += len(keys)
                global_keys[tag].update(keys)
        # Round B (large edges only): the destination side's per-shard
        # keys, so each shard is sent just the intersection it can match.
        targeted = [
            tag for tag, keys in enumerate(global_keys)
            if len(keys) > limit and shared[edges[tag]]
        ]
        dst_keys: Dict[int, Dict[int, Set[Tuple[Any, ...]]]] = {}
        if targeted:
            requests_b = [
                (tag, edges[tag][1], shared[edges[tag]]) for tag in targeted
            ]
            by_shard_b = self.round("keys", (self.qid, requests_b))
            for sid, keys_by_tag in by_shard_b.items():
                self.exchange_rows += sum(len(k) for k in keys_by_tag.values())
                dst_keys[sid] = {
                    tag: set(keys) for tag, keys in keys_by_tag.items()
                }
        # Round C: ship the filters and apply them shard-side.
        filters_by_shard: Dict[int, Any] = {}
        for sid in self.shard_ids:
            filters = []
            for tag, (src, dst) in enumerate(edges):
                if tag in dst_keys.get(sid, {}):
                    keys = sorted(
                        global_keys[tag] & dst_keys[sid][tag], key=repr
                    )
                else:
                    keys = sorted(global_keys[tag], key=repr)
                self.exchange_rows += len(keys)
                filters.append((dst, shared[(src, dst)], keys))
            filters_by_shard[sid] = (self.qid, filters)
        sizes_by_shard = self.round("semijoin", filters_by_shard)
        new_sizes: Dict[int, int] = {}
        for sizes in sizes_by_shard.values():
            for node, size in sizes.items():
                new_sizes[node] = new_sizes.get(node, 0) + size
        return new_sizes


def _needed_variables(atoms, links, frees) -> List[Tuple[Any, ...]]:
    """Per node, the variables the coordinator still needs after gather:
    free variables plus the interfaces to the node's tree neighbours.
    Join-tree connectedness (a variable's occurrences form a subtree)
    makes projecting everything else away shard-side lossless."""
    free_set = frozenset(frees)
    atom_vars = [a.variables() for a in atoms]
    needed = [set(v & free_set) for v in atom_vars]
    for child, parent in links:
        interface = atom_vars[child] & atom_vars[parent]
        needed[child] |= interface
        needed[parent] |= interface
    return [tuple(sorted(keep, key=repr)) for keep in needed]


def run_program(
    backend,
    atoms: Sequence[Any],
    links: Sequence[Tuple[int, int]],
    frees: Sequence[Any],
    exists_only: bool = False,
):
    """Run Yannakakis over ``backend``'s shards; see the module docstring.

    Returns a ``frozenset`` of answer mappings, or a ``bool`` with
    ``exists_only`` (the Boolean fast path: the up sweep alone decides).
    Raises :class:`ShardFailure` when a shard process dies — recovery
    and the single retry live in the backend, not here.
    """
    n = len(atoms)
    tracer = current_tracer()
    ex = _Exec(backend, backend.next_qid())
    limit = int(getattr(backend, "broadcast_limit", BROADCAST_LIMIT))
    root = join_tree_root(links, n)
    children = join_tree_children(links, n)
    order = _topological(root, children)
    levels = _levels(root, children, order)
    shared = _edge_shared_variables(atoms, links)

    empty: Any = False if exists_only else frozenset()
    with tracer.span(
        "yannakakis.dist",
        atoms=n, shards=backend.shards, qid=ex.qid, boolean=exists_only,
    ) as y_span:
        # Phase 0: shard-local scans; sizes are per-fragment, summed here.
        with tracer.span("yannakakis.dist.scan") as sp:
            sizes_by_shard = ex.round("scan", (ex.qid, tuple(atoms)))
            global_sizes = [
                sum(sizes[i] for sizes in sizes_by_shard.values())
                for i in range(n)
            ]
            account_rows(max(global_sizes))
            if tracer.enabled:
                sp.set(relation_sizes=global_sizes)
        if not all(global_sizes):
            _finish(ex, answers=0, short_circuit="empty_scan")
            return empty
        # Phase 1: bottom-up semi-joins, deepest level first.  A node
        # emptied globally empties the root along the sweep — exit now.
        emptied = False
        with tracer.span("yannakakis.dist.semijoin_up") as sp:
            for level in reversed(levels):
                edges = [
                    (child, parent)
                    for parent in level
                    for child in children[parent]
                ]
                if not edges:
                    continue
                new_sizes = ex.sweep(edges, shared, limit)
                if not all(new_sizes.values()):
                    emptied = True
                    break
            if tracer.enabled:
                sp.set(exchange_rows=ex.exchange_rows)
        if emptied:
            _finish(ex, answers=0, short_circuit="semijoin_up")
            return empty
        if exists_only:
            _finish(ex, answers=1, short_circuit="exists")
            if tracer.enabled:
                y_span.set(satisfiable=True)
            return True
        # Phase 2: top-down semi-joins, root level first.
        with tracer.span("yannakakis.dist.semijoin_down") as sp:
            for level in levels:
                edges = [
                    (parent, child)
                    for parent in level
                    for child in children[parent]
                ]
                if edges:
                    ex.sweep(edges, shared, limit)
            if tracer.enabled:
                sp.set(exchange_rows=ex.exchange_rows)
        # Phase 3: gather the surviving fragments (projected down to the
        # still-needed variables) and merge on the coordinator.
        needed = _needed_variables(atoms, links, frees)
        with tracer.span("yannakakis.dist.gather") as sp:
            wanted = [(node, needed[node]) for node in range(n)]
            rows_by_shard = ex.round("gather", (ex.qid, wanted))
            relations: List[Relation] = []
            gathered = 0
            for node in range(n):
                rows: Set[Tuple[Any, ...]] = set()
                for shard_rows in rows_by_shard.values():
                    rows.update(shard_rows[node])
                gathered += len(rows)
                relations.append(Relation(needed[node], rows))
            ex.exchange_rows += gathered
            account_rows(gathered)
            if tracer.enabled:
                sp.set(relation_sizes=[len(r) for r in relations])
        result: FrozenSet[Mapping] = columnar_join_phase(
            frozenset(frees), atoms, links, relations, root, children, order,
            tracer,
        )
        _finish(ex, answers=len(result))
        if tracer.enabled:
            y_span.set(answers=len(result), exchange_rows=ex.exchange_rows)
    return result


def _finish(ex: _Exec, answers: int, short_circuit: str = "") -> None:
    """Book the query's exchange totals into metrics and the obslog."""
    backend = ex.backend
    if backend.metrics is not None:
        backend.metrics.counter("dist.exchange_rows").inc(ex.exchange_rows)
    log = backend.obslog
    if log is not None:
        log.emit(
            "dist.exchange_rows",
            qid=ex.qid,
            shards=backend.shards,
            rows=ex.exchange_rows,
            answers=answers,
            **({"short_circuit": short_circuit} if short_circuit else {}),
        )
        log.emit(
            "dist.shard_ms",
            qid=ex.qid,
            per_shard={k: round(v, 3) for k, v in sorted(ex.shard_ms.items())},
        )
