"""Shard-process side of :mod:`repro.dist`.

Each shard is one long-lived worker process (a single-worker
:class:`~repro.parallel.pool.WorkerPool`) holding its partition of the
database as a worker-local :class:`~repro.storage.memory.MemoryBackend`
— the same module-global-state idiom as the batch layer's per-worker
sessions (:mod:`repro.parallel.batch`).  The coordinator drives it with
small **RPC tasks** shipped through :meth:`WorkerPool.submit`:

``("<op>", payload, trace_id, want_trace, profile_hz)``

and every reply is the library's standard process-worker envelope
(:func:`repro.parallel.batch.pack_envelope`) stamped with this shard's
label, so spans and profiler samples recorded here are attributed per
shard when the coordinator absorbs them.

The query ops operate on the shard's **fragments** — its local columnar
relations, one per join-tree atom, kept in module state between RPCs so
the semi-join sweeps never re-ship relations:

* ``scan``      — materialise the fragments of a query's atoms;
* ``keys``      — distinct projections of fragments onto shared
  variables (the *exchange* payload: what crosses shard boundaries is
  key sets, never whole relations);
* ``semijoin``  — filter fragments by coordinator-supplied key sets;
* ``gather``    — project fragments onto their still-needed variables
  and ship the (deduplicated) rows home for the final merge.

Maintenance ops: ``ping`` (liveness + pid), ``apply`` (replay pending
write-ahead-log entries), ``load`` (replace the whole partition), and
``fail_next`` (a test hook: the next RPC kills the process abruptly,
simulating a shard crash mid-query).
"""

from __future__ import annotations

import os
from contextlib import nullcontext
from typing import Any, Dict, List, Optional, Tuple

from ..exceptions import ReproError
from ..parallel.batch import pack_envelope
from ..parallel.pool import mark_process_worker
from ..telemetry.context import trace_context
from ..telemetry.tracer import Tracer, current_tracer, tracing

__all__ = ["init_shard", "shard_call", "shard_label"]

# ---------------------------------------------------------------------------
# Worker-local shard state (module-level: one shard per process)
# ---------------------------------------------------------------------------
_shard_id: Optional[int] = None
_shard_db = None
#: The current query's per-atom fragments (columnar Relations), plus the
#: query id they belong to.  One slot: the coordinator serialises
#: distributed queries, so at most one query's state is live per shard.
_fragments: Optional[List[Any]] = None
_fragment_qid: Optional[int] = None
_die_next = False


def init_shard(shard_id: int, facts: Tuple[Any, ...]) -> None:
    """Process-pool initializer: build this shard's partition store."""
    global _shard_id, _shard_db
    from ..storage.memory import MemoryBackend

    mark_process_worker()
    _shard_id = shard_id
    _shard_db = MemoryBackend()
    _shard_db.add_many(facts)


def shard_label() -> str:
    return "s%d" % (_shard_id if _shard_id is not None else -1)


def shard_call(task: Tuple[str, Any, Optional[str], bool, Optional[int]]):
    """Run one coordinator RPC and return the standard envelope.

    The coordinator's ``trace_id`` is installed for the duration of the
    call; with ``want_trace`` a worker-local tracer records a
    ``dist.shard`` span (shipped home in the envelope and grafted into
    the coordinator's trace), and with ``profile_hz`` a worker-local
    sampling profiler runs at that rate so the samples collected during
    the call come home for per-shard attribution.
    """
    global _die_next
    if _die_next:
        os._exit(17)  # simulate a crashed shard: no cleanup, no reply
    op, payload, trace_id, want_trace, profile_hz = task
    profiler = None
    if profile_hz:
        from ..telemetry.profiler import ensure_profiler

        profiler = ensure_profiler(profile_hz)
        profiler.drain()  # keep only this call's samples for the envelope
    tracer = Tracer() if want_trace else None
    with trace_context(trace_id):
        with tracing(tracer) if tracer is not None else nullcontext():
            with current_tracer().span(
                "dist.shard", shard=shard_label(), op=op, trace_id=trace_id
            ):
                value = _dispatch(op, payload)
    span_dicts = (
        [root.to_dict() for root in tracer.roots] if tracer is not None else []
    )
    profile_dump = profiler.dump(drain=True) if profiler is not None else None
    return pack_envelope(
        0, value, None, None, [], span_dicts, None, profile_dump,
        shard=shard_label(),
    )


def _dispatch(op: str, payload: Any) -> Any:
    try:
        handler = _OPS[op]
    except KeyError:
        raise ReproError("unknown shard op %r" % (op,)) from None
    return handler(payload)


# ---------------------------------------------------------------------------
# Maintenance ops
# ---------------------------------------------------------------------------
def _op_ping(_payload: Any) -> Dict[str, Any]:
    return {"shard": _shard_id, "pid": os.getpid(), "facts": len(_shard_db)}


def _op_apply(payload) -> int:
    """Replay pending WAL entries ``[("add"|"discard", fact), ...]`` in
    order; returns the partition size afterwards."""
    for action, fact in payload:
        if action == "add":
            _shard_db.add(fact)
        else:
            _shard_db.discard(fact)
    return len(_shard_db)


def _op_load(payload) -> int:
    """Replace the whole partition (coordinator-side rebuild path)."""
    global _shard_db
    from ..storage.memory import MemoryBackend

    _shard_db = MemoryBackend()
    return _shard_db.add_many(payload)


def _op_fail_next(_payload: Any) -> bool:
    """Arm the crash hook: the *next* RPC exits the process abruptly."""
    global _die_next
    _die_next = True
    return True


# ---------------------------------------------------------------------------
# Query ops (fragments of the in-flight distributed query)
# ---------------------------------------------------------------------------
def _check_qid(qid: int) -> None:
    if _fragment_qid != qid:
        raise ReproError(
            "stale shard state: expected query %r, have %r"
            % (qid, _fragment_qid)
        )


def _op_scan(payload) -> List[int]:
    """Materialise this shard's fragment of every atom; return sizes."""
    global _fragments, _fragment_qid
    qid, atoms = payload
    from ..relalg.relation import scan

    _fragments = [scan(a, _shard_db) for a in atoms]
    _fragment_qid = qid
    return [len(rel) for rel in _fragments]


def _op_keys(payload) -> Dict[Any, List[Tuple[Any, ...]]]:
    """Distinct projections of fragments onto shared variables:
    ``[(tag, node, shared_vars), ...]`` → ``{tag: [key, ...]}``."""
    qid, requests = payload
    _check_qid(qid)
    out: Dict[Any, List[Tuple[Any, ...]]] = {}
    for tag, node, shared in requests:
        rel = _fragments[node]
        pos = [rel.index[v] for v in shared]
        out[tag] = list({tuple(row[i] for i in pos) for row in rel.rows})
    return out


def _op_semijoin(payload) -> Dict[int, int]:
    """Filter fragments by coordinator-supplied key relations:
    ``[(node, shared_vars, keys), ...]`` → ``{node: new_size}``."""
    qid, filters = payload
    _check_qid(qid)
    from ..relalg.relation import Relation, semijoin

    out: Dict[int, int] = {}
    for node, shared, keys in filters:
        _fragments[node] = semijoin(_fragments[node], Relation(shared, keys))
        out[node] = len(_fragments[node])
    return out


def _op_gather(payload) -> Dict[int, List[Tuple[Any, ...]]]:
    """Project fragments onto their still-needed variables and ship the
    deduplicated rows home: ``[(node, keep_vars), ...]`` → ``{node:
    rows}``.  Rows are aligned with the coordinator-supplied ``keep``
    order, so the union across shards needs no re-alignment.  Clears the
    query's fragment state."""
    global _fragments, _fragment_qid
    qid, wanted = payload
    _check_qid(qid)
    out: Dict[int, List[Tuple[Any, ...]]] = {}
    for node, keep in wanted:
        rel = _fragments[node]
        pos = [rel.index[v] for v in keep]
        out[node] = list({tuple(row[i] for i in pos) for row in rel.rows})
    _fragments = None
    _fragment_qid = None
    return out


_OPS = {
    "ping": _op_ping,
    "apply": _op_apply,
    "load": _op_load,
    "fail_next": _op_fail_next,
    "scan": _op_scan,
    "keys": _op_keys,
    "semijoin": _op_semijoin,
    "gather": _op_gather,
}
