""":class:`ShardedBackend` — a hash-partitioned multi-process store.

The coordinator keeps two synchronised representations of the database:

* a **mirror** — an ordinary :class:`~repro.storage.memory.MemoryBackend`
  holding every fact, which serves the whole
  :class:`~repro.storage.base.StorageBackend` protocol (``match``,
  ``facts``, the active domain, equality…) locally.  The point of the
  shards is query *compute*, not capacity: evaluation is what fans out;
* a **write-ahead relation log (WAL)** — the ordered list of every
  successful mutation (``("add"|"discard", fact)``).  It is the single
  source of truth for shard state: a shard's partition is, by
  definition, the WAL filtered to its hash slot, replayed in order.

Each of the ``shards`` partitions lives in one long-lived worker process
(a single-worker **process** :class:`~repro.parallel.pool.WorkerPool`
whose initializer loads the partition — the same pickle-safe envelope
machinery as :mod:`repro.parallel.batch`).  Facts are routed by a
deterministic hash of their leading argument (the join-key heuristic:
tuples sharing a first column co-locate), computed with
:func:`zlib.crc32` — Python's own ``hash`` is salted per process and
must never decide placement.  Shard processes spawn lazily on first
query and catch up by replaying their pending WAL suffix, so a sharded
backend that is only ever mutated costs no processes at all.

Queries arrive through :meth:`ShardedBackend.dist_yannakakis` (the
``dist`` kernel of :mod:`repro.cqalgs.yannakakis`), which delegates to
the shard program of :mod:`repro.dist.exec`.  **Robustness**: when a
shard process dies mid-query (detected as ``BrokenProcessPool`` and
surfaced as :class:`~repro.dist.exec.ShardFailure`), the dead shard's
pool is torn down, its partition rebuilt from the WAL in a fresh
process, and the in-flight query retried exactly once; a second failure
surfaces as a clean :class:`~repro.exceptions.ReproError`.

Pickling note: a ``ShardedBackend`` shipped into *another* process (for
example by :meth:`repro.engine.Session.run_batch`'s process executor)
reduces to a plain :class:`~repro.storage.memory.MemoryBackend` with the
same facts — batch workers evaluate locally instead of spawning a
nested shard fleet per worker.
"""

from __future__ import annotations

import weakref
import zlib
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from ..core.atoms import Atom, Schema
from ..core.terms import Constant
from ..exceptions import ReproError
from ..parallel.pool import WorkerPool
from ..storage.base import StorageBackend, allocate_backend_id
from ..storage.memory import MemoryBackend, _restore_memory_backend
from .exec import BROADCAST_LIMIT, ShardFailure, run_program
from .worker import init_shard, shard_call

__all__ = ["DEFAULT_SHARDS", "ShardedBackend", "shard_of"]

#: Shard count used when none is requested.
DEFAULT_SHARDS = 2


def shard_of(fact: Atom, shards: int) -> int:
    """The home shard of ``fact``: a stable hash of its leading argument
    (relation name for nullary facts).  ``zlib.crc32`` keeps placement
    identical across processes and runs — Python's builtin ``hash`` is
    per-process salted and would scatter a reloaded partition."""
    if fact.args:
        key = repr(fact.args[0].value)
    else:
        key = fact.relation
    return zlib.crc32(key.encode("utf-8")) % shards


def _close_pools(pools: List[Optional[WorkerPool]]) -> None:
    """GC-time finalizer target: must not reference the backend itself."""
    for pool in pools:
        if pool is not None:
            pool.close()
    pools[:] = []


class ShardedBackend(StorageBackend):
    """A :class:`~repro.storage.base.StorageBackend` whose query compute
    is hash-partitioned across ``shards`` long-lived worker processes.

    >>> from repro.core.atoms import atom
    >>> db = ShardedBackend([atom("E", 1, 2), atom("E", 2, 3)], shards=2)
    >>> len(db), db.data_version
    (2, 1)
    >>> sorted(db.match(atom("E", "?x", 3)))
    [E(2, 3)]
    >>> db.shutdown()
    """

    supports_dist_yannakakis = True

    def __init__(
        self,
        facts: Iterable[Atom] = (),
        schema: Optional[Schema] = None,
        shards: int = DEFAULT_SHARDS,
        broadcast_limit: int = BROADCAST_LIMIT,
    ):
        shards = int(shards)
        if shards < 1:
            raise ValueError("shards must be >= 1, got %d" % shards)
        self.shards = shards
        self.broadcast_limit = broadcast_limit
        self._mirror = MemoryBackend(schema=schema)
        #: Ordered mutation log; shard partitions replay it filtered to
        #: their hash slot.
        self._wal: List[Tuple[str, Atom]] = []
        self._pools: List[Optional[WorkerPool]] = [None] * shards
        #: Per shard, how many WAL entries its process has applied.
        self._synced: List[int] = [0] * shards
        self._qid = 0
        self._backend_id = allocate_backend_id("sharded")
        self.metrics = None
        self.obslog = None
        # Close shard processes when the backend is garbage collected;
        # the finalizer must not keep `self` alive, so it captures only
        # the (in-place mutated) pool list.
        self._finalizer = weakref.finalize(self, _close_pools, self._pools)
        self.add_many(facts)

    # ------------------------------------------------------------------
    # Identity / telemetry
    # ------------------------------------------------------------------
    @property
    def backend_id(self) -> str:
        return self._backend_id

    @property
    def data_version(self) -> int:
        return self._mirror.data_version

    def attach_telemetry(self, metrics=None, obslog=None) -> None:
        """Wire the owning session's metrics registry and obslog in, so
        shard timings, exchange volumes, and recovery events land where
        the rest of the engine's telemetry does."""
        if metrics is not None:
            self.metrics = metrics
        if obslog is not None:
            self.obslog = obslog

    # ------------------------------------------------------------------
    # Mutation: mirror first, then the WAL; shards catch up lazily
    # ------------------------------------------------------------------
    def add(self, fact: Atom) -> bool:
        if self._mirror.add(fact):
            self._wal.append(("add", fact))
            return True
        return False

    def add_many(self, facts: Iterable[Atom]) -> int:
        new = self._mirror._add_new(facts)
        self._wal.extend(("add", fact) for fact in new)
        return len(new)

    def discard(self, fact: Atom) -> bool:
        if self._mirror.discard(fact):
            self._wal.append(("discard", fact))
            return True
        return False

    # ------------------------------------------------------------------
    # Introspection: served by the coordinator's mirror
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._mirror.schema

    def facts(self, relation: Optional[str] = None) -> Tuple[Atom, ...]:
        return self._mirror.facts(relation)

    def relations(self) -> FrozenSet[str]:
        return self._mirror.relations()

    def active_domain(self) -> FrozenSet[Constant]:
        return self._mirror.active_domain()

    def match(self, pattern: Atom) -> Iterator[Atom]:
        return self._mirror.match(pattern)

    def __contains__(self, fact: Atom) -> bool:
        return fact in self._mirror

    def __len__(self) -> int:
        return len(self._mirror)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._mirror)

    def copy(self) -> "ShardedBackend":
        """An independent sharded copy (same shard count and schema, own
        processes — spawned lazily, so copying is cheap)."""
        clone = type(self)(
            schema=self._mirror._schema if self._mirror._explicit_schema else None,
            shards=self.shards,
            broadcast_limit=self.broadcast_limit,
        )
        clone.add_many(self._mirror.facts())
        clone._mirror._version = self._mirror._version
        return clone

    # A sharded backend crossing a process boundary becomes a plain
    # in-memory backend: batch workers must not spawn nested shard
    # fleets, and OS processes cannot be pickled anyway.
    def __reduce__(self):
        return (
            _restore_memory_backend,
            (
                MemoryBackend,
                tuple(self._mirror.facts()),
                self._mirror._schema if self._mirror._explicit_schema else None,
                self._mirror.data_version,
            ),
        )

    # ------------------------------------------------------------------
    # Shard lifecycle
    # ------------------------------------------------------------------
    def _partition(self, sid: int) -> Tuple[Atom, ...]:
        """Shard ``sid``'s fact set, by WAL replay (the rebuild path)."""
        facts: Dict[Atom, None] = {}
        for action, fact in self._wal:
            if shard_of(fact, self.shards) != sid:
                continue
            if action == "add":
                facts[fact] = None
            else:
                facts.pop(fact, None)
        return tuple(facts)

    def _spawn(self, sid: int) -> WorkerPool:
        """Start shard ``sid``'s process, loading its partition via the
        pool initializer; the shard is synced to the current WAL head."""
        pool = WorkerPool(
            jobs=1,
            executor="process",
            initializer=init_shard,
            initargs=(sid, self._partition(sid)),
        )
        self._pools[sid] = pool
        self._synced[sid] = len(self._wal)
        return pool

    def ensure_synced(self) -> None:
        """Make every shard process live and caught up with the WAL.

        Called at the start of every distributed query: missing shards
        spawn with a full partition load, lagging shards replay just
        their pending WAL suffix (filtered to their hash slot)."""
        futures = []
        dead = set()
        for sid in range(self.shards):
            if self._pools[sid] is None:
                self._spawn(sid)
                continue
            pending = self._wal[self._synced[sid]:]
            if not pending:
                continue
            delta = [
                entry for entry in pending
                if shard_of(entry[1], self.shards) == sid
            ]
            self._synced[sid] = len(self._wal)
            if not delta:
                continue
            task = ("apply", delta, None, False, None)
            try:
                futures.append((sid, self.shard_submit(sid, task)))
            except BrokenProcessPool:
                dead.add(sid)
        dead |= {sid for sid, future in futures if _broken(future)}
        if dead:
            raise ShardFailure(dead)

    def shard_submit(self, sid: int, task):
        """Submit one RPC task to shard ``sid``; returns its future.
        ``concurrent.futures.process.BrokenProcessPool`` propagates to
        the caller (the executor turns it into a
        :class:`~repro.dist.exec.ShardFailure`)."""
        pool = self._pools[sid]
        if pool is None:
            pool = self._spawn(sid)
        return pool.submit(shard_call, task)

    def next_qid(self) -> int:
        self._qid += 1
        return self._qid

    def shutdown(self) -> None:
        """Stop every shard process.  Idempotent; the backend stays
        usable — the next query respawns shards from the WAL."""
        for sid, pool in enumerate(self._pools):
            if pool is not None:
                pool.close()
                self._pools[sid] = None
                self._synced[sid] = 0

    # ------------------------------------------------------------------
    # The distributed query entry point (+ recovery)
    # ------------------------------------------------------------------
    def dist_yannakakis(self, atoms, links, frees, exists_only: bool = False):
        """Run the shard program for one join tree; see
        :func:`repro.dist.exec.run_program`.

        A :class:`~repro.dist.exec.ShardFailure` (shard process died)
        triggers recovery — the dead partitions are rebuilt from the WAL
        in fresh processes — and **one** retry of the whole query; a
        failure of the retry surfaces as a clean
        :class:`~repro.exceptions.ReproError`."""
        try:
            self.ensure_synced()
            return run_program(self, atoms, links, frees, exists_only)
        except ShardFailure as failure:
            self._recover(failure.dead)
            if self.metrics is not None:
                self.metrics.counter("dist.retries").inc()
            if self.obslog is not None:
                self.obslog.emit(
                    "dist.retry", dead_shards=sorted(failure.dead)
                )
            try:
                return run_program(self, atoms, links, frees, exists_only)
            except ShardFailure as again:
                raise ReproError(
                    "distributed query failed: shard(s) %s died, and the "
                    "retry after rebuilding lost shard(s) %s from the "
                    "write-ahead log failed too"
                    % (sorted(failure.dead), sorted(again.dead))
                ) from again

    def _recover(self, dead) -> None:
        """Tear down the dead shards' pools and rebuild their partitions
        from the WAL in fresh processes."""
        for sid in sorted(dead):
            pool = self._pools[sid]
            if pool is not None:
                pool.close()
                self._pools[sid] = None
            self._spawn(sid)
            if self.metrics is not None:
                self.metrics.counter(
                    "dist.shard_rebuilds", labels={"shard": "s%d" % sid}
                ).inc()
            if self.obslog is not None:
                self.obslog.emit("dist.shard_rebuilt", shard="s%d" % sid)

    # ------------------------------------------------------------------
    # Introspection/test hooks over the live shard fleet
    # ------------------------------------------------------------------
    def _call(self, sid: int, op: str, payload=None):
        """One synchronous maintenance RPC; unwraps the envelope."""
        envelope = self.shard_submit(sid, (op, payload, None, False, None)).result()
        return envelope[1]

    def shard_pids(self) -> Dict[int, int]:
        """Live shard process ids (spawning any missing shard) — the
        recovery tests SIGKILL one of these."""
        self.ensure_synced()
        return {
            sid: self._call(sid, "ping")["pid"] for sid in range(self.shards)
        }

    def fail_shard_next(self, sid: int) -> None:
        """Arm the crash hook on shard ``sid``: its next RPC dies
        abruptly (test hook for the recovery path)."""
        self.ensure_synced()
        self._call(sid, "fail_next")


def _broken(future) -> bool:
    """Did this future die with its process pool?"""
    try:
        future.result()
        return False
    except BrokenProcessPool:
        return True
