"""Distributed query execution over hash-partitioned process shards.

The ``dist`` kernel of the engine: a
:class:`~repro.dist.backend.ShardedBackend` partitions the database
across N long-lived worker processes, and
:func:`~repro.dist.exec.run_program` runs Yannakakis' algorithm as a
shard program — shard-local columnar semi-join passes, bounded key
exchange between join-tree levels (broadcast small key sets, targeted
repartition for large ones), and a final merge at the coordinator that
honours :class:`~repro.telemetry.resources.ResourceBudget` accounting.

Enable it with ``Session(backend="sharded", shards=N)``,
``REPRO_BACKEND=sharded`` (+ ``REPRO_SHARDS``), or ``--shards N`` on the
CLI's ``run``/``bench``/``serve`` commands.
"""

from .backend import DEFAULT_SHARDS, ShardedBackend, shard_of
from .exec import BROADCAST_LIMIT, ShardFailure, run_program

__all__ = [
    "BROADCAST_LIMIT",
    "DEFAULT_SHARDS",
    "ShardFailure",
    "ShardedBackend",
    "run_program",
    "shard_of",
]
