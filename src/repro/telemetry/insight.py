"""Plan-quality insight: cardinality estimates, q-error, per-query stats.

The planner's routing is purely structural (acyclicity, widths); this
module adds the *quantitative* half an operator needs to judge a plan
after the fact:

* :func:`estimate_profile` — per-atom-set cardinality estimates built
  from three ingredients, in decreasing order of rigor:

  1. **relation sizes** — ``db.match_count(atom)`` per atom (constants in
     the pattern already filter, so this is the size of the derived
     relation the join actually consumes);
  2. **AGM-style output bound** — ``∏_e |R_e|^{w_e}`` for a fractional
     edge cover ``w`` of *all* variables (Atserias–Grohe–Marx via
     :func:`repro.hypergraphs.fractional.fractional_cover_weights`).
     This is a genuine upper bound on the number of homomorphisms: each
     atom's derived relation contains every homomorphism's restriction,
     and the cover spans every variable.  Projection only shrinks
     output, so the bound also holds for counted candidates;
  3. **independence-assumption estimate** — System-R style: the product
     of relation sizes divided, per join variable, by all but the
     smallest size among the atoms sharing it (``V(R, v) ≈ |R|``).

  The reported ``estimated_rows`` is the AGM bound whenever a cover is
  available (``method="agm"``) and the independence estimate otherwise
  (``method="independence"``), so downstream consumers can rely on
  *method agm ⇒ upper bound*.

* :func:`q_error` — the standard plan-quality metric
  ``max(est/actual, actual/est)`` with both sides clamped to ≥ 1.
  Symmetric, ≥ 1, and 1.0 exactly when the estimate is right.

* :class:`QueryStatsStore` — a bounded, thread-safe, mergeable
  per-fingerprint history (latency, rows, cache hits, kernel wins,
  q-error) that persists to JSON and answers
  :meth:`~QueryStatsStore.best_kernel` so the planner can prefer the
  kernel that historically won for a query shape.

Everything here is read-side telemetry: estimates are memoized per
``(atom set, backend_id, data_version)`` by the planner, and nothing in
this module touches evaluation semantics.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..exceptions import BudgetExceededError

__all__ = [
    "CardinalityEstimate",
    "estimate_profile",
    "q_error",
    "DEFAULT_MISESTIMATE_QERROR",
    "QueryStatsStore",
]

#: q-error above which a ``misestimate.detected`` obslog event fires.
DEFAULT_MISESTIMATE_QERROR = 16.0

#: Caps for the pure-Python fractional-cover fallback (scipy absent):
#: the {0, ½, 1}-grid search is 3^edges, so stay tiny.
_FALLBACK_MAX_EDGES = 6
_FALLBACK_MAX_VERTICES = 10


class CardinalityEstimate:
    """Cardinality estimates for one atom set against one database state.

    Attributes
    ----------
    relation_rows:
        Per-atom match counts, aligned with the profile's
        ``sorted_atoms``.
    independent_rows:
        The independence-assumption join-size estimate.
    agm_rows:
        The AGM fractional-cover output bound, or ``None`` when no cover
        was computed (budget, infeasibility).
    estimated_rows:
        The headline estimate: ``agm_rows`` when available (a genuine
        upper bound), else ``independent_rows``.
    method:
        ``"agm"`` / ``"independence"`` / ``"trivial"`` (no atoms).
    backend_id / data_version:
        The database state the counts were taken from.
    """

    __slots__ = (
        "relation_rows",
        "independent_rows",
        "agm_rows",
        "estimated_rows",
        "method",
        "backend_id",
        "data_version",
    )

    def __init__(
        self,
        relation_rows: Sequence[int],
        independent_rows: float,
        agm_rows: Optional[float],
        method: str,
        backend_id: str = "?",
        data_version: int = 0,
    ):
        self.relation_rows: Tuple[int, ...] = tuple(relation_rows)
        self.independent_rows = float(independent_rows)
        self.agm_rows = None if agm_rows is None else float(agm_rows)
        self.estimated_rows = (
            self.agm_rows if self.agm_rows is not None else self.independent_rows
        )
        self.method = method
        self.backend_id = backend_id
        self.data_version = data_version

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (obslog ``query.plan``, ``/debug/plans``)."""
        return {
            "relation_rows": list(self.relation_rows),
            "independent_rows": self.independent_rows,
            "agm_rows": self.agm_rows,
            "estimated_rows": self.estimated_rows,
            "method": self.method,
            "backend_id": self.backend_id,
            "data_version": self.data_version,
        }

    def __repr__(self) -> str:
        return "CardinalityEstimate(%s≈%.4g over %d atoms)" % (
            self.method,
            self.estimated_rows,
            len(self.relation_rows),
        )


def q_error(estimated: float, actual: float) -> float:
    """``max(est/actual, actual/est)`` with both sides clamped to ≥ 1.

    >>> q_error(100, 10)
    10.0
    >>> q_error(10, 100)
    10.0
    >>> q_error(0, 0)
    1.0
    """
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return max(est / act, act / est)


def estimate_profile(profile: Any, db: Any) -> CardinalityEstimate:
    """Estimate the (pre-projection) output size of ``profile``'s atom
    set over ``db``.

    ``profile`` needs ``sorted_atoms`` and ``hypergraph`` (any
    :class:`~repro.planner.profile.StructuralProfile` works); ``db`` is a
    :class:`~repro.storage.base.StorageBackend`.
    """
    atoms = tuple(profile.sorted_atoms)
    backend_id = getattr(db, "backend_id", "?")
    data_version = int(getattr(db, "data_version", 0))
    if not atoms:
        return CardinalityEstimate((), 1.0, 1.0, "trivial", backend_id, data_version)
    counts = [int(db.match_count(a)) for a in atoms]
    independent = _independence_estimate(atoms, counts)
    agm = _agm_bound(profile, atoms, counts)
    method = "agm" if agm is not None else "independence"
    return CardinalityEstimate(counts, independent, agm, method, backend_id, data_version)


def _independence_estimate(atoms: Sequence[Any], counts: Sequence[int]) -> float:
    """System-R style: product of sizes, divided per shared variable by
    all but the smallest size among the atoms containing it."""
    est = 1.0
    for c in counts:
        est *= c
    if est <= 0:
        return 0.0
    occurrences: Dict[Any, List[int]] = {}
    for a, c in zip(atoms, counts):
        for v in a.variables():
            occurrences.setdefault(v, []).append(c)
    for sizes in occurrences.values():
        if len(sizes) < 2:
            continue
        for c in sorted(sizes)[1:]:
            est /= max(c, 1)
    return est


def _agm_bound(
    profile: Any, atoms: Sequence[Any], counts: Sequence[int]
) -> Optional[float]:
    """``∏_e |R_e|^{w_e}`` for an optimal fractional cover of all
    variables, or ``None`` when no cover is available within budget."""
    from ..hypergraphs.fractional import _linprog, fractional_cover_weights

    try:
        H = profile.hypergraph
    except Exception:
        return None
    if not H.edges:
        # No variables anywhere: the join is a pure existence check.
        return 1.0 if all(c > 0 for c in counts) else 0.0
    if _linprog is None and (
        len(H.edges) > _FALLBACK_MAX_EDGES
        or len(H.vertices) > _FALLBACK_MAX_VERTICES
    ):
        return None
    # Several atoms can share one variable-set edge (e.g. R(x,y), S(x,y)):
    # covering with the smallest of them keeps the bound valid and tight.
    edge_counts: Dict[Any, int] = {}
    for a, c in zip(atoms, counts):
        edge = frozenset(a.variables())
        if not edge:
            if c <= 0:
                return 0.0  # an unmatched ground atom empties the output
            continue
        previous = edge_counts.get(edge)
        edge_counts[edge] = c if previous is None else min(previous, c)
    try:
        value, weights = fractional_cover_weights(H, H.vertices)
    except (BudgetExceededError, RuntimeError):
        return None
    if value == float("inf") or not weights:
        return None
    bound = 1.0
    for edge, weight in weights.items():
        size = edge_counts.get(edge)
        if size is None:  # pragma: no cover - edges always come from atoms
            return None
        bound *= float(size) ** weight
    return bound


# ---------------------------------------------------------------------------
# Per-fingerprint statistics store
# ---------------------------------------------------------------------------

#: Schema stamp of :meth:`QueryStatsStore.dump` / persisted JSON files.
STATS_SCHEMA = 1

#: Executions of a kernel required before :meth:`QueryStatsStore.best_kernel`
#: trusts its mean latency.
MIN_KERNEL_SAMPLES = 3


class QueryStatsStore:
    """Bounded, thread-safe, mergeable per-query-shape statistics.

    Keys are query ids (the first 16 chars of a structural fingerprint,
    as stamped on obslog events); values accumulate execution history:
    latency, rows, cache hits, per-kernel wins, q-error.  The store is
    LRU-bounded like :class:`~repro.planner.cache.PlanCache`, merges like
    ``MetricsRegistry.dump``/``merge_dump`` (process workers ship their
    local store back inside the batch envelope), and round-trips through
    JSON for persistence across sessions.
    """

    def __init__(self, maxsize: int = 512):
        if maxsize < 1:
            raise ValueError("stats store size must be positive, got %d" % maxsize)
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._data: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()

    @staticmethod
    def _fresh_entry() -> Dict[str, Any]:
        return {
            "executions": 0,
            "wall_seconds": 0.0,
            "max_wall_seconds": 0.0,
            "last_wall_seconds": 0.0,
            "rows": 0,
            "last_rows": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "engines": {},
            "kernels": {},
            "q_error": {"count": 0, "total": 0.0, "max": 0.0, "last": 0.0},
        }

    def record(
        self,
        query_id: str,
        wall_seconds: float = 0.0,
        rows: int = 0,
        engine: Optional[str] = None,
        kernel: Optional[str] = None,
        cache_hit: Optional[bool] = None,
        max_q_error: Optional[float] = None,
    ) -> None:
        """Fold one execution of ``query_id`` into the store."""
        with self._lock:
            entry = self._data.get(query_id)
            if entry is None:
                entry = self._fresh_entry()
            self._data[query_id] = entry
            self._data.move_to_end(query_id)
            entry["executions"] += 1
            entry["wall_seconds"] += float(wall_seconds)
            entry["max_wall_seconds"] = max(
                entry["max_wall_seconds"], float(wall_seconds)
            )
            entry["last_wall_seconds"] = float(wall_seconds)
            entry["rows"] += int(rows)
            entry["last_rows"] = int(rows)
            if cache_hit is True:
                entry["cache_hits"] += 1
            elif cache_hit is False:
                entry["cache_misses"] += 1
            if engine is not None:
                entry["engines"][engine] = entry["engines"].get(engine, 0) + 1
            if kernel is not None:
                k = entry["kernels"].setdefault(
                    kernel, {"count": 0, "wall_seconds": 0.0}
                )
                k["count"] += 1
                k["wall_seconds"] += float(wall_seconds)
            if max_q_error is not None:
                q = entry["q_error"]
                q["count"] += 1
                q["total"] += float(max_q_error)
                q["max"] = max(q["max"], float(max_q_error))
                q["last"] = float(max_q_error)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    # ------------------------------------------------------------------
    # Planner feedback
    # ------------------------------------------------------------------
    def best_kernel(self, query_id: str) -> Optional[str]:
        """The kernel with the lowest mean latency for ``query_id`` among
        kernels with ≥ ``MIN_KERNEL_SAMPLES`` executions, or ``None``
        when history is too thin to prefer one."""
        with self._lock:
            entry = self._data.get(query_id)
            if entry is None:
                return None
            seasoned = {
                kernel: k["wall_seconds"] / k["count"]
                for kernel, k in entry["kernels"].items()
                if k["count"] >= MIN_KERNEL_SAMPLES
            }
        if not seasoned:
            return None
        return min(seasoned, key=lambda kernel: (seasoned[kernel], kernel))

    # ------------------------------------------------------------------
    # Introspection / merge / persistence
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    def snapshot(self, query_id: str) -> Optional[Dict[str, Any]]:
        """A deep copy of one entry, or ``None``."""
        with self._lock:
            entry = self._data.get(query_id)
            return json.loads(json.dumps(entry)) if entry is not None else None

    def dump(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of the whole store."""
        with self._lock:
            queries = json.loads(json.dumps(dict(self._data)))
        return {"schema": STATS_SCHEMA, "queries": queries}

    def merge_dump(self, dump: Dict[str, Any]) -> None:
        """Fold another store's :meth:`dump` into this one (process
        workers ship theirs back through the batch envelope)."""
        if dump.get("schema") != STATS_SCHEMA:
            raise ValueError(
                "cannot merge stats dump with schema %r (expected %d)"
                % (dump.get("schema"), STATS_SCHEMA)
            )
        for query_id, other in dump.get("queries", {}).items():
            with self._lock:
                entry = self._data.get(query_id)
                if entry is None:
                    entry = self._fresh_entry()
                self._data[query_id] = entry
                self._data.move_to_end(query_id)
                entry["executions"] += other.get("executions", 0)
                entry["wall_seconds"] += other.get("wall_seconds", 0.0)
                entry["max_wall_seconds"] = max(
                    entry["max_wall_seconds"], other.get("max_wall_seconds", 0.0)
                )
                entry["last_wall_seconds"] = other.get(
                    "last_wall_seconds", entry["last_wall_seconds"]
                )
                entry["rows"] += other.get("rows", 0)
                entry["last_rows"] = other.get("last_rows", entry["last_rows"])
                entry["cache_hits"] += other.get("cache_hits", 0)
                entry["cache_misses"] += other.get("cache_misses", 0)
                for engine, count in other.get("engines", {}).items():
                    entry["engines"][engine] = entry["engines"].get(engine, 0) + count
                for kernel, k in other.get("kernels", {}).items():
                    mine = entry["kernels"].setdefault(
                        kernel, {"count": 0, "wall_seconds": 0.0}
                    )
                    mine["count"] += k.get("count", 0)
                    mine["wall_seconds"] += k.get("wall_seconds", 0.0)
                theirs = other.get("q_error")
                if theirs:
                    q = entry["q_error"]
                    q["count"] += theirs.get("count", 0)
                    q["total"] += theirs.get("total", 0.0)
                    q["max"] = max(q["max"], theirs.get("max", 0.0))
                    q["last"] = theirs.get("last", q["last"])
                while len(self._data) > self.maxsize:
                    self._data.popitem(last=False)

    def save(self, path: str) -> None:
        """Persist the store as JSON at ``path``."""
        with open(path, "w") as handle:
            json.dump(self.dump(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str, maxsize: int = 512) -> "QueryStatsStore":
        """A store rebuilt from a :meth:`save`'d JSON file."""
        with open(path) as handle:
            dump = json.load(handle)
        store = cls(maxsize=maxsize)
        store.merge_dump(dump)
        return store

    def __repr__(self) -> str:
        return "QueryStatsStore(%d/%d query shapes)" % (len(self._data), self.maxsize)
