"""Execution tracing + metrics for the query path.

* :mod:`repro.telemetry.tracer` — hierarchical spans, a null tracer as the
  zero-cost disabled default, :func:`tracing` to turn recording on;
* :mod:`repro.telemetry.metrics` — counters / gauges / histograms behind a
  :class:`MetricsRegistry` (the planner's instrumentation store);
* :mod:`repro.telemetry.export` — dict/JSON, Chrome ``chrome://tracing``
  trace-event, and fixed-width text exporters;
* :mod:`repro.telemetry.obslog` — the structured JSON-lines query log with
  stable query IDs and slow-query EXPLAIN ANALYZE capture;
* :mod:`repro.telemetry.resources` — per-query resource accounting and
  soft/hard budgets;
* :mod:`repro.telemetry.context` — the per-query ``trace_id`` correlation
  context carried across pool workers and process envelopes;
* :mod:`repro.telemetry.insight` — cardinality estimation (independence +
  AGM bounds), q-error accounting, and the per-query-shape
  :class:`QueryStatsStore`;
* :mod:`repro.telemetry.promhttp` — a stdlib ``/metrics`` + ``/healthz``
  + ``/debug/*`` endpoint serving the Prometheus text exposition and
  live plan/query/stats snapshots;
* :mod:`repro.telemetry.profiler` — the span-aware sampling wall-clock
  profiler: folded-stack / speedscope flamegraph exports, per-trace
  sample attribution, and GC health gauges.

See ``docs/OBSERVABILITY.md`` for the full tour and
:meth:`repro.engine.Session.analyze` for EXPLAIN ANALYZE built on top.
"""

from .context import (
    current_span_id,
    current_trace_id,
    ensure_trace_id,
    new_span_id,
    new_trace_id,
    set_trace_context,
    trace_context,
)
from .insight import (
    CardinalityEstimate,
    DEFAULT_MISESTIMATE_QERROR,
    QueryStatsStore,
    STATS_SCHEMA,
    estimate_profile,
    q_error,
)
from .metrics import (
    Counter,
    DEFAULT_QUANTILES,
    Gauge,
    Histogram,
    MetricsRegistry,
    NodeStatsCollector,
    get_registry,
    quantile_key,
)
from .obslog import (
    OBSLOG_SCHEMA,
    QueryLog,
    QueryObservation,
    validate_obslog,
)
from .profiler import (
    DEFAULT_HZ,
    GCMonitor,
    PROFILE_SCHEMA,
    SamplingProfiler,
    current_profiler,
    ensure_profiler,
    folded_stacks,
    folded_text,
    gc_summary,
    profiler_active,
    profiling,
    span_phase,
    summarize_samples,
    to_speedscope,
    validate_folded,
    validate_speedscope,
    write_speedscope,
)
from .promhttp import PROMETHEUS_CONTENT_TYPE, MetricsServer
from .resources import (
    ResourceBudget,
    ResourceBudgetExceeded,
    ResourceMonitor,
    ResourceUsage,
    account_rows,
    account_subquery,
    current_monitor,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    set_tracer,
    trace_span,
    tracing,
)
from .export import (
    SPAN_ATTR_TYPES,
    aggregate_spans,
    chrome_trace_json,
    from_chrome_trace,
    render_stage_breakdown,
    render_trace,
    span_from_dict,
    to_chrome_trace,
    trace_to_dict,
    trace_to_json,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "current_span_id",
    "current_trace_id",
    "ensure_trace_id",
    "new_span_id",
    "new_trace_id",
    "set_trace_context",
    "trace_context",
    "CardinalityEstimate",
    "DEFAULT_MISESTIMATE_QERROR",
    "QueryStatsStore",
    "STATS_SCHEMA",
    "estimate_profile",
    "q_error",
    "Counter",
    "DEFAULT_QUANTILES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NodeStatsCollector",
    "get_registry",
    "quantile_key",
    "OBSLOG_SCHEMA",
    "QueryLog",
    "QueryObservation",
    "validate_obslog",
    "DEFAULT_HZ",
    "GCMonitor",
    "PROFILE_SCHEMA",
    "SamplingProfiler",
    "current_profiler",
    "ensure_profiler",
    "folded_stacks",
    "folded_text",
    "gc_summary",
    "profiler_active",
    "profiling",
    "span_phase",
    "summarize_samples",
    "to_speedscope",
    "validate_folded",
    "validate_speedscope",
    "write_speedscope",
    "PROMETHEUS_CONTENT_TYPE",
    "MetricsServer",
    "ResourceBudget",
    "ResourceBudgetExceeded",
    "ResourceMonitor",
    "ResourceUsage",
    "account_rows",
    "account_subquery",
    "current_monitor",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "current_tracer",
    "set_tracer",
    "trace_span",
    "tracing",
    "SPAN_ATTR_TYPES",
    "aggregate_spans",
    "chrome_trace_json",
    "from_chrome_trace",
    "render_stage_breakdown",
    "render_trace",
    "span_from_dict",
    "to_chrome_trace",
    "trace_to_dict",
    "trace_to_json",
    "validate_chrome_trace",
    "write_chrome_trace",
]
