"""Structured query-event log (JSON lines) with slow-query capture.

The operator-facing view of the query path: a :class:`QueryLog` receives
one JSON-serialisable record per lifecycle event —

* ``query.start`` — operation and query text preview;
* ``query.parse`` — the **stable query ID** (a prefix of the WDPT's
  structural fingerprint, so the same query shape gets the same ID across
  sessions and textual variants) plus parse/profile cache hits;
* ``query.plan`` — engine chosen, the relational kernel its CQ checks
  resolve to (``sql``/``columnar``/``legacy``), theorem justification,
  and the class memberships the routing was derived from (local
  treewidth, interface width, global treewidth, projection-freeness);
* ``query.complete`` — row count, wall/CPU seconds, resource usage;
* ``query.budget`` — a soft resource budget was exceeded (warning);
* ``query.error`` — the exception type and message;
* ``query.slow`` — emitted *in addition to* ``query.complete`` when the
  query ran longer than ``slow_threshold`` seconds; carries the full
  EXPLAIN ANALYZE profile (per-node static routing joined with the
  measured per-node trace) so the slow query can be diagnosed without
  re-running it — and, when a sampling profiler
  (:mod:`repro.telemetry.profiler`) is running, a ``profile_samples``
  digest of the query's hottest stacks keyed by the same ``trace_id``;
* ``log.rotated`` — a path sink reached ``max_bytes`` and was rotated
  (first record of each fresh file).

Records go to a sink (file path, file object, or callable) as JSON lines
and into a bounded in-memory ring (:meth:`QueryLog.recent`) for
programmatic access and tests.  :func:`validate_obslog` schema-checks a
log (shared with ``scripts/validate_trace.py``).

:class:`QueryObservation` is the session-side orchestrator: it installs a
recording tracer when slow-query capture needs one, runs the query under a
:class:`~repro.telemetry.resources.ResourceMonitor`, and emits the events
above.  ``Session.query``/``query_maximal``/``ask`` construct one per call
when observability is configured — and skip all of it (one ``is None``
check) when it is not.
"""

from __future__ import annotations

import io
import json
import os
import sys
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from .context import current_trace_id, ensure_trace_id, set_trace_context
from .insight import DEFAULT_MISESTIMATE_QERROR
from .resources import ResourceMonitor
from .tracer import NULL_TRACER, Tracer, current_tracer, set_tracer

#: Schema version stamped on every record.
OBSLOG_SCHEMA = 1

#: Keys every obslog record must carry.
REQUIRED_KEYS = ("event", "ts", "seq", "schema")

#: Events that must reference a query (and therefore carry ``query_id``).
_QUERY_ID_EVENTS = ("query.parse", "query.plan", "query.complete", "query.slow")

#: ``Session`` operation → engine identifier recorded in the log.
OP_ENGINES = {
    "query": "wdpt-topdown",
    "query_maximal": "wdpt-topdown-max",
    "ask": "wdpt-dp",
}

Sink = Union[None, str, io.IOBase, Callable[[Dict[str, Any]], None]]


class QueryLog:
    """A structured JSON-lines query log.

    Parameters
    ----------
    sink:
        Where records go: a file path (opened for append), a file-like
        object with ``write``, a callable receiving the record dict, or
        ``None`` (ring buffer only).
    slow_threshold:
        Wall-clock seconds above which a ``query.slow`` record with the
        full EXPLAIN ANALYZE profile is emitted; ``None`` disables
        slow-query capture (and the tracer it requires).
    ring_size:
        How many recent records :meth:`recent` retains.
    misestimate_threshold:
        Per-node q-error above which a ``misestimate.detected`` record is
        emitted alongside ``query.complete`` (needs slow-query capture's
        recording tracer for the measured side).
    max_bytes / backup_count:
        Size-based rotation for **path sinks** (a long-lived
        ``serve-metrics --log-queries`` daemon must not grow one file
        unboundedly): once the file reaches ``max_bytes``, it is renamed
        to ``<path>.1`` (existing backups shift to ``.2`` … up to
        ``backup_count``, the oldest dropped) and a fresh file starts
        with a ``log.rotated`` event as its first record.  ``max_bytes=None``
        (default) disables rotation; non-path sinks ignore it.
    """

    def __init__(
        self,
        sink: Sink = None,
        slow_threshold: Optional[float] = None,
        ring_size: int = 256,
        clock: Callable[[], float] = time.time,
        misestimate_threshold: float = DEFAULT_MISESTIMATE_QERROR,
        max_bytes: Optional[int] = None,
        backup_count: int = 3,
    ):
        self.slow_threshold = slow_threshold
        self.misestimate_threshold = misestimate_threshold
        self.max_bytes = max_bytes
        self.backup_count = max(0, int(backup_count))
        self._clock = clock
        self._seq = 0
        self._lock = threading.Lock()
        self._ring: List[Dict[str, Any]] = []
        self._ring_size = ring_size
        self._owns_handle = False
        self._write: Optional[Callable[[str], None]] = None
        self._call: Optional[Callable[[Dict[str, Any]], None]] = None
        self._path: Optional[str] = None
        self._bytes = 0
        if sink is None:
            pass
        elif callable(sink) and not hasattr(sink, "write"):
            self._call = sink
        elif hasattr(sink, "write"):
            self._write = sink.write  # type: ignore[union-attr]
        else:
            handle = open(sink, "a")  # type: ignore[arg-type]
            self._owns_handle = True
            self._handle = handle
            self._write = handle.write
            self._path = str(sink)
            try:
                self._bytes = os.path.getsize(self._path)
            except OSError:
                self._bytes = 0

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Record one event; returns the complete record.

        Events emitted from inside a :mod:`repro.parallel` pool worker are
        stamped with the worker's id as ``worker`` (``t1``/``t2``… for
        threads, ``p<pid>`` for processes), so interleaved batch logs can
        be attributed.  The pool module is looked up through
        :data:`sys.modules` rather than imported — telemetry must not pull
        the parallel layer in (the dependency points the other way).

        When a trace context is active on the emitting thread
        (:mod:`repro.telemetry.context`), the record is stamped with its
        ``trace_id`` — the correlation key that ties a query's obslog
        lines, spans, and resource accounting together across workers.
        """
        if "worker" not in fields:
            pool_module = sys.modules.get("repro.parallel.pool")
            if pool_module is not None:
                worker = pool_module.current_worker_id()
                if worker is not None:
                    fields["worker"] = worker
        if "trace_id" not in fields:
            trace_id = current_trace_id()
            if trace_id is not None:
                fields["trace_id"] = trace_id
        record: Dict[str, Any] = {
            "event": event,
            "ts": self._clock(),
            "seq": 0,  # assigned under the lock by _append
            "schema": OBSLOG_SCHEMA,
        }
        record.update(fields)
        self._append(record)
        return record

    def _append(self, record: Dict[str, Any]) -> None:
        """Sequence ``record`` and push it to the ring and the sink."""
        with self._lock:
            if (
                self._path is not None
                and self.max_bytes is not None
                and self._write is not None
                and self._bytes >= self.max_bytes
            ):
                self._rotate_locked()
            self._seq += 1
            record["seq"] = self._seq
            self._push_locked(record)

    def _push_locked(self, record: Dict[str, Any]) -> None:
        self._ring.append(record)
        if len(self._ring) > self._ring_size:
            del self._ring[: len(self._ring) - self._ring_size]
        if self._write is not None:
            line = json.dumps(record, default=repr) + "\n"
            self._write(line)
            self._bytes += len(line)
        if self._call is not None:
            self._call(record)

    def _rotate_locked(self) -> None:
        """Close the current file, shift ``<path>.N`` backups, start a
        fresh file whose first record is a ``log.rotated`` event."""
        rotated_bytes = self._bytes
        self._handle.close()
        rotated_to: Optional[str] = None
        if self.backup_count > 0:
            for n in range(self.backup_count - 1, 0, -1):
                older = "%s.%d" % (self._path, n)
                if os.path.exists(older):
                    os.replace(older, "%s.%d" % (self._path, n + 1))
            rotated_to = self._path + ".1"
            os.replace(self._path, rotated_to)
            mode = "a"
        else:
            mode = "w"  # no backups kept: truncate in place
        handle = open(self._path, mode)
        self._handle = handle
        self._write = handle.write
        self._bytes = 0
        self._seq += 1
        self._push_locked({
            "event": "log.rotated",
            "ts": self._clock(),
            "seq": self._seq,
            "schema": OBSLOG_SCHEMA,
            "rotated_to": rotated_to,
            "rotated_bytes": rotated_bytes,
            "max_bytes": self.max_bytes,
            "backup_count": self.backup_count,
        })

    def absorb(self, records: Iterable[Dict[str, Any]]) -> int:
        """Fold records shipped back from a process worker into this log.

        Each record keeps its original fields — event, timestamp,
        ``trace_id``, ``worker`` — but is re-sequenced locally (``seq`` is
        per-log, and the worker's counter means nothing here).  Returns
        how many records were absorbed.  This is how ``run_batch`` makes
        one obslog tell the whole story of a process-fanned batch.
        """
        count = 0
        for record in records:
            if not isinstance(record, dict) or "event" not in record:
                continue
            copied = dict(record)
            copied["schema"] = OBSLOG_SCHEMA
            copied.setdefault("ts", self._clock())
            self._append(copied)
            count += 1
        return count

    def recent(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """The most recent ``n`` records (all retained ones by default)."""
        with self._lock:
            records = list(self._ring)
        return records if n is None else records[-n:]

    def events(self, name: str) -> List[Dict[str, Any]]:
        """The retained records of one event type."""
        return [r for r in self.recent() if r["event"] == name]

    def bound(self, **fields: Any) -> "BoundQueryLog":
        """A view of this log that stamps ``fields`` into every record.

        The multi-tenant query service hands each tenant's session a
        ``log.bound(tenant="acme")`` view of one shared service log, so
        every lifecycle event a session emits carries its tenant without
        the engine knowing tenancy exists.  Views are cheap (no separate
        ring or sink) and nest: ``log.bound(a=1).bound(b=2)`` stamps both.
        """
        return BoundQueryLog(self, fields)

    def close(self) -> None:
        if self._owns_handle:
            self._handle.close()
            self._write = None
            self._owns_handle = False

    def __repr__(self) -> str:
        return "QueryLog(%d records, slow_threshold=%r)" % (
            self._seq, self.slow_threshold,
        )


class BoundQueryLog:
    """A :class:`QueryLog` proxy stamping fixed fields into every emit.

    Everything else — ``slow_threshold``, ``recent()``, ``absorb()``,
    rotation — delegates to the underlying log, so a bound view is a
    drop-in ``Session(obslog=...)`` argument.  Explicit per-event fields
    win over the bound ones.
    """

    __slots__ = ("_log", "_fields")

    def __init__(self, log: QueryLog, fields: Dict[str, Any]):
        self._log = log
        self._fields = dict(fields)

    @property
    def base(self) -> QueryLog:
        """The underlying shared log."""
        return self._log

    @property
    def bound_fields(self) -> Dict[str, Any]:
        return dict(self._fields)

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        merged = dict(self._fields)
        merged.update(fields)
        return self._log.emit(event, **merged)

    def bound(self, **fields: Any) -> "BoundQueryLog":
        merged = dict(self._fields)
        merged.update(fields)
        return BoundQueryLog(self._log, merged)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._log, name)

    def __repr__(self) -> str:
        return "BoundQueryLog(%r, %r)" % (self._fields, self._log)


def validate_obslog(lines: Iterable[str]) -> List[str]:
    """Schema errors for a JSON-lines query log (empty list = valid).

    Shared by ``scripts/validate_trace.py --format obslog``: an empty log
    is an error (no events usually means broken wiring), every line must
    be a JSON object carrying the required keys with the right types, and
    query-scoped events must name their stable ``query_id``.
    """
    errors: List[str] = []
    count = 0
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        count += 1
        try:
            record = json.loads(line)
        except ValueError as exc:
            errors.append("line %d: not valid JSON: %s" % (lineno, exc))
            continue
        if not isinstance(record, dict):
            errors.append("line %d: not a JSON object" % lineno)
            continue
        for key in REQUIRED_KEYS:
            if key not in record:
                errors.append("line %d: missing key %r" % (lineno, key))
        event = record.get("event")
        if not isinstance(event, str) or not event:
            errors.append("line %d: 'event' must be a non-empty string" % lineno)
            continue
        if "ts" in record and not isinstance(record["ts"], (int, float)):
            errors.append("line %d: 'ts' must be numeric" % lineno)
        if "seq" in record and not isinstance(record["seq"], int):
            errors.append("line %d: 'seq' must be an integer" % lineno)
        if event in _QUERY_ID_EVENTS:
            qid = record.get("query_id")
            if not isinstance(qid, str) or not qid:
                errors.append(
                    "line %d: %s event must carry a non-empty 'query_id'"
                    % (lineno, event)
                )
        if event == "query.slow":
            profile = record.get("profile")
            if not isinstance(profile, dict) or "nodes" not in profile:
                errors.append(
                    "line %d: query.slow must carry a 'profile' with 'nodes'"
                    % lineno
                )
            samples = record.get("profile_samples")
            if samples is not None and (
                not isinstance(samples, dict)
                or not isinstance(samples.get("samples"), int)
            ):
                errors.append(
                    "line %d: query.slow 'profile_samples' must be a dict "
                    "with an integer 'samples' count" % lineno
                )
        if event == "log.rotated" and not isinstance(
            record.get("max_bytes"), (int, float)
        ):
            errors.append(
                "line %d: log.rotated must carry numeric 'max_bytes'" % lineno
            )
    if count == 0:
        errors.append("log is empty: no events were recorded")
    return errors


class QueryObservation:
    """Observe one ``Session`` operation: events, resources, slow capture.

    Used as a context manager by the session entry points::

        obs = QueryObservation(session, "query", raw_query)
        with obs:
            ... parse; obs.parsed(p); evaluate ...
            obs.finish(p, n_rows)
        result.resources = obs.usage
    """

    def __init__(self, session, op: str, raw_query: Any):
        self.session = session
        self.op = op
        self.log: Optional[QueryLog] = session.obslog
        self.raw_query = raw_query
        self.query = None
        self.query_id: Optional[str] = None
        self.n_rows: Optional[int] = None
        self.monitor: Optional[ResourceMonitor] = None
        self.usage = None
        self.trace_id: Optional[str] = None
        self.cache_outcome: Optional[str] = None  # "hit"/"miss", set by Session
        self._plan_kernel: Optional[str] = None
        self._report = None  # memoized EXPLAIN ANALYZE (slow + misestimate)
        self._owns_trace = False
        self._tracer: Optional[Tracer] = None
        self._previous_tracer = None
        self._start = 0.0
        self._finished = False
        self._cache_baseline: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _slow_capture(self) -> bool:
        return self.log is not None and self.log.slow_threshold is not None

    def __enter__(self) -> "QueryObservation":
        # One trace id per top-level query: reuse an ambient context (a
        # batch established one) or mint and own a fresh one.
        self.trace_id, self._owns_trace = ensure_trace_id()
        # Slow-query capture needs a recorded trace to build the EXPLAIN
        # ANALYZE profile from; install a fresh tracer only if none is on.
        if self._slow_capture() and current_tracer() is NULL_TRACER:
            self._tracer = Tracer()
            self._previous_tracer = set_tracer(self._tracer)
        budget = self.session.budgets
        if budget is not None or self.session.track_resources:
            self.monitor = ResourceMonitor(budget)
            self.monitor.__enter__()
        planner = self.session.planner
        self._cache_baseline = {
            "parse_hits": planner.parses.hits,
            "parse_misses": planner.parses.misses,
            "profile_hits": planner.profiles.hits,
            "profile_misses": planner.profiles.misses,
        }
        if self.log is not None:
            preview = (
                self.raw_query
                if isinstance(self.raw_query, str)
                else repr(self.raw_query)
            )
            self.log.emit("query.start", op=self.op, query=preview[:200])
        self._start = time.perf_counter()
        started = getattr(self.session, "_query_started", None)
        if started is not None:  # the session's /debug/queries registry
            started(self)
        return self

    def parsed(self, p) -> None:
        """Called by the session once the WDPT (and its profile) exist."""
        self.query = p
        self.query_id = p.structural_fingerprint()[:16]
        if self._plan_kernel is None:
            from ..relalg.config import default_kernel

            self._plan_kernel = default_kernel(self.session.database)
        if self.log is None:
            return
        planner = self.session.planner
        baseline = self._cache_baseline
        self.log.emit(
            "query.parse",
            op=self.op,
            query_id=self.query_id,
            # Per-call deltas: did *this* query hit the parse/profile caches?
            parse_cache={
                "hits": planner.parses.hits - baseline["parse_hits"],
                "misses": planner.parses.misses - baseline["parse_misses"],
            },
            profile_cache={
                "hits": planner.profiles.hits - baseline["profile_hits"],
                "misses": planner.profiles.misses - baseline["profile_misses"],
            },
        )
        profile = planner.explain_wdpt(p)
        estimate = None
        try:
            whole_query = planner.estimate_for_profile(
                profile.tree_profile.global_profile, self.session.database
            )
            if whole_query is not None:
                estimate = whole_query.as_dict()
        except Exception:  # estimation must never break the query path
            estimate = None
        self.log.emit(
            "query.plan",
            op=self.op,
            query_id=self.query_id,
            engine=OP_ENGINES.get(self.op, self.op),
            kernel=self._plan_kernel,
            theorem=profile.eval_route(),
            estimate=estimate,
            classes={
                "local_treewidth": profile.local_treewidth,
                "interface_width": profile.interface_width,
                "global_treewidth": profile.global_treewidth,
                "global_hypertreewidth": profile.global_hypertreewidth,
                "projection_free": profile.projection_free,
            },
        )

    def finish(self, p, n_rows: int) -> None:
        """Called by the session with the parsed query and the row count."""
        if self.query is None:
            self.parsed(p)
        self.n_rows = n_rows
        self._finished = True

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._start
        if self.monitor is not None:
            # May raise ResourceBudgetExceeded (post-hoc hard limits); run
            # it first so the usage is finalised for the log records, and
            # re-enter the normal flow with the budget error as `exc`.
            self.usage = self.monitor.usage
            try:
                self.monitor.__exit__(exc_type, exc, tb)
            except Exception as budget_exc:  # noqa: BLE001 - re-raised below
                exc_type, exc = type(budget_exc), budget_exc
        try:
            self._emit_exit_events(wall, exc_type, exc)
            self._record_stats(wall, exc_type)
        finally:
            finished = getattr(self.session, "_query_finished", None)
            if finished is not None:
                finished(
                    self, wall,
                    None if exc_type is None else exc_type.__name__,
                )
            if self._tracer is not None:
                set_tracer(self._previous_tracer)
            if self._owns_trace:
                set_trace_context(None, None)
        if exc is not None and tb is None:
            raise exc  # a post-hoc hard-budget violation from the monitor
        return False

    def _record_stats(self, wall: float, exc_type) -> None:
        """Fold this execution into the session's stats store (if any)."""
        store = getattr(self.session, "stats_store", None)
        if store is None or self.query_id is None or exc_type is not None:
            return
        max_q_error = None
        if self._report is not None:
            summary = self._report.q_error_summary()
            if summary["count"]:
                max_q_error = summary["max"]
        store.record(
            self.query_id,
            wall_seconds=wall,
            rows=self.n_rows or 0,
            engine=OP_ENGINES.get(self.op, self.op),
            kernel=self._plan_kernel,
            cache_hit=(
                None if self.cache_outcome is None else self.cache_outcome == "hit"
            ),
            max_q_error=max_q_error,
        )

    # ------------------------------------------------------------------
    def _emit_exit_events(self, wall: float, exc_type, exc) -> None:
        log = self.log
        if log is None:
            return
        usage = self.usage
        if usage is not None and usage.soft_violations:
            log.emit(
                "query.budget",
                op=self.op,
                query_id=self.query_id,
                violations=list(usage.soft_violations),
            )
        if exc_type is not None:
            log.emit(
                "query.error",
                op=self.op,
                query_id=self.query_id,
                error=exc_type.__name__,
                message=str(exc),
                wall_seconds=wall,
            )
            return
        record: Dict[str, Any] = {
            "op": self.op,
            "query_id": self.query_id,
            "rows": self.n_rows,
            "wall_seconds": wall,
        }
        if usage is not None:
            record["cpu_seconds"] = usage.cpu_seconds
            record["resources"] = usage.as_dict()
        log.emit("query.complete", **record)
        threshold = log.slow_threshold
        if threshold is not None and wall >= threshold and self.query is not None:
            log.emit("query.slow", **self._slow_record(wall))
        self._emit_misestimate(log)

    def _emit_misestimate(self, log: QueryLog) -> None:
        """``misestimate.detected``: some node's q-error crossed the
        threshold.  Needs the recorded trace for the measured side, so it
        only fires in slow-capture mode (or under an ambient tracer)."""
        report = self._build_report()
        if report is None:
            return
        summary = report.q_error_summary()
        if not summary["count"] or summary["max"] <= log.misestimate_threshold:
            return
        worst = max(
            (row for row in report.rows if row.get("q_error") is not None),
            key=lambda row: row["q_error"],
        )
        log.emit(
            "misestimate.detected",
            op=self.op,
            query_id=self.query_id,
            threshold=log.misestimate_threshold,
            max_q_error=summary["max"],
            p50_q_error=summary["p50"],
            p95_q_error=summary["p95"],
            node=worst["node"],
            est_rows=worst["est_rows"],
            est_method=worst["est_method"],
            actual_rows=worst["candidates"],
        )

    def _build_report(self):
        """The EXPLAIN ANALYZE report of this run, built at most once —
        ``None`` unless a recording tracer observed the execution."""
        if self._report is not None:
            return self._report
        if self.query is None:
            return None
        tracer = self._tracer if self._tracer is not None else current_tracer()
        if not getattr(tracer, "enabled", False) or tracer is NULL_TRACER:
            return None
        from ..analyze import build_report

        planner = self.session.planner
        profile = planner.explain_wdpt(self.query)
        self._report = build_report(
            self.query, profile, tracer, planner,
            n_answers=self.n_rows, mode=self.op,
            db=self.session.database,
        )
        return self._report

    def _slow_record(self, wall: float) -> Dict[str, Any]:
        """The ``query.slow`` payload: plan + per-node EXPLAIN ANALYZE —
        plus, when a sampling profiler is running, the profile digest of
        this query's trace (hottest stacks, per-phase sample counts)
        under ``profile_samples``, so a slow query's flamegraph evidence
        lands in the same record as its plan."""
        planner = self.session.planner
        profile = planner.explain_wdpt(self.query)
        report = self._build_report()
        summary = report.q_error_summary() if report is not None else None
        record = {
            "op": self.op,
            "query_id": self.query_id,
            "threshold_seconds": self.log.slow_threshold,
            "wall_seconds": wall,
            "engine": OP_ENGINES.get(self.op, self.op),
            "theorem": profile.eval_route(),
            "q_error": summary,
            "profile": {
                "fingerprint": profile.fingerprint,
                "eval_route": profile.eval_route(),
                "nodes": report.rows if report is not None else [],
                "stages": report.stages if report is not None else {},
            },
        }
        from .profiler import current_profiler

        profiler = current_profiler()
        if profiler is not None and profiler.running:
            record["profile_samples"] = profiler.trace_summary(self.trace_id)
        return record
