"""Per-query resource accounting and budgets.

A :class:`ResourceMonitor` wraps one query execution and accounts

* wall-clock and CPU time (``time.perf_counter`` / ``time.process_time``);
* peak memory via :mod:`tracemalloc` (only when requested — starting the
  tracer is not free);
* the peak intermediate cardinality reported by the instrumented engines
  (Yannakakis relation/partial sizes, the top-down evaluator's extension
  sets, the Theorem 6 DP's interface-candidate sets) through
  :func:`account_rows`;
* the number of CQ subqueries the decision procedures issued
  (:func:`account_subquery` — each Theorem 6/8/9 satisfiability check is
  one subquery).

Budgets come in two strengths (:class:`ResourceBudget`): **soft** limits
are recorded as violations on the resulting :class:`ResourceUsage` (the
session's query log turns them into warning events); **hard** limits raise
:class:`~repro.exceptions.ResourceBudgetExceeded` — for wall time and
intermediate cardinality *in flight*, aborting a blowing-up query at the
next accounting point rather than after the fact.

The disabled path is one thread-local attribute read per accounting hook
(gated <5% alongside the null tracer in ``tests/test_resources.py``); no
monitor installed means no clock reads and no allocation.

Wired through :class:`repro.engine.Session` — pass ``budgets=`` or
``track_resources=True`` and every ``query``/``query_maximal``/``ask``
carries a ``.resources`` usage report.
"""

from __future__ import annotations

import threading
import time
import tracemalloc
from typing import Any, Dict, List, Optional

from ..exceptions import ResourceBudgetExceeded
from .context import current_trace_id

__all__ = [
    "ResourceBudget",
    "ResourceBudgetExceeded",
    "ResourceMonitor",
    "ResourceUsage",
    "account_rows",
    "account_subquery",
    "current_monitor",
    "install_monitor",
]


class ResourceBudget:
    """Soft and hard limits for one query execution.

    ``None`` disables a limit.  Soft limits are advisory (recorded, and
    logged as warnings by the query log); hard limits abort the query with
    :class:`ResourceBudgetExceeded`.
    """

    __slots__ = (
        "soft_wall_seconds", "hard_wall_seconds",
        "soft_memory_bytes", "hard_memory_bytes",
        "soft_intermediate_rows", "hard_intermediate_rows",
    )

    def __init__(
        self,
        soft_wall_seconds: Optional[float] = None,
        hard_wall_seconds: Optional[float] = None,
        soft_memory_bytes: Optional[int] = None,
        hard_memory_bytes: Optional[int] = None,
        soft_intermediate_rows: Optional[int] = None,
        hard_intermediate_rows: Optional[int] = None,
    ):
        self.soft_wall_seconds = soft_wall_seconds
        self.hard_wall_seconds = hard_wall_seconds
        self.soft_memory_bytes = soft_memory_bytes
        self.hard_memory_bytes = hard_memory_bytes
        self.soft_intermediate_rows = soft_intermediate_rows
        self.hard_intermediate_rows = hard_intermediate_rows

    @property
    def wants_memory(self) -> bool:
        return self.soft_memory_bytes is not None or self.hard_memory_bytes is not None

    def __repr__(self) -> str:
        parts = [
            "%s=%r" % (slot, getattr(self, slot))
            for slot in self.__slots__
            if getattr(self, slot) is not None
        ]
        return "ResourceBudget(%s)" % ", ".join(parts)


class ResourceUsage:
    """What one query actually consumed (see module docstring)."""

    __slots__ = (
        "wall_seconds", "cpu_seconds", "peak_memory_bytes",
        "peak_intermediate_rows", "subqueries", "soft_violations",
        "trace_id",
    )

    def __init__(self) -> None:
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.peak_memory_bytes: Optional[int] = None
        self.peak_intermediate_rows = 0
        self.subqueries = 0
        self.soft_violations: List[str] = []
        #: Trace id of the query this usage belongs to (correlates
        #: ``Result.resources`` with the obslog lines and spans).
        self.trace_id: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "peak_memory_bytes": self.peak_memory_bytes,
            "peak_intermediate_rows": self.peak_intermediate_rows,
            "subqueries": self.subqueries,
            "soft_violations": list(self.soft_violations),
            "trace_id": self.trace_id,
        }

    def __repr__(self) -> str:
        return (
            "ResourceUsage(wall=%.4fs, cpu=%.4fs, peak_rows=%d, "
            "subqueries=%d, peak_mem=%s)"
            % (self.wall_seconds, self.cpu_seconds, self.peak_intermediate_rows,
               self.subqueries, self.peak_memory_bytes)
        )


# ---------------------------------------------------------------------------
# The thread-local active monitor — the accounting hooks' lookup point
# ---------------------------------------------------------------------------
_active = threading.local()


def current_monitor() -> "Optional[ResourceMonitor]":
    """The monitor accounting hooks report into (``None`` when disabled)."""
    return getattr(_active, "monitor", None)


def install_monitor(
    monitor: "Optional[ResourceMonitor]",
) -> "Optional[ResourceMonitor]":
    """Make ``monitor`` this thread's active monitor; returns the previous
    one.  Used by :class:`repro.parallel.pool.WorkerPool` to carry the
    submitting thread's monitor into its workers, so one query's budget is
    accounted (and enforced) across every worker it fans out to."""
    previous = getattr(_active, "monitor", None)
    _active.monitor = monitor
    return previous


def account_rows(rows: int) -> None:
    """Report an intermediate relation / candidate-set cardinality.

    Called by the instrumented engines at phase boundaries (never per
    tuple).  A no-op — one thread-local read — unless a monitor is active;
    with an active monitor it updates the peak and enforces the hard
    cardinality and wall-time budgets in flight.
    """
    monitor = getattr(_active, "monitor", None)
    if monitor is not None:
        monitor.note_rows(rows)


def account_subquery(n: int = 1) -> None:
    """Report ``n`` CQ subqueries issued by a decision procedure."""
    monitor = getattr(_active, "monitor", None)
    if monitor is not None:
        monitor.note_subqueries(n)


class ResourceMonitor:
    """Context manager accounting one query execution.

    ::

        with ResourceMonitor(budget) as monitor:
            session_does_work()
        monitor.usage.peak_intermediate_rows

    Entering installs the monitor as the thread's active monitor (nesting
    restores the previous one on exit) and starts the clocks; exiting
    finalises the :class:`ResourceUsage` and applies post-hoc hard checks
    (memory — tracemalloc peaks are only meaningful at the end).
    """

    def __init__(
        self,
        budget: Optional[ResourceBudget] = None,
        trace_memory: Optional[bool] = None,
    ):
        self.budget = budget
        # Memory tracing defaults to on exactly when a memory budget exists.
        self.trace_memory = (
            budget is not None and budget.wants_memory
            if trace_memory is None
            else trace_memory
        )
        self.usage = ResourceUsage()
        self._start_wall = 0.0
        self._start_cpu = 0.0
        self._previous: Optional[ResourceMonitor] = None
        self._started_tracemalloc = False
        # One monitor may receive accounting from several pool workers at
        # once (repro.parallel propagates it across threads); the peak and
        # subquery updates are guarded so none are lost.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Accounting hooks (called via account_rows / account_subquery)
    # ------------------------------------------------------------------
    def note_rows(self, rows: int) -> None:
        usage = self.usage
        if rows > usage.peak_intermediate_rows:
            with self._lock:
                if rows > usage.peak_intermediate_rows:
                    usage.peak_intermediate_rows = rows
        budget = self.budget
        if budget is None:
            return
        hard_rows = budget.hard_intermediate_rows
        if hard_rows is not None and rows > hard_rows:
            raise ResourceBudgetExceeded(
                "intermediate-rows", hard_rows, rows,
                trace_id=usage.trace_id or current_trace_id(),
            )
        hard_wall = budget.hard_wall_seconds
        if hard_wall is not None:
            elapsed = time.perf_counter() - self._start_wall
            if elapsed > hard_wall:
                raise ResourceBudgetExceeded(
                    "wall-seconds", hard_wall, elapsed,
                    trace_id=usage.trace_id or current_trace_id(),
                )

    def note_subqueries(self, n: int) -> None:
        with self._lock:
            self.usage.subqueries += n

    # ------------------------------------------------------------------
    # Context manager
    # ------------------------------------------------------------------
    def __enter__(self) -> "ResourceMonitor":
        if self.trace_memory:
            if tracemalloc.is_tracing():
                tracemalloc.reset_peak()
            else:
                tracemalloc.start()
                self._started_tracemalloc = True
        self._previous = getattr(_active, "monitor", None)
        _active.monitor = self
        self.usage.trace_id = current_trace_id()
        self._start_cpu = time.process_time()
        self._start_wall = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        usage = self.usage
        usage.wall_seconds = time.perf_counter() - self._start_wall
        usage.cpu_seconds = time.process_time() - self._start_cpu
        _active.monitor = self._previous
        if self.trace_memory:
            _, peak = tracemalloc.get_traced_memory()
            usage.peak_memory_bytes = peak
            if self._started_tracemalloc:
                tracemalloc.stop()
        budget = self.budget
        if budget is None:
            return False
        self._note_soft(budget)
        if exc_type is None:
            # Post-hoc hard checks for the dimensions that cannot be
            # enforced mid-flight (memory) or that the query finished
            # without an accounting point to catch (wall time).
            if (
                budget.hard_wall_seconds is not None
                and usage.wall_seconds > budget.hard_wall_seconds
            ):
                raise ResourceBudgetExceeded(
                    "wall-seconds", budget.hard_wall_seconds, usage.wall_seconds,
                    trace_id=usage.trace_id or current_trace_id(),
                )
            if (
                budget.hard_memory_bytes is not None
                and usage.peak_memory_bytes is not None
                and usage.peak_memory_bytes > budget.hard_memory_bytes
            ):
                raise ResourceBudgetExceeded(
                    "memory-bytes", budget.hard_memory_bytes, usage.peak_memory_bytes,
                    trace_id=usage.trace_id or current_trace_id(),
                )
        return False

    def _note_soft(self, budget: ResourceBudget) -> None:
        usage = self.usage
        if (
            budget.soft_wall_seconds is not None
            and usage.wall_seconds > budget.soft_wall_seconds
        ):
            usage.soft_violations.append(
                "wall-seconds %.6f > soft limit %.6f"
                % (usage.wall_seconds, budget.soft_wall_seconds)
            )
        if (
            budget.soft_memory_bytes is not None
            and usage.peak_memory_bytes is not None
            and usage.peak_memory_bytes > budget.soft_memory_bytes
        ):
            usage.soft_violations.append(
                "memory-bytes %d > soft limit %d"
                % (usage.peak_memory_bytes, budget.soft_memory_bytes)
            )
        if (
            budget.soft_intermediate_rows is not None
            and usage.peak_intermediate_rows > budget.soft_intermediate_rows
        ):
            usage.soft_violations.append(
                "intermediate-rows %d > soft limit %d"
                % (usage.peak_intermediate_rows, budget.soft_intermediate_rows)
            )

    def __repr__(self) -> str:
        return "ResourceMonitor(%r)" % (self.budget,)
