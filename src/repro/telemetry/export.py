"""Trace exporters: structured dicts, Chrome trace-event JSON, text.

Three consumers of a recorded :class:`~repro.telemetry.tracer.Tracer`:

* :func:`trace_to_dict` / :func:`trace_to_json` — structured nested dicts
  (the ``--trace-out`` payload is the Chrome format below, but the dict
  form is what programmatic consumers and ``analyze()`` join against);
* :func:`to_chrome_trace` — the ``chrome://tracing`` / Perfetto
  "trace event" format (complete events, ``ph: "X"``, microsecond
  timestamps), with :func:`from_chrome_trace` reconstructing the span
  forest (round-tripped in the tests) and :func:`validate_chrome_trace`
  used by the CI smoke job's schema check;
* :func:`render_trace` — a fixed-width text tree reusing
  :func:`repro.benchharness.reporting.format_table`.

:func:`aggregate_spans` rolls the forest up into per-name totals — the
bench harness prints these as the per-stage time breakdown.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .tracer import Span, Tracer

#: Chrome trace-event keys every exported event carries.
_CHROME_REQUIRED_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")

#: Known span attributes and the JSON types they must decode to.
#: :func:`validate_chrome_trace` type-checks these when present in an
#: event's ``args`` and accepts any attribute it does not know about —
#: instrumentation is allowed to grow without breaking old validators.
SPAN_ATTR_TYPES: Dict[str, tuple] = {
    "engine": (str,),
    "kernel": (str,),
    "method": (str,),
    "kind": (str,),
    "op": (str,),
    "executor": (str,),
    "worker": (str,),
    "trace_id": (str,),
    "est_method": (str,),
    "query": (str,),
    "atoms": (int,),
    "index": (int,),
    "jobs": (int,),
    "rows": (int,),
    "est_rows": (int, float),
    "q_error": (int, float),
    "node_stats": (dict,),
    "estimate": (dict, type(None)),
}


# ---------------------------------------------------------------------------
# Structured dict / JSON
# ---------------------------------------------------------------------------
def trace_to_dict(tracer: Tracer) -> Dict[str, Any]:
    """The whole trace as nested dicts (see :meth:`Span.to_dict`)."""
    return {"spans": [root.to_dict() for root in tracer.roots]}


def trace_to_json(tracer: Tracer, indent: Optional[int] = None) -> str:
    return json.dumps(trace_to_dict(tracer), indent=indent, default=repr)


# ---------------------------------------------------------------------------
# Chrome trace-event format
# ---------------------------------------------------------------------------
def to_chrome_trace(tracer: Tracer, pid: int = 0, tid: int = 0) -> List[Dict[str, Any]]:
    """Complete ("X") trace events, one per span, microsecond units."""
    events: List[Dict[str, Any]] = []

    def emit(span: Span) -> None:
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": pid,
                "tid": tid,
                "args": {k: _jsonable(v) for k, v in span.attrs.items()},
            }
        )
        for child in span.children:
            emit(child)

    for root in tracer.roots:
        emit(root)
    return events


def chrome_trace_json(tracer: Tracer, indent: Optional[int] = None) -> str:
    return json.dumps(to_chrome_trace(tracer), indent=indent)


def write_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write the Chrome trace JSON to ``path``; returns the event count."""
    events = to_chrome_trace(tracer)
    with open(path, "w") as handle:
        json.dump(events, handle, indent=1)
    return len(events)


def span_from_dict(payload: Dict[str, Any]) -> Span:
    """Rebuild one span (and its subtree) from :meth:`Span.to_dict` output.

    The inverse of the structured-dict exporter, up to the tracer link;
    ``repro.parallel.batch`` uses it to graft spans recorded inside a
    process worker back into the parent's tracer.
    """
    span = Span(payload.get("name", "span"), payload.get("attrs") or {})
    span.start = float(payload.get("start", 0.0))
    span.end = span.start + float(payload.get("duration", 0.0))
    span.children = [span_from_dict(c) for c in payload.get("children", ())]
    return span


def from_chrome_trace(events: Iterable[Dict[str, Any]]) -> List[Span]:
    """Rebuild the span forest from complete events (inverse of
    :func:`to_chrome_trace` up to clock units and attr JSON coercion)."""
    spans: List[Tuple[float, float, Span]] = []
    for event in events:
        if event.get("ph") != "X":
            continue
        span = Span(event["name"], event.get("args") or {})
        span.start = event["ts"] / 1e6
        span.end = span.start + event.get("dur", 0.0) / 1e6
        spans.append((span.start, -(span.end - span.start), span))
    spans.sort(key=lambda item: (item[0], item[1]))
    roots: List[Span] = []
    stack: List[Span] = []
    epsilon = 1e-9
    for start, _, span in spans:
        while stack and (stack[-1].end or 0.0) < start - epsilon:
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            roots.append(span)
        stack.append(span)
    return roots


def validate_chrome_trace(payload: Any) -> List[str]:
    """Schema errors for a parsed Chrome trace (empty list = valid).

    Accepts the array form or the object form (``{"traceEvents": [...]}``);
    an empty trace is an error — the CI smoke job treats "no spans" as a
    broken instrumentation wiring, not a success.
    """
    errors: List[str] = []
    if isinstance(payload, dict):
        payload = payload.get("traceEvents")
    if not isinstance(payload, list):
        return ["top level must be a JSON array (or {'traceEvents': [...]})"]
    if not payload:
        return ["trace is empty: no events were recorded"]
    for i, event in enumerate(payload):
        if not isinstance(event, dict):
            errors.append("event %d: not an object" % i)
            continue
        for key in _CHROME_REQUIRED_KEYS:
            if key not in event:
                errors.append("event %d: missing key %r" % (i, key))
        if not isinstance(event.get("name"), str) or not event.get("name"):
            errors.append("event %d: 'name' must be a non-empty string" % i)
        if event.get("ph") not in ("X", "B", "E", "i", "M"):
            errors.append("event %d: unknown phase %r" % (i, event.get("ph")))
        for key in ("ts", "dur"):
            if key in event and not isinstance(event[key], (int, float)):
                errors.append("event %d: %r must be numeric" % (i, key))
        if isinstance(event.get("dur"), (int, float)) and event["dur"] < 0:
            errors.append("event %d: negative duration" % i)
        args = event.get("args")
        if isinstance(args, dict):
            for attr, value in args.items():
                expected = SPAN_ATTR_TYPES.get(attr)
                if expected is None:
                    continue  # unknown attributes are always accepted
                if not isinstance(value, expected) or (
                    isinstance(value, bool) and bool not in expected
                ):
                    errors.append(
                        "event %d: attr %r must be %s, got %s"
                        % (i, attr,
                           "/".join(t.__name__ for t in expected),
                           type(value).__name__)
                    )
    return errors


# ---------------------------------------------------------------------------
# Aggregation + text rendering
# ---------------------------------------------------------------------------
def aggregate_spans(tracer: Tracer) -> Dict[str, Dict[str, float]]:
    """Per-name rollup: ``{name: {"calls": n, "seconds": total}}``."""
    totals: Dict[str, Dict[str, float]] = {}
    for span in tracer.walk():
        entry = totals.setdefault(span.name, {"calls": 0, "seconds": 0.0})
        entry["calls"] += 1
        entry["seconds"] += span.duration
    return totals


def render_trace(tracer: Tracer, max_attr_chars: int = 48) -> str:
    """The span forest as an indented fixed-width table."""
    from ..benchharness.reporting import format_table

    rows: List[Sequence[object]] = []
    total = sum(root.duration for root in tracer.roots) or 1.0

    def walk(span: Span, depth: int) -> None:
        attrs = ", ".join(
            "%s=%s" % (k, _short(v)) for k, v in sorted(span.attrs.items())
        )
        if len(attrs) > max_attr_chars:
            attrs = attrs[: max_attr_chars - 1] + "…"
        rows.append(
            [
                "  " * depth + span.name,
                _fmt_seconds(span.duration),
                "%.1f%%" % (100.0 * span.duration / total),
                attrs,
            ]
        )
        for child in span.children:
            walk(child, depth + 1)

    for root in tracer.roots:
        walk(root, 0)
    return format_table(["span", "time", "% of trace", "attributes"], rows)


def render_stage_breakdown(tracer: Tracer, title: str = "per-stage time") -> str:
    """The aggregated per-stage table the benchmarks print."""
    from ..benchharness.reporting import format_table

    totals = aggregate_spans(tracer)
    rows = [
        [name, "%d" % int(entry["calls"]), _fmt_seconds(entry["seconds"])]
        for name, entry in sorted(
            totals.items(), key=lambda item: -item[1]["seconds"]
        )
    ]
    return format_table(["stage", "calls", "total time"], rows, title=title)


def _jsonable(value: Any) -> Any:
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


def _short(value: Any) -> str:
    text = str(value)
    return text if len(text) <= 20 else text[:19] + "…"


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1:
        return "%.2fs" % seconds
    if seconds >= 1e-3:
        return "%.2fms" % (seconds * 1e3)
    return "%.0fµs" % (seconds * 1e6)
