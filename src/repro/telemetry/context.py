"""Trace-correlation context: one ``trace_id`` per top-level query.

A trace id names one logical query execution end to end: every span,
obslog line, and resource-budget event it produces — on the calling
thread, on pool worker threads, and inside process workers — carries the
same id, so operators can stitch the pieces back together after the
fact (``grep trace_id=… query-log.jsonl``).

The context is a plain thread-local, mirroring
:func:`repro.telemetry.resources.current_monitor`:

* :func:`current_trace_id` / :func:`current_span_id` read it (None when
  no query is in flight),
* :func:`set_trace_context` installs it and returns the previous pair
  (the :class:`~repro.parallel.pool.WorkerPool` thread envelope uses
  this to carry the submitter's context into worker threads, exactly as
  it carries the resource monitor),
* :func:`trace_context` is the scoped form used by
  :class:`~repro.telemetry.obslog.QueryObservation`,
* :func:`new_trace_id` mints ids (uuid4, 16 hex chars — short enough to
  read, long enough not to collide within one log).

Process workers do not inherit thread-locals; :mod:`repro.parallel.batch`
ships the trace id inside each task tuple and the worker re-installs it
before evaluating (see ``_run_process_task``).

Telemetry stays dependency-light: this module imports only the standard
library and is imported by obslog, resources, and the parallel layer.
"""

from __future__ import annotations

import threading
import uuid
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

__all__ = [
    "current_trace_id",
    "current_span_id",
    "new_trace_id",
    "new_span_id",
    "set_trace_context",
    "trace_context",
    "trace_context_for_thread",
    "ensure_trace_id",
]

_context = threading.local()

# Cross-thread view of the per-thread context, keyed by thread ident.
# Thread-locals are unreadable from other threads, but the sampling
# profiler (repro.telemetry.profiler) attributes stack samples taken on
# its own daemon thread to the trace in flight on the *sampled* thread.
# set_trace_context maintains this map as a side channel: dict item
# operations are atomic under the GIL, and the map is touched once per
# query / pool task — never in evaluation hot loops.
_threads: Dict[int, Tuple[Optional[str], Optional[str]]] = {}


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    """A fresh 8-hex-char span id (scoped under a trace id)."""
    return uuid.uuid4().hex[:8]


def current_trace_id() -> Optional[str]:
    """The trace id of the query in flight on this thread, or None."""
    return getattr(_context, "trace_id", None)


def current_span_id() -> Optional[str]:
    """The active span id on this thread, or None."""
    return getattr(_context, "span_id", None)


def set_trace_context(
    trace_id: Optional[str], span_id: Optional[str] = None
) -> Tuple[Optional[str], Optional[str]]:
    """Install ``(trace_id, span_id)`` on this thread; return the previous
    pair so callers can restore it (pool envelopes, nested queries)."""
    previous = (current_trace_id(), current_span_id())
    _context.trace_id = trace_id
    _context.span_id = span_id
    ident = threading.get_ident()
    if trace_id is None and span_id is None:
        _threads.pop(ident, None)
    else:
        _threads[ident] = (trace_id, span_id)
    return previous


def trace_context_for_thread(
    ident: int,
) -> Tuple[Optional[str], Optional[str]]:
    """The ``(trace_id, span_id)`` pair installed on the thread with the
    given ident, or ``(None, None)``.  Readable from any thread — this is
    how the sampling profiler tags samples with the sampled thread's
    trace."""
    return _threads.get(ident, (None, None))


@contextmanager
def trace_context(
    trace_id: Optional[str], span_id: Optional[str] = None
) -> Iterator[Optional[str]]:
    """Scoped :func:`set_trace_context`: restore the previous pair on exit."""
    previous = set_trace_context(trace_id, span_id)
    try:
        yield trace_id
    finally:
        set_trace_context(*previous)


def ensure_trace_id() -> Tuple[str, bool]:
    """The current trace id, minting and installing one when absent.

    Returns ``(trace_id, created)`` — ``created`` tells the caller it owns
    the context and should clear it when the query finishes.
    """
    existing = current_trace_id()
    if existing is not None:
        return existing, False
    minted = new_trace_id()
    set_trace_context(minted)
    return minted, True
