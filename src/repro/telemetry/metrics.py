"""Metrics: named counters, gauges, and quantile histograms.

A :class:`MetricsRegistry` is a thread-safe bag of instruments created on
first use::

    registry = MetricsRegistry()
    registry.counter("planner.engine.yannakakis").inc()
    registry.histogram("planner.engine_seconds").observe(0.002)
    registry.snapshot()["histograms"]["planner.engine_seconds"]["p95"]

Histograms keep exact ``count``/``sum``/``max`` and a bounded reservoir of
recent observations for the p50/p95 quantile estimates, so long-running
sessions do not grow without bound.  The planner owns one registry
(migrated from its former ad-hoc counters); anything else may use the
module-level default registry via :func:`get_registry`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, Optional

#: Observations retained per histogram for quantile estimation.
DEFAULT_RESERVOIR = 2048


class Counter:
    """A monotonically increasing value (floats allowed, e.g. seconds)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0

    def __repr__(self) -> str:
        return "Counter(%r, %g)" % (self.name, self.value)


class Gauge:
    """A last-value-wins instrument."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = None

    def __repr__(self) -> str:
        return "Gauge(%r, %r)" % (self.name, self.value)


class Histogram:
    """Exact count/sum/max plus reservoir-backed p50/p95 quantiles."""

    __slots__ = ("name", "count", "sum", "max", "_values", "_lock")

    def __init__(self, name: str, reservoir: int = DEFAULT_RESERVOIR):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.max = 0.0
        self._values: Deque[float] = deque(maxlen=reservoir)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if value > self.max:
                self.max = value
            self._values.append(value)

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile (0 ≤ q ≤ 1) of the retained observations,
        by the nearest-rank method; ``None`` before any observation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1], got %r" % (q,))
        with self._lock:
            values = sorted(self._values)
        if not values:
            return None
        rank = min(len(values) - 1, max(0, int(round(q * (len(values) - 1)))))
        return values[rank]

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.sum = 0.0
            self.max = 0.0
            self._values.clear()

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
        }

    def __repr__(self) -> str:
        return "Histogram(%r, count=%d, sum=%g)" % (self.name, self.count, self.sum)


class MetricsRegistry:
    """Thread-safe, create-on-first-use collection of instruments."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(self, name: str, reservoir: int = DEFAULT_RESERVOIR) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    name, Histogram(name, reservoir=reservoir)
                )
        return instrument

    def counters_with_prefix(self, prefix: str) -> Dict[str, float]:
        """``{suffix: value}`` for every counter named ``prefix + suffix``."""
        return {
            name[len(prefix):]: c.value
            for name, c in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A JSON-friendly dump of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Zero every instrument (instruments themselves are kept)."""
        for c in self._counters.values():
            c.reset()
        for g in self._gauges.values():
            g.reset()
        for h in self._histograms.values():
            h.reset()

    def __repr__(self) -> str:
        return "MetricsRegistry(%d counters, %d gauges, %d histograms)" % (
            len(self._counters), len(self._gauges), len(self._histograms),
        )


class NodeStatsCollector:
    """Per-key numeric accumulation — the WDPT evaluators use one per run
    to build the per-tree-node rows of ``EXPLAIN ANALYZE`` (key = node id).

    Allocated only when tracing is enabled, so the disabled-path cost at
    every instrumentation site is a single ``is None`` check.
    """

    __slots__ = ("_rows",)

    def __init__(self) -> None:
        self._rows: Dict[Any, Dict[str, float]] = {}

    def add(self, key: Any, **increments: float) -> None:
        row = self._rows.setdefault(key, {})
        for name, amount in increments.items():
            row[name] = row.get(name, 0) + amount

    def rows(self) -> Dict[Any, Dict[str, float]]:
        return {key: dict(row) for key, row in self._rows.items()}

    def __repr__(self) -> str:
        return "NodeStatsCollector(%d keys)" % len(self._rows)


# ---------------------------------------------------------------------------
# Module-level default registry
# ---------------------------------------------------------------------------
_default = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (the planner uses its own)."""
    return _default
