"""Metrics: named counters, gauges, and quantile histograms.

A :class:`MetricsRegistry` is a thread-safe bag of instruments created on
first use::

    registry = MetricsRegistry()
    registry.counter("planner.engine.selected", {"engine": "yannakakis"}).inc()
    registry.histogram("planner.engine_seconds").observe(0.002)
    registry.snapshot()["histograms"]["planner.engine_seconds"]["p95"]

Instruments optionally carry **labels** (a small ``{name: value}`` dict):
the registry keys instruments by ``(name, labels)``, so one metric family
(``planner.engine.selected``) fans out into one series per label
combination — exactly the Prometheus data model, which
:meth:`MetricsRegistry.to_prometheus` renders in the text exposition
format (``# TYPE`` headers, escaped label values, summary quantiles).

Histograms keep exact ``count``/``sum``/``max`` and a bounded reservoir of
recent observations for the quantile estimates (p50/p95/p99 by default,
configurable per instrument), so long-running sessions do not grow without
bound.  The planner owns one registry; anything else may use the
module-level default registry via :func:`get_registry`.
"""

from __future__ import annotations

import re
import threading
from collections import deque
from typing import Any, Deque, Dict, Mapping, Optional, Sequence, Tuple

#: Observations retained per histogram for quantile estimation.
DEFAULT_RESERVOIR = 2048

#: Quantiles every histogram reports unless configured otherwise.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.50, 0.95, 0.99)

#: Normalised label form used as part of the registry key.
LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Optional[Mapping[str, str]]) -> LabelsKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _display_name(name: str, labels: LabelsKey) -> str:
    """The snapshot key: ``name`` or ``name{k="v",…}`` (Prometheus style)."""
    if not labels:
        return name
    return "%s{%s}" % (name, ",".join('%s="%s"' % kv for kv in labels))


def quantile_key(q: float) -> str:
    """``0.5 → "p50"``, ``0.95 → "p95"``, ``0.999 → "p99.9"``."""
    return "p%g" % (q * 100)


class Counter:
    """A monotonically increasing value (floats allowed, e.g. seconds)."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: Optional[Mapping[str, str]] = None):
        self.name = name
        self.labels: LabelsKey = _labels_key(labels)
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0

    def __repr__(self) -> str:
        return "Counter(%r, %g)" % (_display_name(self.name, self.labels), self.value)


class Gauge:
    """A last-value-wins instrument."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Optional[Mapping[str, str]] = None):
        self.name = name
        self.labels: LabelsKey = _labels_key(labels)
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = None

    def __repr__(self) -> str:
        return "Gauge(%r, %r)" % (_display_name(self.name, self.labels), self.value)


class Histogram:
    """Exact count/sum/max plus reservoir-backed quantiles.

    ``quantiles`` configures which quantiles :meth:`snapshot` (and the
    Prometheus exposition) report — p50/p95/p99 by default.
    """

    __slots__ = ("name", "labels", "count", "sum", "max", "quantiles",
                 "_values", "_lock")

    def __init__(
        self,
        name: str,
        reservoir: int = DEFAULT_RESERVOIR,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        labels: Optional[Mapping[str, str]] = None,
    ):
        self.name = name
        self.labels: LabelsKey = _labels_key(labels)
        self.count = 0
        self.sum = 0.0
        self.max = 0.0
        self.quantiles: Tuple[float, ...] = tuple(quantiles)
        self._values: Deque[float] = deque(maxlen=reservoir)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if value > self.max:
                self.max = value
            self._values.append(value)

    def merge(
        self, count: int, sum_: float, max_: float, values: Sequence[float]
    ) -> None:
        """Fold another histogram's state in: exact ``count``/``sum``/
        ``max``, plus its retained observations for the quantile reservoir
        (the merged quantiles are estimates over the union of reservoirs).
        Used by :meth:`MetricsRegistry.merge_dump`."""
        with self._lock:
            self.count += int(count)
            self.sum += float(sum_)
            if max_ > self.max:
                self.max = float(max_)
            self._values.extend(float(v) for v in values)

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile (0 ≤ q ≤ 1) of the retained observations,
        by the nearest-rank method; ``None`` before any observation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1], got %r" % (q,))
        with self._lock:
            values = sorted(self._values)
        if not values:
            return None
        rank = min(len(values) - 1, max(0, int(round(q * (len(values) - 1)))))
        return values[rank]

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.sum = 0.0
            self.max = 0.0
            self._values.clear()

    def snapshot(self) -> Dict[str, Any]:
        snap: Dict[str, Any] = {
            "count": self.count,
            "sum": self.sum,
            "max": self.max,
            "mean": self.mean,
        }
        for q in self.quantiles:
            snap[quantile_key(q)] = self.quantile(q)
        return snap

    def __repr__(self) -> str:
        return "Histogram(%r, count=%d, sum=%g)" % (
            _display_name(self.name, self.labels), self.count, self.sum,
        )


class MetricsRegistry:
    """Thread-safe, create-on-first-use collection of instruments,
    keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelsKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelsKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelsKey], Histogram] = {}
        self._lock = threading.Lock()

    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        key = (name, _labels_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(key, Counter(name, labels))
        return instrument

    def gauge(self, name: str, labels: Optional[Mapping[str, str]] = None) -> Gauge:
        key = (name, _labels_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(key, Gauge(name, labels))
        return instrument

    def histogram(
        self,
        name: str,
        reservoir: int = DEFAULT_RESERVOIR,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        key = (name, _labels_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    key,
                    Histogram(name, reservoir=reservoir, quantiles=quantiles,
                              labels=labels),
                )
        return instrument

    # ------------------------------------------------------------------
    # Cross-process merge (repro.parallel's process executor)
    # ------------------------------------------------------------------
    def dump(self) -> Dict[str, Any]:
        """A picklable, lossless-enough dump of every instrument: counter
        and gauge values, histogram count/sum/max plus the retained
        quantile reservoir.  Process-pool workers ship these back to the
        parent, which folds them in with :meth:`merge_dump`."""
        return {
            "counters": [
                (name, labels, c.value)
                for (name, labels), c in sorted(self._counters.items())
            ],
            "gauges": [
                (name, labels, g.value)
                for (name, labels), g in sorted(self._gauges.items())
            ],
            "histograms": [
                (name, labels, h.count, h.sum, h.max, list(h._values),
                 h.quantiles)
                for (name, labels), h in sorted(self._histograms.items())
            ],
        }

    def merge_dump(self, dump: Mapping[str, Any]) -> None:
        """Fold a worker registry's :meth:`dump` into this registry:
        counters add, gauges take the dumped value (last merge wins), and
        histograms merge exactly in count/sum/max with reservoir-union
        quantiles.  Merging the same dumps in the same order always yields
        the same registry state — the batch layer merges in task order, so
        batch metrics are deterministic regardless of which worker ran
        which task."""
        for name, labels, value in dump.get("counters", ()):
            self.counter(name, dict(labels)).inc(value)
        for name, labels, value in dump.get("gauges", ()):
            if value is not None:
                self.gauge(name, dict(labels)).set(value)
        for name, labels, count, sum_, max_, values, quantiles in dump.get(
            "histograms", ()
        ):
            self.histogram(
                name, quantiles=tuple(quantiles), labels=dict(labels)
            ).merge(count, sum_, max_, values)

    def counters_with_prefix(self, prefix: str) -> Dict[str, float]:
        """``{suffix: value}`` for every unlabeled counter named
        ``prefix + suffix`` (labeled families use :meth:`labeled_values`)."""
        return {
            name[len(prefix):]: c.value
            for (name, labels), c in sorted(self._counters.items())
            if labels == () and name.startswith(prefix)
        }

    def labeled_values(self, name: str, label: str) -> Dict[str, float]:
        """``{label value: counter value}`` for the counter family ``name``
        (one entry per distinct value of ``label``)."""
        out: Dict[str, float] = {}
        for (n, labels), c in sorted(self._counters.items()):
            if n != name:
                continue
            for k, v in labels:
                if k == label:
                    out[v] = out.get(v, 0.0) + c.value
        return out

    def labeled_histograms(self, name: str, label: str) -> Dict[str, Histogram]:
        """``{label value: histogram}`` for the histogram family ``name``."""
        out: Dict[str, Histogram] = {}
        for (n, labels), h in sorted(self._histograms.items()):
            if n != name:
                continue
            for k, v in labels:
                if k == label:
                    out[v] = h
        return out

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A JSON-friendly dump of every instrument (labeled instruments
        appear under ``name{k="v"}`` keys)."""
        return {
            "counters": {
                _display_name(n, ls): c.value
                for (n, ls), c in sorted(self._counters.items())
            },
            "gauges": {
                _display_name(n, ls): g.value
                for (n, ls), g in sorted(self._gauges.items())
            },
            "histograms": {
                _display_name(n, ls): h.snapshot()
                for (n, ls), h in sorted(self._histograms.items())
            },
        }

    # ------------------------------------------------------------------
    # Prometheus text exposition (format version 0.0.4)
    # ------------------------------------------------------------------
    def to_prometheus(self, namespace: str = "repro") -> str:
        """The registry in the Prometheus text exposition format.

        * counters → ``# TYPE … counter``;
        * gauges → ``# TYPE … gauge`` (unset gauges are omitted);
        * histograms → ``# TYPE … summary`` with one ``quantile``-labeled
          sample per configured quantile plus ``_sum``/``_count`` (and a
          ``_max`` gauge, which plain summaries lack).

        Metric names are sanitised to ``[a-zA-Z0-9_:]`` and prefixed with
        ``namespace_``; label values are escaped per the spec.
        """
        lines: list = []
        for name, family in _families(self._counters):
            _type_line(lines, _prom_name(namespace, name), "counter")
            for labels, c in family:
                lines.append(
                    "%s%s %s"
                    % (_prom_name(namespace, name), _prom_labels(labels),
                       _prom_value(c.value))
                )
        for name, family in _families(self._gauges):
            samples = [(labels, g) for labels, g in family if g.value is not None]
            if not samples:
                continue
            _type_line(lines, _prom_name(namespace, name), "gauge")
            for labels, g in samples:
                lines.append(
                    "%s%s %s"
                    % (_prom_name(namespace, name), _prom_labels(labels),
                       _prom_value(g.value))
                )
        for name, family in _families(self._histograms):
            metric = _prom_name(namespace, name)
            _type_line(lines, metric, "summary")
            for labels, h in family:
                for q in h.quantiles:
                    value = h.quantile(q)
                    if value is None:
                        continue
                    q_labels = labels + (("quantile", "%g" % q),)
                    lines.append(
                        "%s%s %s" % (metric, _prom_labels(q_labels), _prom_value(value))
                    )
                lines.append(
                    "%s_sum%s %s" % (metric, _prom_labels(labels), _prom_value(h.sum))
                )
                lines.append("%s_count%s %d" % (metric, _prom_labels(labels), h.count))
            _type_line(lines, metric + "_max", "gauge")
            for labels, h in family:
                lines.append(
                    "%s_max%s %s" % (metric, _prom_labels(labels), _prom_value(h.max))
                )
        return "\n".join(lines) + "\n" if lines else ""

    def reset(self) -> None:
        """Zero every instrument (instruments themselves are kept)."""
        for c in self._counters.values():
            c.reset()
        for g in self._gauges.values():
            g.reset()
        for h in self._histograms.values():
            h.reset()

    def __repr__(self) -> str:
        return "MetricsRegistry(%d counters, %d gauges, %d histograms)" % (
            len(self._counters), len(self._gauges), len(self._histograms),
        )


def _families(store: Dict[Tuple[str, LabelsKey], Any]):
    """``(name, [(labels, instrument), …])`` per metric family, sorted."""
    grouped: Dict[str, list] = {}
    for (name, labels), instrument in sorted(store.items()):
        grouped.setdefault(name, []).append((labels, instrument))
    return sorted(grouped.items())


_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(namespace: str, name: str) -> str:
    metric = _PROM_INVALID.sub("_", name)
    if namespace:
        metric = "%s_%s" % (_PROM_INVALID.sub("_", namespace), metric)
    if metric and metric[0].isdigit():
        metric = "_" + metric
    return metric


def _prom_escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _prom_labels(labels: LabelsKey) -> str:
    if not labels:
        return ""
    return "{%s}" % ",".join(
        '%s="%s"' % (_PROM_INVALID.sub("_", k), _prom_escape(v)) for k, v in labels
    )


def _prom_value(value: float) -> str:
    return repr(float(value))


def _type_line(lines, metric: str, kind: str) -> None:
    """Emit the ``# TYPE`` header once per metric family."""
    header = "# TYPE %s %s" % (metric, kind)
    if header not in lines:
        lines.append(header)


class NodeStatsCollector:
    """Per-key numeric accumulation — the WDPT evaluators use one per run
    to build the per-tree-node rows of ``EXPLAIN ANALYZE`` (key = node id).

    Allocated only when tracing is enabled, so the disabled-path cost at
    every instrumentation site is a single ``is None`` check.  One
    collector may be shared by several pool workers evaluating sibling
    subtrees (``repro.parallel``); increments commute, and the lock makes
    them lossless, so the aggregate is deterministic regardless of worker
    scheduling.
    """

    __slots__ = ("_rows", "_lock")

    def __init__(self) -> None:
        self._rows: Dict[Any, Dict[str, float]] = {}
        self._lock = threading.Lock()

    def add(self, key: Any, **increments: float) -> None:
        with self._lock:
            row = self._rows.setdefault(key, {})
            for name, amount in increments.items():
                row[name] = row.get(name, 0) + amount

    def merge(self, rows: Dict[Any, Dict[str, float]]) -> None:
        """Fold another collector's :meth:`rows` in (summing per key)."""
        for key, row in rows.items():
            self.add(key, **row)

    def rows(self) -> Dict[Any, Dict[str, float]]:
        with self._lock:
            return {key: dict(row) for key, row in self._rows.items()}

    def __repr__(self) -> str:
        return "NodeStatsCollector(%d keys)" % len(self._rows)


# ---------------------------------------------------------------------------
# Module-level default registry
# ---------------------------------------------------------------------------
_default = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (the planner uses its own)."""
    return _default
