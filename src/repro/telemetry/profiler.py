"""Span-aware sampling wall-clock profiler.

EXPLAIN ANALYZE (``repro.telemetry.obslog``) answers "which plan node was
slow?"; the chrome trace (``repro.telemetry.export``) answers "which span
was slow?".  Neither answers "which *Python frames* were hot?" — the
question that decides whether the time went into semijoin passes, homo-
morphism enumeration, or interpreter overhead around them.  This module
answers it with a stdlib stack sampler:

* :class:`SamplingProfiler` runs a daemon thread that wakes ``hz`` times
  per second, walks :func:`sys._current_frames`, and records one
  :class:`sample <Sample>` per application thread: the frame stack
  (root-first), plus — this is the span-aware part — the ``trace_id`` in
  flight on the *sampled* thread (via
  :func:`~repro.telemetry.context.trace_context_for_thread`) and the
  innermost open :class:`~repro.telemetry.tracer.Span` there (via the
  cross-thread span registry the profiler installs while running).  The
  span name maps onto a plan *phase* (plan / semijoin / join /
  enumerate), so a flamegraph can fold by phase as well as by frame.

* Samples aggregate into the two interchange formats flamegraph tooling
  speaks: **folded stacks** (``root;child;leaf 42`` lines, flamegraph.pl
  and friends) via :func:`folded_stacks` / :func:`folded_text`, and
  **speedscope JSON** via :func:`to_speedscope` /
  :func:`write_speedscope`.  :func:`validate_speedscope` and
  :func:`validate_folded` check the emitted artifacts (used by
  ``scripts/validate_trace.py`` and the CI ``profile-smoke`` job).

* Sample tuples are plain picklable data, so process-pool workers ship
  their sample batches back inside the result envelopes
  (:mod:`repro.parallel.batch`) and the parent profiler absorbs them
  with :meth:`SamplingProfiler.absorb_dump` — one merged profile for a
  parallel batch, every sample still tagged with its trace id.

* :class:`GCMonitor` adds runtime health gauges via ``gc.callbacks``:
  a ``gc.pause_ms`` histogram and per-generation collection counters in
  the profiler's :class:`~repro.telemetry.metrics.MetricsRegistry`,
  summarised by :func:`gc_summary` for ``Session.stats()``.

Overhead contract (gated in ``tests/test_profiler.py``): with no
profiler running the hooks are a module-global ``is None`` check per
recorded span transition and one :func:`current_profiler` read per
observed query — nothing on evaluation hot loops — and sampling at
100 Hz costs at most a few percent of wall time, because each tick does
O(threads x stack depth) work in C-backed frame walking, a few hundred
microseconds, 100 times a second.

Stdlib only, like the rest of :mod:`repro.telemetry`.
"""

from __future__ import annotations

import gc
import os
import sys
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .context import trace_context_for_thread
from .metrics import MetricsRegistry
from .tracer import active_span_for_thread, set_span_registry

__all__ = [
    "PROFILE_SCHEMA",
    "DEFAULT_HZ",
    "SPEEDSCOPE_SCHEMA",
    "Sample",
    "SamplingProfiler",
    "GCMonitor",
    "gc_summary",
    "span_phase",
    "folded_stacks",
    "folded_text",
    "to_speedscope",
    "write_speedscope",
    "summarize_samples",
    "validate_speedscope",
    "validate_folded",
    "current_profiler",
    "profiler_active",
    "ensure_profiler",
    "profiling",
]

PROFILE_SCHEMA = 1
DEFAULT_HZ = 100
MAX_HZ = 1000
DEFAULT_MAX_SAMPLES = 200_000
DEFAULT_MAX_DEPTH = 128
SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"

# A sample is a plain tuple so it pickles cheaply through process-pool
# envelopes and snapshots without copying object graphs:
#   (ts, thread_ident, frames, trace_id, span_name, phase)
# where ``frames`` is a root-first tuple of "file.py:function" labels.
Sample = Tuple[float, int, Tuple[str, ...], Optional[str], Optional[str], Optional[str]]


# ---------------------------------------------------------------------------
# Span-name -> plan-phase classification
# ---------------------------------------------------------------------------
# Ordered prefix table: first match wins, so the specific yannakakis
# semijoin spans classify before the bare "yannakakis" root span.  The
# phases mirror the well-designed-pattern-tree pipeline: parse/plan the
# tree, semijoin reductions, join evaluation of CQ nodes, and extension
# enumeration over the tree.
SPAN_PHASES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("plan", ("session.parse", "session.profile", "planner.profile",
              "planner.explain", "planner.estimate")),
    ("semijoin", ("yannakakis.scan", "yannakakis.semijoin")),
    ("join", ("yannakakis.join", "yannakakis", "planner.evaluate_cq",
              "planner.satisfiable", "cq.")),
    ("enumerate", ("wdpt.", "enumeration.", "session.query", "session.ask",
                   "session.is_")),
)

PHASE_OTHER = "other"


def span_phase(span_name: Optional[str]) -> Optional[str]:
    """Map a span name onto its plan phase (``plan`` / ``semijoin`` /
    ``join`` / ``enumerate`` / ``other``); ``None`` for no span."""
    if span_name is None:
        return None
    for phase, prefixes in SPAN_PHASES:
        for prefix in prefixes:
            if span_name.startswith(prefix):
                return phase
    return PHASE_OTHER


# ---------------------------------------------------------------------------
# The sampler
# ---------------------------------------------------------------------------
class SamplingProfiler:
    """Wall-clock stack sampler with span/trace attribution.

    ``start()`` spawns the daemon sampling thread, installs the tracer's
    cross-thread span registry, registers this profiler as the
    module-level current one (so `Session`, obslog and the batch layer
    pick it up), and — when a registry is given — installs the
    :class:`GCMonitor`.  ``stop()`` undoes all of it.  Both are
    idempotent and thread-safe (the ``/debug/profile`` route hits them
    concurrently).
    """

    def __init__(
        self,
        hz: int = DEFAULT_HZ,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        max_depth: int = DEFAULT_MAX_DEPTH,
        registry: Optional[MetricsRegistry] = None,
        gc_stats: bool = True,
    ) -> None:
        self.hz = max(1, min(int(hz), MAX_HZ))
        self.max_samples = max(1, int(max_samples))
        self.max_depth = max(1, int(max_depth))
        self.registry = registry
        self.gc_stats = gc_stats
        self.dropped = 0
        self.ticks = 0
        self._samples: List[Sample] = []
        self._lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._span_registry: Dict[int, Any] = {}
        self._previous_registry: Optional[Dict[int, Any]] = None
        self._gc_monitor: Optional[GCMonitor] = None
        self._labels: Dict[Any, str] = {}

    # -- lifecycle ----------------------------------------------------------
    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self) -> "SamplingProfiler":
        """Start sampling (no-op if already running)."""
        global _current
        with self._state_lock:
            if self.running:
                return self
            self._stop = threading.Event()
            self._previous_registry = set_span_registry(self._span_registry)
            if self.gc_stats and self.registry is not None:
                self._gc_monitor = GCMonitor(self.registry)
                self._gc_monitor.install()
            self._thread = threading.Thread(
                target=self._loop, name="repro-profiler", daemon=True,
            )
            self._thread.start()
            with _module_lock:
                _current = self
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling and uninstall every hook (no-op if stopped)."""
        global _current
        with self._state_lock:
            thread = self._thread
            if thread is None:
                return self
            self._stop.set()
            thread.join(timeout=2.0)
            self._thread = None
            set_span_registry(self._previous_registry)
            self._previous_registry = None
            self._span_registry.clear()
            if self._gc_monitor is not None:
                self._gc_monitor.uninstall()
                self._gc_monitor = None
            with _module_lock:
                if _current is self:
                    _current = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self.stop()
        return False

    # -- the sampling loop --------------------------------------------------
    def _loop(self) -> None:
        interval = 1.0 / self.hz
        own = threading.get_ident()
        next_tick = time.perf_counter() + interval
        while True:
            delay = next_tick - time.perf_counter()
            if delay > 0:
                if self._stop.wait(delay):
                    return
            elif self._stop.is_set():
                return
            now = time.perf_counter()
            next_tick += interval
            if next_tick < now:  # fell behind: skip missed ticks
                next_tick = now + interval
            try:
                self._sample_once(now, own)
            except Exception:  # pragma: no cover - never kill the app
                pass

    def _sample_once(self, now: float, own_ident: int) -> None:
        self.ticks += 1
        frames = sys._current_frames()
        collected: List[Sample] = []
        for ident, frame in list(frames.items()):
            if ident == own_ident:
                continue
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                stack.append(self._label(frame.f_code))
                frame = frame.f_back
                depth += 1
            if not stack:
                continue
            stack.reverse()  # root-first, the folded/speedscope order
            trace_id, _ = trace_context_for_thread(ident)
            span = active_span_for_thread(ident)
            span_name = span.name if span is not None else None
            collected.append(
                (now, ident, tuple(stack), trace_id, span_name,
                 span_phase(span_name))
            )
        if collected:
            with self._lock:
                for sample in collected:
                    if len(self._samples) >= self.max_samples:
                        del self._samples[0]
                        self.dropped += 1
                    self._samples.append(sample)

    def _label(self, code: Any) -> str:
        label = self._labels.get(code)
        if label is None:
            label = "%s:%s" % (
                os.path.basename(code.co_filename), code.co_name,
            )
            self._labels[code] = label
        return label

    # -- sample access ------------------------------------------------------
    @property
    def samples(self) -> List[Sample]:
        """A snapshot of the recorded samples."""
        with self._lock:
            return list(self._samples)

    @property
    def sample_count(self) -> int:
        with self._lock:
            return len(self._samples)

    def clear(self) -> None:
        with self._lock:
            self._samples = []
            self.dropped = 0

    def drain(self) -> List[Sample]:
        """Return and clear the recorded samples (process workers drain
        per task so each envelope carries only that task's samples)."""
        with self._lock:
            samples = self._samples
            self._samples = []
            return samples

    def absorb(self, samples: Sequence[Sample]) -> None:
        """Append externally collected samples (batch-envelope merge)."""
        with self._lock:
            for sample in samples:
                if len(self._samples) >= self.max_samples:
                    del self._samples[0]
                    self.dropped += 1
                self._samples.append(sample)

    def samples_for_trace(self, trace_id: Optional[str]) -> List[Sample]:
        """Samples attributed to one trace id (a single query's profile)."""
        if trace_id is None:
            return []
        with self._lock:
            return [s for s in self._samples if s[3] == trace_id]

    # -- aggregation / export ----------------------------------------------
    def folded(self, by: str = "frames",
               trace_id: Optional[str] = None) -> Dict[str, int]:
        return folded_stacks(self.samples, by=by, trace_id=trace_id)

    def folded_text(self, by: str = "frames",
                    trace_id: Optional[str] = None) -> str:
        return folded_text(self.samples, by=by, trace_id=trace_id)

    def speedscope(self, name: str = "repro profile",
                   by: str = "frames") -> Dict[str, Any]:
        return to_speedscope(self.samples, self.hz, name=name, by=by)

    def write_speedscope(self, path: str, name: str = "repro profile",
                         by: str = "frames") -> None:
        write_speedscope(self.samples, self.hz, path, name=name, by=by)

    def summary(self, top: int = 10) -> Dict[str, Any]:
        summary = summarize_samples(self.samples, self.hz, top=top)
        summary["dropped"] = self.dropped
        summary["running"] = self.running
        return summary

    def trace_summary(self, trace_id: Optional[str],
                      top: int = 10) -> Dict[str, Any]:
        """Compact per-trace summary, sized for an obslog record."""
        summary = summarize_samples(
            self.samples_for_trace(trace_id), self.hz, top=top,
        )
        summary["trace_id"] = trace_id
        return summary

    # -- pickle-friendly interchange ---------------------------------------
    def dump(self, drain: bool = False) -> Dict[str, Any]:
        """A picklable sample batch for process-pool envelopes."""
        samples = self.drain() if drain else self.samples
        return {
            "schema": PROFILE_SCHEMA,
            "hz": self.hz,
            "dropped": self.dropped,
            "samples": [list(s) for s in samples],
        }

    def absorb_dump(self, dump: Optional[Dict[str, Any]]) -> int:
        """Merge a :meth:`dump` payload (e.g. from a worker envelope);
        returns the number of samples absorbed."""
        if not dump:
            return 0
        samples = [
            (s[0], s[1], tuple(s[2]), s[3], s[4], s[5])
            for s in dump.get("samples", ())
        ]
        self.absorb(samples)
        self.dropped += int(dump.get("dropped", 0))
        return len(samples)

    def __repr__(self) -> str:
        return "SamplingProfiler(hz=%d, running=%s, samples=%d)" % (
            self.hz, self.running, self.sample_count,
        )


# ---------------------------------------------------------------------------
# Module-level current profiler
# ---------------------------------------------------------------------------
_module_lock = threading.Lock()
_current: Optional[SamplingProfiler] = None


def current_profiler() -> Optional[SamplingProfiler]:
    """The most recently started profiler, or ``None``.  This is the
    single module-global read the disabled path pays per observed query."""
    return _current


def profiler_active() -> bool:
    """True when a profiler is installed and its sampler thread runs."""
    profiler = _current
    return profiler is not None and profiler.running


def ensure_profiler(hz: int,
                    registry: Optional[MetricsRegistry] = None) -> SamplingProfiler:
    """The running current profiler, or a freshly started one at ``hz``
    (process workers call this on their first profiled task)."""
    profiler = _current
    if profiler is not None and profiler.running:
        return profiler
    return SamplingProfiler(hz=hz, registry=registry).start()


@contextmanager
def profiling(
    hz: int = DEFAULT_HZ,
    registry: Optional[MetricsRegistry] = None,
    **kwargs: Any,
) -> Iterator[SamplingProfiler]:
    """Run a profiler for the duration of the block::

        with profiling(hz=250) as prof:
            session.query(q)
        print(prof.folded_text(by="phase"))
    """
    profiler = SamplingProfiler(hz=hz, registry=registry, **kwargs)
    profiler.start()
    try:
        yield profiler
    finally:
        profiler.stop()


# ---------------------------------------------------------------------------
# Aggregation + export formats
# ---------------------------------------------------------------------------
def _stack_key(sample: Sample, by: str) -> Tuple[str, ...]:
    frames = sample[2]
    if by == "phase":
        phase = sample[5] if sample[5] is not None else "(no span)"
        return ("phase:%s" % phase,) + frames
    return frames


def folded_stacks(
    samples: Sequence[Sample],
    by: str = "frames",
    trace_id: Optional[str] = None,
) -> Dict[str, int]:
    """Aggregate samples into ``{"root;child;leaf": count}``.

    ``by="phase"`` prepends a synthetic ``phase:<name>`` root frame so
    the flamegraph's first split is the plan phase; ``trace_id`` filters
    to one query's samples.
    """
    if by not in ("frames", "phase"):
        raise ValueError("fold by 'frames' or 'phase', not %r" % (by,))
    counts: Dict[str, int] = {}
    for sample in samples:
        if trace_id is not None and sample[3] != trace_id:
            continue
        key = ";".join(_stack_key(sample, by))
        counts[key] = counts.get(key, 0) + 1
    return counts


def folded_text(
    samples: Sequence[Sample],
    by: str = "frames",
    trace_id: Optional[str] = None,
) -> str:
    """Folded stacks as flamegraph.pl input, hottest stacks first."""
    counts = folded_stacks(samples, by=by, trace_id=trace_id)
    ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return "\n".join("%s %d" % (stack, n) for stack, n in ordered)


def to_speedscope(
    samples: Sequence[Sample],
    hz: int,
    name: str = "repro profile",
    by: str = "frames",
    trace_id: Optional[str] = None,
) -> Dict[str, Any]:
    """Samples as a speedscope ``sampled`` profile (one weight of
    ``1/hz`` seconds per sample).  When every sample belongs to one
    trace, the payload carries a top-level ``trace_id`` so the export,
    the spans and the obslog record of a query correlate by id."""
    if by not in ("frames", "phase"):
        raise ValueError("fold by 'frames' or 'phase', not %r" % (by,))
    if trace_id is not None:
        samples = [s for s in samples if s[3] == trace_id]
    frame_index: Dict[str, int] = {}
    frames: List[Dict[str, str]] = []
    stacks: List[List[int]] = []
    weight = 1.0 / max(1, hz)
    for sample in samples:
        stack: List[int] = []
        for label in _stack_key(sample, by):
            idx = frame_index.get(label)
            if idx is None:
                idx = frame_index[label] = len(frames)
                frames.append({"name": label})
            stack.append(idx)
        stacks.append(stack)
    total = weight * len(stacks)
    trace_ids = sorted({s[3] for s in samples if s[3] is not None})
    payload: Dict[str, Any] = {
        "$schema": SPEEDSCOPE_SCHEMA,
        "exporter": "repro-profiler",
        "name": name,
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "seconds",
                "startValue": 0,
                "endValue": total,
                "samples": stacks,
                "weights": [weight] * len(stacks),
            }
        ],
    }
    if len(trace_ids) == 1:
        payload["trace_id"] = trace_ids[0]
    elif trace_ids:
        payload["trace_ids"] = trace_ids
    return payload


def write_speedscope(
    samples: Sequence[Sample],
    hz: int,
    path: str,
    name: str = "repro profile",
    by: str = "frames",
    trace_id: Optional[str] = None,
) -> None:
    import json

    payload = to_speedscope(samples, hz, name=name, by=by, trace_id=trace_id)
    with open(path, "w") as handle:
        json.dump(payload, handle)
        handle.write("\n")


def summarize_samples(
    samples: Sequence[Sample], hz: int, top: int = 10,
) -> Dict[str, Any]:
    """A JSON-sized digest: counts per phase plus the hottest stacks.
    This is what embeds in ``query.slow`` obslog events and
    BENCH_eval.json points — raw samples stay on the profiler."""
    phases: Dict[str, int] = {}
    traces = set()
    for sample in samples:
        phase = sample[5] if sample[5] is not None else "(no span)"
        phases[phase] = phases.get(phase, 0) + 1
        if sample[3] is not None:
            traces.add(sample[3])
    counts = folded_stacks(samples, by="frames")
    hottest = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    return {
        "schema": PROFILE_SCHEMA,
        "hz": hz,
        "samples": len(samples),
        "seconds": len(samples) / float(max(1, hz)),
        "phases": phases,
        "trace_ids": len(traces),
        "top": [[stack, n] for stack, n in hottest],
    }


# ---------------------------------------------------------------------------
# Artifact validators (scripts/validate_trace.py + CI profile-smoke)
# ---------------------------------------------------------------------------
def validate_speedscope(payload: Any) -> List[str]:
    """Structural check of a speedscope JSON payload; returns a list of
    problems (empty == valid).  Mirrors ``validate_chrome_trace``: an
    empty profile is an error, because a smoke job that silently
    captured nothing should fail."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["speedscope payload must be a JSON object, got %s"
                % type(payload).__name__]
    if payload.get("$schema") != SPEEDSCOPE_SCHEMA:
        errors.append("missing or wrong $schema (expected %r)"
                      % SPEEDSCOPE_SCHEMA)
    shared = payload.get("shared")
    frames = shared.get("frames") if isinstance(shared, dict) else None
    if not isinstance(frames, list):
        errors.append("shared.frames must be a list")
        frames = []
    for i, frame in enumerate(frames):
        if not isinstance(frame, dict) or not isinstance(frame.get("name"), str):
            errors.append("frame %d must be an object with a string 'name'" % i)
            break
    profiles = payload.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        errors.append("profiles must be a non-empty list")
        profiles = []
    for p, profile in enumerate(profiles):
        if not isinstance(profile, dict):
            errors.append("profile %d must be an object" % p)
            continue
        kind = profile.get("type")
        if kind not in ("sampled", "evented"):
            errors.append("profile %d has unknown type %r" % (p, kind))
            continue
        if kind != "sampled":
            continue
        stacks = profile.get("samples")
        weights = profile.get("weights")
        if not isinstance(stacks, list) or not isinstance(weights, list):
            errors.append("profile %d needs 'samples' and 'weights' lists" % p)
            continue
        if not stacks:
            errors.append("profile %d is empty: no samples were recorded" % p)
            continue
        if len(stacks) != len(weights):
            errors.append(
                "profile %d has %d samples but %d weights"
                % (p, len(stacks), len(weights)))
        for s, stack in enumerate(stacks):
            if not isinstance(stack, list) or not stack:
                errors.append(
                    "profile %d sample %d must be a non-empty index list"
                    % (p, s))
                break
            bad = [i for i in stack
                   if not isinstance(i, int) or i < 0 or i >= len(frames)]
            if bad:
                errors.append(
                    "profile %d sample %d has out-of-range frame index %r"
                    % (p, s, bad[0]))
                break
        start = profile.get("startValue", 0)
        end = profile.get("endValue", 0)
        if not isinstance(start, (int, float)) or not isinstance(end, (int, float)) \
                or end < start:
            errors.append("profile %d has endValue < startValue" % p)
    return errors


def validate_folded(text: str) -> List[str]:
    """Structural check of folded-stack lines (``stack;frames count``)."""
    errors: List[str] = []
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return ["folded output is empty: no stacks were recorded"]
    for n, line in enumerate(lines, 1):
        stack, sep, count = line.rpartition(" ")
        if not sep or not stack:
            errors.append("line %d is not '<stack> <count>': %r" % (n, line))
            continue
        if not count.isdigit() or int(count) < 1:
            errors.append("line %d has a non-positive count: %r" % (n, line))
        if not all(part for part in stack.split(";")):
            errors.append("line %d has an empty frame in the stack" % n)
    return errors


# ---------------------------------------------------------------------------
# GC visibility (runtime health gauges)
# ---------------------------------------------------------------------------
class GCMonitor:
    """Record collector pauses and per-generation collection counts via
    ``gc.callbacks``: ``gc.pause_ms`` histogram plus ``gc.collections``
    / ``gc.collected`` / ``gc.uncollectable`` counters labelled by
    generation.  Installed with the profiler (a long-lived daemon wants
    to see GC pressure next to its flamegraphs) and summarised by
    :func:`gc_summary` in ``Session.stats()``."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.installed = False
        self._t0: Optional[float] = None

    def _callback(self, phase: str, info: Dict[str, Any]) -> None:
        # Runs inside the collector: keep it allocation-light and never
        # raise (an exception here would surface in unrelated code).
        try:
            if phase == "start":
                self._t0 = time.perf_counter()
                return
            t0 = self._t0
            self._t0 = None
            generation = str(info.get("generation", "?"))
            registry = self.registry
            if t0 is not None:
                registry.histogram("gc.pause_ms").observe(
                    (time.perf_counter() - t0) * 1000.0)
            registry.counter(
                "gc.collections", {"generation": generation}).inc()
            registry.counter(
                "gc.collected", {"generation": generation}).inc(
                int(info.get("collected", 0)))
            registry.counter(
                "gc.uncollectable", {"generation": generation}).inc(
                int(info.get("uncollectable", 0)))
        except Exception:  # pragma: no cover - health hooks must not throw
            pass

    def install(self) -> "GCMonitor":
        if not self.installed:
            gc.callbacks.append(self._callback)
            self.installed = True
        return self

    def uninstall(self) -> None:
        if self.installed:
            try:
                gc.callbacks.remove(self._callback)
            except ValueError:  # pragma: no cover
                pass
            self.installed = False

    def __enter__(self) -> "GCMonitor":
        return self.install()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self.uninstall()
        return False


def gc_summary(registry: Optional[MetricsRegistry]) -> Dict[str, Any]:
    """GC health digest from a registry's instruments (for
    ``Session.stats()``).  ``{"enabled": False}`` when no GC monitor has
    written to this registry."""
    if registry is None:
        return {"enabled": False}
    hist = registry._histograms.get(("gc.pause_ms", ()))
    collections = registry.labeled_values("gc.collections", "generation")
    if hist is None and not collections:
        return {"enabled": False}
    return {
        "enabled": True,
        "collections": collections,
        "collected": registry.labeled_values("gc.collected", "generation"),
        "uncollectable": registry.labeled_values(
            "gc.uncollectable", "generation"),
        "pause_ms": hist.snapshot() if hist is not None else None,
    }
