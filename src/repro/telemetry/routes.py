"""Transport-agnostic HTTP route table shared by every repro server.

Two daemons expose HTTP in this codebase — the threaded
:class:`~repro.telemetry.promhttp.MetricsServer` (``repro serve-metrics``)
and the asyncio query service (:mod:`repro.service`, ``repro serve``).
Both dispatch through one :class:`Router`, so route matching, the
``/healthz`` semantics, and the error bodies (400/404/500 JSON shapes)
are identical regardless of which server answered:

* every error is ``{"error": "<message>", ...}`` JSON with the matching
  status code — a 404 additionally lists the routes the server *does*
  serve;
* any JSON payload can be rendered as a self-contained auto-refreshing
  HTML page with ``?format=html``;
* handlers never kill the server: an exception inside one becomes a 500
  with ``{"error": "TypeName: message"}``.

A handler takes a :class:`RouteRequest` and returns a
:class:`RouteResponse` (or any JSON-serialisable object, which is wrapped
into a 200).  Handlers may be coroutine functions — the asyncio server
awaits them; the threaded server only registers synchronous ones.
"""

from __future__ import annotations

import html as _html
import json
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs

__all__ = [
    "RouteRequest",
    "RouteResponse",
    "Router",
    "error_response",
    "json_response",
    "render_html",
]

#: The Prometheus text exposition content type.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

JSON_CONTENT_TYPE = "application/json"
TEXT_CONTENT_TYPE = "text/plain; charset=utf-8"
HTML_CONTENT_TYPE = "text/html; charset=utf-8"


class RouteRequest:
    """One parsed HTTP request, transport details stripped away."""

    __slots__ = ("method", "path", "params", "headers", "body", "rest")

    def __init__(
        self,
        method: str,
        path: str,
        query: str = "",
        headers: Optional[Dict[str, str]] = None,
        body: bytes = b"",
    ):
        self.method = method.upper()
        self.path = path
        #: First value of each query-string parameter.
        self.params: Dict[str, str] = {
            key: values[0] for key, values in parse_qs(query).items()
        }
        #: Header names lower-cased.
        self.headers: Dict[str, str] = {
            key.lower(): value for key, value in (headers or {}).items()
        }
        self.body = body
        #: For prefix routes: the path suffix after the matched prefix.
        self.rest = ""

    def param(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.params.get(name, default)

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.headers.get(name.lower(), default)

    def wants_html(self) -> bool:
        return self.params.get("format") == "html"

    def __repr__(self) -> str:
        return "RouteRequest(%s %s)" % (self.method, self.path)


class RouteResponse:
    """Status, content type, body bytes, and any extra headers."""

    __slots__ = ("status", "content_type", "body", "headers")

    def __init__(
        self,
        status: int,
        content_type: str,
        body: bytes,
        headers: Optional[Dict[str, str]] = None,
    ):
        self.status = status
        self.content_type = content_type
        self.body = body
        self.headers: Dict[str, str] = dict(headers) if headers else {}

    def __repr__(self) -> str:
        return "RouteResponse(%d, %r, %d bytes)" % (
            self.status, self.content_type, len(self.body),
        )


def json_response(
    status: int,
    payload: Any,
    request: Optional[RouteRequest] = None,
    title: str = "debug",
    headers: Optional[Dict[str, str]] = None,
) -> RouteResponse:
    """A JSON (or, with ``?format=html``, HTML-rendered) response."""
    if request is not None and request.wants_html():
        body = render_html(title, payload).encode("utf-8")
        return RouteResponse(status, HTML_CONTENT_TYPE, body, headers)
    body = json.dumps(payload, default=repr).encode("utf-8")
    return RouteResponse(status, JSON_CONTENT_TYPE, body, headers)


def error_response(
    status: int,
    message: str,
    headers: Optional[Dict[str, str]] = None,
    **extra: Any,
) -> RouteResponse:
    """The shared error shape: ``{"error": message, **extra}`` JSON.

    Every 400/404/429/500 body served by any repro HTTP endpoint goes
    through here, so clients can always read ``body["error"]``.
    """
    payload = {"error": message}
    payload.update(extra)
    body = json.dumps(payload, default=repr).encode("utf-8")
    return RouteResponse(status, JSON_CONTENT_TYPE, body, headers)


Handler = Callable[[RouteRequest], Any]


class Router:
    """Exact- and prefix-matched routes with shared error semantics.

    ::

        router = Router()
        router.add("GET", "/healthz", lambda req: {"status": "ok"})
        router.add_prefix("GET", "/debug/", debug_handler)  # req.rest = name
        response = router.dispatch(RouteRequest("GET", "/healthz"))

    ``dispatch`` returns a :class:`RouteResponse` — or, when the matched
    handler is a coroutine function, whatever awaitable it produced (the
    asyncio server awaits it; if the awaited value is not already a
    ``RouteResponse`` it is wrapped via :meth:`finish`).  Unknown paths
    get the shared 404 listing every registered route; handler
    exceptions become the shared 500 shape.
    """

    def __init__(self) -> None:
        self._exact: Dict[Tuple[str, str], Handler] = {}
        self._prefixes: List[Tuple[str, str, Handler]] = []

    def add(self, method: str, path: str, handler: Handler) -> "Router":
        """Register (or replace) the handler of ``method path``."""
        self._exact[(method.upper(), path)] = handler
        return self

    def add_prefix(self, method: str, prefix: str, handler: Handler) -> "Router":
        """Register a prefix route; the handler sees the suffix as
        ``request.rest``.  Longest prefix wins."""
        self._prefixes.append((method.upper(), prefix, handler))
        self._prefixes.sort(key=lambda entry: -len(entry[1]))
        return self

    def routes(self) -> List[str]:
        """Every registered route, for the 404 listing (prefix routes
        shown with a trailing ``*``)."""
        exact = {"%s %s" % (method, path) for method, path in self._exact}
        prefixes = {
            "%s %s*" % (method, prefix) for method, prefix, _ in self._prefixes
        }
        return sorted(exact | prefixes)

    def resolve(self, request: RouteRequest) -> Optional[Handler]:
        """The handler for ``request`` (setting ``request.rest`` for
        prefix matches), or ``None``."""
        handler = self._exact.get((request.method, request.path))
        if handler is not None:
            request.rest = ""
            return handler
        for method, prefix, handler in self._prefixes:
            if request.method == method and request.path.startswith(prefix):
                request.rest = request.path[len(prefix):]
                return handler
        return None

    def dispatch(self, request: RouteRequest) -> Any:
        """Resolve and invoke; shared 404/500 semantics.

        Synchronous handlers come back as a finished
        :class:`RouteResponse`.  A coroutine handler's awaitable is
        returned as-is — the caller must await it and pass the value
        through :meth:`finish` (which also maps exceptions raised during
        the await to the shared 500 shape).
        """
        handler = self.resolve(request)
        if handler is None:
            return error_response(
                404,
                "no route for %s %s" % (request.method, request.path),
                routes=self.routes(),
            )
        try:
            result = handler(request)
        except Exception as exc:  # surface, never kill the server
            return self.internal_error(exc)
        if hasattr(result, "__await__"):
            return result
        return self.finish(result, request)

    @staticmethod
    def finish(result: Any, request: RouteRequest) -> RouteResponse:
        """Wrap a handler's return value: ``RouteResponse`` passes
        through, anything else becomes a 200 JSON payload."""
        if isinstance(result, RouteResponse):
            return result
        return json_response(200, result, request, title=request.path)

    @staticmethod
    def internal_error(exc: BaseException) -> RouteResponse:
        """The shared 500 shape for a handler exception."""
        return error_response(500, "%s: %s" % (type(exc).__name__, exc))


def render_html(title: str, payload: Any) -> str:
    """A self-contained HTML view of a debug payload: the pretty-printed
    JSON in a ``<pre>``, no external assets, auto-refresh every 5 s."""
    pretty = json.dumps(payload, indent=2, sort_keys=True, default=repr)
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        "<meta http-equiv='refresh' content='5'>"
        "<title>%(title)s</title>"
        "<style>body{font-family:monospace;margin:1.5em;background:#fafafa}"
        "pre{background:#fff;border:1px solid #ddd;padding:1em;"
        "overflow-x:auto}</style></head>"
        "<body><h1>%(title)s</h1><pre>%(body)s</pre></body></html>"
        % {
            "title": _html.escape(title),
            "body": _html.escape(pretty),
        }
    )
