"""A stdlib-only ``/metrics`` + ``/healthz`` + ``/debug/*`` HTTP endpoint.

:class:`MetricsServer` wraps :class:`http.server.ThreadingHTTPServer` and
serves the Prometheus text exposition of one or more
:class:`~repro.telemetry.metrics.MetricsRegistry` objects (or arbitrary
callables returning exposition text) —

* ``GET /metrics`` — concatenated ``MetricsRegistry.to_prometheus()``
  output, ``Content-Type: text/plain; version=0.0.4``;
* ``GET /healthz`` — a JSON liveness document (status, uptime, request
  count);
* ``GET /debug`` and ``GET /debug/<name>`` — live JSON snapshots from
  the registered debug providers (``debug=`` / :meth:`~MetricsServer.add_debug`);
  :meth:`repro.engine.Session.debug_providers` wires ``queries`` (in
  flight + recent, with trace ids), ``plans`` (EXPLAIN cache joined with
  estimate accuracy), and ``stats`` (the query-stats store dump).
  Append ``?format=html`` for a self-contained HTML view;
* ``GET /debug/profile`` — the live sampling profiler
  (:mod:`repro.telemetry.profiler`): ``?action=start[&hz=N]`` /
  ``?action=stop`` control it (idempotent, safe under concurrent
  requests), the default snapshot reports sample counts and per-phase
  breakdown, and ``?format=speedscope`` / ``?format=folded`` download
  the flamegraph exports;
* anything else — 404.

Providers are invoked per request under the threading server, so the
payloads are point-in-time snapshots that stay live while queries are in
flight.  The server binds on construction-time host/port (port ``0``
picks a free one, exposed via :attr:`MetricsServer.port` /
:attr:`MetricsServer.url`) and serves from a daemon thread, so it can
sit next to a long-lived :class:`~repro.engine.Session` without blocking
it.  ``repro serve-metrics`` is the CLI wrapper.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from .metrics import MetricsRegistry
from .routes import (
    PROMETHEUS_CONTENT_TYPE,
    RouteRequest,
    RouteResponse,
    Router,
    error_response,
    json_response,
    render_html,
)

Source = Union[MetricsRegistry, Callable[[], str]]

DebugProvider = Callable[[], Any]


class MetricsServer:
    """Serve Prometheus metrics and a health check from a daemon thread.

    ::

        server = MetricsServer([session.planner.metrics])
        server.start()
        ... curl http://127.0.0.1:<server.port>/metrics ...
        server.stop()

    Also usable as a context manager (starts on enter, stops on exit).
    """

    def __init__(
        self,
        sources: Union[Source, Sequence[Source]],
        host: str = "127.0.0.1",
        port: int = 0,
        namespace: str = "repro",
        debug: Optional[Dict[str, DebugProvider]] = None,
        profiler=None,
    ):
        if isinstance(sources, MetricsRegistry) or callable(sources):
            sources = [sources]
        self.sources: List[Source] = list(sources)
        self.namespace = namespace
        self.host = host
        #: ``name → zero-arg callable`` behind ``/debug/<name>``.
        self.debug: Dict[str, DebugProvider] = dict(debug) if debug else {}
        #: The :class:`~repro.telemetry.profiler.SamplingProfiler` behind
        #: ``/debug/profile`` — injectable; created lazily on the first
        #: ``?action=start`` otherwise.
        self.profiler = profiler
        self._profile_lock = threading.Lock()
        self._owns_profiler = False
        self._requested_port = port
        self._httpd: ThreadingHTTPServer = None  # type: ignore[assignment]
        self._thread: threading.Thread = None  # type: ignore[assignment]
        self._started_at = 0.0
        self.requests_served = 0

    def add_debug(self, name: str, provider: DebugProvider) -> "MetricsServer":
        """Register (or replace) the ``/debug/<name>`` provider."""
        self.debug[name] = provider
        return self

    # ------------------------------------------------------------------
    def exposition(self) -> str:
        """The concatenated Prometheus text for every source."""
        chunks = []
        for source in self.sources:
            if isinstance(source, MetricsRegistry):
                chunks.append(source.to_prometheus(namespace=self.namespace))
            else:
                chunks.append(source())
        return "".join(chunk for chunk in chunks if chunk)

    def health(self) -> dict:
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self._started_at,
            "requests_served": self.requests_served,
            "sources": len(self.sources),
            "debug_routes": sorted(self.debug),
        }

    def debug_index(self) -> dict:
        """The ``/debug`` payload: the routes this server exposes."""
        routes = sorted(
            {"/debug/%s" % name for name in self.debug} | {"/debug/profile"}
        )
        return {
            "routes": routes,
            "hint": "append ?format=html for a browser view",
        }

    # ------------------------------------------------------------------
    # /debug/profile (repro.telemetry.profiler)
    # ------------------------------------------------------------------
    def profile_action(self, action: str, hz: Optional[int] = None) -> dict:
        """Drive the live profiler: ``start`` / ``stop`` / ``snapshot``.

        Thread-safe and idempotent — concurrent start/stop requests race
        only for the lock, never double-start a sampler thread or leave
        hooks behind.  ``start`` lazily creates a profiler (sampling the
        first registry source for GC gauges) and registers it as the
        module-level current one, so sessions in this process attach
        per-query samples and obslog slow records pick the digest up.
        """
        from .profiler import DEFAULT_HZ, SamplingProfiler

        with self._profile_lock:
            profiler = self.profiler
            if action == "start":
                started = False
                if profiler is None:
                    registry = next(
                        (s for s in self.sources
                         if isinstance(s, MetricsRegistry)), None,
                    )
                    profiler = SamplingProfiler(
                        hz=hz or DEFAULT_HZ, registry=registry,
                    )
                    self.profiler = profiler
                    self._owns_profiler = True
                if not profiler.running:
                    if hz:
                        profiler.hz = max(1, min(int(hz), 1000))
                    profiler.start()
                    started = True
                return {
                    "running": True,
                    "started": started,
                    "hz": profiler.hz,
                    "samples": profiler.sample_count,
                }
            if action == "stop":
                stopped = False
                if profiler is not None and profiler.running:
                    profiler.stop()
                    stopped = True
                return {
                    "running": False,
                    "stopped": stopped,
                    "samples": (
                        profiler.sample_count if profiler is not None else 0
                    ),
                }
            if action == "snapshot":
                if profiler is None:
                    return {"running": False, "samples": 0,
                            "hint": "?action=start to begin sampling"}
                return profiler.summary()
            raise ValueError(
                "unknown profile action %r "
                "(expected start, stop or snapshot)" % (action,)
            )

    # ------------------------------------------------------------------
    # Route table (shared with the asyncio query service)
    # ------------------------------------------------------------------
    def build_router(self) -> Router:
        """The observability route table this server dispatches through.

        One :class:`~repro.telemetry.routes.Router` carrying ``/metrics``,
        ``/healthz``, ``/debug`` and ``/debug/*`` — the asyncio query
        service (:mod:`repro.service`) builds on the *same* table, so
        route matching, ``/healthz`` semantics, and error bodies are
        identical across both servers by construction.
        """
        router = Router()
        router.add("GET", "/metrics", self._route_metrics)
        router.add("GET", "/healthz", self._route_healthz)
        router.add("GET", "/debug", self._route_debug_index)
        router.add("GET", "/debug/", self._route_debug_index)
        router.add("GET", "/debug/profile", self._route_profile)
        router.add_prefix("GET", "/debug/", self._route_debug)
        return router

    def _route_metrics(self, request: RouteRequest) -> RouteResponse:
        return RouteResponse(
            200, PROMETHEUS_CONTENT_TYPE, self.exposition().encode("utf-8")
        )

    def _route_healthz(self, request: RouteRequest) -> RouteResponse:
        return json_response(200, self.health(), request, title="/healthz")

    def _route_debug_index(self, request: RouteRequest) -> RouteResponse:
        return json_response(200, self.debug_index(), request, title="/debug")

    def _route_profile(self, request: RouteRequest) -> RouteResponse:
        hz_value = request.param("hz")
        try:
            hz = int(hz_value) if hz_value else None
        except ValueError:
            return error_response(400, "hz must be an integer")
        action = request.param("action", "snapshot")
        fmt = request.param("format", "")
        if action == "snapshot" and fmt in ("speedscope", "folded"):
            profiler = self.profiler
            if profiler is None:
                return error_response(404, "no profiler: ?action=start first")
            if fmt == "speedscope":
                body = json.dumps(
                    profiler.speedscope(), default=repr
                ).encode("utf-8")
                return RouteResponse(200, "application/json", body)
            body = (profiler.folded_text(by="phase") + "\n").encode("utf-8")
            return RouteResponse(200, "text/plain; charset=utf-8", body)
        try:
            payload = self.profile_action(action, hz=hz)
        except ValueError as exc:
            return error_response(400, str(exc))
        return json_response(200, payload, request, title="/debug/profile")

    def _route_debug(self, request: RouteRequest) -> RouteResponse:
        name = request.rest
        provider = self.debug.get(name)
        if provider is None:
            return error_response(
                404,
                "unknown debug route %r" % name,
                routes=self.debug_index()["routes"],
            )
        payload = provider()  # Router.dispatch maps exceptions to the 500 shape
        return json_response(200, payload, request, title="/debug/%s" % name)

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return "http://%s:%d" % (self.host, self.port)

    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            return self
        server = self
        router = self.build_router()

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
                server.requests_served += 1
                path, _, query = self.path.partition("?")
                request = RouteRequest("GET", path, query)
                response = router.dispatch(request)
                self.send_response(response.status)
                self.send_header("Content-Type", response.content_type)
                self.send_header("Content-Length", str(len(response.body)))
                for name, value in response.headers.items():
                    self.send_header(name, value)
                self.end_headers()
                self.wfile.write(response.body)

            def log_message(self, fmt, *args):  # silence per-request stderr
                pass

        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._started_at = time.time()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)
        self._httpd = None  # type: ignore[assignment]
        self._thread = None  # type: ignore[assignment]
        with self._profile_lock:
            if self._owns_profiler and self.profiler is not None:
                self.profiler.stop()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    def __repr__(self) -> str:
        state = "serving on %s" % self.url if self._httpd else "stopped"
        return "MetricsServer(%s, %d sources)" % (state, len(self.sources))

#: Back-compat alias; the renderer moved to repro.telemetry.routes.
_render_html = render_html
