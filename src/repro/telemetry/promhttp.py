"""A stdlib-only ``/metrics`` + ``/healthz`` + ``/debug/*`` HTTP endpoint.

:class:`MetricsServer` wraps :class:`http.server.ThreadingHTTPServer` and
serves the Prometheus text exposition of one or more
:class:`~repro.telemetry.metrics.MetricsRegistry` objects (or arbitrary
callables returning exposition text) —

* ``GET /metrics`` — concatenated ``MetricsRegistry.to_prometheus()``
  output, ``Content-Type: text/plain; version=0.0.4``;
* ``GET /healthz`` — a JSON liveness document (status, uptime, request
  count);
* ``GET /debug`` and ``GET /debug/<name>`` — live JSON snapshots from
  the registered debug providers (``debug=`` / :meth:`~MetricsServer.add_debug`);
  :meth:`repro.engine.Session.debug_providers` wires ``queries`` (in
  flight + recent, with trace ids), ``plans`` (EXPLAIN cache joined with
  estimate accuracy), and ``stats`` (the query-stats store dump).
  Append ``?format=html`` for a self-contained HTML view;
* ``GET /debug/profile`` — the live sampling profiler
  (:mod:`repro.telemetry.profiler`): ``?action=start[&hz=N]`` /
  ``?action=stop`` control it (idempotent, safe under concurrent
  requests), the default snapshot reports sample counts and per-phase
  breakdown, and ``?format=speedscope`` / ``?format=folded`` download
  the flamegraph exports;
* anything else — 404.

Providers are invoked per request under the threading server, so the
payloads are point-in-time snapshots that stay live while queries are in
flight.  The server binds on construction-time host/port (port ``0``
picks a free one, exposed via :attr:`MetricsServer.port` /
:attr:`MetricsServer.url`) and serves from a daemon thread, so it can
sit next to a long-lived :class:`~repro.engine.Session` without blocking
it.  ``repro serve-metrics`` is the CLI wrapper.
"""

from __future__ import annotations

import html as _html
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from .metrics import MetricsRegistry

#: The Prometheus text exposition content type.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

Source = Union[MetricsRegistry, Callable[[], str]]

DebugProvider = Callable[[], Any]


class MetricsServer:
    """Serve Prometheus metrics and a health check from a daemon thread.

    ::

        server = MetricsServer([session.planner.metrics])
        server.start()
        ... curl http://127.0.0.1:<server.port>/metrics ...
        server.stop()

    Also usable as a context manager (starts on enter, stops on exit).
    """

    def __init__(
        self,
        sources: Union[Source, Sequence[Source]],
        host: str = "127.0.0.1",
        port: int = 0,
        namespace: str = "repro",
        debug: Optional[Dict[str, DebugProvider]] = None,
        profiler=None,
    ):
        if isinstance(sources, MetricsRegistry) or callable(sources):
            sources = [sources]
        self.sources: List[Source] = list(sources)
        self.namespace = namespace
        self.host = host
        #: ``name → zero-arg callable`` behind ``/debug/<name>``.
        self.debug: Dict[str, DebugProvider] = dict(debug) if debug else {}
        #: The :class:`~repro.telemetry.profiler.SamplingProfiler` behind
        #: ``/debug/profile`` — injectable; created lazily on the first
        #: ``?action=start`` otherwise.
        self.profiler = profiler
        self._profile_lock = threading.Lock()
        self._owns_profiler = False
        self._requested_port = port
        self._httpd: ThreadingHTTPServer = None  # type: ignore[assignment]
        self._thread: threading.Thread = None  # type: ignore[assignment]
        self._started_at = 0.0
        self.requests_served = 0

    def add_debug(self, name: str, provider: DebugProvider) -> "MetricsServer":
        """Register (or replace) the ``/debug/<name>`` provider."""
        self.debug[name] = provider
        return self

    # ------------------------------------------------------------------
    def exposition(self) -> str:
        """The concatenated Prometheus text for every source."""
        chunks = []
        for source in self.sources:
            if isinstance(source, MetricsRegistry):
                chunks.append(source.to_prometheus(namespace=self.namespace))
            else:
                chunks.append(source())
        return "".join(chunk for chunk in chunks if chunk)

    def health(self) -> dict:
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self._started_at,
            "requests_served": self.requests_served,
            "sources": len(self.sources),
            "debug_routes": sorted(self.debug),
        }

    def debug_index(self) -> dict:
        """The ``/debug`` payload: the routes this server exposes."""
        routes = sorted(
            {"/debug/%s" % name for name in self.debug} | {"/debug/profile"}
        )
        return {
            "routes": routes,
            "hint": "append ?format=html for a browser view",
        }

    # ------------------------------------------------------------------
    # /debug/profile (repro.telemetry.profiler)
    # ------------------------------------------------------------------
    def profile_action(self, action: str, hz: Optional[int] = None) -> dict:
        """Drive the live profiler: ``start`` / ``stop`` / ``snapshot``.

        Thread-safe and idempotent — concurrent start/stop requests race
        only for the lock, never double-start a sampler thread or leave
        hooks behind.  ``start`` lazily creates a profiler (sampling the
        first registry source for GC gauges) and registers it as the
        module-level current one, so sessions in this process attach
        per-query samples and obslog slow records pick the digest up.
        """
        from .profiler import DEFAULT_HZ, SamplingProfiler

        with self._profile_lock:
            profiler = self.profiler
            if action == "start":
                started = False
                if profiler is None:
                    registry = next(
                        (s for s in self.sources
                         if isinstance(s, MetricsRegistry)), None,
                    )
                    profiler = SamplingProfiler(
                        hz=hz or DEFAULT_HZ, registry=registry,
                    )
                    self.profiler = profiler
                    self._owns_profiler = True
                if not profiler.running:
                    if hz:
                        profiler.hz = max(1, min(int(hz), 1000))
                    profiler.start()
                    started = True
                return {
                    "running": True,
                    "started": started,
                    "hz": profiler.hz,
                    "samples": profiler.sample_count,
                }
            if action == "stop":
                stopped = False
                if profiler is not None and profiler.running:
                    profiler.stop()
                    stopped = True
                return {
                    "running": False,
                    "stopped": stopped,
                    "samples": (
                        profiler.sample_count if profiler is not None else 0
                    ),
                }
            if action == "snapshot":
                if profiler is None:
                    return {"running": False, "samples": 0,
                            "hint": "?action=start to begin sampling"}
                return profiler.summary()
            raise ValueError(
                "unknown profile action %r "
                "(expected start, stop or snapshot)" % (action,)
            )

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return "http://%s:%d" % (self.host, self.port)

    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            return self
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
                server.requests_served += 1
                path, _, query = self.path.partition("?")
                if path == "/metrics":
                    body = server.exposition().encode("utf-8")
                    self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
                elif path == "/healthz":
                    self._reply_json(200, server.health(), query)
                elif path == "/debug" or path == "/debug/":
                    self._reply_json(200, server.debug_index(), query)
                elif path == "/debug/profile":
                    self._reply_profile(query)
                elif path.startswith("/debug/"):
                    self._reply_debug(path[len("/debug/"):], query)
                else:
                    self._reply(404, "text/plain; charset=utf-8",
                                b"not found: try /metrics, /healthz or /debug\n")

            def _reply_profile(self, query: str):
                from urllib.parse import parse_qs

                params = parse_qs(query)
                action = params.get("action", ["snapshot"])[0]
                hz_values = params.get("hz")
                try:
                    hz = int(hz_values[0]) if hz_values else None
                except ValueError:
                    self._reply_json(
                        400, {"error": "hz must be an integer"}, query)
                    return
                fmt = params.get("format", [""])[0]
                if action == "snapshot" and fmt in ("speedscope", "folded"):
                    profiler = server.profiler
                    if profiler is None:
                        self._reply_json(
                            404,
                            {"error": "no profiler: ?action=start first"},
                            query,
                        )
                        return
                    if fmt == "speedscope":
                        body = json.dumps(
                            profiler.speedscope(), default=repr
                        ).encode("utf-8")
                        self._reply(200, "application/json", body)
                    else:
                        body = (profiler.folded_text(by="phase") + "\n").encode(
                            "utf-8")
                        self._reply(200, "text/plain; charset=utf-8", body)
                    return
                try:
                    payload = server.profile_action(action, hz=hz)
                except ValueError as exc:
                    self._reply_json(400, {"error": str(exc)}, query)
                    return
                except Exception as exc:  # surface, never kill the server
                    self._reply_json(
                        500, {"error": "%s: %s" % (type(exc).__name__, exc)},
                        query,
                    )
                    return
                self._reply_json(200, payload, query, title="/debug/profile")

            def _reply_debug(self, name: str, query: str):
                provider = server.debug.get(name)
                if provider is None:
                    self._reply_json(
                        404,
                        {
                            "error": "unknown debug route %r" % name,
                            "routes": server.debug_index()["routes"],
                        },
                        query,
                    )
                    return
                try:
                    payload = provider()
                except Exception as exc:  # surface, never kill the server
                    self._reply_json(
                        500, {"error": "%s: %s" % (type(exc).__name__, exc)},
                        query,
                    )
                    return
                self._reply_json(200, payload, query, title="/debug/%s" % name)

            def _reply_json(self, status: int, payload, query: str,
                            title: str = "debug"):
                if "format=html" in query:
                    body = _render_html(title, payload).encode("utf-8")
                    self._reply(status, "text/html; charset=utf-8", body)
                else:
                    body = json.dumps(payload, default=repr).encode("utf-8")
                    self._reply(status, "application/json", body)

            def _reply(self, status: int, content_type: str, body: bytes):
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt, *args):  # silence per-request stderr
                pass

        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._started_at = time.time()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)
        self._httpd = None  # type: ignore[assignment]
        self._thread = None  # type: ignore[assignment]
        with self._profile_lock:
            if self._owns_profiler and self.profiler is not None:
                self.profiler.stop()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    def __repr__(self) -> str:
        state = "serving on %s" % self.url if self._httpd else "stopped"
        return "MetricsServer(%s, %d sources)" % (state, len(self.sources))


def _render_html(title: str, payload: Any) -> str:
    """A self-contained HTML view of a debug payload: the pretty-printed
    JSON in a ``<pre>``, no external assets, auto-refresh every 5 s."""
    pretty = json.dumps(payload, indent=2, sort_keys=True, default=repr)
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        "<meta http-equiv='refresh' content='5'>"
        "<title>%(title)s</title>"
        "<style>body{font-family:monospace;margin:1.5em;background:#fafafa}"
        "pre{background:#fff;border:1px solid #ddd;padding:1em;"
        "overflow-x:auto}</style></head>"
        "<body><h1>%(title)s</h1><pre>%(body)s</pre></body></html>"
        % {
            "title": _html.escape(title),
            "body": _html.escape(pretty),
        }
    )
