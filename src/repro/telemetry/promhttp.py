"""A stdlib-only ``/metrics`` + ``/healthz`` HTTP endpoint.

:class:`MetricsServer` wraps :class:`http.server.ThreadingHTTPServer` and
serves the Prometheus text exposition of one or more
:class:`~repro.telemetry.metrics.MetricsRegistry` objects (or arbitrary
callables returning exposition text) —

* ``GET /metrics`` — concatenated ``MetricsRegistry.to_prometheus()``
  output, ``Content-Type: text/plain; version=0.0.4``;
* ``GET /healthz`` — a JSON liveness document (status, uptime, request
  count);
* anything else — 404.

The server binds on construction-time host/port (port ``0`` picks a free
one, exposed via :attr:`MetricsServer.port` / :attr:`MetricsServer.url`)
and serves from a daemon thread, so it can sit next to a long-lived
:class:`~repro.engine.Session` without blocking it.  ``repro
serve-metrics`` is the CLI wrapper.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, List, Sequence, Union

from .metrics import MetricsRegistry

#: The Prometheus text exposition content type.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

Source = Union[MetricsRegistry, Callable[[], str]]


class MetricsServer:
    """Serve Prometheus metrics and a health check from a daemon thread.

    ::

        server = MetricsServer([session.planner.metrics])
        server.start()
        ... curl http://127.0.0.1:<server.port>/metrics ...
        server.stop()

    Also usable as a context manager (starts on enter, stops on exit).
    """

    def __init__(
        self,
        sources: Union[Source, Sequence[Source]],
        host: str = "127.0.0.1",
        port: int = 0,
        namespace: str = "repro",
    ):
        if isinstance(sources, MetricsRegistry) or callable(sources):
            sources = [sources]
        self.sources: List[Source] = list(sources)
        self.namespace = namespace
        self.host = host
        self._requested_port = port
        self._httpd: ThreadingHTTPServer = None  # type: ignore[assignment]
        self._thread: threading.Thread = None  # type: ignore[assignment]
        self._started_at = 0.0
        self.requests_served = 0

    # ------------------------------------------------------------------
    def exposition(self) -> str:
        """The concatenated Prometheus text for every source."""
        chunks = []
        for source in self.sources:
            if isinstance(source, MetricsRegistry):
                chunks.append(source.to_prometheus(namespace=self.namespace))
            else:
                chunks.append(source())
        return "".join(chunk for chunk in chunks if chunk)

    def health(self) -> dict:
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self._started_at,
            "requests_served": self.requests_served,
            "sources": len(self.sources),
        }

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return "http://%s:%d" % (self.host, self.port)

    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            return self
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
                server.requests_served += 1
                if self.path.split("?", 1)[0] == "/metrics":
                    body = server.exposition().encode("utf-8")
                    self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
                elif self.path.split("?", 1)[0] == "/healthz":
                    body = json.dumps(server.health()).encode("utf-8")
                    self._reply(200, "application/json", body)
                else:
                    self._reply(404, "text/plain; charset=utf-8",
                                b"not found: try /metrics or /healthz\n")

            def _reply(self, status: int, content_type: str, body: bytes):
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt, *args):  # silence per-request stderr
                pass

        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._started_at = time.time()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)
        self._httpd = None  # type: ignore[assignment]
        self._thread = None  # type: ignore[assignment]

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    def __repr__(self) -> str:
        state = "serving on %s" % self.url if self._httpd else "stopped"
        return "MetricsServer(%s, %d sources)" % (state, len(self.sources))
