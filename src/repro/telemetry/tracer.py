"""Hierarchical execution tracing.

A :class:`Tracer` records a forest of nested, monotonic-clock
:class:`Span` objects::

    tracer = Tracer()
    with tracer.span("session.query", query="q1"):
        with tracer.span("planner.profile") as sp:
            sp.set(cache="miss")

Spans nest per *thread* (the active-span stack is thread-local) while the
completed roots are collected on the tracer under a lock, so one tracer can
observe a multi-threaded evaluation.

Tracing is **off by default**: the module-level current tracer is a
:class:`NullTracer` whose :meth:`~NullTracer.span` returns a shared no-op
span — no allocation, no clock reads, no bookkeeping — so instrumentation
left in hot paths is close to free (the overhead gate lives in
``tests/test_telemetry.py``).  Hot loops that compute span *attributes*
should additionally guard on ``tracer.enabled``.

Install a real tracer for the duration of a block with :func:`tracing`::

    with tracing() as tracer:
        session.query(q)
    print(render_trace(tracer))
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One timed, attributed section of work.  Also its own context
    manager: entering starts the clock and links the span under the
    tracer's current span; exiting stops the clock."""

    __slots__ = ("name", "attrs", "start", "end", "children", "_tracer")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None,
                 tracer: "Optional[Tracer]" = None):
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.start: float = 0.0
        self.end: Optional[float] = None
        self.children: List[Span] = []
        self._tracer = tracer

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; returns the span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer is not None:
            stack = tracer._stack()
            if stack:
                stack[-1].children.append(self)
            else:
                with tracer._lock:
                    tracer.roots.append(self)
            stack.append(self)
            registry = _span_registry
            if registry is not None:
                registry[threading.get_ident()] = self
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self.end = time.perf_counter()
        tracer = self._tracer
        if tracer is not None:
            stack = tracer._stack()
            if stack and stack[-1] is self:
                stack.pop()
            registry = _span_registry
            if registry is not None:
                ident = threading.get_ident()
                if stack:
                    registry[ident] = stack[-1]
                else:
                    registry.pop(ident, None)
        return False

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Iterator["Span"]:
        """Every descendant (including self) named ``name``."""
        for span in self.walk():
            if span.name == name:
                yield span

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:
        return "Span(%r, %.6fs, %d children)" % (
            self.name, self.duration, len(self.children),
        )


class Tracer:
    """A recording tracer: nested spans, thread-safe root collection."""

    enabled = True

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: Any) -> Span:
        """A new span, to be used as a context manager."""
        return Span(name, attrs, tracer=self)

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None

    def clear(self) -> None:
        with self._lock:
            self.roots = []

    def walk(self) -> Iterator[Span]:
        """Every recorded span, pre-order across all roots."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> Iterator[Span]:
        """Every recorded span named ``name``."""
        for span in self.walk():
            if span.name == name:
                yield span

    def total_seconds(self, name: str) -> float:
        """Summed duration of all spans named ``name``."""
        return sum(s.duration for s in self.find(name))

    def __repr__(self) -> str:
        return "Tracer(%d roots, %d spans)" % (
            len(self.roots), sum(1 for _ in self.walk()),
        )


class _NullSpan:
    """Shared no-op span: the entire disabled-tracing fast path."""

    __slots__ = ()
    name = "null"
    attrs: Dict[str, Any] = {}
    children: List[Span] = []
    duration = 0.0

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost disabled tracer (module-level default)."""

    enabled = False
    roots: List[Span] = []

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def current(self) -> None:
        return None

    def clear(self) -> None:
        pass

    def walk(self) -> Iterator[Span]:
        return iter(())

    def find(self, name: str) -> Iterator[Span]:
        return iter(())

    def total_seconds(self, name: str) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "NullTracer()"


NULL_TRACER = NullTracer()

# ---------------------------------------------------------------------------
# Cross-thread active-span registry (sampling-profiler hook)
# ---------------------------------------------------------------------------
# The per-thread span stack is thread-local, so the sampling profiler's
# daemon thread cannot see which span is open on the threads it samples.
# When a profiler is running it installs a plain dict here (thread ident
# -> innermost open Span) and Span.__enter__/__exit__ keep it current.
# The hook costs one module-global read + ``is None`` check per recorded
# span transition, and nothing at all on the NullTracer fast path (null
# spans never reach the registry code).
_span_registry: Optional[Dict[int, Span]] = None


def set_span_registry(
    registry: Optional[Dict[int, Span]],
) -> Optional[Dict[int, Span]]:
    """Install (or, with ``None``, remove) the cross-thread active-span
    registry; returns the previously installed one so callers can
    restore it."""
    global _span_registry
    previous = _span_registry
    _span_registry = registry
    return previous


def active_span_for_thread(ident: int) -> Optional[Span]:
    """The innermost open span on the thread with the given ident, or
    ``None`` (always ``None`` unless a span registry is installed)."""
    registry = _span_registry
    if registry is None:
        return None
    return registry.get(ident)


# ---------------------------------------------------------------------------
# Module-level current tracer (the instrumentation sites' lookup point)
# ---------------------------------------------------------------------------
_current = NULL_TRACER


def current_tracer():
    """The tracer instrumentation sites record into (NullTracer when
    tracing is disabled)."""
    return _current


def set_tracer(tracer) -> object:
    """Install ``tracer`` as current (``None`` → the null tracer);
    returns the previously installed tracer."""
    global _current
    previous = _current
    _current = tracer if tracer is not None else NULL_TRACER
    return previous


def trace_span(name: str, **attrs: Any):
    """``current_tracer().span(...)`` — the one-line instrumentation call."""
    return _current.span(name, **attrs)


@contextmanager
def tracing(tracer: Optional[Tracer] = None):
    """Install a (fresh, by default) recording tracer for the block."""
    installed = tracer if tracer is not None else Tracer()
    previous = set_tracer(installed)
    try:
        yield installed
    finally:
        set_tracer(previous)
