"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError`, so callers can
catch the whole family with a single ``except`` clause while still being able
to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class SchemaError(ReproError):
    """A relational object violates its schema (wrong arity, unknown relation,
    or a ground fact containing variables)."""


class NotWellDesignedError(ReproError):
    """A pattern tree violates the well-designedness condition of
    Definition 1(2): the nodes mentioning some variable are not connected."""


class NotGroundError(ReproError):
    """An operation that requires ground (variable-free) input received an
    atom or tuple containing variables."""


class ConstantsNotSupportedError(ReproError):
    """Approximation machinery was invoked on a query with constants.

    Section 5 of the paper explicitly restricts approximations to WDPTs
    without constants (the notion is not well understood otherwise, even for
    conjunctive queries); this library enforces the same restriction.
    """


class ClassMembershipError(ReproError):
    """An algorithm requiring a syntactic class (e.g. ``g-TW(k)`` for the
    Theorem 8 partial-evaluation algorithm) was applied to a query outside
    the class, and the caller asked for strict checking."""


class DecompositionError(ReproError):
    """A tree or hypertree decomposition is structurally invalid."""


class ParseError(ReproError):
    """The SPARQL-algebra parser could not parse its input."""


class BudgetExceededError(ReproError):
    """A bounded search (approximation / membership witness search) exceeded
    its configured work budget before reaching a definitive answer."""


class ResourceBudgetExceeded(ReproError):
    """A query ran past a hard resource budget (wall time, memory, or
    intermediate-relation cardinality) configured on the session — see
    :class:`repro.telemetry.resources.ResourceBudget`.  The partially
    computed result is discarded; the exception carries the offending
    dimension, the limit, the observed value, and — when the query ran
    under a trace context — the ``trace_id`` correlating the kill with
    its obslog lines and spans."""

    def __init__(
        self,
        dimension: str,
        limit: float,
        observed: float,
        trace_id: "str | None" = None,
    ):
        self.dimension = dimension
        self.limit = limit
        self.observed = observed
        self.trace_id = trace_id
        message = "hard %s budget exceeded: observed %g > limit %g" % (
            dimension, observed, limit,
        )
        if trace_id is not None:
            message += " [trace %s]" % trace_id
        super().__init__(message)
