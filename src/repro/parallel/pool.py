"""Worker pools: the execution substrate of :mod:`repro.parallel`.

A :class:`WorkerPool` wraps a :mod:`concurrent.futures` executor —
``ThreadPoolExecutor`` by default, ``ProcessPoolExecutor`` on request —
behind an API shaped for the query path:

* :meth:`WorkerPool.map_tasks` runs a function over items **in order**,
  propagating the submitting thread's active
  :class:`~repro.telemetry.resources.ResourceMonitor` into the worker for
  the duration of each task, so resource budgets are accounted (and hard
  limits enforced) across workers;
* every worker carries a stable **worker id** (``t1``/``t2``… for
  threads, ``p<pid>`` for processes) exposed through
  :func:`current_worker_id` — the query log stamps it on events emitted
  from inside a worker;
* tasks submitted *from* a worker run **inline** (sequentially, on the
  worker itself).  This makes nested parallelism — a batch worker whose
  query fans its own subtrees out — deadlock-free by construction: only
  the outermost dispatch uses the pool.

The pool the evaluators should dispatch to is installed dynamically with
:func:`use_pool` (a thread-local, mirroring
``repro.telemetry.tracer.current_tracer``)::

    with WorkerPool(jobs=4) as pool, use_pool(pool):
        evaluate(p, db)          # independent subtrees fan out

With no installed pool every dispatch site falls through to its ordinary
sequential loop — the disabled path is one thread-local read.

Threads vs processes: CPython's GIL serialises pure-Python compute, so
**thread** pools overlap latency (and exercise the concurrency paths
deterministically) while **process** pools deliver CPU parallelism at the
cost of pickling task envelopes; :mod:`repro.parallel.batch` supports
both, intra-query parallelism is thread-only.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Iterator, List, Optional, Sequence

from ..telemetry import resources as _resources
from ..telemetry.context import current_span_id, current_trace_id, set_trace_context

__all__ = [
    "WorkerPool",
    "current_pool",
    "current_worker_id",
    "effective_cpu_count",
    "use_pool",
]

#: Executor kinds accepted by :class:`WorkerPool` and the Session API.
EXECUTORS = ("thread", "process")


def effective_cpu_count() -> int:
    """The CPUs actually available to this process (cgroup/affinity aware
    where the platform supports it) — the default worker count."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# Thread-local dispatch context
# ---------------------------------------------------------------------------
_local = threading.local()


def current_pool() -> "Optional[WorkerPool]":
    """The pool parallel-safe dispatch sites fan out to (``None`` when
    parallelism is disabled *or* when called from inside a worker — nested
    dispatch runs inline)."""
    return getattr(_local, "pool", None)


def current_worker_id() -> Optional[str]:
    """The id of the pool worker running this thread, or ``None`` outside
    a worker.  The query log attaches it to events as ``worker``."""
    return getattr(_local, "worker_id", None)


@contextmanager
def use_pool(pool: "Optional[WorkerPool]") -> Iterator["Optional[WorkerPool]"]:
    """Install ``pool`` as this thread's dispatch target for the block."""
    previous = getattr(_local, "pool", None)
    _local.pool = pool
    try:
        yield pool
    finally:
        _local.pool = previous


class WorkerPool:
    """A bounded pool of thread or process workers.

    >>> with WorkerPool(jobs=2) as pool:
    ...     pool.map_tasks(lambda x: x * x, [1, 2, 3])
    [1, 4, 9]

    ``jobs=1`` (or fewer items than 2) short-circuits to an inline loop —
    a ``WorkerPool`` is always safe to use unconditionally.

    With ``metrics=`` (a :class:`~repro.telemetry.metrics.MetricsRegistry`)
    the pool exports saturation gauges, labelled by executor kind, so
    ``/metrics`` shows pool pressure: ``pool.queue_depth`` (submitted,
    not yet started), ``pool.active_workers`` (running right now; for
    process pools an estimate — the parent cannot observe task starts
    inside workers), and a ``pool.tasks_total`` counter.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        executor: str = "thread",
        initializer: Optional[Callable[..., None]] = None,
        initargs: tuple = (),
        metrics=None,
    ):
        if executor not in EXECUTORS:
            raise ValueError(
                "unknown executor %r (expected one of %s)"
                % (executor, ", ".join(EXECUTORS))
            )
        self.jobs = effective_cpu_count() if jobs is None else max(1, int(jobs))
        self.kind = executor
        self.metrics = metrics
        self._executor = None
        self._initializer = initializer
        self._initargs = initargs
        self._worker_seq = 0
        self._queued = 0
        self._active = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Executor lifecycle (created lazily: a jobs=1 pool never spawns)
    # ------------------------------------------------------------------
    def _ensure_executor(self):
        if self._executor is None:
            if self.kind == "process":
                self._executor = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    initializer=self._initializer,
                    initargs=self._initargs,
                )
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.jobs, thread_name_prefix="repro-worker"
                )
        return self._executor

    def close(self) -> None:
        """Shut the executor down (idempotent; waits for running tasks)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def map_tasks(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        chunksize: int = 1,
    ) -> List[Any]:
        """``[fn(item) for item in items]``, fanned out over the workers.

        Results come back **in input order** (determinism is the batch
        layer's contract).  The first task exception propagates to the
        caller.  Runs inline when the pool is serial, when there is
        nothing to overlap, or when the calling thread is itself a pool
        worker (nested dispatch).
        """
        items = list(items)
        if self.jobs <= 1 or len(items) < 2 or getattr(_local, "in_worker", False):
            if self.metrics is not None and items:
                self.metrics.counter(
                    "pool.tasks_total", {"executor": self.kind}).inc(len(items))
            return [fn(item) for item in items]
        if self.kind == "process":
            executor = self._ensure_executor()
            self._note_submitted(len(items))
            # The parent cannot see task starts inside worker processes;
            # report the whole map as queued with every worker busy, and
            # settle both gauges when it completes.
            self._note_process_active(min(self.jobs, len(items)))
            try:
                return list(executor.map(fn, items, chunksize=chunksize))
            finally:
                self._note_process_done(len(items))
        executor = self._ensure_executor()
        self._note_submitted(len(items))
        monitor = _resources.current_monitor()
        run = self._thread_envelope(fn, monitor)
        return list(executor.map(run, items))

    def submit(self, fn: Callable[..., Any], *args: Any):
        """Submit one task to the executor **unconditionally**, returning
        its :class:`concurrent.futures.Future`.

        Unlike :meth:`map_tasks` this never short-circuits to an inline
        call: it exists for callers that use the pool as a *dedicated
        remote process* — the sharded backend (:mod:`repro.dist`) keeps
        one single-worker process pool per shard and must land every RPC
        on that process even though ``jobs == 1``.  The raw executor
        exceptions (notably ``BrokenProcessPool`` when the worker died)
        surface through the future, so callers can detect dead workers.
        """
        executor = self._ensure_executor()
        self._note_submitted(1)
        future = executor.submit(fn, *args)
        if self.metrics is not None:
            future.add_done_callback(lambda _f: self._note_process_done(1))
        return future

    # ------------------------------------------------------------------
    # Saturation gauges (repro.telemetry.metrics)
    # ------------------------------------------------------------------
    def _publish_gauges_locked(self) -> None:
        labels = {"executor": self.kind}
        self.metrics.gauge("pool.queue_depth", labels).set(self._queued)
        self.metrics.gauge("pool.active_workers", labels).set(self._active)

    def _note_submitted(self, n: int) -> None:
        if self.metrics is None:
            return
        self.metrics.counter(
            "pool.tasks_total", {"executor": self.kind}).inc(n)
        with self._lock:
            self._queued += n
            self._publish_gauges_locked()

    def _note_started(self) -> None:
        if self.metrics is None:
            return
        with self._lock:
            self._queued -= 1
            self._active += 1
            self._publish_gauges_locked()

    def _note_finished(self) -> None:
        if self.metrics is None:
            return
        with self._lock:
            self._active -= 1
            self._publish_gauges_locked()

    def _note_process_active(self, n: int) -> None:
        if self.metrics is None:
            return
        with self._lock:
            self._active += n
            self._publish_gauges_locked()

    def _note_process_done(self, n_items: int) -> None:
        if self.metrics is None:
            return
        with self._lock:
            self._queued = max(0, self._queued - n_items)
            self._active = max(0, self._active - min(self.jobs, n_items))
            self._publish_gauges_locked()

    def _thread_envelope(
        self, fn: Callable[[Any], Any], monitor
    ) -> Callable[[Any], Any]:
        """Wrap ``fn`` for execution on a worker thread: mark the thread
        as a worker (nested dispatch → inline), stamp its worker id,
        install the submitter's resource monitor so budget accounting
        crosses the thread boundary, and carry the submitter's trace
        context so every span/obslog line a worker emits shares the
        query's ``trace_id``."""
        trace_id = current_trace_id()
        span_id = current_span_id()

        def run(item: Any) -> Any:
            _local.in_worker = True
            if getattr(_local, "worker_id", None) is None:
                with self._lock:
                    self._worker_seq += 1
                    _local.worker_id = "t%d" % self._worker_seq
            previous = _resources.install_monitor(monitor)
            previous_trace = set_trace_context(trace_id, span_id)
            self._note_started()
            try:
                return fn(item)
            finally:
                self._note_finished()
                set_trace_context(*previous_trace)
                _resources.install_monitor(previous)
                _local.in_worker = False

        return run

    def __repr__(self) -> str:
        return "WorkerPool(jobs=%d, executor=%r)" % (self.jobs, self.kind)


def process_worker_id() -> str:
    """The worker id process-pool tasks report (``p<pid>``)."""
    return "p%d" % os.getpid()


def mark_process_worker() -> None:
    """Stamp the current (process-pool worker) thread with its id, so
    obslog events emitted inside the worker carry it."""
    _local.worker_id = process_worker_id()
    _local.in_worker = True
