"""Parallel and batched WDPT evaluation.

Two layers, one pool (:mod:`repro.parallel.pool`):

* **batch** — :func:`repro.parallel.batch.run_batch` fans independent
  queries over thread or process workers, sharing one warmed plan cache
  and merging per-worker telemetry deterministically (surfaced as
  ``Session.run_batch`` / ``Session.map``);
* **intra-query** — the evaluators in :mod:`repro.wdpt.evaluation`,
  :mod:`repro.wdpt.eval_tractable` and :mod:`repro.cqalgs.yannakakis`
  dispatch independent subtrees / semijoin passes to the installed pool
  at the nodes the planner marks parallel-safe.

``batch`` is re-exported lazily: it imports :mod:`repro.engine`, which
imports the evaluators, which import :mod:`repro.parallel.pool` — eager
re-export would close that cycle.
"""

from __future__ import annotations

from .pool import (
    EXECUTORS,
    WorkerPool,
    current_pool,
    current_worker_id,
    effective_cpu_count,
    use_pool,
)

__all__ = [
    "BatchResult",
    "EXECUTORS",
    "WorkerPool",
    "current_pool",
    "current_worker_id",
    "effective_cpu_count",
    "run_batch",
    "use_pool",
]


def __getattr__(name: str):
    if name in ("BatchResult", "run_batch"):
        from . import batch

        return getattr(batch, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
