"""Batched query evaluation: fan a list of queries over a worker pool.

The batch layer runs *independent* queries concurrently — the
embarrassingly-parallel outer loop of every benchmark sweep and of any
application evaluating a workload against one database.  Entry points are
:meth:`repro.engine.Session.run_batch` / :meth:`~repro.engine.Session.map`;
the function here does the work.

Two executors (:data:`repro.parallel.pool.EXECUTORS`):

* ``"thread"`` — workers share the session: one warmed
  :class:`~repro.planner.cache.PlanCache`, one (thread-safe) metrics
  registry, one obslog.  CPython's GIL serialises pure-Python compute, so
  this overlaps latency rather than adding CPU throughput — but it is
  cheap, needs no pickling, and exercises exactly the locking the
  process path relies on.
* ``"process"`` — workers are separate interpreters, each owning a
  private :class:`~repro.engine.Session` built once per worker from the
  pickled database (so its plan cache warms across the tasks it serves).
  Tasks ship back ``(index, value, usage, worker_id, metrics dump)``
  envelopes; the parent folds the per-task
  :meth:`~repro.telemetry.metrics.MetricsRegistry.dump` payloads into the
  session's registry **in task order**, making the merged metrics
  deterministic regardless of which worker ran which task.

Either way the contract is: ``run_batch(...).answers()`` equals the
sequential ``[session.query(q).answers for q in queries]`` exactly, and
per-query resource budgets (:mod:`repro.telemetry.resources`) are
enforced in whichever worker runs the query — a hard violation propagates
out of :func:`run_batch` just as it would out of ``session.query``.
"""

from __future__ import annotations

import time
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from ..telemetry.metrics import MetricsRegistry
from .pool import (
    EXECUTORS,
    current_worker_id,
    mark_process_worker,
    process_worker_id,
)

__all__ = ["BATCH_OPS", "BatchResult", "run_batch"]

#: Session operations a batch can fan out.
BATCH_OPS = ("query", "query_maximal", "ask")


class BatchResult:
    """The ordered outcome of one :func:`run_batch` call.

    ``results[i]`` corresponds to ``queries[i]`` — a
    :class:`~repro.engine.Result` for ``op="query"``/``"query_maximal"``,
    a ``bool`` for ``op="ask"`` — independent of executor, job count, and
    scheduling.  Sequence-like: iterable, indexable, sized.
    """

    __slots__ = ("op", "jobs", "executor", "results", "wall_seconds", "worker_ids")

    def __init__(
        self,
        op: str,
        jobs: int,
        executor: str,
        results: List[Any],
        wall_seconds: float,
        worker_ids: List[Optional[str]],
    ):
        self.op = op
        self.jobs = jobs
        self.executor = executor
        self.results = results
        self.wall_seconds = wall_seconds
        #: Per-task id of the worker that ran it (``None`` = ran inline).
        self.worker_ids = worker_ids

    def answers(self) -> List[Any]:
        """Per-query answer payloads: frozensets of mappings for the query
        operations, booleans for ``ask`` — the values the sequential loop
        would have produced, for direct equality checks."""
        if self.op == "ask":
            return list(self.results)
        return [result.answers for result in self.results]

    def workers_used(self) -> List[str]:
        """The distinct worker ids that served this batch, sorted."""
        return sorted({w for w in self.worker_ids if w is not None})

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> Any:
        return self.results[index]

    def __iter__(self) -> Iterator[Any]:
        return iter(self.results)

    def __repr__(self) -> str:
        return "BatchResult(op=%r, %d results, jobs=%d, executor=%r, %.4fs)" % (
            self.op, len(self.results), self.jobs, self.executor,
            self.wall_seconds,
        )


# ---------------------------------------------------------------------------
# Process-pool worker side (module-level: must pickle by reference)
# ---------------------------------------------------------------------------
_worker_session = None


def _init_process_worker(database, budgets, track_resources, cache=True) -> None:
    """Build this worker process's private session, once.  Its plan cache
    then warms across every task the worker serves; ``cache`` mirrors the
    parent session's result-cache setting."""
    global _worker_session
    from ..engine import Session

    mark_process_worker()
    _worker_session = Session(
        database, budgets=budgets, track_resources=track_resources, cache=cache
    )


def _run_process_task(task: Tuple[int, str, Any, Any]):
    """Run one ``(index, op, query, candidate)`` task on the worker's
    session and return a picklable envelope.  A fresh metrics registry is
    swapped in per task, so the dump shipped back is exactly this task's
    contribution — the parent merges the dumps in task order."""
    index, op, query, candidate = task
    session = _worker_session
    registry = MetricsRegistry()
    session.planner.metrics = registry
    usage = None
    if op == "ask":
        value = session.ask(query, candidate)
    elif op == "query_maximal":
        result = session.query_maximal(query)
        value, usage = result.answers, result.resources
    else:
        result = session.query(query)
        value, usage = result.answers, result.resources
    return (index, value, usage, process_worker_id(), registry.dump())


# ---------------------------------------------------------------------------
# The batch driver (parent side)
# ---------------------------------------------------------------------------
def run_batch(
    session,
    queries: Sequence[Any],
    jobs: Optional[int] = None,
    executor: Optional[str] = None,
    op: str = "query",
) -> BatchResult:
    """Evaluate ``queries`` against ``session``'s database, ``jobs`` at a
    time, preserving input order and sequential semantics exactly.

    ``op`` selects the session operation: ``"query"`` (default),
    ``"query_maximal"``, or ``"ask"`` — for ``ask``, ``queries`` is a
    sequence of ``(query, candidate)`` pairs.  ``jobs``/``executor``
    default to the session's configuration.  ``jobs=1`` runs the plain
    sequential loop (the parity baseline the tests compare against).
    """
    if op not in BATCH_OPS:
        raise ValueError(
            "unknown batch op %r (expected one of %s)" % (op, ", ".join(BATCH_OPS))
        )
    jobs = (session.jobs or 1) if jobs is None else max(1, int(jobs))
    kind = session.executor if executor is None else executor
    if kind not in EXECUTORS:
        raise ValueError(
            "unknown executor %r (expected one of %s)"
            % (kind, ", ".join(EXECUTORS))
        )
    tasks: List[Tuple[int, str, Any, Any]] = []
    for index, item in enumerate(queries):
        if op == "ask":
            query, candidate = item
        else:
            query, candidate = item, None
        tasks.append((index, op, query, candidate))

    log = session.obslog
    if log is not None:
        log.emit(
            "batch.start", op=op, queries=len(tasks), jobs=jobs, executor=kind
        )
    start = time.perf_counter()
    if kind == "process" and jobs > 1 and len(tasks) >= 2:
        results, worker_ids = _run_process_batch(session, tasks, jobs)
    else:
        results, worker_ids = _run_thread_batch(session, tasks, jobs, kind)
    wall = time.perf_counter() - start
    batch = BatchResult(op, jobs, kind, results, wall, worker_ids)
    if log is not None:
        log.emit(
            "batch.complete",
            op=op,
            queries=len(tasks),
            jobs=jobs,
            executor=kind,
            wall_seconds=wall,
            workers=batch.workers_used(),
        )
    return batch


def _run_thread_batch(session, tasks, jobs: int, kind: str):
    """Thread (or inline, ``jobs=1``) execution on the shared session."""

    def run(task):
        _, op, query, candidate = task
        if op == "ask":
            value = session.ask(query, candidate)
        elif op == "query_maximal":
            value = session.query_maximal(query)
        else:
            value = session.query(query)
        return (value, current_worker_id())

    pool = session._pool_for(jobs, "thread")
    outcomes = pool.map_tasks(run, tasks)
    results = [value for value, _ in outcomes]
    worker_ids = [worker for _, worker in outcomes]
    return results, worker_ids


def _run_process_batch(session, tasks, jobs: int):
    """Process execution: per-worker sessions, envelope merge in the
    parent.  Results are rebuilt against the *parent* session (queries
    parsed through its cache), so downstream ``Result`` conveniences —
    witnesses, EXPLAIN profiles — keep working."""
    from ..engine import Result

    pool = session._pool_for(jobs, "process")
    chunksize = max(1, len(tasks) // (jobs * 4))
    envelopes = pool.map_tasks(_run_process_task, tasks, chunksize=chunksize)
    results: List[Any] = []
    worker_ids: List[Optional[str]] = []
    for (index, op, query, _), envelope in zip(tasks, envelopes):
        env_index, value, usage, worker_id, dump = envelope
        assert env_index == index
        session.planner.metrics.merge_dump(dump)
        worker_ids.append(worker_id)
        if op == "ask":
            results.append(value)
        else:
            result = Result(session, session.parse(query), value)
            result.resources = usage
            results.append(result)
    return results, worker_ids
