"""Batched query evaluation: fan a list of queries over a worker pool.

The batch layer runs *independent* queries concurrently — the
embarrassingly-parallel outer loop of every benchmark sweep and of any
application evaluating a workload against one database.  Entry points are
:meth:`repro.engine.Session.run_batch` / :meth:`~repro.engine.Session.map`;
the function here does the work.

Two executors (:data:`repro.parallel.pool.EXECUTORS`):

* ``"thread"`` — workers share the session: one warmed
  :class:`~repro.planner.cache.PlanCache`, one (thread-safe) metrics
  registry, one obslog.  CPython's GIL serialises pure-Python compute, so
  this overlaps latency rather than adding CPU throughput — but it is
  cheap, needs no pickling, and exercises exactly the locking the
  process path relies on.
* ``"process"`` — workers are separate interpreters, each owning a
  private :class:`~repro.engine.Session` built once per worker from the
  pickled database (so its plan cache warms across the tasks it serves).
  Tasks ship back ``(index, value, usage, worker_id, metrics dump,
  obslog records, span dicts, stats dump, profile dump, shard)``
  envelopes (``shard`` is ``None`` for batch tasks; the shard workers of
  :mod:`repro.dist` reuse the same format with their shard label, see
  :func:`pack_envelope`); the
  parent folds
  the per-task :meth:`~repro.telemetry.metrics.MetricsRegistry.dump`
  payloads into the session's registry **in task order**, making the
  merged metrics deterministic regardless of which worker ran which
  task.  When the parent session has an obslog, a recording tracer, or
  a stats store, the corresponding worker-side payloads are absorbed the
  same way (:meth:`~repro.telemetry.obslog.QueryLog.absorb`,
  :func:`~repro.telemetry.export.span_from_dict`,
  :meth:`~repro.telemetry.insight.QueryStatsStore.merge_dump`).

Either executor, every task runs under the **batch's trace context**
(:mod:`repro.telemetry.context`): ``run_batch`` establishes one
``trace_id`` (reusing an ambient one when the caller already has a trace
in flight), the thread envelope carries it across threads, and process
tasks ship it inside the task tuple — so all spans and obslog lines of a
fanned-out batch stitch together under a single id.

Either way the contract is: ``run_batch(...).answers()`` equals the
sequential ``[session.query(q).answers for q in queries]`` exactly, and
per-query resource budgets (:mod:`repro.telemetry.resources`) are
enforced in whichever worker runs the query — a hard violation propagates
out of :func:`run_batch` just as it would out of ``session.query``.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..telemetry.context import ensure_trace_id, set_trace_context, trace_context
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.tracer import Tracer, current_tracer, tracing
from .pool import (
    EXECUTORS,
    current_worker_id,
    mark_process_worker,
    process_worker_id,
)

__all__ = ["BATCH_OPS", "BatchResult", "pack_envelope", "run_batch"]

#: Session operations a batch can fan out.
BATCH_OPS = ("query", "query_maximal", "ask")


class BatchResult:
    """The ordered outcome of one :func:`run_batch` call.

    ``results[i]`` corresponds to ``queries[i]`` — a
    :class:`~repro.engine.Result` for ``op="query"``/``"query_maximal"``,
    a ``bool`` for ``op="ask"`` — independent of executor, job count, and
    scheduling.  Sequence-like: iterable, indexable, sized.
    """

    __slots__ = ("op", "jobs", "executor", "results", "wall_seconds", "worker_ids")

    def __init__(
        self,
        op: str,
        jobs: int,
        executor: str,
        results: List[Any],
        wall_seconds: float,
        worker_ids: List[Optional[str]],
    ):
        self.op = op
        self.jobs = jobs
        self.executor = executor
        self.results = results
        self.wall_seconds = wall_seconds
        #: Per-task id of the worker that ran it (``None`` = ran inline).
        self.worker_ids = worker_ids

    def answers(self) -> List[Any]:
        """Per-query answer payloads: frozensets of mappings for the query
        operations, booleans for ``ask`` — the values the sequential loop
        would have produced, for direct equality checks."""
        if self.op == "ask":
            return list(self.results)
        return [result.answers for result in self.results]

    def workers_used(self) -> List[str]:
        """The distinct worker ids that served this batch, sorted."""
        return sorted({w for w in self.worker_ids if w is not None})

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> Any:
        return self.results[index]

    def __iter__(self) -> Iterator[Any]:
        return iter(self.results)

    def __repr__(self) -> str:
        return "BatchResult(op=%r, %d results, jobs=%d, executor=%r, %.4fs)" % (
            self.op, len(self.results), self.jobs, self.executor,
            self.wall_seconds,
        )


# ---------------------------------------------------------------------------
# Process-pool worker side (module-level: must pickle by reference)
# ---------------------------------------------------------------------------
def pack_envelope(
    index, value, usage, metrics_dump, records, span_dicts, stats_dump,
    profile_dump, shard=None,
):
    """Build the pickle-safe result envelope a process worker ships home.

    One format for every process-worker reply in the library: batch tasks
    leave ``shard`` as ``None``; the shard workers of :mod:`repro.dist`
    stamp their shard label (``"s0"``, ``"s1"``, …) so the parent can
    attribute spans, profiles, and metrics per shard.  The worker id is
    taken from the calling process.
    """
    return (
        index, value, usage, process_worker_id(), metrics_dump,
        records, span_dicts, stats_dump, profile_dump, shard,
    )


_worker_session = None
_worker_records: List[Dict[str, Any]] = []


def _collect_record(record: Dict[str, Any]) -> None:
    """Callable obslog sink of the worker session: buffer records so each
    task can ship its slice back inside the envelope."""
    _worker_records.append(record)


def _init_process_worker(
    database, budgets, track_resources, cache=True,
    want_obslog=False, want_stats=False,
) -> None:
    """Build this worker process's private session, once.  Its plan cache
    then warms across every task the worker serves; ``cache`` mirrors the
    parent session's result-cache setting.  ``want_obslog``/``want_stats``
    mirror the parent's observability configuration: when set, the worker
    session records obslog events (into the per-task buffer) and stats
    entries so the envelopes can carry them home."""
    global _worker_session
    from ..engine import Session
    from ..telemetry.obslog import QueryLog

    mark_process_worker()
    _worker_session = Session(
        database, budgets=budgets, track_resources=track_resources, cache=cache,
        obslog=QueryLog(sink=_collect_record) if want_obslog else None,
    )
    _worker_session._want_stats = want_stats


def _run_process_task(
    task: Tuple[int, str, Any, Any, Optional[str], bool, Optional[int]]
):
    """Run one ``(index, op, query, candidate, trace_id, want_trace,
    profile_hz)`` task on the worker's session and return a picklable
    envelope.  Fresh metrics/stats accumulators are swapped in per task,
    so the payloads shipped back are exactly this task's contribution —
    the parent merges them in task order.  The batch's ``trace_id`` is
    installed for the duration of the task, so every record and span the
    worker emits carries it.  ``profile_hz`` (set when the parent has a
    sampling profiler running) keeps a worker-local profiler running at
    that rate; the samples collected during the task ship home in the
    envelope and the parent absorbs them, so a parallel batch still
    yields one merged, trace-attributed profile."""
    index, op, query, candidate, trace_id, want_trace, profile_hz = task
    session = _worker_session
    profiler = None
    if profile_hz:
        from ..telemetry.profiler import ensure_profiler

        profiler = ensure_profiler(profile_hz)
        profiler.drain()  # keep only this task's samples for the envelope
    registry = MetricsRegistry()
    session.planner.metrics = registry
    if getattr(session, "_want_stats", False):
        from ..telemetry.insight import QueryStatsStore

        session.stats_store = QueryStatsStore()
    del _worker_records[:]
    tracer = Tracer() if want_trace else None
    usage = None
    with trace_context(trace_id):
        with tracing(tracer) if tracer is not None else nullcontext():
            span = (
                current_tracer().span(
                    "parallel.task",
                    index=index, op=op,
                    trace_id=trace_id, worker=process_worker_id(),
                )
            )
            with span:
                if op == "ask":
                    value = session.ask(query, candidate)
                elif op == "query_maximal":
                    result = session.query_maximal(query)
                    value, usage = result.answers, result.resources
                else:
                    result = session.query(query)
                    value, usage = result.answers, result.resources
    span_dicts = (
        [root.to_dict() for root in tracer.roots] if tracer is not None else []
    )
    stats_dump = (
        session.stats_store.dump() if session.stats_store is not None else None
    )
    profile_dump = profiler.dump(drain=True) if profiler is not None else None
    return pack_envelope(
        index, value, usage, registry.dump(),
        list(_worker_records), span_dicts, stats_dump, profile_dump,
    )


# ---------------------------------------------------------------------------
# The batch driver (parent side)
# ---------------------------------------------------------------------------
def run_batch(
    session,
    queries: Sequence[Any],
    jobs: Optional[int] = None,
    executor: Optional[str] = None,
    op: str = "query",
) -> BatchResult:
    """Evaluate ``queries`` against ``session``'s database, ``jobs`` at a
    time, preserving input order and sequential semantics exactly.

    ``op`` selects the session operation: ``"query"`` (default),
    ``"query_maximal"``, or ``"ask"`` — for ``ask``, ``queries`` is a
    sequence of ``(query, candidate)`` pairs.  ``jobs``/``executor``
    default to the session's configuration.  ``jobs=1`` runs the plain
    sequential loop (the parity baseline the tests compare against).
    """
    if op not in BATCH_OPS:
        raise ValueError(
            "unknown batch op %r (expected one of %s)" % (op, ", ".join(BATCH_OPS))
        )
    jobs = (session.jobs or 1) if jobs is None else max(1, int(jobs))
    kind = session.executor if executor is None else executor
    if kind not in EXECUTORS:
        raise ValueError(
            "unknown executor %r (expected one of %s)"
            % (kind, ", ".join(EXECUTORS))
        )
    tasks: List[Tuple[int, str, Any, Any]] = []
    for index, item in enumerate(queries):
        if op == "ask":
            query, candidate = item
        else:
            query, candidate = item, None
        tasks.append((index, op, query, candidate))

    # One trace id for the whole batch: every task (thread envelope or
    # process task tuple) runs under it, so the batch's spans and obslog
    # lines stitch together across workers.
    trace_id, owns_trace = ensure_trace_id()
    try:
        log = session.obslog
        if log is not None:
            log.emit(
                "batch.start", op=op, queries=len(tasks), jobs=jobs, executor=kind
            )
        start = time.perf_counter()
        with current_tracer().span(
            "parallel.run_batch",
            op=op, jobs=jobs, executor=kind, trace_id=trace_id,
        ):
            if kind == "process" and jobs > 1 and len(tasks) >= 2:
                results, worker_ids = _run_process_batch(
                    session, tasks, jobs, trace_id
                )
            else:
                results, worker_ids = _run_thread_batch(session, tasks, jobs, kind)
        wall = time.perf_counter() - start
        batch = BatchResult(op, jobs, kind, results, wall, worker_ids)
        if log is not None:
            log.emit(
                "batch.complete",
                op=op,
                queries=len(tasks),
                jobs=jobs,
                executor=kind,
                wall_seconds=wall,
                workers=batch.workers_used(),
            )
    finally:
        if owns_trace:
            set_trace_context(None, None)
    return batch


def _run_thread_batch(session, tasks, jobs: int, kind: str):
    """Thread (or inline, ``jobs=1``) execution on the shared session."""

    def run(task):
        _, op, query, candidate = task
        if op == "ask":
            value = session.ask(query, candidate)
        elif op == "query_maximal":
            value = session.query_maximal(query)
        else:
            value = session.query(query)
        return (value, current_worker_id())

    pool = session._pool_for(jobs, "thread")
    outcomes = pool.map_tasks(run, tasks)
    results = [value for value, _ in outcomes]
    worker_ids = [worker for _, worker in outcomes]
    return results, worker_ids


def _run_process_batch(session, tasks, jobs: int, trace_id: Optional[str]):
    """Process execution: per-worker sessions, envelope merge in the
    parent.  Results are rebuilt against the *parent* session (queries
    parsed through its cache), so downstream ``Result`` conveniences —
    witnesses, EXPLAIN profiles — keep working.  Worker-side obslog
    records, spans, and stats entries come home inside the envelopes and
    are folded into the parent's log/tracer/store in task order."""
    from ..engine import Result

    from ..telemetry.profiler import current_profiler

    tracer = current_tracer()
    want_trace = bool(getattr(tracer, "enabled", False))
    profiler = current_profiler()
    if profiler is not None and not profiler.running:
        profiler = None
    profile_hz = profiler.hz if profiler is not None else None
    pool = session._pool_for(jobs, "process")
    shipped = [task + (trace_id, want_trace, profile_hz) for task in tasks]
    chunksize = max(1, len(tasks) // (jobs * 4))
    envelopes = pool.map_tasks(_run_process_task, shipped, chunksize=chunksize)
    results: List[Any] = []
    worker_ids: List[Optional[str]] = []
    for (index, op, query, _), envelope in zip(tasks, envelopes):
        (env_index, value, usage, worker_id, dump, records, spans, stats,
         profile_dump, _shard) = envelope
        assert env_index == index
        session.planner.metrics.merge_dump(dump)
        if records and session.obslog is not None:
            session.obslog.absorb(records)
        if spans and want_trace:
            _graft_spans(tracer, spans)
        if stats is not None and session.stats_store is not None:
            session.stats_store.merge_dump(stats)
        if profile_dump and profiler is not None:
            profiler.absorb_dump(profile_dump)
        worker_ids.append(worker_id)
        if op == "ask":
            results.append(value)
        else:
            result = Result(session, session.parse(query), value)
            result.resources = usage
            results.append(result)
    return results, worker_ids


def _graft_spans(tracer, span_dicts) -> None:
    """Attach spans recorded in a worker process to the parent's tracer —
    under the currently open span when there is one (the batch's
    ``parallel.run_batch`` span), else as new roots.  Worker clocks are a
    different ``perf_counter`` domain; the spans are kept for structure,
    attributes, and durations, not for cross-process alignment."""
    from ..telemetry.export import span_from_dict

    parent = tracer.current()
    for payload in span_dicts:
        span = span_from_dict(payload)
        if parent is not None:
            parent.children.append(span)
        else:
            with tracer._lock:
                tracer.roots.append(span)
