"""Command-line front door: profile and run {AND, OPT} queries.

Usage::

    python -m repro profile  "SELECT ?x WHERE { ?x knows ?y OPTIONAL { ?x age ?a } }"
    python -m repro run      QUERY  TRIPLES.tsv  [--analyze] [--trace-out trace.json]
    python -m repro analyze  QUERY  [TRIPLES.tsv]  [--trace-out trace.json]
    python -m repro demo

* ``profile`` parses the query (surface SPARQL first, the paper's
  algebraic notation as fallback) and prints the EXPLAIN profile — widths,
  interface, and which of the paper's algorithms apply.
* ``run`` additionally evaluates over a tab/whitespace-separated triples
  file (one ``subject predicate object`` per line; ``#`` comments);
  ``--analyze`` appends the EXPLAIN ANALYZE report and ``--trace-out``
  writes the Chrome ``chrome://tracing`` trace of the execution.
* ``analyze`` runs EXPLAIN ANALYZE directly (over the paper's Example 2
  database when no triples file is given).
* ``demo`` replays the paper's running example.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .exceptions import ParseError, ReproError
from .rdf.graph import RDFGraph
from .rdf.parser import parse_query
from .rdf.sparql import parse_sparql
from .wdpt.evaluation import evaluate
from .wdpt.explain import explain
from .wdpt.wdpt import WDPT


def _parse_any(text: str) -> WDPT:
    try:
        return parse_sparql(text)
    except ParseError:
        return parse_query(text)


def _load_triples(path: str) -> RDFGraph:
    graph = RDFGraph()
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 2)
            if len(parts) != 3:
                raise ReproError(
                    "%s:%d: expected 'subject predicate object', got %r"
                    % (path, lineno, line)
                )
            graph.add(tuple(parts))  # type: ignore[arg-type]
    return graph


def cmd_profile(args: argparse.Namespace) -> int:
    p = _parse_any(args.query)
    print(p)
    print()
    print(explain(p).as_table())
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from .engine import Session

    p = _parse_any(args.query)
    session = Session(_load_triples(args.triples))
    if args.analyze or args.trace_out:
        report = session.analyze(p)
        answers = sorted(session.query(p), key=repr)
    else:
        report = None
        answers = sorted(session.query(p), key=repr)
    print("%d answer(s) over %d facts:" % (len(answers), session.size))
    for answer in answers:
        print("   ", answer)
    if report is not None and args.analyze:
        print()
        print(report.as_text())
    if report is not None and args.trace_out:
        _write_trace(report, args.trace_out)
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from .engine import Session

    p = _parse_any(args.query)
    if args.triples is not None:
        session = Session(_load_triples(args.triples))
    else:
        from .workloads.families import example2_graph

        session = Session(example2_graph())
    report = session.analyze(p)
    print(report.as_text())
    if args.trace_out:
        _write_trace(report, args.trace_out)
    return 0


def _write_trace(report, path: str) -> None:
    from .telemetry.export import write_chrome_trace

    events = write_chrome_trace(report.tracer, path)
    print("wrote %d trace event(s) to %s" % (events, path))


def cmd_demo(args: argparse.Namespace) -> int:
    from .workloads.families import FIGURE1_QUERY_TEXT, example2_graph

    p = parse_query(FIGURE1_QUERY_TEXT)
    db = example2_graph().to_database()
    print("Query (1) of the paper:")
    print(p)
    print()
    print(explain(p).as_table())
    print("\nAnswers over the Example 2 database:")
    for answer in sorted(evaluate(p, db), key=repr):
        print("   ", answer)
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Well-designed pattern trees: profile and evaluate {AND, OPT} queries.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_profile = sub.add_parser("profile", help="parse a query and print its EXPLAIN profile")
    p_profile.add_argument("query")
    p_profile.set_defaults(func=cmd_profile)

    p_run = sub.add_parser("run", help="evaluate a query over a triples file")
    p_run.add_argument("query")
    p_run.add_argument("triples", help="whitespace-separated 's p o' lines")
    p_run.add_argument(
        "--analyze", action="store_true",
        help="append the EXPLAIN ANALYZE report to the answers",
    )
    p_run.add_argument(
        "--trace-out", metavar="TRACE.json", default=None,
        help="write the Chrome trace-event JSON of the execution",
    )
    p_run.set_defaults(func=cmd_run)

    p_analyze = sub.add_parser(
        "analyze",
        help="EXPLAIN ANALYZE a query (Example 2 database unless TRIPLES given)",
    )
    p_analyze.add_argument("query")
    p_analyze.add_argument(
        "triples", nargs="?", default=None,
        help="whitespace-separated 's p o' lines (default: paper's Example 2)",
    )
    p_analyze.add_argument(
        "--trace-out", metavar="TRACE.json", default=None,
        help="write the Chrome trace-event JSON of the execution",
    )
    p_analyze.set_defaults(func=cmd_analyze)

    p_demo = sub.add_parser("demo", help="replay the paper's running example")
    p_demo.set_defaults(func=cmd_demo)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
