"""Command-line front door: profile and run {AND, OPT} queries.

Usage::

    python -m repro profile  "SELECT ?x WHERE { ?x knows ?y OPTIONAL { ?x age ?a } }"
    python -m repro profile  QUERY  [TRIPLES.tsv]  [--hz HZ] [--duration S]
                             [--speedscope OUT.json] [--folded OUT.folded]
    python -m repro run      QUERY  [TRIPLES.tsv]  [--analyze] [--trace-out trace.json]
                             [--log-queries LOG.jsonl] [--slow-ms MS]
                             [--max-log-bytes B] [--log-backups N] [--jobs N]
                             [--profile-hz HZ] [--profile-out OUT.json]
                             [--backend {memory,sharded,sqlite}] [--shards N]
                             [--store DB.sqlite]
                             [--save-db DB.sqlite] [--no-cache]
                             [--stats-store STATS.json] [--serve-debug PORT]
                             [--serve-seconds N]
    python -m repro analyze  QUERY  [TRIPLES.tsv]  [--trace-out trace.json]
    python -m repro metrics  [QUERY]  [TRIPLES.tsv]
    python -m repro serve-metrics  [TRIPLES.tsv]  [--port P] [--self-check]
                             [--log-queries LOG.jsonl] [--max-log-bytes B]
    python -m repro serve    [TRIPLES.tsv]  [--tenants TENANTS.json]
                             [--port P] [--jobs J] [--global-limit N]
                             [--backend B | --store DB.sqlite] [--shards N]
                             [--self-check]
    python -m repro bench    [--names N1,N2] [--repeats R] [--jobs J]
                             [--shards S] [--out FILE]
                             [--profile-hz HZ] [--profile-out OUT.json]
    python -m repro demo

* ``profile`` parses the query (surface SPARQL first, the paper's
  algebraic notation as fallback) and prints the EXPLAIN profile — widths,
  interface, and which of the paper's algorithms apply.  With any of
  ``--hz``/``--duration``/``--speedscope``/``--folded`` it instead runs
  the query in a loop under the span-aware sampling profiler
  (:mod:`repro.telemetry.profiler`) and reports the hottest stacks,
  optionally exporting speedscope JSON and/or folded flamegraph stacks.
* ``run`` additionally evaluates over a tab/whitespace-separated triples
  file (one ``subject predicate object`` per line; ``#`` comments);
  ``--analyze`` appends the EXPLAIN ANALYZE report, ``--trace-out``
  writes the Chrome ``chrome://tracing`` trace of the execution,
  ``--log-queries`` appends structured JSON-lines query events, and
  ``--slow-ms`` additionally captures the full EXPLAIN ANALYZE profile of
  queries slower than the threshold into the query log.  Storage flags:
  ``--backend`` selects the :mod:`repro.storage` kind, ``--store
  DB.sqlite`` evaluates directly against an on-disk SQLite database
  (created from the triples file when missing, resumed — and extended
  with any given triples — when present; the triples file is then
  optional), ``--save-db`` snapshots the loaded data to a SQLite file,
  ``--shards N`` hash-partitions the data across N long-lived worker
  processes and evaluates distributively (``repro.dist``; also via
  ``REPRO_BACKEND=sharded`` + ``REPRO_SHARDS``), and ``--no-cache``
  disables the version-keyed result cache.
* ``analyze`` runs EXPLAIN ANALYZE directly (over the paper's Example 2
  database when no triples file is given).
  ``--stats-store STATS.json`` accumulates per-query-shape statistics
  (resumed across runs), and ``--serve-debug PORT`` serves ``/metrics``,
  ``/healthz`` and ``/debug/{queries,plans,stats}`` during the run
  (``--serve-seconds N`` keeps serving after it finishes).
* ``metrics`` evaluates a query (the paper's query (1) by default) and
  prints the planner's metrics in Prometheus text exposition format.
* ``serve-metrics`` exposes ``/metrics`` + ``/healthz`` + ``/debug/*``
  over HTTP (``--self-check`` fetches its own endpoint once and exits,
  for CI).
* ``serve`` runs the **multi-tenant async query service**
  (:mod:`repro.service`): ``POST /query|/ask|/explain`` as JSON, plus the
  same ``/metrics``/``/healthz``/``/debug/*`` routes as ``serve-metrics``
  and the key-free ``GET /tenants`` registry view.  ``--tenants`` maps
  API keys to QoS tiers (concurrency caps, queue patience, per-query
  resource budgets, private result-cache sizes); over-cap traffic is shed
  with ``429`` + ``Retry-After``, and ``SIGTERM`` drains gracefully.
  See ``docs/SERVICE.md`` for the operator guide.
* ``bench`` runs the named regression benchmarks
  (``repro.benchharness.regress``) and, with ``--jobs N > 1``, the
  parallel batch-scaling sweep; with ``--shards S > 1`` it also sweeps
  distributed evaluation across 1..S shard processes (``repro.dist``);
  ``--out`` appends the point to a trajectory file (``BENCH_eval.json``
  by convention).
* ``demo`` replays the paper's running example.

``run --jobs N`` evaluates with ``N`` pool workers: independent subtrees
of the query fan out (:mod:`repro.parallel`); answers are identical to
the sequential run.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .exceptions import ParseError, ReproError
from .rdf.graph import RDFGraph
from .rdf.parser import parse_query
from .rdf.sparql import parse_sparql
from .wdpt.evaluation import evaluate
from .wdpt.explain import explain
from .wdpt.wdpt import WDPT


def _parse_any(text: str) -> WDPT:
    try:
        return parse_sparql(text)
    except ParseError:
        return parse_query(text)


def _load_triples(path: str) -> RDFGraph:
    graph = RDFGraph()
    try:
        handle = open(path)
    except OSError as exc:
        raise ReproError("cannot read triples file %s: %s" % (path, exc)) from exc
    with handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 2)
            if len(parts) != 3:
                raise ReproError(
                    "%s:%d: expected 'subject predicate object', got %r"
                    % (path, lineno, line)
                )
            graph.add(tuple(parts))  # type: ignore[arg-type]
    return graph


def cmd_profile(args: argparse.Namespace) -> int:
    p = _parse_any(args.query)
    sampling = (
        args.hz is not None
        or args.duration is not None
        or args.speedscope is not None
        or args.folded is not None
    )
    if not sampling:
        print(p)
        print()
        print(explain(p).as_table())
        return 0
    return _profile_sampled(args, p)


def _profile_sampled(args: argparse.Namespace, p: WDPT) -> int:
    """Run ``p`` in a loop under the sampling profiler and report/export.

    The loop runs at least ``--repeat`` iterations AND at least
    ``--duration`` seconds (whichever is longer), with the result cache
    disabled — otherwise every iteration after the first is a cache hit
    and the flamegraph shows nothing but dictionary lookups.
    """
    import time

    from .engine import Session
    from .telemetry.profiler import DEFAULT_HZ, SamplingProfiler
    from .telemetry.tracer import tracing

    if args.triples is not None:
        graph = _load_triples(args.triples)
    else:
        from .workloads.families import example2_graph

        graph = example2_graph()
    hz = int(args.hz) if args.hz is not None else DEFAULT_HZ
    duration = float(args.duration) if args.duration is not None else 1.0
    session = Session(graph, cache=False)
    profiler = SamplingProfiler(hz=hz, registry=session.planner.metrics)
    runs = 0
    profiler.start()
    try:
        # A recording tracer makes the evaluators open spans, which is
        # what lets the profiler attribute samples to plan phases.
        with tracing():
            deadline = time.monotonic() + duration
            start = time.monotonic()
            while runs < args.repeat or time.monotonic() < deadline:
                session.query(p)
                runs += 1
            elapsed = time.monotonic() - start
    finally:
        profiler.stop()
        session.close()
    summary = profiler.summary(top=args.top)
    print(
        "profiled %d run(s) in %.2fs: %d sample(s) at %d Hz"
        % (runs, elapsed, summary["samples"], hz)
    )
    if summary["phases"]:
        print(
            "phases: "
            + ", ".join(
                "%s %d" % (phase, n)
                for phase, n in sorted(
                    summary["phases"].items(), key=lambda kv: -kv[1]
                )
            )
        )
    if summary["top"]:
        print("hottest stacks (by %s):" % args.by)
        for stack, count in sorted(
            profiler.folded(by=args.by).items(), key=lambda kv: -kv[1]
        )[: args.top]:
            print("  %6d  %s" % (count, stack))
    if args.speedscope:
        profiler.write_speedscope(
            args.speedscope, name="repro profile: %s" % args.query, by=args.by
        )
        print("wrote speedscope profile to %s" % args.speedscope)
    if args.folded:
        try:
            with open(args.folded, "w") as handle:
                handle.write(profiler.folded_text(by=args.by))
        except OSError as exc:
            raise ReproError(
                "cannot write folded stacks to %s: %s" % (args.folded, exc)
            ) from exc
        print("wrote folded stacks to %s" % args.folded)
    if summary["samples"] == 0:
        print(
            "note: no samples captured — the query is faster than the "
            "sampling interval; raise --hz or --duration"
        )
    return 0


def _make_obslog(args: argparse.Namespace):
    """A :class:`QueryLog` from ``--log-queries``/``--slow-ms`` (or None),
    with size rotation when ``--max-log-bytes`` is given."""
    log_path = getattr(args, "log_queries", None)
    slow_ms = getattr(args, "slow_ms", None)
    if log_path is None and slow_ms is None:
        return None
    from .telemetry.obslog import QueryLog

    threshold = slow_ms / 1000.0 if slow_ms is not None else None
    try:
        return QueryLog(
            sink=log_path,
            slow_threshold=threshold,
            max_bytes=getattr(args, "max_log_bytes", None),
            backup_count=getattr(args, "log_backups", 3),
        )
    except OSError as exc:
        raise ReproError(
            "cannot open query log %s: %s" % (log_path, exc)
        ) from exc


def _start_profiler(args: argparse.Namespace, registry):
    """A started :class:`SamplingProfiler` from ``--profile-hz`` (or None)."""
    hz = getattr(args, "profile_hz", None)
    if hz is None:
        return None
    from .telemetry.profiler import MAX_HZ, SamplingProfiler

    hz = max(1, min(int(hz), MAX_HZ))
    return SamplingProfiler(hz=hz, registry=registry).start()


def _finish_profiler(args: argparse.Namespace, profiler) -> None:
    """Stop ``profiler`` and write ``--profile-out`` / print a summary."""
    if profiler is None:
        return
    profiler.stop()
    out = getattr(args, "profile_out", None)
    if out:
        profiler.write_speedscope(out, by="phase")
        print(
            "wrote %d profile sample(s) to %s"
            % (profiler.sample_count, out)
        )
    else:
        summary = profiler.summary(top=3)
        phases = ", ".join(
            "%s %d" % (phase, n)
            for phase, n in sorted(
                summary["phases"].items(), key=lambda kv: -kv[1]
            )
        ) or "none"
        print(
            "profile: %d sample(s) at %d Hz (phases: %s)"
            % (summary["samples"], profiler.hz, phases)
        )


def _make_stats_store(args: argparse.Namespace):
    """A :class:`QueryStatsStore` from ``--stats-store`` (resumed from the
    file when it exists), or ``None``."""
    path = getattr(args, "stats_store", None)
    if path is None:
        return None
    import os

    from .telemetry.insight import QueryStatsStore

    if os.path.exists(path):
        try:
            return QueryStatsStore.load(path)
        except (OSError, ValueError) as exc:
            raise ReproError(
                "cannot load stats store %s: %s" % (path, exc)
            ) from exc
    return QueryStatsStore()


def cmd_run(args: argparse.Namespace) -> int:
    import time

    from .engine import Session

    if args.triples is None and args.store is None:
        raise ReproError(
            "run needs a TRIPLES file, --store DB.sqlite, or both"
        )
    p = _parse_any(args.query)
    obslog = _make_obslog(args)
    stats_store = _make_stats_store(args)
    session = Session(
        _load_triples(args.triples) if args.triples is not None else None,
        obslog=obslog,
        stats_store=stats_store,
        jobs=args.jobs,
        backend=args.backend,
        path=args.store,
        shards=args.shards,
        cache=not args.no_cache,
    )
    server = None
    if args.serve_debug is not None:
        from .telemetry.promhttp import MetricsServer

        server = MetricsServer(
            session.planner.metrics,
            port=args.serve_debug,
            debug=session.debug_providers(),
        ).start()
        print(
            "serving %s/metrics, %s/healthz and %s/debug"
            % (server.url, server.url, server.url)
        )
    profiler = _start_profiler(args, session.planner.metrics)
    try:
        if args.analyze or args.trace_out:
            report = session.analyze(p)
            answers = sorted(session.query(p), key=repr)
        else:
            report = None
            answers = sorted(session.query(p), key=repr)
        if args.save_db:
            _save_database(session.database, args.save_db)
        print("%d answer(s) over %d facts:" % (len(answers), session.size))
        for answer in answers:
            print("   ", answer)
        if report is not None and args.analyze:
            print()
            print(report.as_text())
        if report is not None and args.trace_out:
            _write_trace(report, args.trace_out)
        if obslog is not None and args.log_queries:
            print("wrote query log to %s" % args.log_queries)
        if stats_store is not None:
            stats_store.save(args.stats_store)
            print("saved query stats to %s" % args.stats_store)
        if args.save_db:
            print("saved database to %s" % args.save_db)
        _finish_profiler(args, profiler)
        profiler = None
        if server is not None and args.serve_seconds > 0:
            print("serving debug endpoints for %gs" % args.serve_seconds)
            time.sleep(args.serve_seconds)
    finally:
        if profiler is not None:
            profiler.stop()
        if server is not None:
            server.stop()
        session.close()
        if obslog is not None:
            obslog.close()
    return 0


def _save_database(db, path: str) -> None:
    """Snapshot ``db`` into the SQLite file at ``path`` (overwriting)."""
    import os

    from .storage import SQLiteBackend

    if isinstance(db, SQLiteBackend):
        db.save(path)
        return
    if os.path.exists(path):
        os.remove(path)
    SQLiteBackend(db.facts(), path=path).close()


def cmd_analyze(args: argparse.Namespace) -> int:
    from .engine import Session

    p = _parse_any(args.query)
    if args.triples is not None:
        session = Session(_load_triples(args.triples))
    else:
        from .workloads.families import example2_graph

        session = Session(example2_graph())
    report = session.analyze(p)
    print(report.as_text())
    if args.trace_out:
        _write_trace(report, args.trace_out)
    return 0


def _write_trace(report, path: str) -> None:
    from .telemetry.export import write_chrome_trace

    try:
        events = write_chrome_trace(report.tracer, path)
    except OSError as exc:
        raise ReproError("cannot write trace to %s: %s" % (path, exc)) from exc
    print("wrote %d trace event(s) to %s" % (events, path))


def cmd_metrics(args: argparse.Namespace) -> int:
    from .engine import Session

    session, p = _metrics_session(args)
    session.query(p)
    print(session.planner.metrics.to_prometheus(), end="")
    return 0


def _metrics_session(args: argparse.Namespace, obslog=None):
    """A Session plus warm-up query for the metrics subcommands."""
    from .engine import Session

    if args.triples is not None:
        session = Session(_load_triples(args.triples), obslog=obslog)
    else:
        from .workloads.families import example2_graph

        session = Session(example2_graph(), obslog=obslog)
    if getattr(args, "query", None):
        p = _parse_any(args.query)
    else:
        from .workloads.families import FIGURE1_QUERY_TEXT

        p = parse_query(FIGURE1_QUERY_TEXT)
    return session, p


def cmd_serve_metrics(args: argparse.Namespace) -> int:
    import time

    from .telemetry.promhttp import MetricsServer

    obslog = _make_obslog(args)
    session, p = _metrics_session(args, obslog=obslog)
    session.query(p)  # warm the registry so the exposition is non-empty
    server = MetricsServer(
        session.planner.metrics, host=args.host, port=args.port,
        debug=session.debug_providers(),
    ).start()
    print(
        "serving %s/metrics, %s/healthz and %s/debug"
        % (server.url, server.url, server.url)
    )
    try:
        if args.self_check:
            import urllib.request

            with urllib.request.urlopen(server.url + "/healthz") as response:
                print("healthz:", response.read().decode())
            with urllib.request.urlopen(
                server.url + "/debug/queries"
            ) as response:
                print("debug/queries:", response.read().decode())
            with urllib.request.urlopen(server.url + "/metrics") as response:
                print(response.read().decode(), end="")
            return 0
        while True:  # pragma: no cover - interactive serving loop
            time.sleep(1)
    except KeyboardInterrupt:  # pragma: no cover
        return 0
    finally:
        server.stop()
        session.close()
        if obslog is not None:
            obslog.close()


def cmd_serve(args: argparse.Namespace) -> int:
    """The multi-tenant async query service (``docs/SERVICE.md``)."""
    import asyncio
    import json as _json

    from .service import ServiceServer, default_registry, load_tenants

    obslog = _make_obslog(args)
    tenants = (
        load_tenants(args.tenants) if args.tenants else default_registry()
    )
    if args.triples is not None:
        data = _load_triples(args.triples)
    else:
        from .workloads.families import example2_graph

        data = example2_graph()
    server = ServiceServer(
        data,
        tenants=tenants,
        host=args.host,
        port=args.port,
        backend=args.backend,
        path=args.store,
        shards=args.shards,
        jobs=args.jobs,
        global_limit=args.global_limit,
        obslog=obslog,
    )
    try:
        if args.self_check:
            import urllib.request

            with server:
                with urllib.request.urlopen(server.url + "/healthz") as resp:
                    print("healthz:", resp.read().decode())
                with urllib.request.urlopen(server.url + "/tenants") as resp:
                    print("tenants:", resp.read().decode())
                request = urllib.request.Request(
                    server.url + "/explain",
                    data=_json.dumps(
                        {"query": "SELECT ?x ?y WHERE { ?x recorded_by ?y }"}
                    ).encode("utf-8"),
                    headers={"Content-Type": "application/json"},
                    method="POST",
                )
                with urllib.request.urlopen(request) as resp:
                    print("explain:", resp.read().decode())
            return 0
        async def _serve() -> None:
            await server.start_async()
            print(
                "serving %s/query, %s/healthz, %s/metrics for tenants: %s\n"
                "(SIGTERM drains gracefully)"
                % (server.url, server.url, server.url,
                   ", ".join(server.tenants.names()))
            )
            await server.serve_forever()

        asyncio.run(_serve())
        return 0
    except KeyboardInterrupt:  # pragma: no cover - interactive
        return 0
    finally:
        if obslog is not None:
            obslog.close()


def cmd_bench(args: argparse.Namespace) -> int:
    from .benchharness.regress import (
        append_point,
        build_point,
        measure_dist_scaling,
        measure_parallel_scaling,
    )
    from .benchharness.reporting import format_table

    names = args.names.split(",") if args.names else None
    profiler = _start_profiler(args, None)
    try:
        point = build_point(
            names=names, repeats=args.repeats, backend=args.backend,
            profiler=profiler,
        )
    finally:
        _finish_profiler(args, profiler)
    rows = [
        [name, "%.6f" % bench["seconds"]]
        for name, bench in sorted(point["benchmarks"].items())
    ]
    print(format_table(["benchmark", "best-of-%d s" % args.repeats], rows))
    est = point.get("estimator")
    if est:
        print(
            "estimator q-error: p50 %.2f, p95 %.2f, max %.2f over %d node(s)"
            % (est["p50"], est["p95"], est["max"], est["nodes"])
        )
    if args.jobs > 1:
        jobs_list = sorted({1, *[j for j in (2, args.jobs) if j <= args.jobs]})
        scaling = measure_parallel_scaling(
            jobs_list=jobs_list, repeats=args.repeats
        )
        point["parallel"] = scaling
        print()
        print(
            format_table(
                ["jobs", "seconds", "speedup"],
                [
                    [str(j), "%.4f" % scaling["seconds"][j],
                     "%.2fx" % scaling["speedup"][j]]
                    for j in sorted(scaling["seconds"])
                ],
            )
        )
        print(
            "executor=%s, effective CPUs=%d, answers_equal=%s"
            % (scaling["executor"], scaling["effective_cpus"],
               scaling["answers_equal"])
        )
    if args.shards > 1:
        shards_list = sorted({1, *[s for s in (2, args.shards) if s <= args.shards]})
        dist = measure_dist_scaling(
            shards_list=shards_list, repeats=args.repeats
        )
        point["dist"] = dist
        print()
        print(
            format_table(
                ["shards", "seconds", "speedup"],
                [
                    [str(s), "%.4f" % dist["seconds"][s],
                     "%.2fx" % dist["speedup"][s]]
                    for s in sorted(dist["seconds"])
                ],
            )
        )
        print(
            "effective CPUs=%d, answers_equal=%s"
            % (dist["effective_cpus"], dist["answers_equal"])
        )
    if args.out:
        append_point(args.out, point)
        print("appended point to %s" % args.out)
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    from .workloads.families import FIGURE1_QUERY_TEXT, example2_graph

    p = parse_query(FIGURE1_QUERY_TEXT)
    db = example2_graph().to_database()
    print("Query (1) of the paper:")
    print(p)
    print()
    print(explain(p).as_table())
    print("\nAnswers over the Example 2 database:")
    for answer in sorted(evaluate(p, db), key=repr):
        print("   ", answer)
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Well-designed pattern trees: profile and evaluate {AND, OPT} queries.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_profile = sub.add_parser(
        "profile",
        help="print a query's EXPLAIN profile, or (with --hz/--duration/"
             "--speedscope/--folded) sample its execution into a flamegraph",
    )
    p_profile.add_argument("query")
    p_profile.add_argument(
        "triples", nargs="?", default=None,
        help="whitespace-separated 's p o' lines to profile against "
             "(default: the paper's Example 2 database)",
    )
    p_profile.add_argument(
        "--hz", type=int, default=None, metavar="HZ",
        help="sampling frequency (enables sampling mode; default: 100)",
    )
    p_profile.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="keep re-running the query for at least this long "
             "(enables sampling mode; default: 1.0)",
    )
    p_profile.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="run the query at least N times (default: 1)",
    )
    p_profile.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="print the N hottest stacks (default: 10)",
    )
    p_profile.add_argument(
        "--by", default="phase", choices=["phase", "frames"],
        help="fold stacks under a plan-phase root (plan/semijoin/join/"
             "enumerate) or by Python frames only (default: %(default)s)",
    )
    p_profile.add_argument(
        "--speedscope", metavar="FILE.json", default=None,
        help="write the profile as speedscope JSON "
             "(open at https://speedscope.app; enables sampling mode)",
    )
    p_profile.add_argument(
        "--folded", metavar="FILE.folded", default=None,
        help="write Brendan-Gregg folded stacks (flamegraph.pl input; "
             "enables sampling mode)",
    )
    p_profile.set_defaults(func=cmd_profile)

    p_run = sub.add_parser(
        "run",
        help="evaluate a query over a triples file or a stored database",
    )
    p_run.add_argument("query")
    p_run.add_argument(
        "triples", nargs="?", default=None,
        help="whitespace-separated 's p o' lines (optional when --store "
             "names an existing database)",
    )
    p_run.add_argument(
        "--analyze", action="store_true",
        help="append the EXPLAIN ANALYZE report to the answers",
    )
    p_run.add_argument(
        "--trace-out", metavar="TRACE.json", default=None,
        help="write the Chrome trace-event JSON of the execution",
    )
    p_run.add_argument(
        "--log-queries", metavar="LOG.jsonl", default=None,
        help="append structured query events as JSON lines",
    )
    p_run.add_argument(
        "--slow-ms", type=float, default=None, metavar="MS",
        help="capture the EXPLAIN ANALYZE profile of queries slower than "
             "this into the query log (implies query logging)",
    )
    p_run.add_argument(
        "--max-log-bytes", type=int, default=None, metavar="BYTES",
        help="rotate the query log when it reaches this size "
             "(default: never rotate)",
    )
    p_run.add_argument(
        "--log-backups", type=int, default=3, metavar="N",
        help="rotated query-log files to keep as LOG.jsonl.1..N "
             "(0 = truncate in place; default: %(default)s)",
    )
    p_run.add_argument(
        "--profile-hz", type=int, default=None, metavar="HZ",
        help="sample wall-clock stacks at HZ while the query runs",
    )
    p_run.add_argument(
        "--profile-out", metavar="FILE.json", default=None,
        help="with --profile-hz, write the profile as speedscope JSON",
    )
    p_run.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="evaluate with N pool workers (independent subtrees fan out; "
             "answers are identical to the sequential run)",
    )
    p_run.add_argument(
        "--backend", default=None, choices=["memory", "sharded", "sqlite"],
        help="storage backend (default: memory, or $REPRO_BACKEND; "
             "--store implies sqlite, --shards implies sharded)",
    )
    p_run.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="evaluate on N hash-partitioned shard processes "
             "(repro.dist; implies --backend sharded; default: "
             "$REPRO_SHARDS, else 2)",
    )
    p_run.add_argument(
        "--store", metavar="DB.sqlite", default=None,
        help="on-disk SQLite database to evaluate against (created when "
             "missing, resumed when present; any TRIPLES are added to it)",
    )
    p_run.add_argument(
        "--save-db", metavar="DB.sqlite", default=None,
        help="snapshot the loaded database to this SQLite file after the run",
    )
    p_run.add_argument(
        "--no-cache", action="store_true",
        help="disable the version-keyed result cache",
    )
    p_run.add_argument(
        "--stats-store", metavar="STATS.json", default=None,
        help="accumulate per-query-shape statistics (latency, rows, "
             "kernels, q-errors) into this JSON file — resumed when it "
             "exists, so history persists across runs",
    )
    p_run.add_argument(
        "--serve-debug", type=int, default=None, metavar="PORT",
        help="serve /metrics, /healthz and /debug/{queries,plans,stats} "
             "on this port (0 = pick a free one) while the run executes",
    )
    p_run.add_argument(
        "--serve-seconds", type=float, default=0.0, metavar="N",
        help="with --serve-debug, keep serving N seconds after the run "
             "finishes (so external clients can scrape; default: 0)",
    )
    p_run.set_defaults(func=cmd_run)

    p_analyze = sub.add_parser(
        "analyze",
        help="EXPLAIN ANALYZE a query (Example 2 database unless TRIPLES given)",
    )
    p_analyze.add_argument("query")
    p_analyze.add_argument(
        "triples", nargs="?", default=None,
        help="whitespace-separated 's p o' lines (default: paper's Example 2)",
    )
    p_analyze.add_argument(
        "--trace-out", metavar="TRACE.json", default=None,
        help="write the Chrome trace-event JSON of the execution",
    )
    p_analyze.set_defaults(func=cmd_analyze)

    p_metrics = sub.add_parser(
        "metrics",
        help="run a query and print the Prometheus text exposition",
    )
    p_metrics.add_argument(
        "query", nargs="?", default=None,
        help="query to evaluate (default: the paper's query (1))",
    )
    p_metrics.add_argument(
        "triples", nargs="?", default=None,
        help="whitespace-separated 's p o' lines (default: paper's Example 2)",
    )
    p_metrics.set_defaults(func=cmd_metrics)

    p_serve = sub.add_parser(
        "serve-metrics",
        help="expose /metrics and /healthz over HTTP",
    )
    p_serve.add_argument(
        "triples", nargs="?", default=None,
        help="whitespace-separated 's p o' lines (default: paper's Example 2)",
    )
    p_serve.add_argument(
        "--query", default=None,
        help="warm-up query to evaluate (default: the paper's query (1))",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=0,
        help="port to bind (default: 0 = pick a free one, printed)",
    )
    p_serve.add_argument(
        "--self-check", action="store_true",
        help="fetch the endpoint once, print the response, and exit",
    )
    p_serve.add_argument(
        "--log-queries", metavar="LOG.jsonl", default=None,
        help="append structured query events as JSON lines while serving",
    )
    p_serve.add_argument(
        "--slow-ms", type=float, default=None, metavar="MS",
        help="capture the EXPLAIN ANALYZE profile of queries slower than "
             "this into the query log (implies query logging)",
    )
    p_serve.add_argument(
        "--max-log-bytes", type=int, default=None, metavar="BYTES",
        help="rotate the query log when it reaches this size — long-lived "
             "servers otherwise grow the log unboundedly "
             "(default: never rotate)",
    )
    p_serve.add_argument(
        "--log-backups", type=int, default=3, metavar="N",
        help="rotated query-log files to keep as LOG.jsonl.1..N "
             "(0 = truncate in place; default: %(default)s)",
    )
    p_serve.set_defaults(func=cmd_serve_metrics)

    p_svc = sub.add_parser(
        "serve",
        help="run the multi-tenant async query service "
             "(POST /query|/ask|/explain; see docs/SERVICE.md)",
    )
    p_svc.add_argument(
        "triples", nargs="?", default=None,
        help="whitespace-separated 's p o' lines (default: paper's Example 2)",
    )
    p_svc.add_argument(
        "--tenants", default=None, metavar="TENANTS.json",
        help="tenant/QoS registry file (default: one anonymous 'public' "
             "tenant on the gold tier)",
    )
    p_svc.add_argument("--host", default="127.0.0.1")
    p_svc.add_argument(
        "--port", type=int, default=0,
        help="port to bind (default: 0 = pick a free one, printed)",
    )
    p_svc.add_argument(
        "--backend", default=None, choices=["memory", "sharded", "sqlite"],
        help="storage backend (default: memory, or sqlite with --store, "
             "or sharded with --shards)",
    )
    p_svc.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="serve from N hash-partitioned shard processes "
             "(repro.dist; implies --backend sharded)",
    )
    p_svc.add_argument(
        "--store", default=None, metavar="DB.sqlite",
        help="serve directly against an on-disk SQLite database",
    )
    p_svc.add_argument(
        "--jobs", type=int, default=None, metavar="J",
        help="workers per coalesced evaluation batch (default: sequential)",
    )
    p_svc.add_argument(
        "--global-limit", type=int, default=64, metavar="N",
        help="process-wide in-flight query ceiling (default: %(default)s)",
    )
    p_svc.add_argument(
        "--self-check", action="store_true",
        help="start, probe /healthz, /tenants and POST /explain once, "
             "print the responses, and exit",
    )
    p_svc.add_argument(
        "--log-queries", metavar="LOG.jsonl", default=None,
        help="append structured request/query events as JSON lines "
             "(the service request log)",
    )
    p_svc.add_argument(
        "--slow-ms", type=float, default=None, metavar="MS",
        help="capture the EXPLAIN ANALYZE profile of queries slower than "
             "this into the query log (implies query logging)",
    )
    p_svc.add_argument(
        "--max-log-bytes", type=int, default=None, metavar="BYTES",
        help="rotate the query log when it reaches this size "
             "(default: never rotate)",
    )
    p_svc.add_argument(
        "--log-backups", type=int, default=3, metavar="N",
        help="rotated query-log files to keep (default: %(default)s)",
    )
    p_svc.set_defaults(func=cmd_serve)

    p_bench = sub.add_parser(
        "bench",
        help="run the regression benchmarks (and, with --jobs, the "
             "parallel scaling sweep)",
    )
    p_bench.add_argument(
        "--names", default=None,
        help="comma-separated benchmark names (default: all)",
    )
    p_bench.add_argument(
        "--repeats", type=int, default=3,
        help="best-of-N repetitions per benchmark (default: 3)",
    )
    p_bench.add_argument(
        "--jobs", type=int, default=1, metavar="J",
        help="also sweep batch evaluation at 1..J workers and report "
             "speedup (default: 1 = skip)",
    )
    p_bench.add_argument(
        "--out", default=None, metavar="FILE",
        help="append the measured point to this trajectory JSON file",
    )
    p_bench.add_argument(
        "--backend", default="memory", choices=["memory", "sharded", "sqlite"],
        help="storage backend the benchmarks run against "
             "(default: %(default)s)",
    )
    p_bench.add_argument(
        "--shards", type=int, default=1, metavar="S",
        help="also sweep distributed evaluation at 1..S shard processes "
             "and report speedup (default: 1 = skip)",
    )
    p_bench.add_argument(
        "--profile-hz", type=int, default=None, metavar="HZ",
        help="sample wall-clock stacks at HZ during the benchmarks; each "
             "trajectory point's benchmarks gain a per-window profile "
             "summary",
    )
    p_bench.add_argument(
        "--profile-out", metavar="FILE.json", default=None,
        help="with --profile-hz, write the combined profile as "
             "speedscope JSON",
    )
    p_bench.set_defaults(func=cmd_bench)

    p_demo = sub.add_parser("demo", help="replay the paper's running example")
    p_demo.set_defaults(func=cmd_demo)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
