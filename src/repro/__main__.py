"""Command-line front door: profile and run {AND, OPT} queries.

Usage::

    python -m repro profile  "SELECT ?x WHERE { ?x knows ?y OPTIONAL { ?x age ?a } }"
    python -m repro run      QUERY  TRIPLES.tsv
    python -m repro demo

* ``profile`` parses the query (surface SPARQL first, the paper's
  algebraic notation as fallback) and prints the EXPLAIN profile — widths,
  interface, and which of the paper's algorithms apply.
* ``run`` additionally evaluates over a tab/whitespace-separated triples
  file (one ``subject predicate object`` per line; ``#`` comments).
* ``demo`` replays the paper's running example.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .exceptions import ParseError, ReproError
from .rdf.graph import RDFGraph
from .rdf.parser import parse_query
from .rdf.sparql import parse_sparql
from .wdpt.evaluation import evaluate
from .wdpt.explain import explain
from .wdpt.wdpt import WDPT


def _parse_any(text: str) -> WDPT:
    try:
        return parse_sparql(text)
    except ParseError:
        return parse_query(text)


def _load_triples(path: str) -> RDFGraph:
    graph = RDFGraph()
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 2)
            if len(parts) != 3:
                raise ReproError(
                    "%s:%d: expected 'subject predicate object', got %r"
                    % (path, lineno, line)
                )
            graph.add(tuple(parts))  # type: ignore[arg-type]
    return graph


def cmd_profile(args: argparse.Namespace) -> int:
    p = _parse_any(args.query)
    print(p)
    print()
    print(explain(p).as_table())
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    p = _parse_any(args.query)
    graph = _load_triples(args.triples)
    answers = sorted(evaluate(p, graph.to_database()), key=repr)
    print("%d answer(s) over %d triples:" % (len(answers), len(graph)))
    for answer in answers:
        print("   ", answer)
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    from .workloads.families import FIGURE1_QUERY_TEXT, example2_graph

    p = parse_query(FIGURE1_QUERY_TEXT)
    db = example2_graph().to_database()
    print("Query (1) of the paper:")
    print(p)
    print()
    print(explain(p).as_table())
    print("\nAnswers over the Example 2 database:")
    for answer in sorted(evaluate(p, db), key=repr):
        print("   ", answer)
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Well-designed pattern trees: profile and evaluate {AND, OPT} queries.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_profile = sub.add_parser("profile", help="parse a query and print its EXPLAIN profile")
    p_profile.add_argument("query")
    p_profile.set_defaults(func=cmd_profile)

    p_run = sub.add_parser("run", help="evaluate a query over a triples file")
    p_run.add_argument("query")
    p_run.add_argument("triples", help="whitespace-separated 's p o' lines")
    p_run.set_defaults(func=cmd_run)

    p_demo = sub.add_parser("demo", help="replay the paper's running example")
    p_demo.set_defaults(func=cmd_demo)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
