"""Pluggable storage backends and the version-keyed result cache.

The evaluation engines (:mod:`repro.wdpt`, :mod:`repro.cqalgs`) run
against any :class:`~repro.storage.base.StorageBackend`:

* :class:`~repro.storage.memory.MemoryBackend` — hash-indexed, in
  memory; ``repro.core.database.Database`` is a thin alias of it.
* :class:`~repro.storage.sqlite.SQLiteBackend` — stdlib ``sqlite3``, one
  table per relation with per-position indexes, on-disk open/save, and
  SQL pushdown of the Yannakakis semi-join program.
* :class:`~repro.dist.backend.ShardedBackend` (kind ``"sharded"``,
  imported lazily — it pulls in the process-pool machinery) — the
  database hash-partitioned across N long-lived worker processes, with
  Yannakakis running as a distributed shard program.

Every backend maintains a monotonically increasing **data version**
bumped on each mutation; :class:`~repro.storage.cache.ResultCache` keys
finished answers by ``(query fingerprint, backend id, data version)``,
so repeated queries are cache hits and any write invalidates exactly by
moving the version forward.  Select a backend with
``Session(data, backend="sqlite")`` (or the ``REPRO_BACKEND``
environment variable) — see :mod:`repro.engine`.
"""

from .base import StorageBackend
from .cache import ResultCache
from .memory import MemoryBackend
from .sqlite import SQLiteBackend

#: Name → constructor for ``Session(backend=...)`` / ``REPRO_BACKEND``.
#: The sharded backend is resolved lazily by :func:`to_backend`.
BACKENDS = {
    "memory": MemoryBackend,
    "sqlite": SQLiteBackend,
}

#: Every backend kind accepted by ``Session(backend=...)`` and the CLI's
#: ``--backend`` flags (:data:`BACKENDS` plus the lazily-loaded kinds).
BACKEND_KINDS = ("memory", "sharded", "sqlite")


def to_backend(data, kind: str, path=None, shards=None):
    """Coerce ``data`` (a backend or an iterable of facts) into a backend
    of the given ``kind``, converting between kinds when necessary.

    An instance already of the requested kind passes through unchanged
    (no copy); anything else is loaded fact-by-fact into a fresh backend.
    ``shards`` applies to ``kind="sharded"`` (defaulting to
    :data:`repro.dist.backend.DEFAULT_SHARDS`).
    """
    if kind == "sharded":
        from ..dist.backend import ShardedBackend

        if isinstance(data, ShardedBackend) and (
            shards is None or data.shards == int(shards)
        ):
            return data
        facts = data.facts() if isinstance(data, StorageBackend) else data
        if shards is None:
            return ShardedBackend(facts)
        return ShardedBackend(facts, shards=int(shards))
    try:
        cls = BACKENDS[kind]
    except KeyError:
        raise ValueError(
            "unknown storage backend %r (expected one of %s)"
            % (kind, ", ".join(BACKEND_KINDS))
        ) from None
    if isinstance(data, cls) and (path is None or kind != "sqlite"):
        return data
    facts = data.facts() if isinstance(data, StorageBackend) else data
    if cls is SQLiteBackend:
        return SQLiteBackend(facts, path=path)
    return cls(facts)


__all__ = [
    "BACKENDS",
    "BACKEND_KINDS",
    "MemoryBackend",
    "ResultCache",
    "SQLiteBackend",
    "StorageBackend",
    "to_backend",
]
