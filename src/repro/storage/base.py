"""The storage-backend protocol every evaluation engine runs against.

A backend is a mutable set of ground atoms (facts) exposing exactly the
access paths the evaluators use: per-relation fact lists, pattern
:meth:`~StorageBackend.match` (the inner loop of backtracking search and
of Yannakakis' semi-join passes), the active domain, and mutation via
``add``/``update``/``remove``.  Two implementations ship with the
library:

* :class:`repro.storage.memory.MemoryBackend` — the hash-indexed
  in-memory store (the historical ``repro.core.database.Database``, which
  is now a thin alias of it);
* :class:`repro.storage.sqlite.SQLiteBackend` — one SQLite table per
  relation with per-position indexes, supporting on-disk open/save and
  SQL pushdown of the Yannakakis semi-join program.

Every backend carries two pieces of identity used by the result cache
(:mod:`repro.storage.cache`):

* ``backend_id`` — a stable identifier of the *database instance* (for
  on-disk SQLite files it is derived from the path, so re-opening the
  same file resumes the same cache lineage);
* ``data_version`` — a monotonically increasing epoch counter bumped on
  every successful mutation.  ``(query fingerprint, backend_id,
  data_version)`` is a sound cache key: any write moves the version
  forward, so stale answers are never served.
"""

from __future__ import annotations

import abc
import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from ..core.atoms import Atom, Schema
from ..core.terms import Constant, Variable

#: Process-wide allocator for anonymous backend ids.
_BACKEND_IDS = itertools.count(1)


def allocate_backend_id(kind: str) -> str:
    """A fresh ``"<kind>#<n>"`` identifier for an anonymous backend."""
    return "%s#%d" % (kind, next(_BACKEND_IDS))


class StorageBackend(abc.ABC):
    """Abstract base of every fact store.

    Subclasses implement the storage primitives; the shared behaviour
    (``update``, ``match_count``, equality by fact set, the unhashable
    guard) lives here so all backends agree on semantics.
    """

    # ------------------------------------------------------------------
    # Optional capabilities
    # ------------------------------------------------------------------
    #: The backend can run Yannakakis' two semi-join sweeps natively and
    #: hand the reduced relations back (``sql_semijoin_reduce``).
    supports_sql_semijoin = False
    #: The backend can run the *whole* Yannakakis join plan — scans,
    #: both sweeps, and the join/projection phase — as one native query
    #: (``sql_yannakakis``).  Checked by
    #: :func:`repro.relalg.config.choose_kernel` when resolving the
    #: ``auto`` kernel mode.
    supports_sql_yannakakis = False
    #: The backend can run the *distributed* Yannakakis program
    #: (``dist_yannakakis``): shard-local semi-join passes with bounded
    #: exchange steps between join-tree levels and a final merge at the
    #: coordinator (:mod:`repro.dist`).  Also checked by
    #: :func:`repro.relalg.config.choose_kernel` in ``auto`` mode.
    supports_dist_yannakakis = False

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def backend_id(self) -> str:
        """Stable identifier of this database instance (cache keying)."""

    @property
    @abc.abstractmethod
    def data_version(self) -> int:
        """Epoch counter: bumped on every successful mutation."""

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def add(self, fact: Atom) -> bool:
        """Insert ``fact``; return ``True`` iff it was not already present."""

    @abc.abstractmethod
    def discard(self, fact: Atom) -> bool:
        """Delete ``fact`` if present; return ``True`` iff it was removed."""

    def remove(self, fact: Atom) -> None:
        """Delete ``fact``; raise :class:`KeyError` when it is absent."""
        if not self.discard(fact):
            raise KeyError("fact not in database: %r" % (fact,))

    def update(self, facts: Iterable[Atom]) -> int:
        """Insert many facts; return how many were new."""
        return sum(1 for fact in facts if self.add(fact))

    def add_many(self, facts: Iterable[Atom]) -> int:
        """Bulk-ingest ``facts``; return how many were new.

        Semantically :meth:`update`, but a bulk ingest is allowed to bump
        :attr:`data_version` **once** for the whole batch instead of once
        per tuple, so large loads don't churn the version counter (and
        the caches keyed by it).  Backends override this with their
        native bulk path — SQLite uses ``executemany``, the memory
        backend inserts without per-fact bumps, and the sharded backend
        logs the batch as one write-ahead entry group.  The default loops
        :meth:`add`.
        """
        return sum(1 for fact in facts if self.add(fact))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def schema(self) -> Schema:
        """The (explicit or inferred) schema of this database."""

    @abc.abstractmethod
    def facts(self, relation: Optional[str] = None) -> Tuple[Atom, ...]:
        """All facts, or the facts of one relation."""

    @abc.abstractmethod
    def relations(self) -> FrozenSet[str]:
        """Relation names with at least one fact."""

    @abc.abstractmethod
    def active_domain(self) -> FrozenSet[Constant]:
        """All constants appearing in some fact (the active domain)."""

    @abc.abstractmethod
    def __contains__(self, fact: Atom) -> bool: ...

    @abc.abstractmethod
    def __len__(self) -> int: ...

    @abc.abstractmethod
    def __iter__(self) -> Iterator[Atom]: ...

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def match(self, pattern: Atom) -> Iterator[Atom]:
        """Yield the facts unifying with ``pattern`` (which may mix
        constants and variables; repeated variables impose equality)."""

    def match_count(self, pattern: Atom) -> int:
        """Number of facts matching ``pattern`` (see :meth:`match`)."""
        return sum(1 for _ in self.match(pattern))

    @abc.abstractmethod
    def copy(self) -> "StorageBackend":
        """An independent copy sharing no mutable state, carrying the
        schema (explicit or inferred) and the current data version."""

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Backends are equal iff they hold the same fact set — across
        implementations (a SQLite copy of a memory database compares
        equal to it)."""
        if not isinstance(other, StorageBackend):
            return NotImplemented
        return frozenset(iter(self)) == frozenset(iter(other))

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:  # pragma: no cover - databases are mutable
        raise TypeError(
            "%s objects are mutable and unhashable; key caches by "
            "(backend_id, data_version) instead" % type(self).__name__
        )

    def __repr__(self) -> str:
        return "%s(%d facts over %d relations, v%d)" % (
            type(self).__name__, len(self), len(self.relations()),
            self.data_version,
        )


# ---------------------------------------------------------------------------
# Pattern-matching helpers shared by the backends
# ---------------------------------------------------------------------------
def repeated_positions(pattern: Atom) -> Tuple[Tuple[int, ...], ...]:
    """Groups of argument positions bound to the same variable (size ≥ 2)."""
    groups: Dict[Variable, List[int]] = {}
    for pos, value in enumerate(pattern.args):
        if isinstance(value, Variable):
            groups.setdefault(value, []).append(pos)
    return tuple(tuple(ps) for ps in groups.values() if len(ps) > 1)


def fact_matches(
    pattern: Atom, fact: Atom, repeated: Tuple[Tuple[int, ...], ...]
) -> bool:
    """Does ``fact`` unify with ``pattern`` (``repeated`` precomputed)?"""
    if pattern.relation != fact.relation or pattern.arity != fact.arity:
        return False
    for p_arg, f_arg in zip(pattern.args, fact.args):
        if isinstance(p_arg, Constant) and p_arg != f_arg:
            return False
    for positions in repeated:
        first = fact.args[positions[0]]
        if any(fact.args[p] != first for p in positions[1:]):
            return False
    return True
